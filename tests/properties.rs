//! Workspace-level property tests on cross-crate invariants.

use proptest::prelude::*;
use xatu::metrics::areas::{integrate_areas, ScrubWindow};
use xatu::nn::pooling::{avg_pool, avg_pool_backward};
use xatu::survival::hazard::{rolling_survival, survival_curve};
use xatu::survival::safe_loss::safe_loss_and_grad;

proptest! {
    /// Survival curves are monotone non-increasing and live in (0, 1].
    #[test]
    fn survival_monotone(hazards in proptest::collection::vec(0.0f64..3.0, 1..64)) {
        let s = survival_curve(&hazards);
        prop_assert!(s.windows(2).all(|w| w[1] <= w[0] + 1e-15));
        prop_assert!(s.iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    /// Rolling survival always dominates the unbounded curve (dropping old
    /// hazards can only raise survival).
    #[test]
    fn rolling_dominates_cumulative(
        hazards in proptest::collection::vec(0.0f64..3.0, 1..64),
        window in 1usize..16,
    ) {
        let full = survival_curve(&hazards);
        let rolled = rolling_survival(&hazards, window);
        for (r, f) in rolled.iter().zip(&full) {
            prop_assert!(*r >= *f - 1e-12);
        }
    }

    /// The SAFE loss is finite and its gradient sign matches the label:
    /// non-positive for attacks (push hazards up), exactly 1 for censored.
    #[test]
    fn safe_loss_gradient_signs(
        hazards in proptest::collection::vec(0.0f64..2.0, 1..40),
        attack in any::<bool>(),
    ) {
        let t_i = hazards.len();
        let r = safe_loss_and_grad(&hazards, attack, t_i);
        prop_assert!(r.loss.is_finite());
        for g in &r.dl_dhazard {
            if attack {
                prop_assert!(*g <= 0.0);
            } else {
                prop_assert!(*g == 1.0);
            }
        }
    }

    /// Average pooling preserves the global mean for exact windows and its
    /// backward distributes exactly the incoming gradient mass.
    #[test]
    fn pooling_mass_conservation(
        len in 1usize..40,
        dim in 1usize..8,
        window in 1usize..10,
    ) {
        let series: Vec<Vec<f64>> = (0..len)
            .map(|t| (0..dim).map(|k| (t * dim + k) as f64 * 0.37).collect())
            .collect();
        let pooled = avg_pool(&series, window);
        prop_assert_eq!(pooled.len(), len.div_ceil(window));
        let d_pooled: Vec<Vec<f64>> = pooled.iter().map(|f| vec![1.0; f.len()]).collect();
        let back = avg_pool_backward(&d_pooled, len, window);
        // Each original frame's gradient sums to dim / chunk_len; total mass
        // equals the pooled gradient mass.
        let total_back: f64 = back.iter().flatten().sum();
        let total_up: f64 = d_pooled.iter().flatten().sum();
        prop_assert!((total_back - total_up).abs() < 1e-9);
    }

    /// Area integration: B ≤ A always, and effectiveness/overhead are
    /// non-negative and finite when A > 0.
    #[test]
    fn area_invariants(
        volume in proptest::collection::vec(0.0f64..1e6, 4..64),
        onset_frac in 0.0f64..1.0,
        det_frac in 0.0f64..1.0,
    ) {
        let n = volume.len() as u32;
        let onset = (onset_frac * (n - 2) as f64) as u32;
        let end = n;
        let det = onset.saturating_sub(5) + (det_frac * 10.0) as u32;
        let areas = integrate_areas(
            &volume,
            0,
            onset,
            end,
            &[ScrubWindow { start: det, end }],
        );
        prop_assert!(areas.b <= areas.a + 1e-9);
        prop_assert!(areas.effectiveness() >= 0.0 && areas.effectiveness() <= 1.0);
        if areas.a > 0.0 {
            prop_assert!(areas.overhead().is_finite());
            prop_assert!(areas.overhead() >= 0.0);
        }
    }
}
