//! Thread-count invariance: every parallel layer (minibatch training,
//! feature extraction, FastNetMon replay, calibration sweep) must produce
//! bit-identical results whether it runs on one thread or many. These
//! tests pin that contract by running the same seeded work at
//! `threads = 1` and `threads = 4` and comparing raw `f64` bit patterns —
//! no tolerances, no "close enough".

use xatu::core::config::XatuConfig;
use xatu::core::model::XatuModel;
use xatu::core::pipeline::{Pipeline, PipelineConfig};
use xatu::core::sample::{Sample, SampleMeta};
use xatu::core::trainer::train;
use xatu::features::frame::{offsets, NUM_FEATURES};
use xatu::netflow::addr::Ipv4;
use xatu::netflow::attack::AttackType;
use xatu::nn::Params;

fn train_cfg(threads: usize) -> XatuConfig {
    XatuConfig {
        timescales: (1, 3, 6),
        short_len: 8,
        medium_len: 6,
        long_len: 4,
        window: 6,
        hidden: 6,
        epochs: 12,
        batch_size: 4,
        lr: 2e-2,
        threads,
        ..XatuConfig::smoke_test()
    }
}

/// A small labelled dataset with signal in one A2 feature — enough to make
/// gradients non-trivial so reduction-order bugs cannot hide behind zeros.
fn dataset(c: &XatuConfig, n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let label = i % 2 == 0;
            let frame = |a2: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[offsets::A2] = a2;
                f[0] = 0.3 + 0.1 * (i % 3) as f32;
                f
            };
            let hot = if label { 1.2 } else { 0.0 };
            Sample {
                short: vec![frame(hot); c.short_len],
                medium: vec![frame(hot); c.medium_len],
                long: vec![frame(0.0); c.long_len],
                window: vec![frame(hot); c.window],
                label,
                event_step: c.window,
                anomaly_step: label.then_some(2),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            }
        })
        .collect()
}

fn params_bits(model: &mut XatuModel) -> Vec<u64> {
    let n = model.param_count();
    let mut buf = vec![0.0f64; n];
    model.export_params_into(&mut buf);
    buf.into_iter().map(f64::to_bits).collect()
}

#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let run = |threads: usize| {
        let cfg = train_cfg(threads);
        let samples = dataset(&cfg, 12);
        let mut model = XatuModel::new(&cfg);
        let stats = train(&mut model, &samples, &cfg).expect("training succeeds");
        (params_bits(&mut model), stats)
    };
    let (p1, s1) = run(1);
    let (p4, s4) = run(4);
    assert_eq!(p1, p4, "trained parameters diverge between 1 and 4 threads");
    for (a, b) in s1.iter().zip(&s4) {
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        assert_eq!(a.mean_grad_norm.to_bits(), b.mean_grad_norm.to_bits());
    }
}

#[test]
fn prepare_is_bitwise_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = PipelineConfig::smoke_test(11);
        cfg.with_fnm = true;
        cfg.xatu.threads = threads;
        Pipeline::new(cfg).prepare()
    };
    let mut a = run(1);
    let mut b = run(4);

    assert_eq!(a.cdet_alerts, b.cdet_alerts, "CDet alert streams diverge");
    assert_eq!(a.fnm_alerts, b.fnm_alerts, "FastNetMon alert streams diverge");
    assert_eq!(a.ground_truth.len(), b.ground_truth.len());
    for (x, y) in a.ground_truth.iter().zip(&b.ground_truth) {
        assert_eq!(format!("{x:?}"), format!("{y:?}"));
    }

    assert_eq!(a.models.len(), b.models.len());
    for ((ty_a, ma), (ty_b, mb)) in a.models.iter_mut().zip(b.models.iter_mut()) {
        assert_eq!(ty_a, ty_b);
        assert_eq!(
            params_bits(ma),
            params_bits(mb),
            "model parameters for {ty_a:?} diverge between thread counts"
        );
    }

    // Validation scores feed calibration; their summary statistics are a
    // bit-exact fingerprint of the whole phase-B extraction + scoring path.
    let (min_a, mean_a, frac_a) = a.val_score_stats();
    let (min_b, mean_b, frac_b) = b.val_score_stats();
    assert_eq!(min_a.to_bits(), min_b.to_bits());
    assert_eq!(mean_a.to_bits(), mean_b.to_bits());
    assert_eq!(frac_a.to_bits(), frac_b.to_bits());

    // Calibration (the parallel threshold sweep) and the test run must
    // agree too — the report renders every per-system metric.
    let ra = a.evaluate(0.01);
    let rb = b.evaluate(0.01);
    assert_eq!(ra.xatu_thresholds, rb.xatu_thresholds);
    assert_eq!(ra.summary(), rb.summary());
}
