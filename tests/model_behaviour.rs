//! Behavioural integration tests for the learning stack: synthetic worlds
//! where the correct model behaviour is known by construction.

use xatu::core::config::{LossKind, XatuConfig};
use xatu::core::model::XatuModel;
use xatu::core::sample::{Sample, SampleMeta};
use xatu::core::trainer::{score_trajectory, train};
use xatu::features::frame::{offsets, NUM_FEATURES};
use xatu::netflow::addr::Ipv4;
use xatu::netflow::attack::AttackType;

fn cfg() -> XatuConfig {
    XatuConfig {
        timescales: (1, 3, 6),
        short_len: 10,
        medium_len: 6,
        long_len: 4,
        window: 8,
        hidden: 6,
        epochs: 40,
        batch_size: 4,
        lr: 2e-2,
        ..XatuConfig::smoke_test()
    }
}

fn frame(v: f32, a2: f32) -> Vec<f32> {
    let mut f = vec![0.0f32; NUM_FEATURES];
    f[5] = v; // UDP bytes (volumetric)
    f[offsets::A2] = a2;
    f
}

/// A dataset where volume surges appear in BOTH classes, but only attacks
/// couple the surge with A2 (previous-attacker) activity. The model must
/// learn the conjunction — the paper's flash-crowd discrimination story.
fn conjunction_dataset(c: &XatuConfig, n: usize) -> Vec<Sample> {
    let mut out = Vec::new();
    for i in 0..n {
        let label = i % 2 == 0;
        let window: Vec<Vec<f32>> = (0..c.window)
            .map(|t| {
                if t >= 3 {
                    // Surge in both classes; A2 only for attacks.
                    frame(2.0, if label { 1.5 } else { 0.0 })
                } else {
                    frame(0.1, 0.0)
                }
            })
            .collect();
        out.push(Sample {
            short: vec![frame(0.1, 0.0); c.short_len],
            medium: vec![frame(0.1, 0.0); c.medium_len],
            long: vec![frame(0.1, 0.0); c.long_len],
            window,
            label,
            event_step: c.window,
            anomaly_step: label.then_some(4),
            meta: SampleMeta {
                customer: Ipv4(i as u32),
                attack_type: AttackType::UdpFlood,
                window_start: 0,
            },
        });
    }
    out
}

#[test]
fn model_learns_surge_aux_conjunction() {
    let c = cfg();
    let mut model = XatuModel::new(&c);
    let data = conjunction_dataset(&c, 24);
    train(&mut model, &data, &c).expect("training succeeds");
    let mut atk = Vec::new();
    let mut flash = Vec::new();
    for s in &data {
        let traj = score_trajectory(&model, s, LossKind::Survival);
        let v = traj[c.window - 1];
        if s.label {
            atk.push(v);
        } else {
            flash.push(v);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&atk) + 0.25 < mean(&flash),
        "attack S {} vs flash-crowd S {} — conjunction not learned",
        mean(&atk),
        mean(&flash)
    );
}

#[test]
fn survival_mode_detects_earlier_than_event_step() {
    // With the SAFE loss, hazards should already be elevated at the
    // anomaly step, well before the (late) event step.
    let c = cfg();
    let mut model = XatuModel::new(&c);
    let data = conjunction_dataset(&c, 24);
    train(&mut model, &data, &c).expect("training succeeds");
    let attack = data.iter().find(|s| s.label).unwrap();
    let traj = score_trajectory(&model, attack, LossKind::Survival);
    // Survival at the anomaly step +1 is already depressed relative to the
    // pre-anomaly steps.
    assert!(
        traj[4] < traj[1],
        "no early depression: {:?}",
        traj
    );
}

#[test]
fn masked_aux_model_cannot_separate_conjunction() {
    // With A2 masked out, the two classes are identical by construction,
    // so the model must stay near chance — the Fig 12 no-aux story.
    let mut c = cfg();
    c.feature_mask = xatu::features::frame::FeatureMask::volumetric_only();
    let mut model = XatuModel::new(&c);
    let mut data = conjunction_dataset(&c, 24);
    for s in &mut data {
        // Apply the mask to the stored frames, as the pipeline does at
        // extraction time.
        for f in s
            .short
            .iter_mut()
            .chain(s.medium.iter_mut())
            .chain(s.long.iter_mut())
            .chain(s.window.iter_mut())
        {
            for v in f[offsets::A2..offsets::A3].iter_mut() {
                *v = 0.0;
            }
        }
    }
    train(&mut model, &data, &c).expect("training succeeds");
    let mut atk = Vec::new();
    let mut flash = Vec::new();
    for s in &data {
        let traj = score_trajectory(&model, s, LossKind::Survival);
        let v = traj[c.window - 1];
        if s.label {
            atk.push(v);
        } else {
            flash.push(v);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        (mean(&atk) - mean(&flash)).abs() < 0.15,
        "identical inputs must not separate: {} vs {}",
        mean(&atk),
        mean(&flash)
    );
}
