//! Fault-injected streaming: the degradation and crash-safety contract.
//!
//! Three layers of assurance:
//!
//! 1. Every built-in fault schedule — collector outages, per-customer
//!    gaps, duplicated/late flows, sampling renegotiation, CDet feed
//!    dropouts, and all of them at once — streams end to end through
//!    [`run_faulted`] producing a finite score for every customer-minute.
//!    No panic, no NaN, no silently skipped minute.
//! 2. Checkpoint → kill → resume reproduces the uninterrupted run's
//!    scores bit for bit (0 ULP), at 1 and 4 threads, in any
//!    crash/resume thread-count combination.
//! 3. A property test drives the online detector directly with arbitrary
//!    seeded presence patterns and adversarial frame values (spikes,
//!    zeros, NaN, ±∞): outputs stay finite, out-of-order input is a typed
//!    error, and internal state never poisons later minutes.

use xatu::core::config::XatuConfig;
use xatu::core::faulted::{run_faulted, FaultReport, FaultedRunConfig, RunControl};
use xatu::core::fusion::{ErrorNormalizer, FusionMode};
use xatu::core::model::XatuModel;
use xatu::core::online::{Companion, OnlineDetector};
use xatu::core::XatuError;
use xatu::features::frame::{NUM_FEATURES, VOLUMETRIC_WIDTH};
use xatu::netflow::addr::Ipv4;
use xatu::netflow::attack::AttackType;
use xatu::nn::init::Initializer;
use xatu::nn::LstmAutoencoder;
use xatu::simnet::{FaultSchedule, World, WorldConfig, BUILTIN_SCHEDULES};

use proptest::prelude::*;

/// A one-day, four-customer world: big enough for every fault window in
/// the built-in schedules, small enough to stream in seconds.
fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        n_customers: 4,
        days: 1,
        ..WorldConfig::smoke_test(seed)
    }
}

fn run_cfg(seed: u64, threads: usize, schedule: FaultSchedule) -> FaultedRunConfig {
    FaultedRunConfig {
        world: world_cfg(seed),
        xatu: XatuConfig {
            seed: seed.wrapping_add(1),
            threads,
            ..XatuConfig::smoke_test()
        },
        schedule,
        cdet_silence_limit: 10,
        companion: None,
    }
}

fn run(cfg: &FaultedRunConfig, control: RunControl<'_>) -> FaultReport {
    let model = XatuModel::new(&cfg.xatu);
    run_faulted(model, AttackType::UdpFlood, 0.5, cfg, control).expect("faulted run")
}

/// A companion whose normalizer scores every reconstruction error 0: the
/// fused score during full degradation is the autoencoder pseudo-survival
/// `1.0`, so these tests exercise the complete fusion path — rings,
/// scoring, ladder transitions, re-warm-up — with a deterministic,
/// training-free signal.
fn neutral_companion(window: usize) -> Companion {
    Companion {
        ae: LstmAutoencoder::new(VOLUMETRIC_WIDTH, 4, &mut Initializer::new(5)),
        norm: ErrorNormalizer::from_benign_errors(&[]),
        mode: FusionMode::MaxCombine,
        window,
    }
}

#[test]
fn every_builtin_schedule_streams_to_completion() {
    let total = World::new(world_cfg(11)).total_minutes();
    for name in BUILTIN_SCHEDULES {
        let schedule = FaultSchedule::builtin(name, total, 4).expect("builtin resolves");
        let report = run(&run_cfg(11, 1, schedule), RunControl::Full);
        assert_eq!(
            report.minutes_recorded, total,
            "schedule {name:?} skipped minutes"
        );
        assert_eq!(report.customers.len(), 4);
        assert!(
            report.all_finite(),
            "schedule {name:?} produced a non-finite survival"
        );
    }
}

#[test]
fn generated_schedules_stream_to_completion() {
    let total = World::new(world_cfg(23)).total_minutes();
    for seed in [0u64, 1, 2] {
        let schedule = FaultSchedule::generate(seed, total, 4);
        let report = run(&run_cfg(23, 2, schedule), RunControl::Full);
        assert_eq!(report.minutes_recorded, total, "seed {seed} skipped minutes");
        assert!(report.all_finite(), "seed {seed} produced non-finite survival");
    }
}

#[test]
fn kill_and_resume_is_bit_identical_across_thread_counts() {
    let total = World::new(world_cfg(42)).total_minutes();
    let schedule = FaultSchedule::builtin("everything", total, 4).expect("builtin resolves");
    let at = total / 2;
    let reference = run(&run_cfg(42, 1, schedule.clone()), RunControl::Full);
    assert!(reference.all_finite());

    let mut path = std::env::temp_dir();
    path.push(format!("xatu_ft_resume_{}", std::process::id()));

    // Crash at 4 threads, resume at both 1 and 4: every combination must
    // reproduce the single-threaded uninterrupted run exactly.
    let killed = run(
        &run_cfg(42, 4, schedule.clone()),
        RunControl::CheckpointAt {
            minute: at,
            path: &path,
            kill: true,
        },
    );
    assert_eq!(killed.minutes_recorded, at + 1);
    // The pre-crash prefix already matches the reference bit for bit.
    let n = killed.survivals.len();
    assert_eq!(bits(&killed.survivals), bits(&reference.survivals[..n]));

    for threads in [1usize, 4] {
        let resumed = run(
            &run_cfg(42, threads, schedule.clone()),
            RunControl::ResumeFrom { path: &path },
        );
        assert_eq!(resumed.first_minute, at + 1);
        assert_eq!(
            bits(&resumed.survivals),
            bits(&reference.survivals[n..]),
            "resume at {threads} threads diverged from the uninterrupted run"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cdet_flap_does_not_oscillate_the_ladder_or_alerts() {
    let total = World::new(world_cfg(31)).total_minutes();
    let schedule = FaultSchedule::builtin("cdet_flap", total, 4).expect("builtin resolves");
    let flaps = schedule.windows.len();
    assert!(flaps >= 4, "flap schedule too small to exercise hysteresis");

    let mut clean_cfg = run_cfg(31, 1, FaultSchedule::clean());
    clean_cfg.companion = Some(neutral_companion(clean_cfg.xatu.window));
    let clean = run(&clean_cfg, RunControl::Full);

    let mut flap_cfg = run_cfg(31, 1, schedule);
    flap_cfg.companion = Some(neutral_companion(flap_cfg.xatu.window));
    let flap = run(&flap_cfg, RunControl::Full);
    assert_eq!(flap.minutes_recorded, total);
    assert!(flap.all_finite());

    if xatu::obs::enabled() {
        // The ladder engages exactly once per down window and recovers
        // once per flap — no intra-flap chatter.
        assert_eq!(flap.counts.fusion_engaged, flaps as u64, "{:?}", flap.counts);
        assert_eq!(flap.counts.fusion_recovered, flaps as u64, "{:?}", flap.counts);
        assert!(flap.counts.fusion_ae_minutes > 0);
        assert!(flap.counts.degraded_feature_minutes > 0);
    }
    // Hysteresis: the quiet-period and re-warm-up ramp must absorb the
    // flapping. An oscillating ladder would raise (and end) an alert on
    // every cycle; the flap run may differ from the clean run, but not by
    // anything close to one alert per flap.
    let raised_clean = clean.alerts.len();
    let raised_flap = flap.alerts.len();
    assert!(
        raised_flap.saturating_sub(raised_clean) < flaps / 2,
        "alerts oscillated with the feed: clean {raised_clean}, flap {raised_flap}, flaps {flaps}"
    );
}

#[test]
fn fused_runs_are_bit_identical_across_thread_counts() {
    let total = World::new(world_cfg(53)).total_minutes();
    let schedule = FaultSchedule::builtin("cdet_dropout", total, 4).expect("builtin resolves");
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = run_cfg(53, threads, schedule.clone());
        cfg.companion = Some(neutral_companion(cfg.xatu.window));
        reports.push(run(&cfg, RunControl::Full));
    }
    let [one, four] = &reports[..] else { unreachable!() };
    assert!(one.all_finite());
    if xatu::obs::enabled() {
        assert!(one.counts.fusion_engaged > 0, "{:?}", one.counts);
        assert_eq!(one.counts, four.counts);
    }
    assert_eq!(
        bits(&one.survivals),
        bits(&four.survivals),
        "fused survivals diverged across thread counts"
    );
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// xorshift64*, so the property test's "arbitrary" stream is a pure
/// function of the proptest-chosen seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

proptest! {
    /// The online detector survives an arbitrary seeded stream of gaps,
    /// bursts, cold restarts and adversarial frame values without ever
    /// reporting a non-finite score or panicking.
    #[test]
    fn detector_survives_arbitrary_degraded_streams(seed in any::<u64>()) {
        let cfg = XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 4,
            ..XatuConfig::smoke_test()
        };
        let mut det = OnlineDetector::new(
            XatuModel::new(&cfg),
            AttackType::TcpSyn,
            0.5,
            &cfg,
        );
        let mut rng = seed | 1;
        let mut minute = 0u32;
        for _ in 0..300 {
            let roll = next(&mut rng);
            // Jump 1..=40 minutes: mostly contiguous, sometimes an
            // imputable gap, occasionally past the cold-restart horizon.
            minute += 1 + (roll % 40).pow(2) as u32 / 40;
            let customer = Ipv4((roll >> 8) as u32 % 3);
            if roll.is_multiple_of(5) {
                let (h, s, _) = det
                    .observe_gap(customer, minute)
                    .expect("monotone minutes");
                prop_assert!(h.is_finite() && s.is_finite());
            } else {
                let mut frame = vec![0.0f64; NUM_FEATURES];
                for slot in frame.iter_mut() {
                    let v = next(&mut rng);
                    *slot = match v % 7 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        3 => -1.0e12,
                        4 => 1.0e12,
                        5 => 0.0,
                        _ => (v % 1000) as f64 / 250.0,
                    };
                }
                let (h, s, _) = det
                    .observe(customer, minute, &frame)
                    .expect("monotone minutes");
                prop_assert!(h.is_finite() && s.is_finite(), "minute {minute}: {h} {s}");
            }
            prop_assert!(det.survival_of(customer).is_finite());
        }
        // Replaying an old minute is a typed error, not a panic, and must
        // leave the stream usable.
        det.observe_gap(Ipv4(0), minute + 1)
            .expect("monotone minutes");
        let err = det.observe_gap(Ipv4(0), 0).unwrap_err();
        prop_assert!(matches!(err, XatuError::OutOfOrderMinute { .. }));
        let (_, s, _) = det
            .observe_gap(Ipv4(0), minute + 2)
            .expect("stream still usable after rejected input");
        prop_assert!(s.is_finite());
    }
}
