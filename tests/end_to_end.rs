//! Integration tests spanning every crate: simulate → detect → extract →
//! train → calibrate → evaluate, plus determinism and failure injection.

use xatu::core::pipeline::{Pipeline, PipelineConfig};
use xatu::simnet::{scenario, World};

#[test]
fn pipeline_end_to_end_smoke() {
    let report = Pipeline::new(PipelineConfig::smoke_test(3)).run();
    let netscout = report.system("NetScout").expect("netscout evaluated");
    let xatu = report.system("Xatu").expect("xatu evaluated");
    // Every metric well-formed.
    for v in netscout
        .effectiveness_values()
        .iter()
        .chain(xatu.effectiveness_values().iter())
    {
        assert!((0.0..=1.0).contains(v), "effectiveness {v}");
    }
    for r in netscout.overhead.ratios() {
        assert!(r >= 0.0 && r.is_finite());
    }
    // The labelling CDet detects its own ground truth by construction.
    assert_eq!(netscout.detected, netscout.delay.total());
}

#[test]
fn pipeline_is_deterministic() {
    let a = Pipeline::new(PipelineConfig::smoke_test(9)).run();
    let b = Pipeline::new(PipelineConfig::smoke_test(9)).run();
    assert_eq!(a.gt_test.len(), b.gt_test.len());
    assert_eq!(a.xatu_thresholds.len(), b.xatu_thresholds.len());
    for ((ty_a, th_a), (ty_b, th_b)) in a.xatu_thresholds.iter().zip(&b.xatu_thresholds) {
        assert_eq!(ty_a, ty_b);
        assert_eq!(th_a, th_b);
    }
    let ea: Vec<f64> = a.system("Xatu").unwrap().effectiveness_values();
    let eb: Vec<f64> = b.system("Xatu").unwrap().effectiveness_values();
    assert_eq!(ea, eb);
}

#[test]
fn benign_only_world_produces_no_ground_truth() {
    let mut cfg = PipelineConfig::smoke_test(4);
    cfg.world.n_chains = 0;
    // Keep the benign world tame: CDet is the label source, so any benign
    // false alarm *becomes* ground truth by construction. Flash crowds and
    // the heavy tail of customer sizes (lumpy per-signature traffic from a
    // +2σ customer can sustain NetScout's absolute floor) are genuine
    // false-alarm modes — the paper's premise — and whether one fires in a
    // given window is a coin flip of the RNG stream. The property under
    // test ("no attacks → no events") is only guaranteed without them.
    cfg.world.flash_crowd_prob = 0.0;
    cfg.world.benign_sigma = 0.5;
    let prepared = Pipeline::new(cfg).prepare();
    assert!(prepared.ground_truth.is_empty(), "no attacks → no events");
    assert!(prepared.models.is_empty(), "nothing to train on");
    // Evaluation still works and reports empty systems.
    let report = prepared.evaluate(0.01);
    assert_eq!(report.gt_test.len(), 0);
}

#[test]
fn no_prep_attacker_still_detected_by_cdet() {
    let mut cfg = PipelineConfig::smoke_test(5);
    cfg.world.prep_intensity = 0.0;
    let prepared = Pipeline::new(cfg).prepare();
    // The volumetric CDet does not rely on auxiliary signals at all.
    assert!(
        !prepared.cdet_alerts.is_empty(),
        "CDet must detect prep-silent attacks"
    );
}

#[test]
fn worlds_with_different_seeds_schedule_different_attacks() {
    let a = World::new(scenario::sweep(1));
    let b = World::new(scenario::sweep(2));
    let onsets_a: Vec<u32> = a.events().iter().map(|e| e.onset).collect();
    let onsets_b: Vec<u32> = b.events().iter().map(|e| e.onset).collect();
    assert_ne!(onsets_a, onsets_b);
}

#[test]
fn table2_is_consistent_with_split() {
    let prepared = Pipeline::new(PipelineConfig::smoke_test(6)).prepare();
    let split = prepared.split();
    let t2 = prepared.table2;
    let train: usize = t2.counts.iter().map(|r| r[0]).sum();
    let alerts_in_train = prepared
        .cdet_alerts
        .iter()
        .filter(|a| a.detected_at < split.train_end)
        .count();
    assert_eq!(train, alerts_in_train);
}
