//! Cross-crate substrate tests: the pieces below the pipeline must agree
//! with each other (simulator ↔ detectors ↔ features ↔ metrics).

use std::collections::HashMap;
use xatu::core::eval::VolumeStore;
use xatu::detectors::netscout::NetScout;
use xatu::detectors::traits::{Detector, DetectorEvent, MinuteObservation};
use xatu::features::blocklist::BlocklistCategory;
use xatu::features::table1::FeatureExtractor;
use xatu::netflow::attack::AttackType;
use xatu::simnet::{World, WorldConfig};

/// The simulator's blocklist feed must light up the extractor's A1 block
/// during attacks conducted by blocklisted botnet members.
#[test]
fn blocklist_feed_reaches_a1_features() {
    let mut world = World::new(WorldConfig::smoke_test(13));
    let mut ex = FeatureExtractor::new();
    for (cat, subnet) in world.blocklist_feed() {
        ex.blocklists.add(BlocklistCategory::ALL[cat], subnet);
    }
    for (prefix, asn) in world.routed_prefixes() {
        ex.spoof.announce(prefix, asn);
    }
    ex.spoof.build();

    let events: Vec<_> = world.events().to_vec();
    assert!(!events.is_empty());
    let mut saw_a1_during_attack = false;
    while !world.finished() {
        let bins = world.step();
        let minute = bins[0].minute;
        for bin in &bins {
            let in_attack = events
                .iter()
                .any(|e| e.victim == bin.customer && minute >= e.onset && minute < e.end);
            if !in_attack {
                continue;
            }
            let frame = ex.extract(bin);
            if frame.aux_block(1).iter().any(|&v| v > 0.0) {
                saw_a1_during_attack = true;
            }
        }
        if saw_a1_during_attack {
            break;
        }
    }
    assert!(saw_a1_during_attack, "A1 never fired during any attack");
}

/// The CDet must detect a decent share of the simulator's scheduled
/// attacks — otherwise there is no label source and the whole premise
/// collapses.
#[test]
fn cdet_detects_most_scheduled_attacks() {
    let mut world = World::new(WorldConfig::smoke_test(17));
    let scheduled = world.events().len();
    assert!(scheduled > 0);
    let total = world.total_minutes();
    let mut volumes = VolumeStore::new(total);
    let mut netscout = NetScout::new();
    let mut raised = 0usize;
    while !world.finished() {
        let bins = world.step();
        let minute = bins[0].minute;
        for bin in &bins {
            volumes.record(bin);
            for ty in AttackType::ALL {
                let bytes = volumes.bytes_at(bin.customer, ty, minute);
                if bytes == 0.0 {
                    continue;
                }
                let obs = MinuteObservation {
                    minute,
                    customer: bin.customer,
                    attack_type: ty,
                    bytes,
                    packets: volumes.packets_at(bin.customer, ty, minute),
                };
                raised += netscout
                    .observe(&obs)
                    .iter()
                    .filter(|e| matches!(e, DetectorEvent::Raised(_)))
                    .count();
            }
        }
    }
    // Many attacks are too small or too short for a conservative CDet —
    // that is the paper's whole premise — but a meaningful share must be
    // caught or there is no label stream at all.
    assert!(
        raised * 3 >= scheduled,
        "CDet raised {raised} alerts for {scheduled} scheduled attacks"
    );
}

/// Signature volumes recorded by the store must equal a direct per-flow
/// tally over the same stream.
#[test]
fn volume_store_matches_direct_tally() {
    let mut world = World::new(WorldConfig::smoke_test(19));
    let total = world.total_minutes();
    let mut volumes = VolumeStore::new(total);
    let mut direct: HashMap<(u32, u32), f64> = HashMap::new(); // (cust, minute)
    let sig = AttackType::UdpFlood.signature();
    for _ in 0..200 {
        let bins = world.step();
        for bin in &bins {
            volumes.record(bin);
            let v: f64 = bin
                .flows
                .iter()
                .filter(|f| sig.matches(f))
                .map(|f| f.est_bytes() as f64)
                .sum();
            if v > 0.0 {
                direct.insert((bin.customer.0, bin.minute), v);
            }
        }
    }
    for (&(cust, minute), &v) in &direct {
        let got = volumes.bytes_at(xatu::netflow::addr::Ipv4(cust), AttackType::UdpFlood, minute);
        assert!((got - v).abs() < 1e-6, "mismatch at {cust}:{minute}");
    }
}

/// The spoof classifier and blocklists must agree with the address-plan
/// invariants the simulator guarantees.
#[test]
fn address_plan_invariants() {
    let world = World::new(WorldConfig::smoke_test(23));
    let mut ex = FeatureExtractor::new();
    for (prefix, asn) in world.routed_prefixes() {
        ex.spoof.announce(prefix, asn);
    }
    ex.spoof.build();
    // Benign space is routed; unannounced 90/8 is spoofed; RFC1918 bogon.
    use xatu::features::spoof::SpoofReason;
    use xatu::netflow::addr::Ipv4;
    assert_eq!(ex.spoof.classify(Ipv4::from_octets(30, 1, 2, 3), None), None);
    assert_eq!(
        ex.spoof.classify(Ipv4::from_octets(90, 1, 2, 3), None),
        Some(SpoofReason::Unrouted)
    );
    assert_eq!(
        ex.spoof.classify(Ipv4::from_octets(10, 1, 2, 3), None),
        Some(SpoofReason::Bogon)
    );
    // Every blocklist entry is inside botnet space.
    for (_, subnet) in world.blocklist_feed() {
        assert_eq!(subnet.base().octets()[0], 60);
    }
}
