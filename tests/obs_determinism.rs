//! Telemetry determinism: the obs snapshot of a full pipeline run —
//! counters, gauges, histograms and the event sequence — must be
//! bit-identical whether the parallel layers run on one thread or many.
//! Wall-clock spans and volatile (alloc) counters are exempt from the
//! digest by design; everything else is covered.

use xatu::core::pipeline::{Pipeline, PipelineConfig};
use xatu::obs::Snapshot;

fn run_snapshot(threads: usize) -> Snapshot {
    // Seed 9 is a smoke world where a survival model actually trains and
    // the online detector raises an alert, so every instrumented layer
    // (simnet, features, trainer, detector, calibration) contributes to
    // the snapshot being compared.
    let mut cfg = PipelineConfig::smoke_test(9);
    cfg.with_fnm = true;
    cfg.xatu.threads = threads;
    Pipeline::new(cfg).prepare().evaluate(0.01).obs
}

#[test]
fn pipeline_telemetry_digest_is_identical_across_thread_counts() {
    let s1 = run_snapshot(1);
    let s4 = run_snapshot(4);

    assert_eq!(
        s1.digest(),
        s4.digest(),
        "telemetry digest diverges between 1 and 4 threads"
    );

    // The digest equality above is the contract; these section-level
    // comparisons exist to localize a failure if it ever regresses.
    assert_eq!(s1.counters, s4.counters, "counter section diverges");
    assert_eq!(s1.histograms, s4.histograms, "histogram section diverges");
    assert_eq!(s1.events, s4.events, "event sequence diverges");
    for ((na, ga), (nb, gb)) in s1.gauges.iter().zip(&s4.gauges) {
        assert_eq!(na, nb);
        assert_eq!(ga.to_bits(), gb.to_bits(), "gauge {na} diverges");
    }

    // The run actually recorded something from every instrumented layer.
    for name in [
        "simnet.flows_emitted",
        "features.frames_phase_a",
        "features.frames_phase_b",
        "train.samples",
        "train.batches",
        "online.alerts_raised",
    ] {
        assert!(s1.counter(name) > 0, "counter {name} not recorded");
    }
    assert!(
        s1.events.iter().any(|e| e.kind == "train.epoch"),
        "no train.epoch events recorded"
    );
    assert!(
        s1.histogram("online.survival").is_some_and(|h| h.count > 0),
        "survival histogram not populated"
    );
}

#[test]
fn wall_and_volatile_sections_do_not_enter_the_digest() {
    let mut a = run_snapshot(1);
    let digest = a.digest();
    // Perturbing the digest-exempt sections must not move the digest;
    // perturbing a counter must.
    a.wall.clear();
    a.volatile.push(("synthetic.allocs".into(), 123));
    assert_eq!(a.digest(), digest, "wall/volatile leaked into the digest");
    a.counters.push(("synthetic.counter".into(), 1));
    assert_ne!(a.digest(), digest, "counters must be digested");
}
