//! A FastNetMon-style dynamic-threshold detector.
//!
//! The paper's second baseline CDet: an open-source, NetFlow-driven
//! threshold system "configured with the best dynamic thresholds in
//! production". Compared to the commercial detector it reacts faster
//! (shorter confirmation) and uses mean+k·σ dynamic thresholds ("ban
//! thresholds") over a sliding statistics window, at the price of a
//! slightly higher base threshold floor on packets as well as bytes.

use crate::alert::Alert;
use crate::traits::{Detector, DetectorEvent, MinuteObservation};
use std::collections::HashMap;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;

/// Tunables for the FastNetMon-style detector.
#[derive(Clone, Copy, Debug)]
pub struct FastNetMonConfig {
    /// Sliding statistics window length (minutes).
    pub window: usize,
    /// Threshold = mean + `k_sigma`·σ over the window.
    pub k_sigma: f64,
    /// Absolute byte-rate floor (bytes/minute).
    pub floor_bytes: f64,
    /// Absolute packet-rate floor (packets/minute).
    pub floor_packets: f64,
    /// Consecutive anomalous minutes required to "ban" (alert).
    pub sustain: u32,
    /// Consecutive quiet minutes required to "unban" (end mitigation).
    pub quiet: u32,
}

impl Default for FastNetMonConfig {
    fn default() -> Self {
        FastNetMonConfig {
            window: 60,
            k_sigma: 12.0,
            floor_bytes: 3.0e6,
            floor_packets: 2.0e3,
            sustain: 2,
            quiet: 4,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct CellState {
    history: Vec<f64>, // ring of byte volumes
    head: usize,
    above: u32,
    below: u32,
    active: Option<Alert>,
}

impl CellState {
    fn stats(&self) -> (f64, f64) {
        if self.history.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.history.len() as f64;
        let mean = self.history.iter().sum::<f64>() / n;
        let var = self
            .history
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    fn learn(&mut self, window: usize, bytes: f64) {
        if self.history.len() < window {
            self.history.push(bytes);
        } else {
            self.history[self.head] = bytes;
            self.head = (self.head + 1) % window;
        }
    }
}

/// The FastNetMon-style detector.
#[derive(Debug, Default)]
pub struct FastNetMon {
    cfg: FastNetMonConfig,
    cells: HashMap<(Ipv4, AttackType), CellState>,
}

impl FastNetMon {
    /// Creates a detector with default tuning.
    pub fn new() -> Self {
        Self::with_config(FastNetMonConfig::default())
    }

    /// Creates a detector with explicit tuning.
    pub fn with_config(cfg: FastNetMonConfig) -> Self {
        FastNetMon {
            cfg,
            cells: HashMap::new(),
        }
    }
}

impl Detector for FastNetMon {
    fn observe(&mut self, obs: &MinuteObservation) -> Vec<DetectorEvent> {
        let cfg = self.cfg;
        let cell = self
            .cells
            .entry((obs.customer, obs.attack_type))
            .or_default();
        let mut events = Vec::new();

        let (mean, std) = cell.stats();
        let dynamic = mean + cfg.k_sigma * std;
        let anomalous = (obs.bytes > cfg.floor_bytes.max(dynamic)
            && obs.packets > cfg.floor_packets)
            // Until stats warm up, rely on the absolute floors alone.
            || (cell.history.len() < 5 && obs.bytes > 10.0 * cfg.floor_bytes);

        match cell.active {
            None => {
                if anomalous {
                    cell.above += 1;
                    if cell.above >= cfg.sustain {
                        let alert = Alert {
                            customer: obs.customer,
                            attack_type: obs.attack_type,
                            detected_at: obs.minute,
                            mitigation_end: None,
                        };
                        cell.active = Some(alert);
                        cell.below = 0;
                        events.push(DetectorEvent::Raised(alert));
                    }
                } else {
                    cell.above = 0;
                    cell.learn(cfg.window, obs.bytes);
                }
            }
            Some(mut alert) => {
                if anomalous {
                    cell.below = 0;
                } else {
                    cell.below += 1;
                    if cell.below >= cfg.quiet {
                        alert.mitigation_end = Some(obs.minute);
                        cell.active = None;
                        cell.above = 0;
                        events.push(DetectorEvent::Ended(alert));
                    }
                }
            }
        }
        events
    }

    fn name(&self) -> &'static str {
        "FastNetMon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(minute: u32, bytes: f64) -> MinuteObservation {
        MinuteObservation {
            minute,
            customer: Ipv4(1),
            attack_type: AttackType::UdpFlood,
            bytes,
            packets: bytes / 500.0,
        }
    }

    fn run(det: &mut FastNetMon, series: &[f64]) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for (m, &b) in series.iter().enumerate() {
            events.extend(det.observe(&obs(m as u32, b)));
        }
        events
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let mut det = FastNetMon::new();
        assert!(run(&mut det, &vec![1e5; 200]).is_empty());
    }

    #[test]
    fn fnm_alerts_faster_than_netscout() {
        let mut fnm = FastNetMon::new();
        let mut ns = crate::netscout::NetScout::new();
        let mut series = vec![1e5; 60];
        series.extend(vec![1e8; 20]);
        let fnm_events = run(&mut fnm, &series);
        let mut ns_events = Vec::new();
        for (m, &b) in series.iter().enumerate() {
            ns_events.extend(ns.observe(&obs(m as u32, b)));
        }
        let raised_minute = |evs: &[DetectorEvent]| {
            evs.iter().find_map(|e| match e {
                DetectorEvent::Raised(a) => Some(a.detected_at),
                _ => None,
            })
        };
        let fm = raised_minute(&fnm_events).expect("fnm raised");
        let nm = raised_minute(&ns_events).expect("ns raised");
        // NetScout's fast path can tie FNM on violent floods, but FNM is
        // never slower.
        assert!(fm <= nm, "fnm={fm} ns={nm}");
    }

    #[test]
    fn packet_floor_suppresses_byte_only_spikes() {
        let mut det = FastNetMon::new();
        // Huge bytes but almost no packets (e.g. a few giant flows).
        let mut events = Vec::new();
        for m in 0..60 {
            events.extend(det.observe(&MinuteObservation {
                packets: 1.0,
                ..obs(m, 1e5)
            }));
        }
        for m in 60..70 {
            events.extend(det.observe(&MinuteObservation {
                packets: 10.0,
                ..obs(m, 1e9)
            }));
        }
        assert!(events.is_empty());
    }

    #[test]
    fn mitigation_lifecycle() {
        let mut det = FastNetMon::new();
        let mut series = vec![1e5; 60];
        series.extend(vec![1e8; 8]);
        series.extend(vec![1e5; 20]);
        let events = run(&mut det, &series);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], DetectorEvent::Raised(_)));
        assert!(matches!(events[1], DetectorEvent::Ended(_)));
    }

    #[test]
    fn dynamic_threshold_adapts_to_noisy_customers() {
        let mut det = FastNetMon::new();
        // Noisy baseline oscillating 1e6..9e6; spikes to 9e6 are normal here.
        let series: Vec<f64> = (0..120)
            .map(|i| if i % 2 == 0 { 1e6 } else { 9e6 })
            .collect();
        let events = run(&mut det, &series);
        assert!(events.is_empty(), "noisy-but-stable traffic must not alert");
    }
}
