//! The streaming detector interface.
//!
//! Every detection system — NetScout-style, FastNetMon-style, and Xatu's
//! online detector in `xatu-core` — consumes the same per-minute,
//! per-customer, per-signature volume observations and emits lifecycle
//! events, so they are interchangeable in the evaluation pipeline.

use crate::alert::Alert;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;

/// A lifecycle event produced by a detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorEvent {
    /// A new attack alert was raised.
    Raised(Alert),
    /// The mitigation-end notice for a previously raised alert.
    Ended(Alert),
}

/// One minute's observation for one (customer, attack-type signature).
#[derive(Clone, Copy, Debug)]
pub struct MinuteObservation {
    /// The minute being observed.
    pub minute: u32,
    /// Customer the traffic targets.
    pub customer: Ipv4,
    /// Attack type whose signature was matched against the traffic.
    pub attack_type: AttackType,
    /// Signature-matching bytes during the minute (sampling-upscaled).
    pub bytes: f64,
    /// Signature-matching packets during the minute.
    pub packets: f64,
}

/// A streaming threshold detector.
pub trait Detector {
    /// Feeds one observation; returns any lifecycle events it triggers.
    fn observe(&mut self, obs: &MinuteObservation) -> Vec<DetectorEvent>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_is_copy_and_debuggable() {
        let obs = MinuteObservation {
            minute: 5,
            customer: Ipv4(1),
            attack_type: AttackType::UdpFlood,
            bytes: 100.0,
            packets: 10.0,
        };
        let copy = obs;
        assert_eq!(copy.minute, obs.minute);
        assert!(format!("{obs:?}").contains("UdpFlood"));
    }
}
