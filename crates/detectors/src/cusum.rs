//! CUSUM change-point statistic (Appendix A).
//!
//! The paper uses CUSUM retrospectively to mark the ground-truth anomaly
//! start: given a CDet alert, estimate the mean/stddev of
//! signature-matching bytes from the hour *before* the alert, normalize
//! each observation as `Z_i = (x_i − μ − NUMSTD·σ) / σ`, accumulate
//! `S_n = max(0, S_{n−1} + Z_n)`, and call the first minute where the
//! cumulative sum crosses a threshold the anomaly onset. NUMSTD is 1 for
//! UDP and DNS-amplification attacks and 0.5 for the TCP and ICMP types.

use xatu_netflow::attack::AttackType;

/// A running CUSUM accumulator.
#[derive(Clone, Debug)]
pub struct Cusum {
    mean: f64,
    std: f64,
    numstd: f64,
    s: f64,
}

impl Cusum {
    /// Creates an accumulator calibrated to a baseline `mean`/`std` and the
    /// slack multiplier `numstd`. A zero `std` is clamped to a small epsilon
    /// so constant baselines still work.
    pub fn new(mean: f64, std: f64, numstd: f64) -> Self {
        Cusum {
            mean,
            std: std.max(1e-9),
            numstd,
            s: 0.0,
        }
    }

    /// Feeds one observation; returns the updated cumulative sum.
    pub fn push(&mut self, x: f64) -> f64 {
        let z = (x - self.mean - self.numstd * self.std) / self.std;
        self.s = (self.s + z).max(0.0);
        self.s
    }

    /// Current cumulative sum.
    pub fn value(&self) -> f64 {
        self.s
    }

    /// Resets the statistic to zero.
    pub fn reset(&mut self) {
        self.s = 0.0;
    }
}

/// The NUMSTD parameter per attack type (Appendix A).
pub fn numstd_for(ty: AttackType) -> f64 {
    match ty {
        AttackType::UdpFlood | AttackType::DnsAmplification => 1.0,
        AttackType::TcpAck | AttackType::TcpSyn | AttackType::TcpRst | AttackType::IcmpFlood => {
            0.5
        }
    }
}

/// Threshold on the cumulative sum for declaring the onset. The paper uses
/// an "aggressive parameter … to detect minor anomalies"; a small fixed
/// threshold (in σ units) serves that role.
pub const ONSET_THRESHOLD: f64 = 3.0;

/// Length of the baseline estimation window (minutes): "the hour before the
/// attack".
pub const BASELINE_WINDOW: usize = 60;

/// Retrospectively marks the anomaly start for an alert.
///
/// * `volume` — per-minute signature-matching bytes, indexed by absolute
///   minute − `base_minute`.
/// * `base_minute` — absolute minute of `volume[0]`.
/// * `alert_minute` — when the CDet alert fired.
///
/// Baseline μ/σ come from the `BASELINE_WINDOW` minutes ending one hour
/// before nothing — i.e. from `[alert − 2h, alert − 1h)` when available,
/// else whatever earlier data exists; CUSUM is then run forward over the
/// last hour before the alert. Returns the absolute minute of onset, or
/// `alert_minute` if no crossing is found (the anomaly and the alert
/// coincide).
pub fn mark_anomaly_start(
    volume: &[f64],
    base_minute: u32,
    alert_minute: u32,
    ty: AttackType,
) -> u32 {
    let alert_idx = alert_minute.saturating_sub(base_minute) as usize;
    let alert_idx = alert_idx.min(volume.len());
    // Scan window: the hour before the alert.
    let scan_start = alert_idx.saturating_sub(BASELINE_WINDOW);
    // Baseline window: the hour before the scan window.
    let base_start = scan_start.saturating_sub(BASELINE_WINDOW);
    let baseline = &volume[base_start..scan_start];
    let (mean, std) = if baseline.is_empty() {
        (0.0, 1e-9)
    } else {
        let m = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let var = baseline.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / baseline.len() as f64;
        (m, var.sqrt())
    };
    let mut cusum = Cusum::new(mean, std, numstd_for(ty));
    for (i, &x) in volume[scan_start..alert_idx].iter().enumerate() {
        if cusum.push(x) > ONSET_THRESHOLD {
            return base_minute + (scan_start + i) as u32;
        }
    }
    alert_minute
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_signal_never_crosses() {
        let mut c = Cusum::new(10.0, 2.0, 1.0);
        for _ in 0..100 {
            assert!(c.push(10.0) < ONSET_THRESHOLD);
        }
    }

    #[test]
    fn sustained_increase_crosses() {
        let mut c = Cusum::new(10.0, 2.0, 1.0);
        let mut crossed = false;
        for _ in 0..10 {
            if c.push(20.0) > ONSET_THRESHOLD {
                crossed = true;
                break;
            }
        }
        assert!(crossed);
    }

    #[test]
    fn cusum_never_negative() {
        let mut c = Cusum::new(10.0, 2.0, 1.0);
        for x in [0.0, 0.0, 0.0, 100.0, 0.0, 0.0] {
            assert!(c.push(x) >= 0.0);
        }
    }

    #[test]
    fn reset_zeroes_statistic() {
        let mut c = Cusum::new(0.0, 1.0, 0.0);
        c.push(100.0);
        assert!(c.value() > 0.0);
        c.reset();
        assert_eq!(c.value(), 0.0);
    }

    #[test]
    fn marks_onset_at_sustained_step() {
        // Baseline 10 for 2 h, then a step to 40 nine minutes before alert.
        let mut volume = vec![10.0; 180];
        for v in &mut volume[171..180] {
            *v = 40.0;
        }
        let onset = mark_anomaly_start(&volume, 1000, 1180, AttackType::UdpFlood);
        // The onset is detected at/just after minute 171 (absolute 1171).
        assert!(
            (1171..=1173).contains(&onset),
            "onset={onset}, expected ~1171"
        );
    }

    #[test]
    fn no_anomaly_returns_alert_minute() {
        let volume = vec![10.0; 180];
        let onset = mark_anomaly_start(&volume, 0, 180, AttackType::TcpAck);
        assert_eq!(onset, 180);
    }

    #[test]
    fn tcp_types_are_more_sensitive() {
        // A modest bump: detected under NUMSTD 0.5 but the same bump scaled
        // differently shows TCP onset no later than UDP onset.
        let mut volume = vec![10.0; 180];
        // Noise so sigma is non-degenerate.
        for (i, v) in volume.iter_mut().enumerate() {
            *v += (i % 5) as f64;
        }
        for v in &mut volume[168..180] {
            *v += 8.0;
        }
        let udp = mark_anomaly_start(&volume, 0, 180, AttackType::UdpFlood);
        let tcp = mark_anomaly_start(&volume, 0, 180, AttackType::TcpAck);
        assert!(tcp <= udp, "tcp={tcp} udp={udp}");
    }

    #[test]
    fn short_history_is_handled() {
        // Less history than two full windows must not panic.
        let volume = vec![5.0; 30];
        let onset = mark_anomaly_start(&volume, 0, 30, AttackType::IcmpFlood);
        assert!(onset <= 30);
    }

    #[test]
    fn numstd_values_match_appendix() {
        assert_eq!(numstd_for(AttackType::UdpFlood), 1.0);
        assert_eq!(numstd_for(AttackType::DnsAmplification), 1.0);
        assert_eq!(numstd_for(AttackType::TcpSyn), 0.5);
        assert_eq!(numstd_for(AttackType::IcmpFlood), 0.5);
    }
}
