//! A conservative, commercial-style threshold detector (the paper's CDet).
//!
//! Characteristics the paper attributes to the deployed appliance:
//! profiled (baseline-derived) thresholds with an absolute floor, and a
//! *sustained* confirmation period before alerting — which is exactly what
//! makes it late on short attacks (§2.3). Mitigation ends after traffic
//! stays below threshold for a quiet period.
//!
//! Per (customer, attack-type) state: a slow EWMA baseline of
//! signature-matching volume, threshold `max(floor, multiplier × baseline)`,
//! alert after `sustain` consecutive minutes above, end after `quiet`
//! consecutive minutes below.

use crate::alert::Alert;
use crate::traits::{Detector, DetectorEvent, MinuteObservation};
use std::collections::HashMap;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;

/// Tunables for the NetScout-style detector.
#[derive(Clone, Copy, Debug)]
pub struct NetScoutConfig {
    /// EWMA smoothing factor for the baseline (per minute).
    pub baseline_alpha: f64,
    /// Threshold multiplier over the baseline.
    pub multiplier: f64,
    /// Absolute threshold floor in bytes/minute (profiled detection floors
    /// alert volume so tiny customers don't page constantly).
    pub floor_bytes: f64,
    /// Consecutive above-threshold minutes required to alert.
    pub sustain: u32,
    /// Fast path: a surge above `fast_multiplier × threshold` alerts after
    /// only `fast_sustain` minutes — violent floods must not wait out the
    /// full confirmation period (commercial appliances trigger on rate
    /// severity, not duration alone).
    pub fast_multiplier: f64,
    /// Consecutive minutes required on the fast path.
    pub fast_sustain: u32,
    /// Consecutive below-threshold minutes required to end mitigation.
    pub quiet: u32,
}

impl Default for NetScoutConfig {
    fn default() -> Self {
        NetScoutConfig {
            baseline_alpha: 0.02,
            // Conservative, commercial-style: benign variation (including
            // multi-x flash crowds) must stay under threshold; only a
            // clear attack-scale surge alerts (the paper's premise that
            // CDet trades timeliness for a very low false-alarm rate).
            multiplier: 6.0,
            floor_bytes: 1.5e6, // ~0.2 Mbps sustained
            sustain: 8,
            fast_multiplier: 4.0,
            fast_sustain: 4,
            quiet: 5,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct CellState {
    baseline: f64,
    initialized: bool,
    above: u32,
    fast_above: u32,
    below: u32,
    active: Option<Alert>,
}

/// The NetScout-style detector.
#[derive(Debug, Default)]
pub struct NetScout {
    cfg: NetScoutConfig,
    cells: HashMap<(Ipv4, AttackType), CellState>,
}

impl NetScout {
    /// Creates a detector with default tuning.
    pub fn new() -> Self {
        Self::with_config(NetScoutConfig::default())
    }

    /// Creates a detector with explicit tuning.
    pub fn with_config(cfg: NetScoutConfig) -> Self {
        NetScout {
            cfg,
            cells: HashMap::new(),
        }
    }

    /// The current baseline for a cell (diagnostics).
    pub fn baseline(&self, customer: Ipv4, ty: AttackType) -> Option<f64> {
        self.cells.get(&(customer, ty)).map(|c| c.baseline)
    }
}

impl Detector for NetScout {
    fn observe(&mut self, obs: &MinuteObservation) -> Vec<DetectorEvent> {
        let cfg = self.cfg;
        let cell = self
            .cells
            .entry((obs.customer, obs.attack_type))
            .or_default();
        let mut events = Vec::new();

        if !cell.initialized {
            cell.baseline = obs.bytes;
            cell.initialized = true;
        }
        let threshold = cfg.floor_bytes.max(cfg.multiplier * cell.baseline);
        let anomalous = obs.bytes > threshold;
        let violent = obs.bytes > cfg.fast_multiplier * threshold;

        match cell.active {
            None => {
                if anomalous {
                    cell.above += 1;
                    cell.fast_above = if violent { cell.fast_above + 1 } else { 0 };
                    if cell.above >= cfg.sustain || cell.fast_above >= cfg.fast_sustain {
                        let alert = Alert {
                            customer: obs.customer,
                            attack_type: obs.attack_type,
                            detected_at: obs.minute,
                            mitigation_end: None,
                        };
                        cell.active = Some(alert);
                        cell.below = 0;
                        cell.fast_above = 0;
                        events.push(DetectorEvent::Raised(alert));
                    }
                } else {
                    cell.above = 0;
                    cell.fast_above = 0;
                    // Only learn the baseline from non-anomalous minutes so
                    // attacks do not poison the profile.
                    cell.baseline = (1.0 - cfg.baseline_alpha) * cell.baseline
                        + cfg.baseline_alpha * obs.bytes;
                }
            }
            Some(mut alert) => {
                if anomalous {
                    cell.below = 0;
                } else {
                    cell.below += 1;
                    if cell.below >= cfg.quiet {
                        alert.mitigation_end = Some(obs.minute);
                        cell.active = None;
                        cell.above = 0;
                        events.push(DetectorEvent::Ended(alert));
                    }
                }
            }
        }
        events
    }

    fn name(&self) -> &'static str {
        "NetScout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(minute: u32, bytes: f64) -> MinuteObservation {
        MinuteObservation {
            minute,
            customer: Ipv4(1),
            attack_type: AttackType::UdpFlood,
            bytes,
            packets: bytes / 500.0,
        }
    }

    fn run(det: &mut NetScout, series: &[f64]) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for (m, &b) in series.iter().enumerate() {
            events.extend(det.observe(&obs(m as u32, b)));
        }
        events
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let mut det = NetScout::new();
        let events = run(&mut det, &vec![1e5; 200]);
        assert!(events.is_empty());
    }

    #[test]
    fn sustained_flood_alerts_after_sustain_minutes() {
        let mut det = NetScout::new();
        let mut series = vec![1e5; 60];
        series.extend(vec![1e8; 20]);
        let events = run(&mut det, &series);
        let raised: Vec<&DetectorEvent> = events
            .iter()
            .filter(|e| matches!(e, DetectorEvent::Raised(_)))
            .collect();
        assert_eq!(raised.len(), 1);
        if let DetectorEvent::Raised(a) = raised[0] {
            // A 1000x flood trips the fast path after fast_sustain minutes.
            assert_eq!(a.detected_at, 63);
        }
    }

    #[test]
    fn mild_short_blip_below_sustain_is_ignored() {
        let mut det = NetScout::new();
        let mut series = vec![1e6; 60];
        // 8x baseline (over the 6x threshold, under the 4x fast factor)
        // for 3 minutes: neither path confirms.
        series.extend(vec![8e6; 5]);
        series.extend(vec![1e6; 60]);
        let events = run(&mut det, &series);
        assert!(events.is_empty(), "blip should not alert: {events:?}");
    }

    #[test]
    fn violent_short_flood_trips_fast_path() {
        let mut det = NetScout::new();
        let mut series = vec![1e6; 60];
        series.extend(vec![1e9; 5]); // 1000x for 5 minutes
        series.extend(vec![1e6; 60]);
        let events = run(&mut det, &series);
        assert!(
            matches!(events.first(), Some(DetectorEvent::Raised(_))),
            "violent flood must alert: {events:?}"
        );
    }

    #[test]
    fn mitigation_ends_after_quiet_period() {
        let mut det = NetScout::new();
        let mut series = vec![1e5; 60];
        series.extend(vec![1e8; 10]);
        series.extend(vec![1e5; 20]);
        let events = run(&mut det, &series);
        assert_eq!(events.len(), 2);
        if let DetectorEvent::Ended(a) = events[1] {
            // Attack ends at minute 70; quiet 5 -> end at minute 74.
            assert_eq!(a.mitigation_end, Some(74));
        } else {
            panic!("expected Ended");
        }
    }

    #[test]
    fn floor_suppresses_alerts_on_tiny_customers() {
        let mut det = NetScout::new();
        // 10x increase but far below the absolute floor.
        let mut series = vec![100.0; 60];
        series.extend(vec![1000.0; 30]);
        let events = run(&mut det, &series);
        assert!(events.is_empty());
    }

    #[test]
    fn baseline_not_poisoned_by_attack() {
        let mut det = NetScout::new();
        let mut series = vec![1e6; 60];
        series.extend(vec![1e9; 30]);
        run(&mut det, &series);
        let b = det.baseline(Ipv4(1), AttackType::UdpFlood).unwrap();
        assert!(b < 2e6, "baseline crept up to {b}");
    }

    #[test]
    fn cells_are_independent_per_type() {
        let mut det = NetScout::new();
        let mut events = Vec::new();
        for m in 0..60 {
            events.extend(det.observe(&obs(m, 1e5)));
            events.extend(det.observe(&MinuteObservation {
                attack_type: AttackType::TcpSyn,
                ..obs(m, 1e5)
            }));
        }
        for m in 60..70 {
            events.extend(det.observe(&obs(m, 1e8)));
            events.extend(det.observe(&MinuteObservation {
                attack_type: AttackType::TcpSyn,
                ..obs(m, 1e5)
            }));
        }
        let raised: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                DetectorEvent::Raised(a) => Some(a.attack_type),
                _ => None,
            })
            .collect();
        assert_eq!(raised, vec![AttackType::UdpFlood]);
    }
}
