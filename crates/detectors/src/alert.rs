//! Alert records shared by every detector.

use serde::{Deserialize, Serialize};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::{AttackType, Signature};

/// One detection event with its lifecycle timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// Victim customer address.
    pub customer: Ipv4,
    /// Detected attack type (drives the signature).
    pub attack_type: AttackType,
    /// Minute the detector raised the alert.
    pub detected_at: u32,
    /// Minute the mitigation-end notice fired (traffic back to normal),
    /// `None` while the attack is still considered active.
    pub mitigation_end: Option<u32>,
}

impl Alert {
    /// The anomalous-traffic signature this alert diverts to scrubbing.
    pub fn signature(&self) -> Signature {
        self.attack_type.signature()
    }

    /// Alert duration in minutes, if mitigation has ended.
    pub fn duration(&self) -> Option<u32> {
        self.mitigation_end
            .map(|e| e.saturating_sub(self.detected_at))
    }

    /// True if the alert is active at `minute` (detected, not yet ended).
    pub fn active_at(&self, minute: u32) -> bool {
        minute >= self.detected_at && self.mitigation_end.is_none_or(|e| minute < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert() -> Alert {
        Alert {
            customer: Ipv4(7),
            attack_type: AttackType::UdpFlood,
            detected_at: 100,
            mitigation_end: Some(110),
        }
    }

    #[test]
    fn duration_and_activity() {
        let a = alert();
        assert_eq!(a.duration(), Some(10));
        assert!(a.active_at(100));
        assert!(a.active_at(109));
        assert!(!a.active_at(110));
        assert!(!a.active_at(99));
    }

    #[test]
    fn open_alert_is_active_indefinitely() {
        let mut a = alert();
        a.mitigation_end = None;
        assert!(a.active_at(1_000_000));
        assert_eq!(a.duration(), None);
    }

    #[test]
    fn signature_comes_from_type() {
        assert_eq!(
            alert().signature(),
            AttackType::UdpFlood.signature()
        );
    }
}
