//! Random Forest baseline, implemented from scratch.
//!
//! The paper's supervised-ML baseline: "random forest … trained as a binary
//! classifier for each attack type using the same feature set from the same
//! three timescales", with hyper-parameters chosen by exhaustive grid
//! search. This module implements CART decision trees (gini impurity,
//! best-split search over sampled feature subsets), bagging, out-of-bag
//! probability estimation, and a small grid-search helper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RfConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features sampled per split; `0` means `sqrt(n_features)`.
    pub max_features: usize,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for RfConfig {
    fn default() -> Self {
        RfConfig {
            n_trees: 50,
            max_depth: 12,
            min_samples_split: 4,
            max_features: 0,
            seed: 0,
        }
    }
}

/// A node of a CART tree, stored flat.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Probability of the positive class at this leaf.
        p: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child; right child is `left + 1`… no — both
        /// stored explicitly for clarity.
        left: usize,
        right: usize,
    },
}

/// One decision tree.
#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { p } => return *p,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Gini impurity of a label subset given positive count and total.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

struct TreeBuilder<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [bool],
    cfg: RfConfig,
    n_features: usize,
    max_features: usize,
    nodes: Vec<Node>,
}

impl<'a> TreeBuilder<'a> {
    fn build(mut self, indices: Vec<usize>, rng: &mut StdRng) -> Tree {
        self.grow(indices, 0, rng);
        Tree { nodes: self.nodes }
    }

    /// Grows a subtree over `indices`; returns its root node index.
    fn grow(&mut self, indices: Vec<usize>, depth: usize, rng: &mut StdRng) -> usize {
        let total = indices.len() as f64;
        let pos = indices.iter().filter(|&&i| self.ys[i]).count() as f64;
        let node_gini = gini(pos, total);

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                p: if total > 0.0 { pos / total } else { 0.5 },
            });
            nodes.len() - 1
        };

        if depth >= self.cfg.max_depth
            || indices.len() < self.cfg.min_samples_split
            || node_gini == 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        // Sample a feature subset and find the best split.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
        for _ in 0..self.max_features {
            let f = rng.random_range(0..self.n_features);
            // Candidate thresholds: midpoints of sorted unique values.
            let mut vals: Vec<f64> = indices.iter().map(|&i| self.xs[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Subsample thresholds for wide value ranges.
            let step = (vals.len() / 16).max(1);
            for w in vals.windows(2).step_by(step) {
                let thr = (w[0] + w[1]) / 2.0;
                let (mut lp, mut lt) = (0.0, 0.0);
                for &i in &indices {
                    if self.xs[i][f] <= thr {
                        lt += 1.0;
                        if self.ys[i] {
                            lp += 1.0;
                        }
                    }
                }
                let rt = total - lt;
                let rp = pos - lp;
                if lt == 0.0 || rt == 0.0 {
                    continue;
                }
                let impurity = (lt * gini(lp, lt) + rt * gini(rp, rt)) / total;
                if best.is_none_or(|(_, _, bi)| impurity < bi) {
                    best = Some((f, thr, impurity));
                }
            }
        }

        let Some((feature, threshold, impurity)) = best else {
            return make_leaf(&mut self.nodes);
        };
        if impurity >= node_gini - 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| self.xs[i][feature] <= threshold);

        // Reserve our slot, then grow children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { p: 0.0 }); // placeholder
        let left = self.grow(left_idx, depth + 1, rng);
        let right = self.grow(right_idx, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

/// A trained random forest binary classifier.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<Tree>,
    n_features: usize,
}

impl RandomForest {
    /// Trains a forest on `(xs, ys)`.
    ///
    /// # Panics
    /// Panics on empty or ragged input.
    pub fn train(xs: &[Vec<f64>], ys: &[bool], cfg: RfConfig) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        let n_features = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == n_features), "ragged features");
        let max_features = if cfg.max_features == 0 {
            (n_features as f64).sqrt().ceil() as usize
        } else {
            cfg.max_features.min(n_features)
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            // Bootstrap sample.
            let indices: Vec<usize> = (0..xs.len())
                .map(|_| rng.random_range(0..xs.len()))
                .collect();
            let builder = TreeBuilder {
                xs,
                ys,
                cfg,
                n_features,
                max_features,
                nodes: Vec::new(),
            };
            trees.push(builder.build(indices, &mut rng));
        }
        RandomForest { trees, n_features }
    }

    /// Probability of the positive class: mean of tree leaf probabilities.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature dim mismatch");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Hard prediction at a 0.5 cut.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Exhaustive grid search over forest hyper-parameters, maximizing an
/// arbitrary validation score. Returns the best config and its score.
pub fn grid_search<F>(
    grid_trees: &[usize],
    grid_depth: &[usize],
    mut score: F,
    seed: u64,
) -> (RfConfig, f64)
where
    F: FnMut(RfConfig) -> f64,
{
    let mut best = (RfConfig::default(), f64::NEG_INFINITY);
    for &n_trees in grid_trees {
        for &max_depth in grid_depth {
            let cfg = RfConfig {
                n_trees,
                max_depth,
                seed,
                ..RfConfig::default()
            };
            let s = score(cfg);
            if s > best.1 {
                best = (cfg, s);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable blob dataset.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let cx = if pos { 2.0 } else { -2.0 };
            xs.push(vec![
                cx + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = blobs(200, 1);
        let rf = RandomForest::train(&xs, &ys, RfConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| rf.predict(x) == **y)
            .count();
        assert!(correct >= 190, "train accuracy {correct}/200");
    }

    #[test]
    fn generalizes_to_held_out() {
        let (xs, ys) = blobs(300, 2);
        let rf = RandomForest::train(&xs[..200], &ys[..200], RfConfig::default());
        let correct = xs[200..]
            .iter()
            .zip(&ys[200..])
            .filter(|(x, y)| rf.predict(x) == **y)
            .count();
        assert!(correct >= 90, "holdout accuracy {correct}/100");
    }

    #[test]
    fn learns_xor_with_depth() {
        // A non-linear concept no single split solves.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let a = rng.random_range(-1.0..1.0f64);
            let b = rng.random_range(-1.0..1.0f64);
            xs.push(vec![a, b]);
            ys.push((a > 0.0) != (b > 0.0));
        }
        let rf = RandomForest::train(
            &xs,
            &ys,
            RfConfig {
                n_trees: 40,
                max_depth: 8,
                max_features: 2,
                ..RfConfig::default()
            },
        );
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| rf.predict(x) == **y)
            .count();
        assert!(correct >= 360, "xor accuracy {correct}/400");
    }

    #[test]
    fn proba_is_in_unit_interval_and_ordered() {
        let (xs, ys) = blobs(100, 4);
        let rf = RandomForest::train(&xs, &ys, RfConfig::default());
        let p_pos = rf.predict_proba(&[2.5, 0.0]);
        let p_neg = rf.predict_proba(&[-2.5, 0.0]);
        assert!((0.0..=1.0).contains(&p_pos));
        assert!((0.0..=1.0).contains(&p_neg));
        assert!(p_pos > p_neg);
    }

    #[test]
    fn pure_node_yields_deterministic_leaf() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![true, true, true];
        let rf = RandomForest::train(&xs, &ys, RfConfig::default());
        assert_eq!(rf.predict_proba(&[0.5]), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blobs(100, 5);
        let cfg = RfConfig {
            seed: 42,
            ..RfConfig::default()
        };
        let a = RandomForest::train(&xs, &ys, cfg);
        let b = RandomForest::train(&xs, &ys, cfg);
        for x in &xs {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn grid_search_picks_best() {
        let (cfg, score) = grid_search(
            &[5, 10],
            &[2, 4],
            |cfg| (cfg.n_trees + cfg.max_depth) as f64,
            0,
        );
        assert_eq!(cfg.n_trees, 10);
        assert_eq!(cfg.max_depth, 4);
        assert_eq!(score, 14.0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_input_panics() {
        RandomForest::train(&[], &[], RfConfig::default());
    }
}
