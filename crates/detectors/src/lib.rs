//! Baseline DDoS detection systems.
//!
//! Xatu is a *booster*, not a replacement — it is evaluated against and
//! labelled by existing detectors. This crate implements every detector the
//! paper uses:
//!
//! * [`cusum`] — the CUSUM change-point statistic of Appendix A, used
//!   retrospectively to mark ground-truth anomaly starts before each CDet
//!   alert.
//! * [`netscout`] — a conservative commercial-style detector (profiled
//!   thresholds + sustained-anomaly confirmation), standing in for the Arbor
//!   NetScout appliance that produced the paper's labels.
//! * [`fastnetmon`] — a lighter dynamic-threshold detector in the style of
//!   the open-source FastNetMon, the paper's second CDet (Fig 18(a)).
//! * [`rf`] — a from-scratch Random Forest (CART trees, gini impurity,
//!   bootstrap + feature subsampling), the paper's supervised-ML baseline.
//! * [`alert`] — alert records shared by all detectors.
//! * [`traits`] — the streaming [`traits::Detector`] interface.

pub mod alert;
pub mod cusum;
pub mod fastnetmon;
pub mod netscout;
pub mod rf;
pub mod traits;

pub use alert::Alert;
pub use cusum::{mark_anomaly_start, Cusum};
pub use fastnetmon::FastNetMon;
pub use netscout::NetScout;
pub use rf::{RandomForest, RfConfig};
pub use traits::{Detector, DetectorEvent};
