//! Threshold calibration under a quantile constraint.
//!
//! §5.3: "We identify the threshold in the validation data, which maximizes
//! mitigation effectiveness, while keeping the scrubbing overhead for 75 %
//! of customers below a given bound." This module implements the generic
//! search: the caller supplies, for each candidate threshold, the objective
//! value and the per-customer cost values; the calibrator picks the best
//! feasible threshold.

/// Outcome of evaluating one candidate threshold.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// The threshold that was evaluated.
    pub threshold: f64,
    /// Objective to maximize (e.g. median mitigation effectiveness).
    pub objective: f64,
    /// Per-customer cost values (e.g. cumulative scrubbing overhead).
    pub per_customer_cost: Vec<f64>,
}

/// The calibration constraint: `quantile` of customers must have cost
/// ≤ `bound`.
#[derive(Clone, Copy, Debug)]
pub struct QuantileBound {
    /// Quantile in (0, 1], e.g. 0.75.
    pub quantile: f64,
    /// Cost bound, e.g. 0.001 for a 0.1 % overhead bound.
    pub bound: f64,
}

impl QuantileBound {
    /// True if `costs` satisfies the constraint. Empty cost vectors are
    /// trivially feasible (no customers had attacks).
    ///
    /// NaN costs sort *last* (worst), so a NaN landing at or below the
    /// checked quantile makes the candidate infeasible (`NaN <= bound` is
    /// false) rather than panicking — an unmeasurable overhead must never
    /// be treated as a cheap one.
    pub fn is_satisfied(&self, costs: &[f64]) -> bool {
        if costs.is_empty() {
            return true;
        }
        let mut sorted = costs.to_vec();
        sorted.sort_by(|a, b| match (a.is_nan(), b.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => a.partial_cmp(b).unwrap(),
        });
        let idx = ((self.quantile * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len())
            - 1;
        sorted[idx] <= self.bound
    }
}

/// Picks the feasible candidate with the highest objective. Ties are broken
/// toward the *higher* threshold (less aggressive detection). Returns `None`
/// if no candidate is feasible.
///
/// Candidates with a NaN objective are skipped outright: every comparison
/// against NaN is false, so such a candidate could otherwise win by being
/// compared first and then never displaced.
pub fn pick_threshold(candidates: &[CandidateEval], bound: QuantileBound) -> Option<f64> {
    let mut best: Option<&CandidateEval> = None;
    for c in candidates {
        if c.objective.is_nan() || !bound.is_satisfied(&c.per_customer_cost) {
            continue;
        }
        best = match best {
            None => Some(c),
            Some(b)
                if c.objective > b.objective
                    || (c.objective == b.objective && c.threshold > b.threshold) =>
            {
                Some(c)
            }
            Some(b) => Some(b),
        };
    }
    best.map(|c| c.threshold)
}

/// A grid of thresholds in (0, 1) that is logarithmically dense at *both*
/// ends: near 0, because a sharp survival model collapses to ~1e-4 during
/// attacks so tight overhead bounds calibrate to tiny thresholds; and near
/// 1, because loose bounds calibrate just below the quiet-traffic level.
pub fn threshold_grid(n: usize) -> Vec<f64> {
    assert!(n >= 4, "need at least 4 candidate thresholds");
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    // Low half: 10^{-5} .. 0.5, log-spaced.
    for i in 0..half {
        let expo = -5.0 + (5.0 - 0.301) * i as f64 / (half - 1) as f64;
        out.push(10f64.powf(expo));
    }
    // High half: 1 − (0.5 .. 10^{-4}), log-spaced from the top.
    let rest = n - half;
    for i in 0..rest {
        let expo = -0.301 - (4.0 - 0.301) * i as f64 / (rest - 1) as f64;
        out.push(1.0 - 10f64.powf(-(-expo)));
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_bound_basic() {
        let b = QuantileBound {
            quantile: 0.75,
            bound: 1.0,
        };
        // 3 of 4 <= 1.0 -> satisfied.
        assert!(b.is_satisfied(&[0.1, 0.5, 0.9, 5.0]));
        // Only 2 of 4 <= 1.0 -> violated.
        assert!(!b.is_satisfied(&[0.1, 2.0, 0.9, 5.0]));
        assert!(b.is_satisfied(&[]));
    }

    #[test]
    fn picks_highest_objective_feasible() {
        let bound = QuantileBound {
            quantile: 0.75,
            bound: 1.0,
        };
        let cands = vec![
            CandidateEval {
                threshold: 0.9,
                objective: 0.6,
                per_customer_cost: vec![0.1, 0.2],
            },
            CandidateEval {
                threshold: 0.5,
                objective: 0.95,
                per_customer_cost: vec![0.5, 0.9],
            },
            CandidateEval {
                threshold: 0.1,
                objective: 0.99,
                per_customer_cost: vec![5.0, 9.0], // infeasible
            },
        ];
        assert_eq!(pick_threshold(&cands, bound), Some(0.5));
    }

    #[test]
    fn none_when_all_infeasible() {
        let bound = QuantileBound {
            quantile: 0.75,
            bound: 0.01,
        };
        let cands = vec![CandidateEval {
            threshold: 0.5,
            objective: 1.0,
            per_customer_cost: vec![1.0],
        }];
        assert_eq!(pick_threshold(&cands, bound), None);
    }

    #[test]
    fn nan_cost_is_infeasible_not_a_panic() {
        let bound = QuantileBound {
            quantile: 0.75,
            bound: 1.0,
        };
        // A NaN overhead (e.g. 0/0 from a customer with zero volume) used
        // to panic the partial_cmp sort; it must read as "worst cost":
        // infeasible whenever it lands at or below the checked quantile.
        assert!(!bound.is_satisfied(&[f64::NAN]));
        assert!(!bound.is_satisfied(&[-f64::NAN, 0.1]));
        assert!(!bound.is_satisfied(&[0.1, f64::NAN, f64::NAN, 0.3]));
        // NaN strictly above the checked quantile: the p75 entry is still
        // finite and within bound, so the candidate stays feasible (the
        // bound tolerates one bad customer in four by design).
        assert!(bound.is_satisfied(&[0.1, 0.2, f64::NAN, 0.3]));
        // And pick_threshold survives NaN costs end to end.
        let cands = vec![
            CandidateEval {
                threshold: 0.5,
                objective: 0.9,
                per_customer_cost: vec![f64::NAN],
            },
            CandidateEval {
                threshold: 0.2,
                objective: 0.8,
                per_customer_cost: vec![0.1],
            },
        ];
        assert_eq!(pick_threshold(&cands, bound), Some(0.2));
    }

    #[test]
    fn nan_objective_candidates_are_skipped() {
        let bound = QuantileBound {
            quantile: 0.75,
            bound: 1.0,
        };
        let cands = vec![
            CandidateEval {
                threshold: 0.9,
                objective: f64::NAN,
                per_customer_cost: vec![0.1],
            },
            CandidateEval {
                threshold: 0.5,
                objective: 0.3,
                per_customer_cost: vec![0.1],
            },
        ];
        assert_eq!(pick_threshold(&cands, bound), Some(0.5));
        // All-NaN objectives: no winner rather than an arbitrary one.
        let all_nan = vec![CandidateEval {
            threshold: 0.9,
            objective: f64::NAN,
            per_customer_cost: vec![0.1],
        }];
        assert_eq!(pick_threshold(&all_nan, bound), None);
    }

    #[test]
    fn tie_breaks_toward_higher_threshold() {
        let bound = QuantileBound {
            quantile: 1.0,
            bound: 10.0,
        };
        let cands = vec![
            CandidateEval {
                threshold: 0.3,
                objective: 0.8,
                per_customer_cost: vec![],
            },
            CandidateEval {
                threshold: 0.7,
                objective: 0.8,
                per_customer_cost: vec![],
            },
        ];
        assert_eq!(pick_threshold(&cands, bound), Some(0.7));
    }

    #[test]
    fn grid_is_increasing_and_covers_both_ends() {
        let g = threshold_grid(20);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.iter().all(|&t| (0.0..1.0).contains(&t)));
        assert!(g[0] < 1e-4, "low end covered: {}", g[0]);
        assert!(*g.last().unwrap() > 0.999, "high end covered");
        // Several candidates below 0.1 (tight-bound regime).
        assert!(g.iter().filter(|&&t| t < 0.1).count() >= 4);
    }
}
