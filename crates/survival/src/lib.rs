//! Survival analysis for early DDoS detection.
//!
//! The paper (§4.2 and Appendix C) models the onset of anomalous traffic as
//! a survival process: the network emits an instantaneous *hazard rate*
//! `λ_t ≥ 0` per timestep, and the *survival probability*
//! `S_t = exp(−Σ_{k≤t} λ_k)` is the probability that no attack has started
//! by time `t`. Detection fires when `S_t` drops below a calibrated
//! threshold.
//!
//! Modules:
//!
//! * [`hazard`] — hazard → survival transforms, including the rolling-window
//!   form used during online (auto-regressive) operation.
//! * [`safe_loss`] — the SAFE survival loss the paper trains with, with an
//!   analytic, numerically-stable gradient.
//! * [`calibrate`] — threshold search: maximize an objective subject to a
//!   constraint holding for a quantile of customers (§5.3's "75 % of
//!   customers below a given overhead bound").

pub mod calibrate;
pub mod hazard;
pub mod kaplan_meier;
pub mod safe_loss;

pub use hazard::{rolling_survival, survival_curve};
pub use safe_loss::{safe_loss_and_grad, SafeLossResult};
