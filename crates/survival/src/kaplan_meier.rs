//! The Kaplan–Meier product-limit estimator.
//!
//! The workspace's models produce *parametric* survival curves; the
//! Kaplan–Meier estimator gives the complementary non-parametric view of
//! the empirical onset process (how long customers actually "survive"
//! between attacks), used by the experiment harness as a diagnostic and
//! for sanity-checking calibration data.

/// One observation: time-to-event, and whether the event occurred
/// (`true`) or the observation was censored (`false`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmObservation {
    /// Time at which the event happened or the observation was censored.
    pub time: f64,
    /// True for an observed event, false for censoring.
    pub event: bool,
}

/// A step of the estimated survival function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmStep {
    /// Event time.
    pub time: f64,
    /// Survival estimate just after `time`.
    pub survival: f64,
    /// Number at risk just before `time`.
    pub at_risk: usize,
    /// Events at `time`.
    pub events: usize,
}

/// Computes the Kaplan–Meier estimate. Returns one step per distinct
/// event time, in increasing time order. Censored-only times contribute
/// to the at-risk bookkeeping but create no steps.
pub fn kaplan_meier(observations: &[KmObservation]) -> Vec<KmStep> {
    let mut obs: Vec<KmObservation> = observations
        .iter()
        .copied()
        .filter(|o| o.time.is_finite() && o.time >= 0.0)
        .collect();
    obs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));

    let mut steps = Vec::new();
    let mut survival = 1.0;
    let mut at_risk = obs.len();
    let mut i = 0;
    while i < obs.len() {
        let t = obs[i].time;
        let mut events = 0usize;
        let mut leaving = 0usize;
        while i < obs.len() && obs[i].time == t {
            if obs[i].event {
                events += 1;
            }
            leaving += 1;
            i += 1;
        }
        if events > 0 && at_risk > 0 {
            survival *= 1.0 - events as f64 / at_risk as f64;
            steps.push(KmStep {
                time: t,
                survival,
                at_risk,
                events,
            });
        }
        at_risk -= leaving;
    }
    steps
}

/// The median survival time: the first event time where the estimate
/// drops to ≤ 0.5, if it ever does.
pub fn median_survival(steps: &[KmStep]) -> Option<f64> {
    steps.iter().find(|s| s.survival <= 0.5).map(|s| s.time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64) -> KmObservation {
        KmObservation { time, event: true }
    }

    fn cens(time: f64) -> KmObservation {
        KmObservation { time, event: false }
    }

    #[test]
    fn no_censoring_matches_empirical_survival() {
        // Events at 1, 2, 3, 4 out of 4 subjects: S = 3/4, 1/2, 1/4, 0.
        let steps = kaplan_meier(&[ev(1.0), ev(2.0), ev(3.0), ev(4.0)]);
        let survivals: Vec<f64> = steps.iter().map(|s| s.survival).collect();
        assert_eq!(survivals, vec![0.75, 0.5, 0.25, 0.0]);
    }

    #[test]
    fn censoring_reduces_at_risk_without_steps() {
        // Event at 1 (of 3), censor at 2, event at 3 (of 1).
        let steps = kaplan_meier(&[ev(1.0), cens(2.0), ev(3.0)]);
        assert_eq!(steps.len(), 2);
        assert!((steps[0].survival - 2.0 / 3.0).abs() < 1e-12);
        // After the censor, one subject remains; its event drops S to 0.
        assert!((steps[1].survival - 0.0).abs() < 1e-12);
        assert_eq!(steps[1].at_risk, 1);
    }

    #[test]
    fn tied_events_handled_together() {
        let steps = kaplan_meier(&[ev(2.0), ev(2.0), ev(5.0), cens(6.0)]);
        assert_eq!(steps[0].events, 2);
        assert!((steps[0].survival - 0.5).abs() < 1e-12);
    }

    #[test]
    fn survival_is_monotone_nonincreasing() {
        let obs: Vec<KmObservation> = (0..50)
            .map(|i| KmObservation {
                time: ((i * 7919) % 100) as f64,
                event: i % 3 != 0,
            })
            .collect();
        let steps = kaplan_meier(&obs);
        for w in steps.windows(2) {
            assert!(w[1].survival <= w[0].survival + 1e-15);
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn median_survival_found() {
        let steps = kaplan_meier(&[ev(1.0), ev(2.0), ev(3.0), ev(4.0)]);
        assert_eq!(median_survival(&steps), Some(2.0));
        // All censored: no median.
        let none = kaplan_meier(&[cens(1.0), cens(2.0)]);
        assert_eq!(median_survival(&none), None);
    }

    #[test]
    fn all_censored_input_yields_no_steps() {
        // Every observation censored: the estimator never observes an
        // event, so the survival function stays flat at 1.0 — no steps,
        // no median, no panic from the at-risk bookkeeping reaching zero.
        let steps = kaplan_meier(&[cens(1.0), cens(1.0), cens(3.0), cens(7.0)]);
        assert!(steps.is_empty());
        assert_eq!(median_survival(&steps), None);
        assert!(kaplan_meier(&[]).is_empty());
    }

    #[test]
    fn invalid_times_are_ignored() {
        let steps = kaplan_meier(&[ev(f64::NAN), ev(-1.0), ev(2.0)]);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].time, 2.0);
    }
}
