//! The SAFE survival loss and its analytic gradient.
//!
//! Appendix C of the Xatu paper: for a sample with label `c ∈ {0, 1}` and
//! event/censor time `t_i` (1-based step index), let `H = Σ_{t ≤ t_i} λ_t`
//! be the cumulative hazard up to `t_i`. The negative log-likelihood is
//!
//! ```text
//! L = H − c · ln(e^H − 1)
//! ```
//!
//! * `c = 0` (no attack): `L = H` — every hazard before the censor time is
//!   pushed toward zero, i.e. the model is rewarded for *not* detecting at
//!   any step of a quiet series.
//! * `c = 1` (attack detected by CDet at `t_i`): `L = H − ln(e^H − 1)
//!   = −ln(1 − e^{−H}) = −ln(1 − S_{t_i})` — the likelihood of the onset
//!   falling *anywhere before* `t_i` is maximized, which is exactly the
//!   early-detection objective: any alarm up to the ground-truth detection
//!   time is rewarded equally, rather than only an alarm at `t_i` itself.
//!
//! The gradient w.r.t. each hazard `λ_t`, `t ≤ t_i`, is
//!
//! ```text
//! ∂L/∂λ_t = 1 − c · e^H / (e^H − 1)  =  { 1            if c = 0
//!                                        { −1/(e^H − 1) if c = 1
//! ```
//!
//! and zero for `t > t_i`. For `c = 1` and small `H` the gradient magnitude
//! blows up like `1/H` (the model is certain no attack happens, which is
//! maximally wrong) — we compute it via `expm1` for accuracy and clamp to a
//! finite magnitude for optimizer stability.

/// Loss and hazard-gradient of one sample.
#[derive(Clone, Debug, PartialEq)]
pub struct SafeLossResult {
    /// Negative log-likelihood of the sample.
    pub loss: f64,
    /// ∂L/∂λ_t for every step of the input (zeros after `t_i`).
    pub dl_dhazard: Vec<f64>,
    /// Cumulative hazard `H` at the event/censor time (diagnostic).
    pub cum_hazard: f64,
}

/// Gradient magnitude clamp for the `c = 1`, `H → 0` regime.
const GRAD_CLAMP: f64 = 100.0;

/// Computes the SAFE loss and its gradient for one sample.
///
/// * `hazards` — the model's `λ_1..λ_n` (must be ≥ 0; clamped defensively).
/// * `attack` — `c`: whether the series ends in a CDet-detected attack.
/// * `event_step` — `t_i`, 1-based: the CDet detection step for attacks, or
///   the series length for censored (non-attack) series.
///
/// # Panics
/// Panics if `event_step` is zero or exceeds the series length.
pub fn safe_loss_and_grad(hazards: &[f64], attack: bool, event_step: usize) -> SafeLossResult {
    assert!(
        event_step >= 1 && event_step <= hazards.len(),
        "event_step {event_step} out of range 1..={}",
        hazards.len()
    );
    let h: f64 = hazards[..event_step].iter().map(|l| l.max(0.0)).sum();

    let (loss, grad_active) = if attack {
        // L = H − ln(e^H − 1) = −ln(1 − e^{−H}), stable via expm1/ln_1p.
        // −ln(1 − e^{−H}) = −ln(−expm1(−H))
        let one_minus_s = -(-h).exp_m1(); // 1 − e^{−H} ∈ (0, 1)
        let loss = if one_minus_s <= 0.0 {
            // H == 0 exactly: infinite loss; report a large finite value.
            GRAD_CLAMP
        } else {
            -one_minus_s.ln()
        };
        // dL/dλ = −1/(e^H − 1), clamped.
        let denom = h.exp_m1();
        let g = if denom <= 1.0 / GRAD_CLAMP {
            -GRAD_CLAMP
        } else {
            -1.0 / denom
        };
        (loss, g)
    } else {
        (h, 1.0)
    };

    let mut dl = vec![0.0; hazards.len()];
    for d in &mut dl[..event_step] {
        *d = grad_active;
    }
    SafeLossResult {
        loss,
        dl_dhazard: dl,
        cum_hazard: h,
    }
}

/// Mean SAFE loss over a batch (diagnostic helper for training logs).
pub fn batch_loss(samples: &[(&[f64], bool, usize)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .map(|(hz, c, t)| safe_loss_and_grad(hz, *c, *t).loss)
        .sum::<f64>()
        / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn censored_loss_is_cumulative_hazard() {
        let r = safe_loss_and_grad(&[0.1, 0.2, 0.3], false, 3);
        assert!((r.loss - 0.6).abs() < 1e-12);
        assert_eq!(r.dl_dhazard, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn censored_gradient_stops_at_event_step() {
        let r = safe_loss_and_grad(&[0.1, 0.2, 0.3, 0.4], false, 2);
        assert_eq!(r.dl_dhazard, vec![1.0, 1.0, 0.0, 0.0]);
        assert!((r.loss - 0.3).abs() < 1e-12);
    }

    #[test]
    fn attack_loss_decreases_with_hazard() {
        // More hazard mass before the event -> lower loss for attacks.
        let lo = safe_loss_and_grad(&[0.1, 0.1], true, 2).loss;
        let hi = safe_loss_and_grad(&[1.0, 1.0], true, 2).loss;
        assert!(hi < lo);
    }

    #[test]
    fn attack_loss_equals_neg_log_one_minus_survival() {
        let hz = [0.4, 0.7, 0.2];
        let r = safe_loss_and_grad(&hz, true, 3);
        let s = (-(0.4 + 0.7 + 0.2f64)).exp();
        assert!((r.loss - (-(1.0 - s).ln())).abs() < 1e-12);
    }

    #[test]
    fn attack_gradient_is_negative_and_uniform_before_event() {
        let r = safe_loss_and_grad(&[0.5, 0.5, 0.5, 0.5], true, 3);
        assert!(r.dl_dhazard[0] < 0.0);
        assert_eq!(r.dl_dhazard[0], r.dl_dhazard[1]);
        assert_eq!(r.dl_dhazard[0], r.dl_dhazard[2]);
        assert_eq!(r.dl_dhazard[3], 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let hz = vec![0.3, 0.8, 0.1, 0.6];
        for (attack, t_i) in [(true, 3), (false, 4), (true, 4), (false, 2)] {
            let r = safe_loss_and_grad(&hz, attack, t_i);
            let eps = 1e-6;
            for k in 0..hz.len() {
                let mut up = hz.clone();
                up[k] += eps;
                let mut dn = hz.clone();
                dn[k] -= eps;
                let num = (safe_loss_and_grad(&up, attack, t_i).loss
                    - safe_loss_and_grad(&dn, attack, t_i).loss)
                    / (2.0 * eps);
                assert!(
                    (r.dl_dhazard[k] - num).abs() < 1e-6,
                    "attack={attack} t_i={t_i} k={k}: {} vs {num}",
                    r.dl_dhazard[k]
                );
            }
        }
    }

    #[test]
    fn zero_hazard_attack_is_clamped_not_infinite() {
        let r = safe_loss_and_grad(&[0.0, 0.0], true, 2);
        assert!(r.loss.is_finite());
        assert!(r.dl_dhazard[0].is_finite());
        assert!(r.dl_dhazard[0] <= -1.0, "strong push upward expected");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn event_step_zero_panics() {
        safe_loss_and_grad(&[0.1], true, 0);
    }

    #[test]
    fn batch_loss_averages() {
        let a = [0.5, 0.5];
        let b = [0.1, 0.1];
        let l1 = safe_loss_and_grad(&a, true, 2).loss;
        let l2 = safe_loss_and_grad(&b, false, 2).loss;
        let avg = batch_loss(&[(&a, true, 2), (&b, false, 2)]);
        assert!((avg - (l1 + l2) / 2.0).abs() < 1e-12);
    }
}
