//! Hazard → survival transforms.

/// Turns a hazard sequence `λ_1..λ_n` into the survival curve
/// `S_t = exp(−Σ_{k≤t} λ_k)`.
///
/// Hazards must be non-negative (the model head guarantees this via
/// softplus); negative inputs are clamped to zero defensively.
pub fn survival_curve(hazards: &[f64]) -> Vec<f64> {
    let mut cum = 0.0;
    hazards
        .iter()
        .map(|&l| {
            cum += l.max(0.0);
            (-cum).exp()
        })
        .collect()
}

/// Rolling-window survival for online operation: at each step `t`,
/// `S_t = exp(−Σ_{k>t−w, k≤t} λ_k)` over the last `w` hazards.
///
/// This is the consistent-detection form used by the auto-regressive
/// detector: the survival probability stays depressed for as long as
/// hazards remain elevated, and recovers once they subside, instead of
/// decaying to zero over an unbounded horizon.
///
/// # Panics
/// Panics if `window == 0`.
pub fn rolling_survival(hazards: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "rolling window must be >= 1");
    let mut out = Vec::with_capacity(hazards.len());
    let mut sum = 0.0;
    for t in 0..hazards.len() {
        sum += hazards[t].max(0.0);
        if t >= window {
            sum -= hazards[t - window].max(0.0);
            // Guard against drift from repeated subtraction.
            if sum < 0.0 {
                sum = 0.0;
            }
        }
        out.push((-sum).exp());
    }
    out
}

/// Incremental rolling-survival state for one online detector instance.
#[derive(Clone, Debug)]
pub struct RollingSurvival {
    window: usize,
    buf: Vec<f64>,
    head: usize,
    filled: usize,
    sum: f64,
}

impl RollingSurvival {
    /// Creates a rolling accumulator over `window` steps.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be >= 1");
        RollingSurvival {
            window,
            buf: vec![0.0; window],
            head: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Pushes the next hazard and returns the current survival probability.
    ///
    /// Non-finite hazards are treated as 0 (certain survival contribution):
    /// `NaN.max(0.0)` is `NaN`, so without the guard a single corrupted
    /// input would poison the ring buffer's running sum forever — every
    /// subsequent survival value would be `NaN` even after the bad value
    /// rotated out of the window.
    pub fn push(&mut self, hazard: f64) -> f64 {
        let h = if hazard.is_finite() { hazard.max(0.0) } else { 0.0 };
        self.sum += h - self.buf[self.head];
        self.buf[self.head] = h;
        self.head = (self.head + 1) % self.window;
        self.filled = (self.filled + 1).min(self.window);
        if self.sum < 0.0 {
            self.sum = 0.0;
        }
        (-self.sum).exp()
    }

    /// Resets the accumulator (e.g. after mitigation ends).
    pub fn reset(&mut self) {
        self.buf.iter_mut().for_each(|v| *v = 0.0);
        self.head = 0;
        self.filled = 0;
        self.sum = 0.0;
    }

    /// Current survival probability without pushing.
    pub fn survival(&self) -> f64 {
        (-self.sum).exp()
    }

    /// The full internal state `(window, buf, head, filled, sum)` for
    /// checkpointing. Restoring these exact values via
    /// [`RollingSurvival::restore`] continues the accumulator bit-for-bit.
    pub fn state(&self) -> (usize, &[f64], usize, usize, f64) {
        (self.window, &self.buf, self.head, self.filled, self.sum)
    }

    /// Rebuilds an accumulator from the state captured by
    /// [`RollingSurvival::state`]. Returns `Err` on internally-inconsistent
    /// values (wrong buffer length, cursor out of range, non-finite sum) so
    /// a corrupted checkpoint cannot smuggle a poisoned ring buffer in.
    pub fn restore(
        window: usize,
        buf: Vec<f64>,
        head: usize,
        filled: usize,
        sum: f64,
    ) -> Result<Self, &'static str> {
        if window == 0 {
            return Err("rolling window must be >= 1");
        }
        if buf.len() != window {
            return Err("ring buffer length != window");
        }
        if head >= window || filled > window {
            return Err("ring cursor out of range");
        }
        if !sum.is_finite() || sum < 0.0 || buf.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("non-finite or negative hazard state");
        }
        Ok(RollingSurvival {
            window,
            buf,
            head,
            filled,
            sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_starts_at_exp_minus_first() {
        let s = survival_curve(&[0.5, 0.5]);
        assert!((s[0] - (-0.5f64).exp()).abs() < 1e-12);
        assert!((s[1] - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn survival_is_monotone_nonincreasing_and_in_unit_interval() {
        let hz = [0.0, 0.1, 2.0, 0.0, 0.3, 5.0];
        let s = survival_curve(&hz);
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn zero_hazard_means_certain_survival() {
        let s = survival_curve(&[0.0; 10]);
        assert!(s.iter().all(|&v| (v - 1.0).abs() < 1e-15));
    }

    #[test]
    fn negative_hazards_are_clamped() {
        let s = survival_curve(&[-3.0, -1.0]);
        assert_eq!(s, vec![1.0, 1.0]);
    }

    #[test]
    fn rolling_matches_batch_within_window() {
        let hz = [0.1, 0.2, 0.3];
        assert_eq!(rolling_survival(&hz, 10), survival_curve(&hz));
    }

    #[test]
    fn rolling_recovers_after_quiet_period() {
        let mut hz = vec![2.0; 5];
        hz.extend(vec![0.0; 10]);
        let s = rolling_survival(&hz, 5);
        assert!(s[4] < 1e-4);
        assert!((s[14] - 1.0).abs() < 1e-12, "recovered: {}", s[14]);
    }

    #[test]
    fn incremental_matches_batch() {
        let hz = [0.3, 0.0, 1.2, 0.7, 0.0, 0.1, 2.0, 0.0];
        let batch = rolling_survival(&hz, 3);
        let mut inc = RollingSurvival::new(3);
        for (t, &h) in hz.iter().enumerate() {
            let s = inc.push(h);
            assert!((s - batch[t]).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn nan_hazard_does_not_poison_the_window() {
        let mut inc = RollingSurvival::new(3);
        inc.push(0.5);
        let s = inc.push(f64::NAN);
        assert!(s.is_finite(), "NaN hazard leaked into survival: {s}");
        let s = inc.push(f64::INFINITY);
        assert!(s.is_finite());
        // Once the finite hazard rotates out, survival fully recovers.
        for _ in 0..3 {
            inc.push(0.0);
        }
        assert_eq!(inc.survival(), 1.0);
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let hz = [0.3, 0.0, 1.2, 0.7, 0.0];
        let mut a = RollingSurvival::new(3);
        for &h in &hz {
            a.push(h);
        }
        let (w, buf, head, filled, sum) = a.state();
        let mut b = RollingSurvival::restore(w, buf.to_vec(), head, filled, sum).unwrap();
        for &h in &[0.1, 2.0, 0.0, 0.4] {
            assert_eq!(a.push(h).to_bits(), b.push(h).to_bits());
        }
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        assert!(RollingSurvival::restore(0, vec![], 0, 0, 0.0).is_err());
        assert!(RollingSurvival::restore(2, vec![0.0; 3], 0, 0, 0.0).is_err());
        assert!(RollingSurvival::restore(2, vec![0.0; 2], 2, 0, 0.0).is_err());
        assert!(RollingSurvival::restore(2, vec![0.0; 2], 0, 3, 0.0).is_err());
        assert!(RollingSurvival::restore(2, vec![0.0; 2], 0, 0, f64::NAN).is_err());
        assert!(RollingSurvival::restore(2, vec![f64::NAN; 2], 0, 0, 0.0).is_err());
        assert!(RollingSurvival::restore(2, vec![0.0; 2], 0, 0, -1.0).is_err());
    }

    #[test]
    fn reset_restores_full_survival() {
        let mut inc = RollingSurvival::new(4);
        inc.push(3.0);
        assert!(inc.survival() < 0.1);
        inc.reset();
        assert_eq!(inc.survival(), 1.0);
    }
}
