//! Deterministic telemetry for the Xatu workspace.
//!
//! Xatu runs *beside* a commercial detector at an ISP (§2.1, §5.3 of the
//! paper), so the pipeline's health — epoch losses, calibration sweeps,
//! alert lifecycles, scrubbing-overhead distributions — must be observable
//! in production without perturbing the computation it observes. This crate
//! is the workspace's telemetry substrate, built around two contracts:
//!
//! 1. **Determinism.** Everything that enters the snapshot [`digest`]
//!    (counters, gauges, histograms, the event sequence) must be
//!    **bit-identical for every thread count**, the same contract
//!    `xatu-par` pins for the computation itself. Quantities that cannot
//!    satisfy this — wall-clock timings, allocation counts observed under
//!    a concurrent scheduler — go into the *wall* and *volatile* sections,
//!    which are exported in snapshots but excluded from the digest.
//!    Per-worker aggregation follows the `xatu-par` recipe: each worker
//!    owns its own state and results are stitched in worker-index order
//!    ([`Snapshot::absorb`], [`FixedHistogram::merge`]).
//! 2. **Compile-out.** With the `obs` cargo feature disabled (default on),
//!    every recording method is a no-op, sinks are never invoked, and
//!    snapshots are empty. Both paths are always type-checked — gating is
//!    `cfg!`, not `#[cfg]` item surgery — so the no-op build cannot rot.
//!
//! Structured events additionally stream through a [`Sink`]: the pipeline
//! routes its former ad-hoc `eprintln!` diagnostics through
//! [`StderrSink`] when verbose, and [`NullSink`] (or no sink) otherwise.
//!
//! Nothing here depends on any external crate.

pub mod event;
pub mod hist;
pub mod registry;

pub use event::{FieldValue, NullSink, ObsEvent, Sink, StderrSink};
pub use hist::FixedHistogram;
pub use registry::{HistSnapshot, Registry, Snapshot, TimingSnapshot};

/// True when the `obs` feature is compiled in (recording is live).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// A monotone event counter.
///
/// Embeds directly in hot-path structs (the packet sampler, the online
/// detector): an increment is one integer add with no allocation, and with
/// the `obs` feature off it compiles to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        if enabled() {
            self.0 += 1;
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        if enabled() {
            self.0 += n;
        }
    }

    /// The current count (always 0 with the feature disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Zeroes the counter in place — used when per-worker telemetry is
    /// folded into an aggregate between batches and reused.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// A last-value-wins gauge for deterministic `f64` readings.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Records a reading.
    #[inline]
    pub fn set(&mut self, v: f64) {
        if enabled() {
            self.0 = v;
        }
    }

    /// The last reading (0.0 with the feature disabled).
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Histogram bounds for survival probabilities in [0, 1]: log-dense near 0
/// (where a sharp model collapses during attacks) and near 1 (quiet
/// traffic).
pub const SURVIVAL_BOUNDS: &[f64] = &[
    1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0,
];

/// Histogram bounds for per-customer scrubbing-overhead ratios.
pub const OVERHEAD_BOUNDS: &[f64] = &[
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0,
];

/// Histogram bounds for consecutive-missing-minute run lengths seen by the
/// degraded online detector (fault injection): short blips, window-scale
/// gaps, and hour-plus collector outages land in separate buckets.
pub const GAP_RUN_BOUNDS: &[f64] = &[
    1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0, 60.0, 120.0, 360.0,
];

/// Global allocation-observation hook.
///
/// The workspace's benchmark binaries install counting global allocators
/// (`bench_alloc`, `tests/alloc_budget.rs`); when they also feed this hook,
/// instrumented code (the trainer's per-epoch stats) can report allocation
/// deltas in its *volatile* telemetry without owning the allocator itself.
/// In ordinary builds nothing feeds the hook and the deltas read 0.
pub mod alloc_hook {
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Records one allocation of `bytes` bytes. Safe to call from a
    /// `GlobalAlloc` implementation: one relaxed atomic add, no allocation.
    #[inline]
    pub fn note_alloc(bytes: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total allocations observed so far.
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Total bytes observed so far.
    pub fn bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        if enabled() {
            assert_eq!(c.get(), 5);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_keeps_last_value() {
        let mut g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        if enabled() {
            assert_eq!(g.get(), -2.25);
        } else {
            assert_eq!(g.get(), 0.0);
        }
    }

    #[test]
    fn alloc_hook_accumulates() {
        let before = alloc_hook::allocs();
        alloc_hook::note_alloc(64);
        assert_eq!(alloc_hook::allocs(), before + 1);
        assert!(alloc_hook::bytes() >= 64);
    }
}
