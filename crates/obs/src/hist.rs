//! Fixed-bucket histograms.
//!
//! Buckets are defined by a `'static` slice of upper bounds chosen at
//! construction, plus one implicit overflow bucket, so observing a value is
//! a short scan with no allocation — embeddable in per-minute hot paths.
//! Merging sums bucket-wise, which is order-independent over integers, so
//! per-worker histograms stitched in any order produce the same counts.

/// A histogram over fixed, caller-chosen bucket bounds.
///
/// `counts[i]` holds observations `v <= bounds[i]` (first matching bound);
/// `counts[bounds.len()]` is the overflow bucket. NaN observations are
/// counted separately and excluded from `sum`, so a single NaN reading can
/// never poison the aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedHistogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    nan: u64,
}

impl FixedHistogram {
    /// Creates a histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        FixedHistogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            nan: 0,
        }
    }

    /// Records one observation. No-op with the `obs` feature disabled.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if v.is_nan() {
            self.nan += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Adds another histogram's counts into this one. Panics if the bucket
    /// bounds differ.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.nan += other.nan;
    }

    /// Zeroes every bucket in place, keeping the allocation — used when a
    /// per-worker histogram is folded into an aggregate between batches
    /// and reused.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.nan = 0;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total non-NaN observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of non-NaN observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// NaN observations dropped from the buckets.
    pub fn nan_count(&self) -> u64 {
        self.nan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 2.0, 4.0];

    #[test]
    fn observations_land_in_expected_buckets() {
        let mut h = FixedHistogram::new(BOUNDS);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        if crate::enabled() {
            // <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; overflow: {100}.
            assert_eq!(h.counts(), &[2, 1, 1, 1]);
            assert_eq!(h.count(), 5);
            assert_eq!(h.sum(), 0.5 + 1.0 + 1.5 + 3.0 + 100.0);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn nan_is_isolated() {
        let mut h = FixedHistogram::new(BOUNDS);
        h.observe(f64::NAN);
        h.observe(1.0);
        if crate::enabled() {
            assert_eq!(h.nan_count(), 1);
            assert_eq!(h.count(), 1);
            assert_eq!(h.sum(), 1.0);
        }
    }

    #[test]
    fn reset_keeps_allocation_and_zeroes_counts() {
        let mut h = FixedHistogram::new(BOUNDS);
        h.observe(0.5);
        h.observe(f64::NAN);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.nan_count(), 0);
        assert!(h.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = FixedHistogram::new(BOUNDS);
        let mut b = FixedHistogram::new(BOUNDS);
        a.observe(0.5);
        b.observe(3.0);
        b.observe(9.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        if crate::enabled() {
            assert_eq!(ab.count(), 3);
        }
    }
}
