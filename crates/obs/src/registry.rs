//! The recording registry and its deterministic snapshots.

use crate::event::{FieldValue, ObsEvent, Sink};
use crate::hist::FixedHistogram;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Aggregated wall-clock timing for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimingSnapshot {
    /// Number of spans recorded.
    pub count: u64,
    /// Total wall-clock seconds across spans.
    pub total_seconds: f64,
}

/// Exported view of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last entry is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total non-NaN observations.
    pub count: u64,
    /// Sum of non-NaN observations.
    pub sum: f64,
    /// NaN observations dropped from the buckets.
    pub nan: u64,
}

/// A frozen, order-canonical view of a [`Registry`].
///
/// Counters, gauges, histograms and the event sequence are the
/// **deterministic** sections: they enter [`Snapshot::digest`] and must be
/// bit-identical across thread counts. `wall` (span timings) and
/// `volatile` (e.g. allocation counts) are exported for operators but
/// excluded from the digest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Fixed-bucket histograms, sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Structured events in recording order.
    pub events: Vec<ObsEvent>,
    /// Wall-clock span timings, sorted by name (digest-exempt).
    pub wall: Vec<(String, TimingSnapshot)>,
    /// Scheduler-dependent counters, sorted by name (digest-exempt).
    pub volatile: Vec<(String, u64)>,
}

impl Snapshot {
    /// FNV-1a digest over the deterministic sections (counters, gauges,
    /// histograms, event sequence). Wall timings and volatile counters are
    /// excluded by construction, so two runs of the same seeded work at
    /// different thread counts produce the same digest.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, v) in &self.counters {
            h.str("c").str(name).u64(*v);
        }
        for (name, v) in &self.gauges {
            h.str("g").str(name).f64(*v);
        }
        for (name, hist) in &self.histograms {
            h.str("h").str(name);
            for b in &hist.bounds {
                h.f64(*b);
            }
            for c in &hist.counts {
                h.u64(*c);
            }
            h.u64(hist.count).f64(hist.sum).u64(hist.nan);
        }
        for e in &self.events {
            h.str("e").str(e.kind);
            for (name, value) in &e.fields {
                h.str(name);
                match value {
                    FieldValue::U64(v) => h.str("u").u64(*v),
                    FieldValue::I64(v) => h.str("i").u64(*v as u64),
                    FieldValue::F64(v) => h.str("f").f64(*v),
                    FieldValue::Str(v) => h.str("s").str(v),
                };
            }
        }
        h.finish()
    }

    /// Merges another snapshot into this one: counters and volatile
    /// counters sum, gauges take the other's value, histograms merge
    /// bucket-wise, events and wall timings append/sum. Merging is
    /// deterministic given the operand order — stitch per-worker or
    /// per-phase snapshots in a fixed order, exactly like `xatu-par`
    /// stitches block results.
    pub fn absorb(&mut self, other: &Snapshot) {
        merge_sum_u64(&mut self.counters, &other.counters);
        merge_last_f64(&mut self.gauges, &other.gauges);
        for (name, hist) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => {
                    let mine = &mut self.histograms[i].1;
                    assert_eq!(mine.bounds, hist.bounds, "histogram bounds mismatch: {name}");
                    for (a, b) in mine.counts.iter_mut().zip(&hist.counts) {
                        *a += b;
                    }
                    mine.count += hist.count;
                    mine.sum += hist.sum;
                    mine.nan += hist.nan;
                }
                Err(i) => self.histograms.insert(i, (name.clone(), hist.clone())),
            }
        }
        self.events.extend(other.events.iter().cloned());
        for (name, t) in &other.wall {
            match self.wall.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => {
                    self.wall[i].1.count += t.count;
                    self.wall[i].1.total_seconds += t.total_seconds;
                }
                Err(i) => self.wall.insert(i, (name.clone(), *t)),
            }
        }
        merge_sum_u64(&mut self.volatile, &other.volatile);
    }

    /// The value of a counter, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram for `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Events of one kind, in recording order.
    pub fn events_of(&self, kind: &str) -> Vec<&ObsEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Compact JSON rendering of the whole snapshot, digest included.
    /// Floats use shortest-roundtrip formatting, so finite values survive a
    /// write/read cycle bit-exactly (same convention as the workspace's
    /// `serde_json` stand-in).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"digest\":\"{:016x}\"", self.digest()));
        out.push_str(",\"counters\":{");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, &self.gauges, |v| format!("{v:?}"));
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"bounds\":{:?},\"counts\":{:?},\"count\":{},\"sum\":{:?},\"nan\":{}}}",
                json_str(name),
                h.bounds,
                h.counts,
                h.count,
                h.sum,
                h.nan
            ));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"kind\":{}", json_str(e.kind)));
            for (name, value) in &e.fields {
                out.push(',');
                out.push_str(&json_str(name));
                out.push(':');
                match value {
                    FieldValue::U64(v) => out.push_str(&v.to_string()),
                    FieldValue::I64(v) => out.push_str(&v.to_string()),
                    FieldValue::F64(v) => out.push_str(&format!("{v:?}")),
                    FieldValue::Str(v) => out.push_str(&json_str(v)),
                }
            }
            out.push('}');
        }
        out.push_str("],\"wall\":{");
        for (i, (name, t)) in self.wall.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_seconds\":{:?}}}",
                json_str(name),
                t.count,
                t.total_seconds
            ));
        }
        out.push_str("},\"volatile\":{");
        push_entries(&mut out, &self.volatile, |v| v.to_string());
        out.push_str("}}");
        out
    }
}

fn push_entries<V>(out: &mut String, entries: &[(String, V)], fmt: impl Fn(&V) -> String) {
    for (i, (name, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(name));
        out.push(':');
        out.push_str(&fmt(v));
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn merge_sum_u64(into: &mut Vec<(String, u64)>, from: &[(String, u64)]) {
    for (name, v) in from {
        match into.binary_search_by(|(n, _)| n.cmp(name)) {
            Ok(i) => into[i].1 += v,
            Err(i) => into.insert(i, (name.clone(), *v)),
        }
    }
}

fn merge_last_f64(into: &mut Vec<(String, f64)>, from: &[(String, f64)]) {
    for (name, v) in from {
        match into.binary_search_by(|(n, _)| n.cmp(name)) {
            Ok(i) => into[i].1 = *v,
            Err(i) => into.insert(i, (name.clone(), *v)),
        }
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn bytes(&mut self, b: &[u8]) -> &mut Self {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }
    fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes()).bytes(&[0xff])
    }
    fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> &mut Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The mutable recording surface.
///
/// One registry is owned per sequential recording context (a pipeline run,
/// a training call). Parallel sections record into per-worker state
/// (embedded [`crate::Counter`]s / [`FixedHistogram`]s) that the owner
/// merges back in worker-index order.
#[derive(Default)]
pub struct Registry {
    sink: Option<Arc<dyn Sink>>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, FixedHistogram>,
    events: Vec<ObsEvent>,
    wall: BTreeMap<&'static str, TimingSnapshot>,
    volatile: BTreeMap<&'static str, u64>,
}

impl Registry {
    /// A registry with no sink.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry that forwards events and traces to `sink`.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Registry {
            sink: Some(sink),
            ..Registry::default()
        }
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if crate::enabled() {
            *self.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Sets a gauge. The value must be deterministic (it enters the
    /// digest); wall-clock readings belong in [`Registry::record_wall`].
    #[inline]
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        if crate::enabled() {
            self.gauges.insert(name, v);
        }
    }

    /// Records one observation into the named fixed-bucket histogram
    /// (created on first use with `bounds`).
    #[inline]
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], v: f64) {
        if crate::enabled() {
            self.hists
                .entry(name)
                .or_insert_with(|| FixedHistogram::new(bounds))
                .observe(v);
        }
    }

    /// Merges a pre-aggregated histogram (e.g. a per-worker or per-detector
    /// one) into the named histogram.
    pub fn merge_histogram(&mut self, name: &'static str, h: &FixedHistogram) {
        if crate::enabled() {
            self.hists
                .entry(name)
                .or_insert_with(|| FixedHistogram::new(h.bounds()))
                .merge(h);
        }
    }

    /// Records a structured event: stored in the snapshot (and digest) and
    /// forwarded to the sink.
    pub fn event(&mut self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if !crate::enabled() {
            return;
        }
        if let Some(sink) = &self.sink {
            sink.emit(kind, &fields);
        }
        self.events.push(ObsEvent { kind, fields });
    }

    /// Emits a sink-only diagnostic: never stored, never digested. The
    /// replacement for ad-hoc `eprintln!` debugging.
    pub fn trace(&self, kind: &'static str, fields: &[(&'static str, FieldValue)]) {
        if crate::enabled() {
            if let Some(sink) = &self.sink {
                sink.emit(kind, fields);
            }
        }
    }

    /// Records a completed wall-clock span (digest-exempt).
    pub fn record_wall(&mut self, name: &'static str, seconds: f64) {
        if crate::enabled() {
            let t = self.wall.entry(name).or_default();
            t.count += 1;
            t.total_seconds += seconds;
        }
    }

    /// Times `f` as a wall-clock span named `name` (digest-exempt).
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if !crate::enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record_wall(name, start.elapsed().as_secs_f64());
        out
    }

    /// Adds `n` to a scheduler-dependent counter (digest-exempt).
    pub fn add_volatile(&mut self, name: &'static str, n: u64) {
        if crate::enabled() {
            *self.volatile.entry(name).or_insert(0) += n;
        }
    }

    /// Freezes the current state into an order-canonical snapshot.
    pub fn snapshot(&self) -> Snapshot {
        if !crate::enabled() {
            return Snapshot::default();
        }
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        HistSnapshot {
                            bounds: h.bounds().to_vec(),
                            counts: h.counts().to_vec(),
                            count: h.count(),
                            sum: h.sum(),
                            nan: h.nan_count(),
                        },
                    )
                })
                .collect(),
            events: self.events.clone(),
            wall: self.wall.iter().map(|(k, t)| (k.to_string(), *t)).collect(),
            volatile: self
                .volatile
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NullSink;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.inc("alerts");
        r.add("flows", 10);
        r.gauge("loss", 0.25);
        r.observe("survival", crate::SURVIVAL_BOUNDS, 0.4);
        r.event("phase", vec![("name", "train".into()), ("minute", 5u32.into())]);
        r.record_wall("phase_a", 1.25);
        r.add_volatile("allocs", 3);
        r
    }

    #[test]
    fn snapshot_sections_are_populated_when_enabled() {
        let s = sample_registry().snapshot();
        if crate::enabled() {
            assert_eq!(s.counter("alerts"), 1);
            assert_eq!(s.counter("flows"), 10);
            assert_eq!(s.gauge("loss"), Some(0.25));
            assert_eq!(s.histogram("survival").unwrap().count, 1);
            assert_eq!(s.events_of("phase").len(), 1);
            assert_eq!(s.wall.len(), 1);
            assert_eq!(s.volatile, vec![("allocs".to_string(), 3)]);
        } else {
            assert_eq!(s, Snapshot::default());
            assert_eq!(s.counter("alerts"), 0);
        }
    }

    #[test]
    fn digest_ignores_wall_and_volatile() {
        let mut a = sample_registry();
        let base = a.snapshot().digest();
        a.record_wall("phase_a", 99.0);
        a.add_volatile("allocs", 1_000_000);
        assert_eq!(a.snapshot().digest(), base);
        a.inc("alerts");
        if crate::enabled() {
            assert_ne!(a.snapshot().digest(), base);
        }
    }

    #[test]
    fn digest_is_insertion_order_independent_for_counters() {
        let mut a = Registry::new();
        a.inc("x");
        a.inc("y");
        let mut b = Registry::new();
        b.inc("y");
        b.inc("x");
        assert_eq!(a.snapshot().digest(), b.snapshot().digest());
    }

    #[test]
    fn absorb_matches_single_registry_recording() {
        // Split the same recording across two registries, stitch in order,
        // and compare against recording it all in one — the per-worker
        // aggregation contract.
        let mut whole = Registry::new();
        whole.add("flows", 7);
        whole.observe("survival", crate::SURVIVAL_BOUNDS, 0.1);
        whole.observe("survival", crate::SURVIVAL_BOUNDS, 0.9);
        whole.event("e", vec![("i", 0u32.into())]);
        whole.event("e", vec![("i", 1u32.into())]);

        let mut w0 = Registry::new();
        w0.add("flows", 3);
        w0.observe("survival", crate::SURVIVAL_BOUNDS, 0.1);
        w0.event("e", vec![("i", 0u32.into())]);
        let mut w1 = Registry::new();
        w1.add("flows", 4);
        w1.observe("survival", crate::SURVIVAL_BOUNDS, 0.9);
        w1.event("e", vec![("i", 1u32.into())]);

        let mut stitched = w0.snapshot();
        stitched.absorb(&w1.snapshot());
        assert_eq!(stitched.digest(), whole.snapshot().digest());
    }

    #[test]
    fn json_contains_digest_and_sections() {
        let s = sample_registry().snapshot();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"digest\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"events\""));
        if crate::enabled() {
            assert!(json.contains("\"alerts\":1"));
            assert!(json.contains(&format!("{:016x}", s.digest())));
        }
    }

    #[test]
    fn sink_receives_events_and_traces() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingSink(AtomicUsize);
        impl Sink for CountingSink {
            fn emit(&self, _k: &str, _f: &[(&'static str, FieldValue)]) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(CountingSink(AtomicUsize::new(0)));
        let mut r = Registry::with_sink(sink.clone());
        r.event("a", vec![]);
        r.trace("b", &[]);
        let expected = if crate::enabled() { 2 } else { 0 };
        assert_eq!(sink.0.load(Ordering::Relaxed), expected);
        let _ = Registry::with_sink(Arc::new(NullSink));
    }

    #[test]
    fn time_returns_closure_result() {
        let mut r = Registry::new();
        assert_eq!(r.time("span", || 41 + 1), 42);
        if crate::enabled() {
            assert_eq!(r.snapshot().wall[0].1.count, 1);
        }
    }
}
