//! Structured events and the sink trait.
//!
//! An event is a `kind` plus a small list of named fields. Events recorded
//! through [`crate::Registry::event`] enter the deterministic snapshot (and
//! the digest); diagnostics emitted through [`crate::Registry::trace`] go
//! to the sink only — they are the replacement for ad-hoc `eprintln!`
//! debugging and never influence the digest.

use std::fmt;

/// One typed field value of a structured event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, minutes, addresses).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float — must be a deterministic quantity when recorded in an event.
    F64(f64),
    /// Text (attack-type names, phase labels).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:?}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A recorded structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsEvent {
    /// Event kind, e.g. `"pipeline.phase"` or `"train.epoch"`.
    pub kind: &'static str,
    /// Named fields in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A consumer of structured events (both digest-bearing events and
/// sink-only traces).
///
/// `emit` takes `&self`: sinks are shared across clones of the recording
/// context and must synchronize internally if they buffer.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, kind: &str, fields: &[(&'static str, FieldValue)]);
}

/// Discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _kind: &str, _fields: &[(&'static str, FieldValue)]) {}
}

/// Prints one human-readable line per event to stderr — the structured
/// replacement for the pipeline's former `eprintln!` diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct StderrSink {
    /// Line prefix, e.g. `"pipeline"`.
    pub prefix: &'static str,
}

impl Sink for StderrSink {
    fn emit(&self, kind: &str, fields: &[(&'static str, FieldValue)]) {
        let mut line = format!("[{}] {}", self.prefix, kind);
        for (name, value) in fields {
            line.push(' ');
            line.push_str(name);
            line.push('=');
            line.push_str(&value.to_string());
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_display_is_stable() {
        assert_eq!(FieldValue::U64(7).to_string(), "7");
        assert_eq!(FieldValue::I64(-3).to_string(), "-3");
        assert_eq!(FieldValue::F64(0.5).to_string(), "0.5");
        assert_eq!(FieldValue::Str("udp".into()).to_string(), "udp");
    }

    #[test]
    fn conversions_cover_common_types() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-1i64), FieldValue::I64(-1));
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
