//! Property-based tests for the composable attack-vector layer.
//!
//! Three contracts the scenario matrix depends on:
//!
//! * **Phase/envelope invariants** — for arbitrary valid carriers and
//!   shapes, `phase()` boundaries are exact and the shaped envelope stays
//!   finite, non-negative and peak-bounded.
//! * **Overlapping additivity** — a vector's pre-sampling emission is
//!   bit-identical whether it runs alone or overlapped with other vectors
//!   on the same victim (each vector draws from its own
//!   `(carrier id, minute)`-seeded stream).
//! * **Composition determinism** — `compose` is a pure function of
//!   `(family, seed)`: spans, schedules and the shaped envelopes replay to
//!   the same digest, which is what lets `bench_scenarios` gate survival
//!   bits across thread counts.

use proptest::prelude::*;
use xatu_simnet::botnet::customer_addr;
use xatu_simnet::{
    compose, victim_signature_bytes, AttackEvent, AttackPhase, AttackVector, ScenarioFamily,
    VectorShape, World, WorldConfig,
};
use xatu_netflow::attack::AttackType;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn carrier(victim_idx: usize, ty: AttackType, onset: u32, len: u32, ramp: u32) -> AttackEvent {
    AttackEvent {
        id: 7,
        victim: customer_addr(victim_idx),
        attack_type: ty,
        botnet_id: 0,
        prep_start: onset.saturating_sub(60),
        onset,
        ramp_minutes: ramp,
        end: onset + len,
        peak_bpm: 4e7,
        ramp_dr: 1.0,
        wave_id: None,
        spoofed_frac: 0.2,
        spoof_detectable_frac: 0.5,
        ramp_volume_scale: 1.0,
        prep_intensity: 1.0,
    }
}

/// A tiny attack-free world sized for per-case stepping.
fn tiny_world(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        n_customers: 3,
        days: 1,
        n_chains: 0,
        sampling_rate: 1, // pre-sampling: additivity is exact
        ..WorldConfig::smoke_test(seed)
    }
}

proptest! {
    /// Phase boundaries are exact and every shaped envelope stays finite,
    /// non-negative and strictly peak-bounded, for arbitrary valid shapes.
    #[test]
    fn phase_and_envelope_invariants(
        onset in 100u32..4000,
        len in 1u32..120,
        ramp in 0u32..8,
        on in 1u32..6,
        off in 1u32..6,
        phase in 0u32..12,
        growth in 0.01f64..0.5,
    ) {
        let c = carrier(0, AttackType::UdpFlood, onset, len, ramp.min(len));
        prop_assert_eq!(c.validate(), Ok(()));
        // Boundary semantics, pinned: [prep_start, onset) prepares,
        // [onset, end) attacks, everything else is inactive.
        prop_assert_eq!(c.phase(c.prep_start.wrapping_sub(1)), AttackPhase::Inactive);
        prop_assert_eq!(c.phase(c.prep_start), AttackPhase::Preparation);
        prop_assert!(c.phase(c.onset) != AttackPhase::Preparation);
        prop_assert!(c.phase(c.onset) != AttackPhase::Inactive);
        prop_assert_eq!(c.phase(c.end), AttackPhase::Inactive);
        prop_assert_eq!(c.phase(c.end - 1) == AttackPhase::Plateau,
            c.end - 1 >= c.onset + c.ramp_minutes);
        for shape in [
            VectorShape::Constant,
            VectorShape::Pulse { on, off, phase },
            VectorShape::LowAndSlow { growth },
        ] {
            let v = AttackVector { carrier: c.clone(), shape };
            prop_assert_eq!(v.validate(), Ok(()));
            for m in c.prep_start.saturating_sub(2)..c.end + 2 {
                let bpm = v.bpm_at(m);
                prop_assert!(bpm.is_finite());
                prop_assert!(bpm >= 0.0);
                prop_assert!(bpm <= c.peak_bpm * (1.0 + 1e-9));
                if m < c.onset || m >= c.end {
                    prop_assert_eq!(bpm, 0.0);
                }
            }
        }
    }

    /// A vector's pre-sampling emission on its victim is unchanged by
    /// co-resident overlapping vectors (the composability contract).
    #[test]
    fn overlapping_vectors_are_additive(
        seed in 0u64..200,
        on in 1u32..4,
        off in 1u32..4,
        phase in 0u32..6,
        stagger in 0u32..10,
    ) {
        let probe = AttackVector {
            carrier: carrier(0, AttackType::TcpSyn, 200, 30, 3),
            shape: VectorShape::Constant,
        };
        let other = AttackVector {
            carrier: carrier(0, AttackType::IcmpFlood, 200 + stagger, 30, 0),
            shape: VectorShape::Pulse { on, off, phase },
        };
        let sig = AttackType::TcpSyn.signature();
        let victim = probe.victim();
        let last = 232;

        let mut solo = World::new(tiny_world(seed));
        solo.inject_vector(probe.clone()).expect("valid vector");
        let mut overlapped = World::new(tiny_world(seed));
        overlapped.inject_vector(probe).expect("valid vector");
        overlapped.inject_vector(other).expect("valid vector");

        for minute in 0..last {
            let a = victim_signature_bytes(&solo.step(), victim, &sig);
            let b = victim_signature_bytes(&overlapped.step(), victim, &sig);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "minute {}", minute);
        }
    }

    /// `compose` is a pure function of `(family, seed)`: spans and the
    /// shaped schedule replay to the identical digest.
    #[test]
    fn composition_replays_to_the_same_digest(
        seed in 0u64..500,
        fam in 0usize..4,
    ) {
        let family = ScenarioFamily::ALL[fam];
        let base = WorldConfig::smoke_test(seed);
        let digest_of = |scn: &xatu_simnet::ComposedScenario| {
            let mut bytes = Vec::new();
            for span in &scn.spans {
                bytes.extend_from_slice(&span.victim.octets());
                bytes.extend_from_slice(&span.onset.to_le_bytes());
                bytes.extend_from_slice(&span.end.to_le_bytes());
            }
            for v in scn.world.vectors() {
                let (start, end) = v.active_range();
                bytes.extend_from_slice(&start.to_le_bytes());
                for m in (start..end).step_by(7) {
                    bytes.extend_from_slice(&v.bpm_at(m).to_bits().to_le_bytes());
                }
            }
            fnv1a64(&bytes)
        };
        let one = compose(family, &base);
        let two = compose(family, &base);
        prop_assert!(!one.spans.is_empty());
        for v in one.world.vectors() {
            prop_assert_eq!(v.validate(), Ok(()));
        }
        prop_assert_eq!(digest_of(&one), digest_of(&two));
    }
}
