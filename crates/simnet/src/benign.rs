//! Benign traffic model.
//!
//! Each customer gets a log-normal base volume with a diurnal sinusoid, a
//! weekly modulation, per-minute log-normal noise, and occasional benign
//! flash crowds (sudden legitimate traffic surges lasting tens of minutes).
//! Flash crowds matter: they are the benign spikes that make naive
//! sensitivity increases expensive (§1), so Xatu must learn to tell them
//! apart from attack ramps via auxiliary signals.

use crate::botnet::Ecosystem;
use crate::config::WorldConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::record::{FlowRecord, Protocol, TcpFlags};
use xatu_netflow::MINUTES_PER_DAY;

/// Per-customer benign traffic profile.
#[derive(Clone, Debug)]
pub struct BenignProfile {
    customer: Ipv4,
    /// Base volume, bytes/minute.
    base_bpm: f64,
    /// Diurnal phase offset (minutes).
    phase: f64,
    /// Diurnal amplitude in [0, 1).
    diurnal_amp: f64,
    /// Active flash crowd, if any: (end minute, multiplier).
    flash: Option<(u32, f64)>,
    /// Per-customer RNG.
    rng: StdRng,
    flash_prob: f64,
}

impl BenignProfile {
    /// Builds the profile for customer `i`.
    pub fn new(cfg: &WorldConfig, i: usize, customer: Ipv4) -> Self {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0xA24B_AED4)
                .wrapping_add(i as u64 * 7919 + 13),
        );
        let z = standard_normal(&mut rng);
        let base_bpm = cfg.benign_median_bpm * (cfg.benign_sigma * z).exp();
        BenignProfile {
            customer,
            base_bpm,
            phase: rng.random_range(0.0..MINUTES_PER_DAY as f64),
            diurnal_amp: rng.random_range(0.3..0.6),
            flash: None,
            rng,
            flash_prob: cfg.flash_crowd_prob,
        }
    }

    /// The expected benign volume at `minute` (before noise).
    pub fn expected_bpm(&self, minute: u32) -> f64 {
        let day_frac =
            ((minute as f64 + self.phase) % MINUTES_PER_DAY as f64) / MINUTES_PER_DAY as f64;
        let diurnal = 1.0 + self.diurnal_amp * (std::f64::consts::TAU * day_frac).sin();
        let week_frac = (minute as f64 / (7.0 * MINUTES_PER_DAY as f64)).fract();
        let weekly = 1.0 + 0.15 * (std::f64::consts::TAU * week_frac).sin();
        self.base_bpm * diurnal * weekly
    }

    /// Emits the benign flows for one minute.
    pub fn emit(&mut self, minute: u32, out: &mut Vec<FlowRecord>) {
        // Flash-crowd lifecycle.
        if let Some((end, _)) = self.flash {
            if minute >= end {
                self.flash = None;
            }
        }
        if self.flash.is_none() && self.rng.random_bool(self.flash_prob) {
            let dur = self.rng.random_range(10..40);
            let mult = self.rng.random_range(3.0..6.5);
            self.flash = Some((minute + dur, mult));
        }

        let mut volume = self.expected_bpm(minute);
        // Log-normal minute noise, sigma 0.25.
        volume *= (0.25 * standard_normal(&mut self.rng)).exp();
        if let Some((_, mult)) = self.flash {
            volume *= mult;
        }

        // Split the volume across a Poisson-ish number of flows.
        let n_flows = self.rng.random_range(12..28usize);
        let per_flow = volume / n_flows as f64;
        for k in 0..n_flows {
            let src = Ecosystem::benign_source(
                (minute as u64) << 24 | (self.customer.0 as u64) << 8 | k as u64,
            );
            let roll: f64 = self.rng.random();
            let (proto, src_port, dst_port, flags) = if roll < 0.70 {
                // Web-ish TCP.
                let dport = if self.rng.random_bool(0.5) { 443 } else { 80 };
                (
                    Protocol::Tcp,
                    self.rng.random_range(1024..65535),
                    dport,
                    TcpFlags::ACK.union(TcpFlags::PSH),
                )
            } else if roll < 0.95 {
                // UDP: DNS answers, NTP, media.
                let sport = match self.rng.random_range(0..3) {
                    0 => 53,
                    1 => 123,
                    _ => self.rng.random_range(1024..65535),
                };
                (Protocol::Udp, sport, self.rng.random_range(1024..65535), TcpFlags::default())
            } else {
                (Protocol::Icmp, 0, 0, TcpFlags::default())
            };
            let bytes = (per_flow * self.rng.random_range(0.5..1.5)).max(64.0) as u64;
            let packets = (bytes / 700).max(1);
            out.push(FlowRecord {
                minute,
                src,
                dst: self.customer,
                proto,
                src_port,
                dst_port,
                tcp_flags: flags,
                bytes,
                packets,
                sampling: 1,
            });
        }
    }

    /// The customer this profile serves.
    pub fn customer(&self) -> Ipv4 {
        self.customer
    }

    /// Base volume (diagnostics).
    pub fn base_bpm(&self) -> f64 {
        self.base_bpm
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::botnet::customer_addr;

    fn profile(seed: u64) -> BenignProfile {
        let cfg = WorldConfig {
            seed,
            ..WorldConfig::default()
        };
        BenignProfile::new(&cfg, 0, customer_addr(0))
    }

    #[test]
    fn deterministic_emission() {
        let mut a = profile(5);
        let mut b = profile(5);
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        for m in 0..100 {
            a.emit(m, &mut fa);
            b.emit(m, &mut fb);
        }
        assert_eq!(fa, fb);
    }

    #[test]
    fn diurnal_pattern_is_visible() {
        let p = profile(7);
        let vols: Vec<f64> = (0..MINUTES_PER_DAY).map(|m| p.expected_bpm(m)).collect();
        let max = vols.iter().cloned().fold(f64::MIN, f64::max);
        let min = vols.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "diurnal swing too small: {}", max / min);
    }

    #[test]
    fn emitted_volume_tracks_expected() {
        let mut p = profile(9);
        let mut total = 0.0;
        let mut expected = 0.0;
        for m in 0..500 {
            let mut flows = Vec::new();
            p.emit(m, &mut flows);
            // Skip flash-crowd minutes for this average check.
            if p.flash.is_none() {
                total += flows.iter().map(|f| f.bytes as f64).sum::<f64>();
                expected += p.expected_bpm(m);
            }
        }
        let ratio = total / expected;
        assert!((0.7..1.4).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn flash_crowds_eventually_happen_and_end() {
        let cfg = WorldConfig {
            seed: 11,
            flash_crowd_prob: 0.05,
            ..WorldConfig::default()
        };
        let mut p = BenignProfile::new(&cfg, 0, customer_addr(0));
        let mut saw_flash = false;
        let mut saw_quiet_after = false;
        for m in 0..2000 {
            let mut flows = Vec::new();
            p.emit(m, &mut flows);
            if p.flash.is_some() {
                saw_flash = true;
            } else if saw_flash {
                saw_quiet_after = true;
            }
        }
        assert!(saw_flash && saw_quiet_after);
    }

    #[test]
    fn flows_target_the_customer() {
        let mut p = profile(13);
        let mut flows = Vec::new();
        p.emit(0, &mut flows);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.dst == customer_addr(0)));
        assert!(flows.iter().all(|f| f.bytes >= 64 && f.packets >= 1));
    }

    #[test]
    fn base_volumes_vary_across_customers() {
        let cfg = WorldConfig::default();
        let bases: Vec<f64> = (0..10)
            .map(|i| BenignProfile::new(&cfg, i, customer_addr(i)).base_bpm())
            .collect();
        let max = bases.iter().cloned().fold(f64::MIN, f64::max);
        let min = bases.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min * 1.5, "heterogeneity expected");
    }
}
