//! Composable attack vectors: shape-modulated traffic on a carrier event.
//!
//! An [`AttackVector`] wraps a carrier [`AttackEvent`] — which supplies the
//! victim, attack type, botnet, preparation window and peak volume — with a
//! [`VectorShape`] that modulates the anomalous volume minute by minute.
//! Several vectors can overlap in time on one victim (multi-vector floods,
//! carpet-bombing across a prefix) because each vector emits from its own
//! `(carrier id, minute)`-seeded RNG: a vector's flows are bit-identical
//! whether it runs alone or alongside others, so composed emission is
//! exactly the concatenation of the individual emissions.
//!
//! The shapes are the evasive envelopes real attackers use against
//! threshold detectors:
//!
//! * [`VectorShape::Constant`] — the carrier's own ramp-then-plateau.
//! * [`VectorShape::Pulse`] — an on/off train; with the on-run shorter
//!   than a detector's sustain requirement, every off minute resets the
//!   detector's consecutive-anomaly counter.
//! * [`VectorShape::LowAndSlow`] — a slow multiplicative ramp across the
//!   whole anomalous window; with per-minute growth below what an EWMA
//!   baseline absorbs, the volume/baseline ratio stays under the anomaly
//!   multiplier forever.

use crate::attack::{AttackEvent, AttackPhase, InvalidEvent, RAMP_DR_FLOOR};
use crate::botnet::Botnet;
use xatu_netflow::addr::{Ipv4, Subnet24};
use xatu_netflow::attack::AttackType;
use xatu_netflow::record::FlowRecord;

/// How a vector modulates its carrier's anomalous volume over time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VectorShape {
    /// The carrier's own ramp-then-plateau envelope, unmodified.
    Constant,
    /// An on/off pulse train over the anomalous span: `on` minutes at the
    /// carrier's envelope volume, then `off` minutes of silence, repeating.
    Pulse {
        /// Minutes per burst (≥ 1).
        on: u32,
        /// Silent minutes between bursts (≥ 1).
        off: u32,
        /// Phase offset into the cycle at the onset minute.
        phase: u32,
    },
    /// A slow multiplicative ramp spanning the whole anomalous window:
    /// volume multiplies by `1 + growth` each minute and lands exactly on
    /// the carrier's peak at the final minute before `end`.
    LowAndSlow {
        /// Per-minute fractional growth (finite, > 0).
        growth: f64,
    },
}

/// One composable attack vector: a carrier event plus a volume shape.
#[derive(Clone, Debug)]
pub struct AttackVector {
    /// Supplies victim, type, botnet, prep window, peak and RNG identity.
    pub carrier: AttackEvent,
    /// Modulates the carrier's anomalous volume.
    pub shape: VectorShape,
}

impl AttackVector {
    /// Validates the carrier and the shape parameters.
    pub fn validate(&self) -> Result<(), InvalidEvent> {
        self.carrier.validate()?;
        match self.shape {
            VectorShape::Constant => Ok(()),
            VectorShape::Pulse { on, off, .. } => {
                if on == 0 || off == 0 {
                    // A degenerate train is either always-on (Constant) or
                    // always-off (no attack); both are misconfigurations.
                    Err(InvalidEvent::EmptyAttack {
                        onset: self.carrier.onset,
                        end: self.carrier.onset + on,
                    })
                } else {
                    Ok(())
                }
            }
            VectorShape::LowAndSlow { growth } => {
                if growth.is_finite() && growth > 0.0 {
                    Ok(())
                } else {
                    Err(InvalidEvent::BadRampRate(growth))
                }
            }
        }
    }

    /// The victim this vector targets.
    pub fn victim(&self) -> Ipv4 {
        self.carrier.victim
    }

    /// The attack type of the emitted flows.
    pub fn attack_type(&self) -> AttackType {
        self.carrier.attack_type
    }

    /// `[first, last)` minutes where the vector can emit anything at all.
    pub fn active_range(&self) -> (u32, u32) {
        (self.carrier.prep_start, self.carrier.end)
    }

    /// Shape-modulated anomalous volume (bytes/minute) at `minute`.
    pub fn bpm_at(&self, minute: u32) -> f64 {
        let attacking = matches!(
            self.carrier.phase(minute),
            AttackPhase::RampUp | AttackPhase::Plateau
        );
        if !attacking {
            return 0.0;
        }
        match self.shape {
            VectorShape::Constant => self.carrier.anomalous_bpm(minute),
            VectorShape::Pulse { on, off, phase } => {
                let t = minute - self.carrier.onset;
                let cycle = on.saturating_add(off).max(1);
                if (t.wrapping_add(phase)) % cycle < on.max(1) {
                    self.carrier.anomalous_bpm(minute)
                } else {
                    0.0
                }
            }
            VectorShape::LowAndSlow { growth } => {
                let d = self.carrier.duration() as f64;
                let t = (minute - self.carrier.onset) as f64;
                let g = if growth.is_finite() {
                    growth.max(RAMP_DR_FLOOR)
                } else {
                    RAMP_DR_FLOOR
                };
                // Lands exactly on the peak at the final minute (t = d-1).
                self.carrier.peak_bpm * (1.0 + g).powf(t - (d - 1.0))
            }
        }
    }

    /// Emits the vector's flows for one minute. Preparation probing is the
    /// carrier's; attack minutes emit at the shape-modulated volume.
    pub fn emit(
        &self,
        minute: u32,
        botnet: &Botnet,
        resolvers: &[Subnet24],
        out: &mut Vec<FlowRecord>,
    ) {
        match self.carrier.phase(minute) {
            AttackPhase::Inactive => {}
            AttackPhase::Preparation => self.carrier.emit_prep(minute, botnet, resolvers, out),
            AttackPhase::RampUp | AttackPhase::Plateau => {
                self.carrier
                    .emit_attack_volume(minute, self.bpm_at(minute), botnet, resolvers, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::botnet::Ecosystem;
    use crate::config::WorldConfig;

    fn carrier() -> AttackEvent {
        AttackEvent {
            id: 3,
            victim: Ipv4::from_octets(20, 0, 0, 1),
            attack_type: AttackType::TcpSyn,
            botnet_id: 0,
            prep_start: 0,
            onset: 1000,
            ramp_minutes: 4,
            end: 1060,
            peak_bpm: 5e7,
            ramp_dr: 1.0,
            wave_id: None,
            spoofed_frac: 0.2,
            spoof_detectable_frac: 0.5,
            ramp_volume_scale: 1.0,
            prep_intensity: 1.0,
        }
    }

    fn eco() -> Ecosystem {
        Ecosystem::build(&WorldConfig::smoke_test(1))
    }

    #[test]
    fn constant_shape_matches_carrier() {
        let v = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Constant,
        };
        for m in 990..1070 {
            assert_eq!(v.bpm_at(m), v.carrier.anomalous_bpm(m), "minute {m}");
        }
    }

    #[test]
    fn pulse_duty_cycle_is_exact() {
        let v = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Pulse {
                on: 3,
                off: 2,
                phase: 0,
            },
        };
        // Plateau minutes: on for 3, off for 2, repeating from the onset.
        for t in 10..40u32 {
            let m = 1000 + t;
            let expect_on = t % 5 < 3;
            let bpm = v.bpm_at(m);
            if expect_on {
                assert_eq!(bpm, v.carrier.anomalous_bpm(m), "t={t}");
            } else {
                assert_eq!(bpm, 0.0, "t={t}");
            }
        }
        // Outside the anomalous window nothing pulses.
        assert_eq!(v.bpm_at(999), 0.0);
        assert_eq!(v.bpm_at(1060), 0.0);
    }

    #[test]
    fn pulse_off_minutes_emit_no_attack_flows() {
        let v = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Pulse {
                on: 3,
                off: 2,
                phase: 0,
            },
        };
        let eco = eco();
        let mut on_flows = Vec::new();
        let mut off_flows = Vec::new();
        v.emit(1010, &eco.botnets[0], &eco.resolvers, &mut on_flows);
        v.emit(1013, &eco.botnets[0], &eco.resolvers, &mut off_flows);
        assert!(!on_flows.is_empty());
        assert!(off_flows.is_empty());
    }

    #[test]
    fn low_and_slow_grows_multiplicatively_to_peak() {
        let v = AttackVector {
            carrier: carrier(),
            shape: VectorShape::LowAndSlow { growth: 0.08 },
        };
        let last = 1059;
        assert!((v.bpm_at(last) - v.carrier.peak_bpm).abs() < 1.0);
        let mut prev = v.bpm_at(1000);
        assert!(prev > 0.0 && prev < v.carrier.peak_bpm);
        for m in 1001..=last {
            let cur = v.bpm_at(m);
            assert!(((cur / prev) - 1.08).abs() < 1e-9, "minute {m}");
            prev = cur;
        }
    }

    #[test]
    fn vector_validation_rejects_degenerate_shapes() {
        let ok = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Pulse {
                on: 3,
                off: 2,
                phase: 1,
            },
        };
        assert_eq!(ok.validate(), Ok(()));
        let bad_pulse = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Pulse {
                on: 0,
                off: 2,
                phase: 0,
            },
        };
        assert!(bad_pulse.validate().is_err());
        let bad_slow = AttackVector {
            carrier: carrier(),
            shape: VectorShape::LowAndSlow { growth: 0.0 },
        };
        assert!(bad_slow.validate().is_err());
        let mut bad_carrier = ok.clone();
        bad_carrier.carrier.end = bad_carrier.carrier.onset;
        assert!(bad_carrier.validate().is_err());
    }

    #[test]
    fn emission_is_independent_of_minute_order() {
        let v = AttackVector {
            carrier: carrier(),
            shape: VectorShape::Constant,
        };
        let eco = eco();
        let mut a = Vec::new();
        let mut b = Vec::new();
        v.emit(1020, &eco.botnets[0], &eco.resolvers, &mut a);
        v.emit(1021, &eco.botnets[0], &eco.resolvers, &mut b);
        let mut a2 = Vec::new();
        v.emit(1020, &eco.botnets[0], &eco.resolvers, &mut a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
