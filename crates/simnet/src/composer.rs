//! The adversarial scenario matrix: evasion-aware composition of attack
//! vectors into named scenario families.
//!
//! Each family is a deterministic function of the base [`WorldConfig`]
//! (seed included): it builds a benign-only world at the base scale and
//! injects [`AttackVector`]s whose shapes are *tuned against the detector
//! time constants* in [`DetectorTimeConstants`]:
//!
//! * [`ScenarioFamily::MultiVector`] — three flood components (SYN + UDP +
//!   ICMP) overlapping on one victim with staggered onsets. The control
//!   family: loud enough that volumetric detectors should fire.
//! * [`ScenarioFamily::PulseWave`] — an on/off train whose on-run is one
//!   minute shorter than the CDet fast-path sustain, so every off minute
//!   resets the consecutive-anomaly counter and the volumetric detector
//!   never accumulates enough evidence.
//! * [`ScenarioFamily::LowAndSlow`] — a slow multiplicative ramp whose
//!   per-minute growth keeps the volume/EWMA-baseline ratio strictly under
//!   the anomaly multiplier (steady state ratio `1 + growth/alpha`), so the
//!   baseline absorbs the attack forever.
//! * [`ScenarioFamily::CarpetBomb`] — modest same-botnet floods across the
//!   whole customer prefix, each sized under the per-victim anomaly
//!   multiplier so no single victim looks anomalous.
//!
//! The composed schedule and ground-truth spans are pure functions of the
//! config; nothing here depends on thread count or wall clock.

use crate::attack::AttackEvent;
use crate::botnet::customer_addr;
use crate::config::WorldConfig;
use crate::vectors::{AttackVector, VectorShape};
use crate::world::World;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_netflow::MINUTES_PER_DAY;

/// SplitMix64 finalizer for deterministic scenario placement.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The volumetric-detector time constants the evasion scheduler tunes
/// against.
///
/// `xatu-simnet` deliberately does not depend on `xatu-detectors`, so these
/// mirror the `NetScoutConfig` defaults; `xatu-core` cross-checks the
/// mirror against the real detector in its tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectorTimeConstants {
    /// EWMA learning rate of the detector's per-channel baseline.
    pub ewma_alpha: f64,
    /// Anomaly multiplier over the baseline.
    pub multiplier: f64,
    /// Consecutive anomalous minutes required to raise.
    pub sustain: u32,
    /// Fast-path sustain at elevated volume.
    pub fast_sustain: u32,
}

impl DetectorTimeConstants {
    /// The NetScout-style CDet defaults.
    pub fn netscout_default() -> Self {
        DetectorTimeConstants {
            ewma_alpha: 0.02,
            multiplier: 6.0,
            sustain: 8,
            fast_sustain: 4,
        }
    }

    /// Pulse train `(on, off)` that defeats the sustain logic: the on-run
    /// stays one minute short of the fast-path sustain (every off minute
    /// resets the consecutive-anomaly counter), and the off-run is the
    /// shortest that still resets, maximizing delivered volume.
    pub fn evasive_pulse(&self) -> (u32, u32) {
        (self.fast_sustain.saturating_sub(1).max(1), 2)
    }

    /// Per-minute growth for a low-and-slow ramp that the EWMA baseline
    /// absorbs: at growth `g` the steady-state volume/baseline ratio is
    /// `1 + g/alpha`, so anything below `alpha * (multiplier - 1)` stays
    /// under the anomaly multiplier forever. The 0.8 safety factor covers
    /// the pre-steady-state transient.
    pub fn evasive_growth(&self) -> f64 {
        0.8 * self.ewma_alpha * (self.multiplier - 1.0)
    }
}

/// The scenario families of the adversarial matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Overlapping SYN + UDP + ICMP flood components on one victim.
    MultiVector,
    /// On/off pulse train tuned under the CDet sustain logic.
    PulseWave,
    /// Slow multiplicative ramp tuned under the EWMA threshold.
    LowAndSlow,
    /// Modest same-botnet floods across the whole customer prefix.
    CarpetBomb,
}

impl ScenarioFamily {
    /// Every family, in matrix order.
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::MultiVector,
        ScenarioFamily::PulseWave,
        ScenarioFamily::LowAndSlow,
        ScenarioFamily::CarpetBomb,
    ];

    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::MultiVector => "multi_vector",
            ScenarioFamily::PulseWave => "pulse_wave",
            ScenarioFamily::LowAndSlow => "low_and_slow",
            ScenarioFamily::CarpetBomb => "carpet_bomb",
        }
    }
}

/// Ground truth for one attacked victim in a composed scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioSpan {
    /// Attacked customer.
    pub victim: Ipv4,
    /// First anomalous minute.
    pub onset: u32,
    /// Exclusive end of the anomalous window.
    pub end: u32,
}

/// A composed scenario: the world with vectors injected, plus ground truth.
pub struct ComposedScenario {
    /// Which family this is.
    pub family: ScenarioFamily,
    /// The benign-only world with the family's vectors injected.
    pub world: World,
    /// Per-victim ground-truth spans (sorted by victim then onset).
    pub spans: Vec<ScenarioSpan>,
}

/// A carrier event template for scenario vectors. The world assigns the
/// final id at injection.
#[allow(clippy::too_many_arguments)]
fn carrier(
    victim: Ipv4,
    ty: AttackType,
    prep_start: u32,
    onset: u32,
    ramp_minutes: u32,
    end: u32,
    peak_bpm: f64,
    seed: u64,
) -> AttackEvent {
    AttackEvent {
        id: 0, // replaced by World::inject_vector
        victim,
        attack_type: ty,
        botnet_id: 0,
        prep_start,
        onset,
        ramp_minutes,
        end,
        peak_bpm,
        ramp_dr: 1.0,
        wave_id: None,
        spoofed_frac: 0.15 + 0.1 * (splitmix64(seed) % 3) as f64,
        spoof_detectable_frac: 0.5,
        ramp_volume_scale: 1.0,
        prep_intensity: 1.0,
    }
}

/// Composes one scenario family over a benign-only copy of `base`.
///
/// The returned world keeps `base`'s seed (same customers, benign
/// profiles, botnet ecosystem and blocklists) but drops the background
/// attack chains, so the matrix measures exactly the injected vectors.
pub fn compose(family: ScenarioFamily, base: &WorldConfig) -> ComposedScenario {
    let cfg = WorldConfig {
        n_chains: 0,
        ..*base
    };
    let mut world = World::new(cfg);
    let consts = DetectorTimeConstants::netscout_default();
    let total = world.total_minutes();
    let n = world.customers().len();
    assert!(n > 0, "scenario worlds need at least one customer");

    // Onset late enough for detector warmup and prep history, with head
    // room for the longest family (low-and-slow runs 150 minutes).
    let onset = (total * 3 / 5).min(total.saturating_sub(240));
    let prep_start = onset.saturating_sub(2 * MINUTES_PER_DAY);
    // Baselines up front: the injection loop needs `world` mutably.
    let baselines: Vec<f64> = world
        .customers()
        .iter()
        .map(|&c| {
            world
                .baseline_bpm(c)
                .expect("every customer has a baseline")
        })
        .collect();
    let victim_of = |k: u64| -> usize { (splitmix64(base.seed ^ k) % n as u64) as usize };

    let mut spans = Vec::new();
    match family {
        ScenarioFamily::MultiVector => {
            // The control family: three overlapping flood components,
            // each loud on its own signature channel, staggered by a few
            // minutes. Volumetric detectors should catch this.
            let vi = victim_of(0x11);
            let v = customer_addr(vi);
            let peak = (12.0 * baselines[vi]).max(1.5e7);
            let end = onset + 45;
            for (i, ty) in [AttackType::TcpSyn, AttackType::UdpFlood, AttackType::IcmpFlood]
                .into_iter()
                .enumerate()
            {
                let o = onset + 6 * i as u32;
                world
                    .inject_vector(AttackVector {
                        carrier: carrier(v, ty, prep_start, o, 4, end, peak, base.seed ^ i as u64),
                        shape: VectorShape::Constant,
                    })
                    .expect("composed multi-vector carrier is valid");
            }
            spans.push(ScenarioSpan {
                victim: v,
                onset,
                end,
            });
        }
        ScenarioFamily::PulseWave => {
            // On-run one short of the fast-path sustain: the CDet
            // consecutive-anomaly counter never reaches its trigger.
            let vi = victim_of(0x22);
            let v = customer_addr(vi);
            let (on, off) = consts.evasive_pulse();
            let peak = (30.0 * baselines[vi]).max(3.0e7);
            let end = onset + 60;
            world
                .inject_vector(AttackVector {
                    carrier: carrier(
                        v,
                        AttackType::UdpFlood,
                        prep_start,
                        onset,
                        0,
                        end,
                        peak,
                        base.seed ^ 0x22,
                    ),
                    shape: VectorShape::Pulse { on, off, phase: 0 },
                })
                .expect("composed pulse carrier is valid");
            spans.push(ScenarioSpan {
                victim: v,
                onset,
                end,
            });
        }
        ScenarioFamily::LowAndSlow => {
            // Growth below what the EWMA baseline absorbs: the ratio to
            // baseline never reaches the anomaly multiplier.
            let vi = victim_of(0x33);
            let v = customer_addr(vi);
            let growth = consts.evasive_growth();
            let peak = (40.0 * baselines[vi]).max(4.0e7);
            let end = onset + 150;
            world
                .inject_vector(AttackVector {
                    carrier: carrier(
                        v,
                        AttackType::UdpFlood,
                        prep_start,
                        onset,
                        0,
                        end,
                        peak,
                        base.seed ^ 0x33,
                    ),
                    shape: VectorShape::LowAndSlow { growth },
                })
                .expect("composed low-and-slow carrier is valid");
            spans.push(ScenarioSpan {
                victim: v,
                onset,
                end,
            });
        }
        ScenarioFamily::CarpetBomb => {
            // One botnet, every customer in the prefix, each flood sized
            // under the per-victim anomaly multiplier.
            let end = onset + 40;
            for (i, baseline) in baselines.iter().enumerate().take(n) {
                let v = customer_addr(i);
                let peak = (3.5 * baseline).max(2.0e6);
                let o = onset + (splitmix64(base.seed ^ 0x44 ^ i as u64) % 3) as u32;
                world
                    .inject_vector(AttackVector {
                        carrier: carrier(
                            v,
                            AttackType::UdpFlood,
                            prep_start,
                            o,
                            2,
                            end,
                            peak,
                            base.seed ^ 0x44 ^ i as u64,
                        ),
                        shape: VectorShape::Constant,
                    })
                    .expect("composed carpet carrier is valid");
                spans.push(ScenarioSpan {
                    victim: v,
                    onset: o,
                    end,
                });
            }
        }
    }
    spans.sort_by_key(|s| (s.victim, s.onset));
    ComposedScenario {
        family,
        world,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn evasive_tuning_sits_under_detector_constants() {
        let c = DetectorTimeConstants::netscout_default();
        let (on, off) = c.evasive_pulse();
        assert!(on < c.fast_sustain, "on-run must evade the fast path");
        assert!(on < c.sustain, "on-run must evade the slow path");
        assert!(off >= 1, "off minutes must reset the counter");
        let g = c.evasive_growth();
        // Steady-state ratio 1 + g/alpha stays under the multiplier.
        assert!(1.0 + g / c.ewma_alpha < c.multiplier);
        assert!(g > 0.0);
    }

    #[test]
    fn composition_is_deterministic_and_valid() {
        let base = WorldConfig::smoke_test(9);
        for family in ScenarioFamily::ALL {
            let a = compose(family, &base);
            let b = compose(family, &base);
            assert_eq!(a.spans, b.spans, "{family:?}");
            assert_eq!(a.world.vectors().len(), b.world.vectors().len());
            assert!(!a.spans.is_empty());
            for v in a.world.vectors() {
                v.validate().expect("composed vectors validate");
            }
            // Background chains are dropped; only vectors attack.
            assert!(a.world.events().is_empty(), "{family:?}");
            // Spans sit inside the simulated period.
            let total = a.world.total_minutes();
            for s in &a.spans {
                assert!(s.onset < s.end && s.end <= total, "{family:?}: {s:?}");
            }
        }
    }

    #[test]
    fn carpet_bomb_covers_the_whole_prefix() {
        let base = WorldConfig::smoke_test(5);
        let s = compose(ScenarioFamily::CarpetBomb, &base);
        assert_eq!(s.spans.len(), s.world.customers().len());
        let victims: std::collections::HashSet<_> = s.spans.iter().map(|x| x.victim).collect();
        assert_eq!(victims.len(), s.spans.len(), "one span per victim");
    }

    #[test]
    fn multi_vector_overlaps_three_components_on_one_victim() {
        let base = WorldConfig::smoke_test(7);
        let s = compose(ScenarioFamily::MultiVector, &base);
        assert_eq!(s.world.vectors().len(), 3);
        let victims: std::collections::HashSet<_> =
            s.world.vectors().iter().map(|v| v.victim()).collect();
        assert_eq!(victims.len(), 1, "all components hit one victim");
        let types: std::collections::HashSet<_> =
            s.world.vectors().iter().map(|v| v.attack_type()).collect();
        assert_eq!(types.len(), 3, "three distinct flood components");
        // The components genuinely overlap in time.
        let span = s.spans[0];
        let m = span.onset + 20;
        assert!(s.world.vectors().iter().all(|v| v.bpm_at(m) > 0.0));
    }
}
