//! The attacker ecosystem: botnets, resolver pools and blocklist presence.
//!
//! Address plan (all deterministic from the seed):
//!
//! * customers: `20.0.x.y` (AS 64500)
//! * benign sources: `30.0.0.0/8` (AS 64501)
//! * botnet subnets: `/24`s inside `60.0.0.0/8` (AS 64510)
//! * DNS resolvers (amplifiers): `/24`s inside `70.0.0.0/8` (AS 64520)
//! * detectably-spoofed sources: RFC 1918 bogons and unannounced
//!   `90.0.0.0/8`
//! * undetectably-spoofed sources: random addresses inside the announced
//!   benign space (the classifier cannot tell, matching §5.1's caveat)

use crate::config::WorldConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xatu_netflow::addr::{Ipv4, Prefix, Subnet24};

/// Categories re-exported for the blocklist feed without importing the
/// features crate (which would invert the dependency order): index into
/// `xatu_features::blocklist::BlocklistCategory::ALL`.
pub type BlocklistCategoryIndex = usize;

/// One botnet: a reusable set of attacker /24s.
#[derive(Clone, Debug)]
pub struct Botnet {
    /// Stable id.
    pub id: usize,
    /// Member subnets.
    pub subnets: Vec<Subnet24>,
    /// Subnets that appear on public blocklists, with category index.
    pub blocklisted: Vec<(Subnet24, BlocklistCategoryIndex)>,
}

impl Botnet {
    /// A concrete host address of member `subnet_idx` (host id hashed in).
    pub fn host(&self, subnet_idx: usize, host: u8) -> Ipv4 {
        self.subnets[subnet_idx % self.subnets.len()].host(host.max(1))
    }
}

/// The full attacker ecosystem.
#[derive(Clone, Debug)]
pub struct Ecosystem {
    /// All botnets.
    pub botnets: Vec<Botnet>,
    /// Open-resolver subnets used by DNS amplification.
    pub resolvers: Vec<Subnet24>,
}

impl Ecosystem {
    /// Builds the ecosystem deterministically.
    pub fn build(cfg: &WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let mut used = std::collections::HashSet::new();
        let mut alloc_24 = |rng: &mut StdRng, base_octet: u32| -> Subnet24 {
            loop {
                let s = Subnet24((base_octet << 16) | rng.random_range(0..65536u32));
                if used.insert(s) {
                    return s;
                }
            }
        };

        let mut botnets = Vec::with_capacity(cfg.n_botnets);
        for id in 0..cfg.n_botnets {
            let subnets: Vec<Subnet24> = (0..cfg.botnet_subnets)
                .map(|_| alloc_24(&mut rng, 60))
                .collect();
            let mut blocklisted = Vec::new();
            for s in &subnets {
                if rng.random_bool(cfg.blocklisted_frac) {
                    blocklisted.push((*s, rng.random_range(0..11usize)));
                }
            }
            botnets.push(Botnet {
                id,
                subnets,
                blocklisted,
            });
        }
        let resolvers = (0..64).map(|_| alloc_24(&mut rng, 70)).collect();
        Ecosystem { botnets, resolvers }
    }

    /// Every blocklist entry across botnets: `(category index, subnet)`.
    pub fn blocklist_feed(&self) -> Vec<(BlocklistCategoryIndex, Subnet24)> {
        self.botnets
            .iter()
            .flat_map(|b| b.blocklisted.iter().map(|(s, c)| (*c, *s)))
            .collect()
    }

    /// The BGP announcements a realistic routing table would contain for
    /// this world — everything except the deliberately-unrouted 90/8.
    pub fn routed_prefixes() -> Vec<(Prefix, u32)> {
        vec![
            (Prefix::new(Ipv4::from_octets(20, 0, 0, 0), 8), 64500),
            (Prefix::new(Ipv4::from_octets(30, 0, 0, 0), 8), 64501),
            (Prefix::new(Ipv4::from_octets(60, 0, 0, 0), 8), 64510),
            (Prefix::new(Ipv4::from_octets(70, 0, 0, 0), 8), 64520),
        ]
    }

    /// A deterministic benign source address from a 64-bit stream value.
    pub fn benign_source(stream: u64) -> Ipv4 {
        // 30.0.0.0/8, spread over the /8 by a mix.
        Ipv4(0x1E00_0000 | (mix(stream) as u32 & 0x00FF_FFFF))
    }

    /// A detectably-spoofed source: alternates RFC 1918 and unrouted 90/8.
    pub fn spoofed_detectable(stream: u64) -> Ipv4 {
        let m = mix(stream);
        if m & 1 == 0 {
            // 10.0.0.0/8 bogon.
            Ipv4(0x0A00_0000 | (m as u32 & 0x00FF_FFFF))
        } else {
            // Unrouted 90.0.0.0/8.
            Ipv4(0x5A00_0000 | (m as u32 & 0x00FF_FFFF))
        }
    }

    /// An undetectably-spoofed source: random routed benign space.
    pub fn spoofed_undetectable(stream: u64) -> Ipv4 {
        Self::benign_source(mix(stream))
    }
}

/// SplitMix64 mix for deterministic address streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The customer address for index `i`: `20.0.hi.lo`.
pub fn customer_addr(i: usize) -> Ipv4 {
    Ipv4::from_octets(20, 0, (i >> 8) as u8, (i & 0xFF) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorldConfig {
        WorldConfig::smoke_test(3)
    }

    #[test]
    fn ecosystem_is_deterministic() {
        let a = Ecosystem::build(&cfg());
        let b = Ecosystem::build(&cfg());
        assert_eq!(a.botnets.len(), b.botnets.len());
        for (x, y) in a.botnets.iter().zip(&b.botnets) {
            assert_eq!(x.subnets, y.subnets);
            assert_eq!(x.blocklisted, y.blocklisted);
        }
    }

    #[test]
    fn botnet_subnets_live_in_60_slash_8() {
        let eco = Ecosystem::build(&cfg());
        for b in &eco.botnets {
            for s in &b.subnets {
                assert_eq!(s.base().octets()[0], 60);
            }
        }
    }

    #[test]
    fn subnets_are_unique_across_botnets() {
        let eco = Ecosystem::build(&cfg());
        let mut seen = std::collections::HashSet::new();
        for b in &eco.botnets {
            for s in &b.subnets {
                assert!(seen.insert(*s), "duplicate subnet {s}");
            }
        }
    }

    #[test]
    fn blocklist_feed_fraction_roughly_matches() {
        let c = WorldConfig {
            n_botnets: 20,
            botnet_subnets: 50,
            blocklisted_frac: 0.5,
            ..WorldConfig::default()
        };
        let eco = Ecosystem::build(&c);
        let total: usize = eco.botnets.iter().map(|b| b.subnets.len()).sum();
        let listed = eco.blocklist_feed().len();
        let frac = listed as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.1, "frac={frac}");
    }

    #[test]
    fn spoofed_detectable_sources_are_bogon_or_unrouted() {
        for i in 0..100 {
            let a = Ecosystem::spoofed_detectable(i);
            let first = a.octets()[0];
            assert!(a.is_bogon() || first == 90, "{a}");
        }
    }

    #[test]
    fn benign_sources_live_in_30_slash_8() {
        for i in 0..100 {
            assert_eq!(Ecosystem::benign_source(i).octets()[0], 30);
        }
    }

    #[test]
    fn routed_prefixes_cover_benign_and_bots_but_not_90() {
        let prefixes = Ecosystem::routed_prefixes();
        let covers = |a: Ipv4| prefixes.iter().any(|(p, _)| p.contains(a));
        assert!(covers(Ecosystem::benign_source(5)));
        assert!(covers(Ipv4::from_octets(60, 1, 2, 3)));
        assert!(!covers(Ipv4::from_octets(90, 1, 2, 3)));
    }

    #[test]
    fn customer_addresses_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(customer_addr(i)));
        }
    }
}
