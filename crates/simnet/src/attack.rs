//! Attack events and their traffic emission.
//!
//! An [`AttackEvent`] has three traffic phases:
//!
//! * **Preparation** (`prep_start .. onset`): a growing subset of the
//!   botnet sends low-rate probes at the future victim. Participation and
//!   rate intensify as onset approaches (reproducing Fig 15's rising
//!   re-appearance curves).
//! * **Ramp-up** (`onset .. onset + ramp_minutes`): anomalous traffic grows
//!   from a small seed by a factor `(1 + dR)` per minute (Appendix G's
//!   `dR = max |dv/dt|` parameterisation) until it reaches the peak.
//! * **Plateau** (`.. end`): full-rate attack until the event ends.
//!
//! Emission is deterministic given the event and minute.

use crate::botnet::{Botnet, Ecosystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_netflow::record::{FlowRecord, Protocol, TcpFlags};
use xatu_netflow::MINUTES_PER_DAY;

/// SplitMix64 finalizer used for deterministic per-(event, subnet, day)
/// participation gating.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Smallest ramp rate [`AttackEvent::anomalous_bpm`] will honor.
///
/// Scripted events should pass [`AttackEvent::validate`]; this floor is the
/// defensive backstop for events that reach emission unvalidated. A `dR` at
/// or below `-1` turns the `powf` base non-positive (`±∞` at exactly `-1`,
/// sign-alternating garbage below it) and `dR == 0` flattens the whole ramp
/// at full peak; clamping to a tiny positive rate keeps the ramp finite,
/// non-negative, and strictly below the peak.
pub const RAMP_DR_FLOOR: f64 = 1e-3;

/// Why a scripted [`AttackEvent`] was rejected by [`AttackEvent::validate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InvalidEvent {
    /// `end <= onset`: the anomalous phase would be empty or inverted.
    EmptyAttack {
        /// Ground-truth onset minute.
        onset: u32,
        /// Exclusive end minute.
        end: u32,
    },
    /// `prep_start > onset`: preparation cannot begin after the onset.
    PrepAfterOnset {
        /// First preparation minute.
        prep_start: u32,
        /// Ground-truth onset minute.
        onset: u32,
    },
    /// The ramp is longer than the attack itself.
    RampExceedsDuration {
        /// Scheduled ramp length, minutes.
        ramp_minutes: u32,
        /// Onset-to-end duration, minutes.
        duration: u32,
    },
    /// `ramp_dr` is non-finite or not strictly positive (with a non-empty
    /// ramp, such a rate cannot grow toward the peak).
    BadRampRate(f64),
    /// `peak_bpm` is non-finite or negative.
    BadPeak(f64),
}

impl std::fmt::Display for InvalidEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidEvent::EmptyAttack { onset, end } => {
                write!(f, "empty or inverted attack: onset {onset}, end {end}")
            }
            InvalidEvent::PrepAfterOnset { prep_start, onset } => {
                write!(f, "preparation starts after onset: {prep_start} > {onset}")
            }
            InvalidEvent::RampExceedsDuration {
                ramp_minutes,
                duration,
            } => write!(f, "ramp of {ramp_minutes} min exceeds duration {duration}"),
            InvalidEvent::BadRampRate(dr) => write!(f, "invalid ramp rate dR = {dr}"),
            InvalidEvent::BadPeak(p) => write!(f, "invalid peak volume {p}"),
        }
    }
}

impl std::error::Error for InvalidEvent {}

/// Which phase an attack event is in at a given minute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackPhase {
    /// Before preparation begins (or after the end).
    Inactive,
    /// Low-rate probing by future attack sources.
    Preparation,
    /// Anomalous traffic ramping toward the peak.
    RampUp,
    /// Full-rate attack.
    Plateau,
}

/// One scheduled attack with full ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackEvent {
    /// Stable id.
    pub id: usize,
    /// Victim customer.
    pub victim: Ipv4,
    /// Attack type.
    pub attack_type: AttackType,
    /// Botnet conducting the attack.
    pub botnet_id: usize,
    /// First minute of preparation probing.
    pub prep_start: u32,
    /// Ground-truth onset of anomalous traffic.
    pub onset: u32,
    /// Minutes from onset until peak rate is reached.
    pub ramp_minutes: u32,
    /// Last minute of the attack (exclusive).
    pub end: u32,
    /// Peak anomalous volume, bytes/minute.
    pub peak_bpm: f64,
    /// Ramp rate `dR` (rate multiplies by `1 + dR` each ramp minute).
    pub ramp_dr: f64,
    /// Correlated-wave id, if this attack is part of a multi-customer wave.
    pub wave_id: Option<usize>,
    /// Fraction of attack flows with spoofed sources.
    pub spoofed_frac: f64,
    /// Of the spoofed flows, the fraction that are detectably spoofed.
    pub spoof_detectable_frac: f64,
    /// Scale on ramp-phase volume (§6.4 volume-changing attacker).
    pub ramp_volume_scale: f64,
    /// Scale on preparation probing (0 = no auxiliary signals).
    pub prep_intensity: f64,
}

impl AttackEvent {
    /// Checks the event for the degenerate shapes scripted pulse trains
    /// can construct. The scheduler's own events always pass; scripted
    /// events should be validated before injection ([`crate::World::inject_event`]
    /// does so).
    pub fn validate(&self) -> Result<(), InvalidEvent> {
        if !self.peak_bpm.is_finite() || self.peak_bpm < 0.0 {
            return Err(InvalidEvent::BadPeak(self.peak_bpm));
        }
        if self.end <= self.onset {
            return Err(InvalidEvent::EmptyAttack {
                onset: self.onset,
                end: self.end,
            });
        }
        if self.prep_start > self.onset {
            return Err(InvalidEvent::PrepAfterOnset {
                prep_start: self.prep_start,
                onset: self.onset,
            });
        }
        if self.ramp_minutes > self.duration() {
            return Err(InvalidEvent::RampExceedsDuration {
                ramp_minutes: self.ramp_minutes,
                duration: self.duration(),
            });
        }
        if self.ramp_minutes > 0 && !(self.ramp_dr.is_finite() && self.ramp_dr > 0.0) {
            return Err(InvalidEvent::BadRampRate(self.ramp_dr));
        }
        Ok(())
    }

    /// Attack duration from onset to end, minutes. Inverted events
    /// (`end < onset`) saturate to 0 rather than wrapping.
    pub fn duration(&self) -> u32 {
        self.end.saturating_sub(self.onset)
    }

    /// The phase at `minute`.
    ///
    /// Boundary semantics (pinned by tests):
    /// * `end <= onset` — the event has no anomalous phase at all; minutes
    ///   in `[prep_start, end)` are `Preparation`, everything else
    ///   `Inactive`. It never reaches `RampUp` or `Plateau`.
    /// * `ramp_minutes == 0` — the onset minute goes straight to `Plateau`.
    /// * `prep_start == onset` — there is no preparation window; the event
    ///   is `Inactive` right up to the onset.
    pub fn phase(&self, minute: u32) -> AttackPhase {
        if minute < self.prep_start || minute >= self.end {
            AttackPhase::Inactive
        } else if minute < self.onset {
            AttackPhase::Preparation
        } else if minute < self.onset + self.ramp_minutes {
            AttackPhase::RampUp
        } else {
            AttackPhase::Plateau
        }
    }

    /// Anomalous volume (bytes/minute) at `minute`, before spoofing split.
    pub fn anomalous_bpm(&self, minute: u32) -> f64 {
        match self.phase(minute) {
            AttackPhase::Inactive | AttackPhase::Preparation => 0.0,
            AttackPhase::RampUp => {
                // Seed volume grows by (1 + dR) per minute and is scaled so
                // the ramp lands exactly on peak_bpm at ramp_minutes.
                let t = (minute - self.onset) as f64;
                let n = self.ramp_minutes as f64;
                let dr = if self.ramp_dr.is_finite() {
                    self.ramp_dr.max(RAMP_DR_FLOOR)
                } else {
                    RAMP_DR_FLOOR
                };
                let growth = (1.0 + dr).powf(t - n); // < 1 while t < n
                self.peak_bpm * growth * self.ramp_volume_scale
            }
            AttackPhase::Plateau => self.peak_bpm,
        }
    }

    /// Fraction of the botnet participating in preparation at `minute`
    /// (rises from ~0.15 ten days out to ~0.9 the day before; Fig 15).
    pub fn prep_participation(&self, minute: u32) -> f64 {
        if self.phase(minute) != AttackPhase::Preparation {
            return 0.0;
        }
        let days_out =
            (self.onset - minute) as f64 / MINUTES_PER_DAY as f64;
        let total_days =
            (self.onset - self.prep_start) as f64 / MINUTES_PER_DAY as f64;
        let frac = 1.0 - days_out / total_days.max(1e-9);
        (0.15 + 0.75 * frac).clamp(0.0, 1.0)
    }

    /// Emits the event's flows for one minute.
    pub fn emit(
        &self,
        minute: u32,
        botnet: &Botnet,
        resolvers: &[xatu_netflow::addr::Subnet24],
        out: &mut Vec<FlowRecord>,
    ) {
        match self.phase(minute) {
            AttackPhase::Inactive => {}
            AttackPhase::Preparation => self.emit_prep(minute, botnet, resolvers, out),
            AttackPhase::RampUp | AttackPhase::Plateau => {
                self.emit_attack(minute, botnet, resolvers, out)
            }
        }
    }

    fn rng_for(&self, minute: u32) -> StdRng {
        StdRng::seed_from_u64(
            (self.id as u64).wrapping_mul(0x5851_F42D_4C95_7F2D) ^ (minute as u64) << 20,
        )
    }

    pub(crate) fn emit_prep(
        &self,
        minute: u32,
        botnet: &Botnet,
        resolvers: &[xatu_netflow::addr::Subnet24],
        out: &mut Vec<FlowRecord>,
    ) {
        if self.prep_intensity <= 0.0 {
            return;
        }
        let mut rng = self.rng_for(minute);
        let participation = self.prep_participation(minute) * self.prep_intensity;
        // Probes are *weak and intermittent* (§3.1): each participating
        // subnet sends only a few probes per hour even right before the
        // onset. The auxiliary signal's strength at attack time comes from
        // the attack volume itself flowing from known-bad sources, not
        // from the probing.
        let hours_out = (self.onset - minute) as f64 / 60.0;
        let probe_prob = (0.02 + 0.08 / (1.0 + hours_out / 12.0)).min(0.1);
        let sources: &dyn Fn(usize, &mut StdRng) -> Ipv4 =
            if self.attack_type == AttackType::DnsAmplification {
                &|k, rng| resolvers[k % resolvers.len()].host(rng.random_range(1..255))
            } else {
                &|k, rng| botnet.host(k, rng.random_range(1..255))
            };
        let n_subnets = if self.attack_type == AttackType::DnsAmplification {
            resolvers.len()
        } else {
            botnet.subnets.len()
        };
        let day = minute / MINUTES_PER_DAY;
        for k in 0..n_subnets {
            // Participation gates *which* subnets are active on a given
            // day (deterministically per event/subnet/day), reproducing
            // Fig 15's rising re-appearance curve: far from the onset only
            // a small subset of the eventual attackers probes at all.
            let gate = splitmix64(
                (self.id as u64) << 32 ^ (k as u64) << 16 ^ day as u64,
            ) as f64
                / u64::MAX as f64;
            if gate >= participation {
                continue;
            }
            if !rng.random_bool(probe_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let src = sources(k, &mut rng);
            let bytes = rng.random_range(200..2000u64);
            out.push(self.flow_of_type(minute, src, bytes, &mut rng));
        }
    }

    fn emit_attack(
        &self,
        minute: u32,
        botnet: &Botnet,
        resolvers: &[xatu_netflow::addr::Subnet24],
        out: &mut Vec<FlowRecord>,
    ) {
        self.emit_attack_volume(minute, self.anomalous_bpm(minute), botnet, resolvers, out);
    }

    /// Emits one minute of attack flows at an explicit anomalous volume —
    /// the shared kernel behind [`AttackEvent::emit`] and the shape-
    /// modulated [`crate::vectors::AttackVector`] emission. Deterministic
    /// in `(self.id, minute)` and independent of co-resident events.
    pub(crate) fn emit_attack_volume(
        &self,
        minute: u32,
        volume: f64,
        botnet: &Botnet,
        resolvers: &[xatu_netflow::addr::Subnet24],
        out: &mut Vec<FlowRecord>,
    ) {
        let mut rng = self.rng_for(minute);
        if !volume.is_finite() || volume < 1.0 {
            return;
        }
        let n_flows = rng.random_range(40..80usize);
        let per_flow = volume / n_flows as f64;
        for k in 0..n_flows {
            let src = if self.attack_type == AttackType::DnsAmplification {
                // Reflection: sources are open resolvers, never spoofed
                // from the victim's viewpoint.
                resolvers[k % resolvers.len()].host(rng.random_range(1..255))
            } else if rng.random_bool(self.spoofed_frac) {
                // Spoofed addresses come from a bounded per-event pool
                // (attack tools cycle a limited spoof range); unbounded
                // per-flow randomness would swamp the distinct-source
                // statistics that Fig 4(a) measures.
                let pooled = (self.id as u64) << 8 | (k % 24) as u64;
                if rng.random_bool(self.spoof_detectable_frac) {
                    Ecosystem::spoofed_detectable(pooled)
                } else {
                    Ecosystem::spoofed_undetectable(pooled)
                }
            } else {
                botnet.host(k, rng.random_range(1..255))
            };
            let bytes = (per_flow * rng.random_range(0.6..1.4)).max(60.0) as u64;
            out.push(self.flow_of_type(minute, src, bytes, &mut rng));
        }
    }

    /// Builds one flow of this attack's type.
    fn flow_of_type(&self, minute: u32, src: Ipv4, bytes: u64, rng: &mut StdRng) -> FlowRecord {
        let (proto, src_port, dst_port, flags, bytes_per_pkt) = match self.attack_type {
            AttackType::UdpFlood => (
                Protocol::Udp,
                rng.random_range(1024..65535),
                rng.random_range(1..65535),
                TcpFlags::default(),
                900,
            ),
            AttackType::TcpAck => (
                Protocol::Tcp,
                rng.random_range(1024..65535),
                rng.random_range(1..1024),
                TcpFlags::ACK,
                80,
            ),
            AttackType::TcpSyn => (
                Protocol::Tcp,
                rng.random_range(1024..65535),
                if rng.random_bool(0.5) { 80 } else { 443 },
                TcpFlags::SYN,
                60,
            ),
            AttackType::TcpRst => (
                Protocol::Tcp,
                rng.random_range(1024..65535),
                rng.random_range(1..1024),
                TcpFlags::RST,
                60,
            ),
            AttackType::DnsAmplification => (
                Protocol::Udp,
                53,
                rng.random_range(1024..65535),
                TcpFlags::default(),
                1200,
            ),
            AttackType::IcmpFlood => (Protocol::Icmp, 0, 0, TcpFlags::default(), 1000),
        };
        FlowRecord {
            minute,
            src,
            dst: self.victim,
            proto,
            src_port,
            dst_port,
            tcp_flags: flags,
            bytes,
            packets: (bytes / bytes_per_pkt).max(1),
            sampling: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn event(ty: AttackType) -> AttackEvent {
        AttackEvent {
            id: 1,
            victim: Ipv4::from_octets(20, 0, 0, 1),
            attack_type: ty,
            botnet_id: 0,
            prep_start: 0,
            onset: 14_400, // day 10
            ramp_minutes: 6,
            end: 14_430,
            peak_bpm: 1e8,
            ramp_dr: 1.0,
            wave_id: None,
            spoofed_frac: 0.3,
            spoof_detectable_frac: 0.5,
            ramp_volume_scale: 1.0,
            prep_intensity: 1.0,
        }
    }

    fn botnet() -> Botnet {
        let eco = Ecosystem::build(&WorldConfig::smoke_test(1));
        eco.botnets[0].clone()
    }

    fn resolvers() -> Vec<xatu_netflow::addr::Subnet24> {
        Ecosystem::build(&WorldConfig::smoke_test(1)).resolvers
    }

    #[test]
    fn phases_are_ordered() {
        let e = event(AttackType::UdpFlood);
        assert_eq!(e.phase(0), AttackPhase::Preparation);
        assert_eq!(e.phase(14_399), AttackPhase::Preparation);
        assert_eq!(e.phase(14_400), AttackPhase::RampUp);
        assert_eq!(e.phase(14_406), AttackPhase::Plateau);
        assert_eq!(e.phase(14_430), AttackPhase::Inactive);
        assert_eq!(e.duration(), 30);
    }

    #[test]
    fn ramp_reaches_peak_exactly() {
        let e = event(AttackType::UdpFlood);
        let at_peak = e.anomalous_bpm(14_406);
        assert!((at_peak - 1e8).abs() < 1.0);
        // During ramp, strictly below the peak and growing.
        let v0 = e.anomalous_bpm(14_400);
        let v3 = e.anomalous_bpm(14_403);
        assert!(v0 < v3 && v3 < at_peak);
        // dR=1 means doubling per minute.
        assert!((v3 / v0 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn prep_participation_rises_toward_onset() {
        let e = event(AttackType::UdpFlood);
        let early = e.prep_participation(0);
        let late = e.prep_participation(14_000);
        assert!(late > early, "late={late} early={early}");
        assert!(early >= 0.15 && late <= 0.9 + 1e-9);
    }

    #[test]
    fn prep_participation_gates_subnet_presence_by_day() {
        // Fig 15's mechanism: far from the onset only a subset of the
        // eventual attackers probes; close to it, most do.
        let e = event(AttackType::UdpFlood);
        let b = botnet();
        let r = resolvers();
        let distinct_on_day = |day: u32| -> usize {
            let mut set = std::collections::HashSet::new();
            for m in day * 1440..(day + 1) * 1440 {
                let mut flows = Vec::new();
                e.emit(m, &b, &r, &mut flows);
                for f in flows {
                    set.insert(f.src.subnet24());
                }
            }
            set.len()
        };
        let early = distinct_on_day(0); // ~10 days out
        let late = distinct_on_day(9); // the day before onset
        assert!(
            late > early,
            "participation must rise toward the onset: early={early} late={late}"
        );
        assert!(
            early < b.subnets.len(),
            "far-out probing must not include every subnet: {early}"
        );
    }

    #[test]
    fn prep_flows_come_from_botnet_space() {
        let e = event(AttackType::UdpFlood);
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        for m in 13_000..13_200 {
            e.emit(m, &b, &r, &mut flows);
        }
        assert!(!flows.is_empty(), "prep probes expected");
        assert!(flows.iter().all(|f| f.src.octets()[0] == 60));
        // Probes are small.
        assert!(flows.iter().all(|f| f.bytes < 2000));
    }

    #[test]
    fn attack_flows_match_signature() {
        for ty in AttackType::ALL {
            let mut e = event(ty);
            e.spoofed_frac = 0.0;
            let b = botnet();
            let r = resolvers();
            let mut flows = Vec::new();
            e.emit(14_410, &b, &r, &mut flows);
            let sig = ty.signature();
            assert!(!flows.is_empty(), "{ty:?}");
            assert!(
                flows.iter().all(|f| sig.matches(f)),
                "{ty:?} flows must match own signature"
            );
        }
    }

    #[test]
    fn plateau_volume_is_near_peak() {
        let e = event(AttackType::TcpAck);
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        e.emit(14_415, &b, &r, &mut flows);
        let vol: f64 = flows.iter().map(|f| f.bytes as f64).sum();
        assert!((vol / 1e8 - 1.0).abs() < 0.25, "vol={vol}");
    }

    #[test]
    fn dns_amp_sources_are_resolvers() {
        let e = event(AttackType::DnsAmplification);
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        e.emit(14_410, &b, &r, &mut flows);
        assert!(flows.iter().all(|f| f.src.octets()[0] == 70));
        assert!(flows.iter().all(|f| f.src_port == 53));
    }

    #[test]
    fn spoofed_fraction_appears_for_syn() {
        let mut e = event(AttackType::TcpSyn);
        e.spoofed_frac = 1.0;
        e.spoof_detectable_frac = 1.0;
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        e.emit(14_410, &b, &r, &mut flows);
        assert!(flows
            .iter()
            .all(|f| f.src.is_bogon() || f.src.octets()[0] == 90));
    }

    #[test]
    fn zero_prep_intensity_silences_preparation() {
        let mut e = event(AttackType::UdpFlood);
        e.prep_intensity = 0.0;
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        for m in 10_000..12_000 {
            e.emit(m, &b, &r, &mut flows);
        }
        assert!(flows.is_empty());
    }

    #[test]
    fn ramp_volume_scale_shrinks_ramp_only() {
        let mut e = event(AttackType::UdpFlood);
        e.ramp_volume_scale = 0.1;
        assert!(e.anomalous_bpm(14_403) < event(AttackType::UdpFlood).anomalous_bpm(14_403));
        // Plateau unaffected.
        assert_eq!(e.anomalous_bpm(14_415), 1e8);
    }

    #[test]
    fn ramp_dr_edge_cases_stay_finite_and_bounded() {
        // Regression: pre-fix, dR = -1 made the powf base 0 with a negative
        // exponent (+∞), dR < -1 produced sign-alternating values outside
        // [0, peak], and dR = 0 flattened the whole ramp at full peak.
        for dr in [-2.0, -1.5, -1.0, -0.5, 0.0, f64::NAN, f64::INFINITY] {
            let mut e = event(AttackType::UdpFlood);
            e.ramp_dr = dr;
            for m in e.onset..e.onset + e.ramp_minutes {
                let bpm = e.anomalous_bpm(m);
                assert!(bpm.is_finite(), "dr={dr} minute={m}: bpm={bpm}");
                assert!(
                    (0.0..=e.peak_bpm).contains(&bpm),
                    "dr={dr} minute={m}: bpm={bpm} outside [0, {}]",
                    e.peak_bpm
                );
                assert!(
                    bpm < e.peak_bpm,
                    "dr={dr} minute={m}: ramp flattened at the peak"
                );
            }
            // Emission must survive the degenerate rate too.
            let b = botnet();
            let r = resolvers();
            let mut flows = Vec::new();
            e.emit(e.onset + 2, &b, &r, &mut flows);
        }
    }

    #[test]
    fn validate_rejects_malformed_events() {
        let ok = event(AttackType::UdpFlood);
        assert_eq!(ok.validate(), Ok(()));

        let mut e = event(AttackType::UdpFlood);
        e.end = e.onset; // zero-length
        assert!(matches!(e.validate(), Err(InvalidEvent::EmptyAttack { .. })));
        e.end = e.onset - 1; // inverted
        assert!(matches!(e.validate(), Err(InvalidEvent::EmptyAttack { .. })));

        let mut e = event(AttackType::UdpFlood);
        e.prep_start = e.onset + 1;
        assert!(matches!(
            e.validate(),
            Err(InvalidEvent::PrepAfterOnset { .. })
        ));

        let mut e = event(AttackType::UdpFlood);
        e.ramp_minutes = e.duration() + 1;
        assert!(matches!(
            e.validate(),
            Err(InvalidEvent::RampExceedsDuration { .. })
        ));

        for dr in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            let mut e = event(AttackType::UdpFlood);
            e.ramp_dr = dr;
            assert!(
                matches!(e.validate(), Err(InvalidEvent::BadRampRate(_))),
                "dr={dr} must be rejected"
            );
        }

        let mut e = event(AttackType::UdpFlood);
        e.peak_bpm = f64::NAN;
        assert!(matches!(e.validate(), Err(InvalidEvent::BadPeak(_))));

        // Errors render for operators.
        let msg = InvalidEvent::BadRampRate(-1.0).to_string();
        assert!(msg.contains("-1"), "{msg}");
    }

    #[test]
    fn boundary_semantics_are_pinned() {
        // end == onset: no anomalous phase, ever.
        let mut e = event(AttackType::UdpFlood);
        e.end = e.onset;
        assert_eq!(e.duration(), 0);
        assert_eq!(e.phase(e.onset), AttackPhase::Inactive);
        assert_eq!(e.phase(e.onset - 1), AttackPhase::Preparation);
        assert_eq!(e.anomalous_bpm(e.onset), 0.0);

        // Inverted (end < onset): duration saturates, phases never pass
        // Preparation, volume stays zero.
        let mut e = event(AttackType::UdpFlood);
        e.end = e.onset - 100;
        assert_eq!(e.duration(), 0);
        for m in [e.prep_start, e.end - 1, e.end, e.onset, e.onset + 10] {
            let p = e.phase(m);
            assert!(
                p == AttackPhase::Inactive || p == AttackPhase::Preparation,
                "minute {m}: {p:?}"
            );
            assert_eq!(e.anomalous_bpm(m), 0.0, "minute {m}");
        }

        // ramp_minutes == 0: straight to plateau at the onset.
        let mut e = event(AttackType::UdpFlood);
        e.ramp_minutes = 0;
        assert_eq!(e.validate(), Ok(()));
        assert_eq!(e.phase(e.onset), AttackPhase::Plateau);
        assert_eq!(e.anomalous_bpm(e.onset), e.peak_bpm);

        // prep_start == onset: no preparation window at all.
        let mut e = event(AttackType::UdpFlood);
        e.prep_start = e.onset;
        assert_eq!(e.validate(), Ok(()));
        assert_eq!(e.phase(e.onset - 1), AttackPhase::Inactive);
        assert_eq!(e.phase(e.onset), AttackPhase::RampUp);
        let b = botnet();
        let r = resolvers();
        let mut flows = Vec::new();
        for m in 0..e.onset {
            e.emit(m, &b, &r, &mut flows);
        }
        assert!(flows.is_empty(), "no prep probes without a prep window");
    }

    #[test]
    fn emission_is_deterministic() {
        let e = event(AttackType::UdpFlood);
        let b = botnet();
        let r = resolvers();
        let mut f1 = Vec::new();
        let mut f2 = Vec::new();
        e.emit(14_410, &b, &r, &mut f1);
        e.emit(14_410, &b, &r, &mut f2);
        assert_eq!(f1, f2);
    }
}
