//! Seedable ISP traffic and DDoS-attack-ecosystem simulator.
//!
//! The paper evaluates Xatu on 100 days of proprietary NetFlow from a large
//! ISP. That dataset is not available, so this crate synthesizes an ISP
//! world that reproduces the *structural regularities* the paper's method
//! depends on (its §3 measurement findings):
//!
//! * diurnal/weekly benign traffic with bursty noise and occasional benign
//!   flash crowds (the false-positive pressure),
//! * a botnet ecosystem whose members are partially blocklisted and reused
//!   across attacks (A1/A2 signals),
//! * attack *preparation*: bot probing of the future victim that intensifies
//!   over the days before onset (Fig 15),
//! * spoofed attack traffic, only partially detectable (A3),
//! * serial same-type attack chains per victim (~98 % same-type transitions,
//!   Fig 4(b)) with the paper's specific cross-type transitions,
//! * correlated attack waves: one botnet hitting several customers in
//!   staggered windows (Fig 4(c)/Fig 16),
//! * short-and-low attacks: most attacks are minutes long and peak below
//!   21 Mbps (§2.3).
//!
//! Everything is driven by a single seed; the same [`config::WorldConfig`]
//! always produces the identical flow stream, attack schedule and blocklist
//! feed.

pub mod attack;
pub mod benign;
pub mod botnet;
pub mod composer;
pub mod config;
pub mod faults;
pub mod fleet;
pub mod schedule;
pub mod scenario;
pub mod vectors;
pub mod world;

pub use attack::{AttackEvent, AttackPhase, InvalidEvent, RAMP_DR_FLOOR};
pub use botnet::{Botnet, Ecosystem};
pub use composer::{
    compose, ComposedScenario, DetectorTimeConstants, ScenarioFamily, ScenarioSpan,
};
pub use config::WorldConfig;
pub use faults::{
    FaultKind, FaultObs, FaultSchedule, FaultWindow, FaultedWorld, MinuteDelivery,
    BUILTIN_SCHEDULES,
};
pub use fleet::{FleetMinute, FleetTraffic};
pub use vectors::{AttackVector, VectorShape};
pub use world::{victim_bin, victim_signature_bytes, World, WorldObs};
