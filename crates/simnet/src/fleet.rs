//! Closed-form synthetic traffic for fleet-scale benchmarking.
//!
//! The full [`crate::world::World`] simulates every flow of every botnet
//! member — faithful, but O(flows) per minute and sized for tens of
//! customers, not hundreds of thousands. Fleet-scale throughput runs need
//! the opposite trade-off: feature frames with realistic *shape* (sparse,
//! diurnal, bursty, occasionally absent) at a cost of nanoseconds per
//! customer-minute, bit-reproducible from a seed with no RNG state to
//! carry.
//!
//! [`FleetTraffic`] is that generator. Every quantity is a pure function
//! of `(seed, customer, minute)` through a splitmix64-style mixer, so any
//! customer/minute can be evaluated in any order, from any thread, with
//! identical results — exactly the access pattern of
//! `FleetDetector::step_minute_batch`, and the property its 1-vs-N-thread
//! digest gates rely on.
//!
//! The emitted stream has the structural features the online detector's
//! degradation ladder keys on:
//!
//! * a fixed per-customer sparse support (a few dozen active features out
//!   of the full frame) plus a minute-varying scatter,
//! * a diurnal sinusoid with per-customer phase and bursty noise,
//! * attack surges on a deterministic subset of customers over
//!   deterministic windows (so alert lifecycles actually exercise),
//! * per-customer export gaps — short ones (bridged by imputation) and,
//!   for a small cohort, outages long enough to force cold restarts.

/// splitmix64 finalizer: the one-way mixer everything here derives from.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform in `[0, 1)` from a mixed word.
#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What the generator says about one `(customer, minute)` cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetMinute {
    /// A frame was written; the payload is the simulated flow count it
    /// summarizes (for flows/sec accounting).
    Frame(u64),
    /// The customer's export is down this minute.
    Missing,
}

/// Deterministic, stateless fleet traffic: frames as pure functions of
/// `(seed, customer, minute)`.
#[derive(Clone, Copy, Debug)]
pub struct FleetTraffic {
    seed: u64,
    customers: usize,
    /// Fraction of customers in the *idle cohort*: exactly-zero frames
    /// outside a short burst window per epoch. 0.0 under
    /// [`FleetTraffic::new`].
    idle_fraction: f64,
}

/// Active features per customer from the fixed support set.
const SUPPORT: usize = 12;
/// Additional minute-varying scattered features.
const SCATTER: usize = 4;

impl FleetTraffic {
    /// A fleet of `customers` driven by `seed`.
    pub fn new(seed: u64, customers: usize) -> Self {
        FleetTraffic {
            seed,
            customers,
            idle_fraction: 0.0,
        }
    }

    /// Like [`FleetTraffic::new`], but a deterministic `idle_fraction`
    /// cohort of customers emits *exactly all-zero* frames except for one
    /// ~15-minute activity burst every 8 simulated hours. This is the
    /// traffic shape the quiescence-aware fast path of the fleet detector
    /// is built for (dormant tails of large fleets), and the bench uses it
    /// to exercise idle-skip at scale. Everything stays a pure function of
    /// `(seed, customer, minute)`.
    pub fn with_idle(seed: u64, customers: usize, idle_fraction: f64) -> Self {
        FleetTraffic {
            seed,
            customers,
            idle_fraction,
        }
    }

    /// Whether customer `c` belongs to the idle cohort.
    pub fn is_idle_customer(&self, c: usize) -> bool {
        if self.idle_fraction <= 0.0 {
            return false;
        }
        let cust = mix(self.seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
        unit(mix(cust ^ 0x1d7e)) < self.idle_fraction
    }

    /// Whether an idle-cohort member is inside its per-epoch activity
    /// burst (one 12–18 minute window every 480 minutes).
    fn in_idle_burst(&self, cust: u64, minute: u32) -> bool {
        let epoch = minute / 480;
        let e = mix(cust ^ 0x1d7e ^ epoch as u64);
        let start = epoch * 480 + (e % 465) as u32;
        let len = 12 + (mix(e ^ 3) % 7) as u32;
        minute >= start && minute < start + len
    }

    /// Fleet size.
    pub fn customers(&self) -> usize {
        self.customers
    }

    /// Whether customer `c` is exporting at `minute`, and if so its frame.
    ///
    /// When the result is [`FleetMinute::Frame`], `frame` (any width) has
    /// been fully overwritten; on [`FleetMinute::Missing`] it is untouched.
    pub fn fill_frame(&self, c: usize, minute: u32, frame: &mut [f64]) -> FleetMinute {
        if self.is_missing(c, minute) {
            return FleetMinute::Missing;
        }
        let width = frame.len();
        frame.fill(0.0);
        let cust = mix(self.seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
        if self.is_idle_customer(c) && !self.in_idle_burst(cust, minute) {
            // Exactly all-zero frame: the quiescent case the detector's
            // idle-skip path keys on. Still a valid export (flows can be
            // zero when a customer is dark).
            return FleetMinute::Frame(0);
        }
        // Diurnal base with per-customer phase, plus bursty noise.
        let phase = unit(mix(cust ^ 1)) * std::f64::consts::TAU;
        let t = minute as f64 * (std::f64::consts::TAU / 1440.0);
        let diurnal = 1.0 + 0.6 * (t + phase).sin();
        let burst = if unit(mix(cust ^ minute as u64 ^ 0xb0b)) < 0.02 {
            3.0
        } else {
            1.0
        };
        let surge = if self.in_attack(c, minute) { 6.0 } else { 0.0 };
        let level = diurnal * burst + surge;

        // Fixed per-customer support: the same feature indices every
        // minute, as a real customer's traffic mix would be.
        for k in 0..SUPPORT {
            let idx = (mix(cust ^ (k as u64) << 8) as usize) % width;
            let w = 0.2 + unit(mix(cust ^ (k as u64) << 16));
            let jitter = unit(mix(cust ^ ((minute as u64) << 20) ^ k as u64)) - 0.5;
            frame[idx] = level * w + 0.3 * jitter;
        }
        // Minute-varying scatter: transient features wandering the frame.
        for k in 0..SCATTER {
            let m = mix(cust ^ ((minute as u64) << 32) ^ (k as u64) << 4);
            frame[(m as usize) % width] = level * 0.1 * unit(mix(m ^ 7));
        }
        let flows = 40 + (level * 25.0) as u64 + (mix(cust ^ minute as u64) & 0xf);
        FleetMinute::Frame(flows)
    }

    /// Whether this cell is under an attack surge (deterministic windows
    /// on a deterministic ~3% cohort).
    pub fn in_attack(&self, c: usize, minute: u32) -> bool {
        let cust = mix(self.seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
        if unit(mix(cust ^ 0xa77a)) >= 0.03 {
            return false;
        }
        // One attack per ~6 simulated hours, 12–40 minutes long.
        let epoch = minute / 360;
        let e = mix(cust ^ 0xa77a ^ epoch as u64);
        let start = epoch * 360 + (e % 300) as u32;
        let len = 12 + (mix(e) % 29) as u32;
        minute >= start && minute < start + len
    }

    /// Whether customer `c`'s export is missing at `minute`.
    ///
    /// ~1% of minutes fall in short (1–3 minute) gaps for everyone, and a
    /// deterministic ~0.5% cohort additionally suffers one long outage per
    /// simulated day — longer than any imputation horizon, so the detector
    /// cold-restarts them.
    pub fn is_missing(&self, c: usize, minute: u32) -> bool {
        let cust = mix(self.seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
        // Short gaps: a gap *starts* at ~0.5% of minutes and runs 1–3.
        for back in 0..3u32 {
            let Some(m) = minute.checked_sub(back) else {
                break;
            };
            let g = mix(cust ^ 0x6a9 ^ m as u64);
            if unit(g) < 0.005 && back < 1 + (mix(g) % 3) as u32 {
                return true;
            }
        }
        // Long outages for the unlucky cohort: one 60-minute window a day.
        if unit(mix(cust ^ 0xdead)) < 0.005 {
            let day = minute / 1440;
            let o = mix(cust ^ 0xdead ^ day as u64);
            let start = day * 1440 + (o % 1380) as u32;
            if minute >= start && minute < start + 60 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDTH: usize = 273;

    #[test]
    fn frames_are_deterministic_and_order_free() {
        let t = FleetTraffic::new(42, 100);
        let mut a = vec![0.0; WIDTH];
        let mut b = vec![0.0; WIDTH];
        // Evaluate (7, 500) twice with unrelated evaluations interleaved.
        let ra = t.fill_frame(7, 500, &mut a);
        let _ = t.fill_frame(3, 11, &mut b);
        let _ = t.fill_frame(99, 1439, &mut b);
        let rb = t.fill_frame(7, 500, &mut b);
        assert_eq!(ra, rb);
        let bits_eq = a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(bits_eq, "same cell produced different frames");
    }

    #[test]
    fn frames_are_sparse_and_finite() {
        let t = FleetTraffic::new(7, 10);
        let mut f = vec![0.0; WIDTH];
        for c in 0..10 {
            for m in 0..200u32 {
                if let FleetMinute::Frame(flows) = t.fill_frame(c, m, &mut f) {
                    assert!(flows > 0);
                    assert!(f.iter().all(|v| v.is_finite()));
                    let nnz = f.iter().filter(|v| **v != 0.0).count();
                    assert!(nnz <= SUPPORT + SCATTER, "nnz = {nnz}");
                    assert!(nnz >= 1);
                }
            }
        }
    }

    #[test]
    fn degradation_schedule_has_gaps_attacks_and_quiet_majority() {
        let t = FleetTraffic::new(1, 2000);
        let (mut missing, mut attacked, mut total) = (0u64, 0u64, 0u64);
        for c in (0..2000).step_by(13) {
            for m in 0..720u32 {
                total += 1;
                if t.is_missing(c, m) {
                    missing += 1;
                }
                if t.in_attack(c, m) {
                    attacked += 1;
                }
            }
        }
        let miss_rate = missing as f64 / total as f64;
        let attack_rate = attacked as f64 / total as f64;
        assert!(miss_rate > 0.001 && miss_rate < 0.08, "miss {miss_rate}");
        assert!(attack_rate > 0.0001 && attack_rate < 0.05, "attack {attack_rate}");
    }

    #[test]
    fn idle_cohort_is_exactly_zero_outside_bursts() {
        let t = FleetTraffic::with_idle(99, 400, 0.7);
        let mut f = vec![0.0; WIDTH];
        let (mut idle_members, mut burst_minutes, mut zero_minutes) = (0u32, 0u64, 0u64);
        for c in 0..400 {
            if !t.is_idle_customer(c) {
                continue;
            }
            idle_members += 1;
            for m in 0..960u32 {
                if let FleetMinute::Frame(_) = t.fill_frame(c, m, &mut f) {
                    if f.iter().all(|v| v.to_bits() == 0) {
                        zero_minutes += 1;
                    } else {
                        burst_minutes += 1;
                    }
                }
            }
        }
        // ~70% of 400 customers, ~2×(12..19) burst minutes per 960.
        assert!((200..=360).contains(&idle_members), "{idle_members}");
        assert!(burst_minutes > 0, "idle cohort never bursts");
        assert!(
            zero_minutes > 20 * burst_minutes,
            "idle cohort not quiescent: {zero_minutes} zero vs {burst_minutes} burst"
        );
        // `new` must keep everyone non-idle (back-compat).
        let plain = FleetTraffic::new(99, 400);
        assert!((0..400).all(|c| !plain.is_idle_customer(c)));
    }

    #[test]
    fn short_gaps_are_bridgeable_and_long_outages_exist() {
        let t = FleetTraffic::new(5, 50_000);
        let mut longest_common = 0u32;
        let mut saw_long = false;
        for c in 0..300 {
            let cohort = {
                // Re-derive the long-outage cohort membership.
                let cust = mix(t.seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
                unit(mix(cust ^ 0xdead)) < 0.005
            };
            let mut run = 0u32;
            for m in 0..1440u32 {
                if t.is_missing(c, m) {
                    run += 1;
                } else {
                    if !cohort {
                        longest_common = longest_common.max(run);
                    } else if run >= 60 {
                        saw_long = true;
                    }
                    run = 0;
                }
            }
        }
        // Short gaps can abut (a new gap starting as one ends) but stay
        // well under the typical 3×window imputation horizon.
        assert!(longest_common <= 9, "common gap run {longest_common}");
        let _ = saw_long; // cohort may be empty in the first 300 ids
    }
}
