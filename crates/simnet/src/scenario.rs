//! Canned scenarios for experiments and examples.
//!
//! Each scenario is just a [`WorldConfig`] recipe (plus, for the scripted
//! single-attack case, a hand-built schedule) so experiments stay
//! reproducible and self-describing.

use crate::attack::AttackEvent;
use crate::botnet::customer_addr;
use crate::config::WorldConfig;
use crate::world::World;
use xatu_netflow::attack::AttackType;
use xatu_netflow::MINUTES_PER_DAY;

/// The default evaluation world (Fig 8/9/10 scale).
pub fn default_eval(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        ..WorldConfig::default()
    }
}

/// A small world for retrain-heavy sweeps (Fig 12/17/18).
pub fn sweep(seed: u64) -> WorldConfig {
    WorldConfig::small(seed)
}

/// The §6.4 volume-changing attacker: anomalous ramp traffic scaled by
/// `scale` (auxiliary preparation signals untouched).
pub fn volume_changing(seed: u64, scale: f64) -> WorldConfig {
    WorldConfig {
        seed,
        ramp_volume_scale: scale,
        ..WorldConfig::mini(seed)
    }
}

/// The §6.4 rate-changing attacker: ramp `dR` pinned to `dr`.
pub fn rate_changing(seed: u64, dr: f64) -> WorldConfig {
    WorldConfig {
        seed,
        ramp_dr_override: Some(dr),
        ..WorldConfig::mini(seed)
    }
}

/// An attacker that suppresses auxiliary signals entirely (no preparation
/// probing) — the evasion discussed in §8.
pub fn no_prep(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        prep_intensity: 0.0,
        ..WorldConfig::small(seed)
    }
}

/// A world with **no attacks at all** — the false-positive stress test.
pub fn benign_only(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        n_chains: 0,
        ..WorldConfig::small(seed)
    }
}

/// The Fig 2 case study: one scripted UDP flood against customer 0, with a
/// long preparation phase, embedded in a small world.
pub fn single_udp_attack(seed: u64) -> (World, AttackEvent) {
    let cfg = WorldConfig {
        seed,
        n_customers: 4,
        days: 12,
        n_chains: 0,
        ..WorldConfig::default()
    };
    let mut world = World::new(cfg);
    let onset = 10 * MINUTES_PER_DAY + 9; // minute 9 of day 10's window
    let event = AttackEvent {
        id: 0,
        victim: customer_addr(0),
        attack_type: AttackType::UdpFlood,
        botnet_id: 0,
        prep_start: onset - 10 * MINUTES_PER_DAY,
        onset,
        ramp_minutes: 6,
        end: onset + 25,
        peak_bpm: 20.0 * 1e6 * 60.0 / 8.0, // 20 Mbps
        ramp_dr: 1.0,
        wave_id: None,
        spoofed_frac: 0.2,
        spoof_detectable_frac: 0.5,
        ramp_volume_scale: 1.0,
        prep_intensity: 1.0,
    };
    world
        .inject_event(event.clone())
        .expect("the scripted Fig 2 event is valid");
    (world, event)
}

impl World {
    /// Injects a scripted event into the schedule (test/scenario support).
    /// Invalid events — zero-length, inverted, prep after onset, degenerate
    /// ramp rates — are rejected instead of silently scheduled.
    pub fn inject_event(&mut self, event: AttackEvent) -> Result<(), crate::attack::InvalidEvent> {
        event.validate()?;
        let idx = self.events().len();
        self.push_event_internal(event, idx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackPhase;

    #[test]
    fn scripted_attack_emits_during_plateau() {
        let (mut world, event) = single_udp_attack(3);
        assert_eq!(world.events().len(), 1);
        let mut peak_seen = 0.0f64;
        let sig = event.attack_type.signature();
        for _ in 0..(event.end).min(world.total_minutes()) {
            let bins = world.step();
            // Graceful lookup: a victim with no flows this minute (or
            // outside the customer set) contributes 0.0, not a panic.
            let vol = crate::world::victim_signature_bytes(&bins, event.victim, &sig);
            peak_seen = peak_seen.max(vol);
        }
        assert!(
            peak_seen > event.peak_bpm * 0.5,
            "peak {peak_seen} vs {}",
            event.peak_bpm
        );
    }

    #[test]
    fn inject_event_rejects_invalid_events() {
        // Regression: scripted pulse trains could schedule zero-length or
        // inverted events that later panicked mid-stream.
        let (mut world, event) = single_udp_attack(4);
        let mut bad = event.clone();
        bad.end = bad.onset;
        assert!(world.inject_event(bad).is_err());
        let mut bad = event.clone();
        bad.ramp_dr = -1.0;
        assert!(world.inject_event(bad).is_err());
        assert_eq!(world.events().len(), 1, "rejected events are not kept");
    }

    #[test]
    fn scheduler_events_all_pass_validation() {
        // The generator's own schedule must satisfy the same contract
        // scripted events are held to.
        let w = World::new(WorldConfig::smoke_test(6));
        for e in w.events() {
            e.validate().expect("scheduled event validates");
        }
    }

    #[test]
    fn benign_only_schedules_nothing() {
        let w = World::new(benign_only(1));
        assert!(w.events().is_empty());
    }

    #[test]
    fn rate_changing_pins_dr() {
        let w = World::new(rate_changing(1, 2.5));
        for e in w.events() {
            assert_eq!(e.ramp_dr, 2.5);
        }
    }

    #[test]
    fn volume_changing_scales_ramp() {
        let w = World::new(volume_changing(1, 0.25));
        for e in w.events() {
            assert_eq!(e.ramp_volume_scale, 0.25);
        }
    }

    #[test]
    fn no_prep_silences_preparation_phase() {
        let w = World::new(no_prep(1));
        for e in w.events() {
            assert_eq!(e.prep_intensity, 0.0);
            assert_eq!(e.phase(e.prep_start), AttackPhase::Preparation);
        }
    }
}
