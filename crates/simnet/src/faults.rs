//! Deterministic, seeded fault injection over a streaming [`World`].
//!
//! Real ISP telemetry is not the clean minute-aligned stream the rest of
//! the workspace simulates: collectors crash, per-customer exports gap out,
//! records arrive duplicated or minutes late, routers renegotiate their
//! sampling rate mid-stream, and the commercial detector's alert feed has
//! its own outages. This module injects exactly those faults — driven by
//! one seed, so every degraded stream is perfectly reproducible — by
//! wrapping a [`World`] in a [`FaultedWorld`] whose [`FaultedWorld::step`]
//! yields a [`MinuteDelivery`]: the per-customer bins *as a collector
//! would actually have seen them*, plus presence flags and the CDet feed's
//! liveness bit.
//!
//! The fault model (DESIGN.md §12):
//!
//! * **Collector outage** — every customer's bin for the minute is lost
//!   (not delayed): presence reads `false` and the generated flows are
//!   dropped, exactly as when a collector is down.
//! * **Customer gap** — one customer's export is missing for a span of
//!   minutes; everyone else is unaffected.
//! * **Duplicated flows** — each flow in the window is emitted twice with
//!   probability `magnitude` (retransmitted export datagrams).
//! * **Late flows** — each flow in the window is held back with
//!   probability `magnitude` and delivered 1–3 minutes later, in the bin
//!   of its *delivery* minute but with its original `minute` field intact.
//! * **Sampling renegotiation** — flows in the window pass through a
//!   [`FlowThinner`] with factor `magnitude`, modelling a router
//!   re-exporting at a coarser rate; estimates stay unbiased because the
//!   thinner composes the factor onto `FlowRecord::sampling`.
//! * **CDet dropout** — the auxiliary alert feed reads down
//!   (`cdet_up == false`); flow delivery is unaffected.

use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xatu_netflow::binning::MinuteFlows;
use xatu_netflow::record::FlowRecord;
use xatu_netflow::sampler::FlowThinner;
use xatu_obs::Counter;

/// The fault families the injector can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// All customers' bins lost for the window.
    CollectorOutage,
    /// One customer's bins lost for the window.
    CustomerGap,
    /// Flows duplicated with probability `magnitude`.
    DuplicateFlows,
    /// Flows held with probability `magnitude`, delivered 1–3 min late.
    LateFlows,
    /// Flows re-thinned by factor `magnitude` (rounded to u32).
    SamplingRenegotiation,
    /// The CDet alert feed reads down for the window.
    CdetDropout,
}

/// One contiguous fault: `kind` is active on minutes in `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Which fault family.
    pub kind: FaultKind,
    /// First affected minute (inclusive).
    pub start: u32,
    /// First unaffected minute (exclusive).
    pub end: u32,
    /// Customer index the fault targets; `None` means every customer.
    /// Only [`FaultKind::CustomerGap`] is per-customer today.
    pub customer: Option<usize>,
    /// Kind-specific intensity: a probability for duplicate/late windows,
    /// a thinning factor for sampling renegotiation, unused otherwise.
    pub magnitude: f64,
}

impl FaultWindow {
    fn covers(&self, minute: u32) -> bool {
        minute >= self.start && minute < self.end
    }
}

/// A full fault plan for one run: a set of [`FaultWindow`]s plus the seed
/// that drives the per-flow coin flips (duplication, lateness, delays).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// The windows, in no particular order; overlaps are allowed.
    pub windows: Vec<FaultWindow>,
    /// Seed for the injector's per-flow randomness.
    pub seed: u64,
}

/// Names accepted by [`FaultSchedule::builtin`], in a fixed order so tests
/// can iterate every scenario.
pub const BUILTIN_SCHEDULES: &[&str] = &[
    "clean",
    "outage",
    "gaps",
    "dup_late",
    "sampling_drift",
    "cdet_dropout",
    "cdet_flap",
    "everything",
];

impl FaultSchedule {
    /// The no-fault schedule: a [`FaultedWorld`] over it reproduces the
    /// raw [`World`] stream exactly.
    pub fn clean() -> Self {
        FaultSchedule {
            windows: Vec::new(),
            seed: 0,
        }
    }

    /// A randomized schedule: 3–8 windows of random kinds, starts and
    /// spans, deterministic in `seed`. Windows are confined to the first
    /// three quarters of the run so the tail always recovers.
    pub fn generate(seed: u64, total_minutes: u32, n_customers: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B9).wrapping_add(0xFA17));
        let n_windows = 3 + rng.random_range(0..6);
        let max_span = (total_minutes / 12).max(2);
        let mut windows = Vec::with_capacity(n_windows);
        for _ in 0..n_windows {
            let kind = match rng.random_range(0..6) {
                0 => FaultKind::CollectorOutage,
                1 => FaultKind::CustomerGap,
                2 => FaultKind::DuplicateFlows,
                3 => FaultKind::LateFlows,
                4 => FaultKind::SamplingRenegotiation,
                _ => FaultKind::CdetDropout,
            };
            let start = rng.random_range(0..(total_minutes * 3 / 4).max(1));
            let span = 1 + rng.random_range(0..max_span);
            let customer = if kind == FaultKind::CustomerGap {
                Some(rng.random_range(0..n_customers.max(1)))
            } else {
                None
            };
            let magnitude = match kind {
                FaultKind::DuplicateFlows => 0.2 + 0.4 * rng.random::<f64>(),
                FaultKind::LateFlows => 0.2 + 0.3 * rng.random::<f64>(),
                FaultKind::SamplingRenegotiation => (2 + rng.random_range(0..7)) as f64,
                _ => 1.0,
            };
            windows.push(FaultWindow {
                kind,
                start,
                end: (start + span).min(total_minutes),
                customer,
                magnitude,
            });
        }
        FaultSchedule { windows, seed }
    }

    /// A named, hand-built scenario (see [`BUILTIN_SCHEDULES`]). Each
    /// stresses one fault family hard; `"everything"` layers them all.
    /// Returns `None` for unknown names.
    pub fn builtin(name: &str, total_minutes: u32, n_customers: usize) -> Option<Self> {
        let t = total_minutes;
        let span = (t / 10).max(3);
        let w = |kind, start: u32, len: u32, customer, magnitude| FaultWindow {
            kind,
            start,
            end: (start + len).min(t),
            customer,
            magnitude,
        };
        let windows = match name {
            "clean" => Vec::new(),
            "outage" => vec![
                w(FaultKind::CollectorOutage, t / 4, span, None, 1.0),
                w(FaultKind::CollectorOutage, t / 2, 2, None, 1.0),
            ],
            "gaps" => (0..n_customers.min(4))
                .map(|c| {
                    w(
                        FaultKind::CustomerGap,
                        t / 5 + (c as u32) * (t / 8).max(1),
                        span,
                        Some(c),
                        1.0,
                    )
                })
                .collect(),
            "dup_late" => vec![
                w(FaultKind::DuplicateFlows, t / 6, span, None, 0.5),
                w(FaultKind::LateFlows, t / 3, span, None, 0.4),
                w(FaultKind::LateFlows, (t * 2) / 3, span, None, 0.3),
            ],
            "sampling_drift" => vec![
                w(FaultKind::SamplingRenegotiation, t / 4, span * 2, None, 4.0),
                w(FaultKind::SamplingRenegotiation, (t * 3) / 5, span, None, 8.0),
            ],
            "cdet_dropout" => vec![
                w(FaultKind::CdetDropout, t / 5, span * 2, None, 1.0),
                w(FaultKind::CdetDropout, (t * 3) / 5, span, None, 1.0),
            ],
            "cdet_flap" => {
                // Rapid feed up/down cycles across the middle of the run:
                // each down stretch is just longer than the driver's
                // silence tolerance, so the degradation ladder engages and
                // recovers once per flap. Regression target: the ladder
                // must not oscillate alerts on every cycle.
                let (down, up) = (14u32, 4u32);
                let mut windows = Vec::new();
                let mut start = t / 5;
                while start + down <= (t * 4) / 5 {
                    windows.push(w(FaultKind::CdetDropout, start, down, None, 1.0));
                    start += down + up;
                }
                windows
            }
            "everything" => vec![
                w(FaultKind::CollectorOutage, t / 6, 3, None, 1.0),
                w(FaultKind::CustomerGap, t / 4, span, Some(0), 1.0),
                w(FaultKind::DuplicateFlows, t / 3, span, None, 0.5),
                w(FaultKind::LateFlows, (t * 2) / 5, span, None, 0.4),
                w(FaultKind::SamplingRenegotiation, t / 2, span, None, 4.0),
                w(FaultKind::CdetDropout, (t * 3) / 5, span, None, 1.0),
            ],
            _ => return None,
        };
        Some(FaultSchedule { windows, seed: 0xFA17 })
    }

    fn outage_covers(&self, minute: u32, customer: usize) -> bool {
        self.windows.iter().any(|w| {
            w.covers(minute)
                && match w.kind {
                    FaultKind::CollectorOutage => true,
                    FaultKind::CustomerGap => w.customer == Some(customer),
                    _ => false,
                }
        })
    }

    fn cdet_up(&self, minute: u32) -> bool {
        !self
            .windows
            .iter()
            .any(|w| w.kind == FaultKind::CdetDropout && w.covers(minute))
    }

    fn dup_probability(&self, minute: u32) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::DuplicateFlows && w.covers(minute))
            .map(|w| w.magnitude)
            .fold(0.0, f64::max)
    }

    fn late_probability(&self, minute: u32) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::LateFlows && w.covers(minute))
            .map(|w| w.magnitude)
            .fold(0.0, f64::max)
    }

    fn thin_factor(&self, minute: u32) -> u32 {
        self.windows
            .iter()
            .filter(|w| w.kind == FaultKind::SamplingRenegotiation && w.covers(minute))
            .map(|w| w.magnitude.max(1.0) as u32)
            .max()
            .unwrap_or(1)
    }
}

/// Injection-side telemetry, deterministic in the world + schedule seeds.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultObs {
    /// (minute, customer) bins suppressed by outages or gaps.
    pub bins_suppressed: Counter,
    /// Extra flow copies injected by duplication windows.
    pub flows_duplicated: Counter,
    /// Flows held back for late delivery.
    pub flows_delayed: Counter,
    /// Held flows actually delivered (late arrivals).
    pub flows_delivered_late: Counter,
    /// Held flows never delivered (run ended, or delivery bin suppressed).
    pub flows_lost_late: Counter,
    /// Flows dropped by sampling-renegotiation thinning.
    pub flows_thinned_away: Counter,
    /// Minutes on which the CDet feed read down.
    pub cdet_down_minutes: Counter,
}

/// One minute of degraded delivery: what the collector handed downstream.
#[derive(Clone, Debug)]
pub struct MinuteDelivery {
    /// The wall-clock minute of this delivery.
    pub minute: u32,
    /// One bin per customer, in customer order — **always** full length;
    /// a suppressed bin is present in the vec but empty, with its
    /// `present` flag false, so downstream indexing never shifts.
    pub bins: Vec<MinuteFlows>,
    /// `present[i]` is false when customer `i`'s export was lost.
    pub present: Vec<bool>,
    /// Whether the CDet alert feed is live this minute.
    pub cdet_up: bool,
}

/// A [`World`] streamed through a [`FaultSchedule`].
///
/// `Clone` is how the faulted stream is checkpointed: the clone resumes
/// from the same minute with the same pending late-flow queue and the same
/// RNG phase, so replay is bit-identical.
#[derive(Clone)]
pub struct FaultedWorld {
    world: World,
    schedule: FaultSchedule,
    rng: StdRng,
    /// Held flows keyed by delivery minute: `(customer index, flow)`.
    late: BTreeMap<u32, Vec<(usize, FlowRecord)>>,
    /// Lazily created per renegotiation factor; reset outside windows so
    /// each renegotiation episode starts from phase 0.
    thinner: Option<FlowThinner>,
    obs: FaultObs,
}

impl FaultedWorld {
    /// Wraps a world in a fault schedule.
    pub fn new(world: World, schedule: FaultSchedule) -> Self {
        let rng = StdRng::seed_from_u64(schedule.seed.wrapping_mul(0x45d9f3b).wrapping_add(0xF0E1));
        FaultedWorld {
            world,
            schedule,
            rng,
            late: BTreeMap::new(),
            thinner: None,
            obs: FaultObs::default(),
        }
    }

    /// The wrapped world (ground truth, customers, blocklists …).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The schedule driving the injection.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Injection telemetry accumulated so far.
    pub fn obs(&self) -> &FaultObs {
        &self.obs
    }

    /// True when the configured period is exhausted.
    pub fn finished(&self) -> bool {
        self.world.finished()
    }

    /// The current minute (the one `step` will produce next).
    pub fn minute(&self) -> u32 {
        self.world.minute()
    }

    /// Advances one minute through the fault layer.
    pub fn step(&mut self) -> MinuteDelivery {
        let minute = self.world.minute();
        let mut bins = self.world.step();
        let n = bins.len();

        let dup_p = self.schedule.dup_probability(minute);
        let late_p = self.schedule.late_probability(minute);
        let factor = self.schedule.thin_factor(minute);
        if factor > 1 {
            let stale = self.thinner.as_ref().map(|t| t.factor() != factor);
            if stale.unwrap_or(true) {
                self.thinner = Some(FlowThinner::new(factor));
            }
        } else {
            self.thinner = None;
        }

        let mut present = vec![true; n];
        for (ci, bin) in bins.iter_mut().enumerate() {
            if self.schedule.outage_covers(minute, ci) {
                // Lost, not delayed: a down collector never sees the data.
                present[ci] = false;
                bin.flows.clear();
                self.obs.bins_suppressed.inc();
                continue;
            }
            if let Some(thinner) = self.thinner.as_mut() {
                let before = bin.flows.len();
                bin.flows = bin.flows.iter().filter_map(|f| thinner.thin(*f)).collect();
                self.obs
                    .flows_thinned_away
                    .add((before - bin.flows.len()) as u64);
            }
            if late_p > 0.0 {
                let mut kept = Vec::with_capacity(bin.flows.len());
                for f in bin.flows.drain(..) {
                    if self.rng.random::<f64>() < late_p {
                        let delay = 1 + self.rng.random_range(0..3) as u32;
                        self.late.entry(minute + delay).or_default().push((ci, f));
                        self.obs.flows_delayed.inc();
                    } else {
                        kept.push(f);
                    }
                }
                bin.flows = kept;
            }
            if dup_p > 0.0 {
                let originals = bin.flows.len();
                for i in 0..originals {
                    if self.rng.random::<f64>() < dup_p {
                        let copy = bin.flows[i];
                        bin.flows.push(copy);
                        self.obs.flows_duplicated.inc();
                    }
                }
            }
        }

        // Late arrivals land in the bin of their *delivery* minute, keeping
        // their original `minute` field — downstream sees genuinely stale
        // records. Arrivals into a suppressed bin are lost with it.
        if let Some(arrivals) = self.late.remove(&minute) {
            for (ci, f) in arrivals {
                if present[ci] {
                    bins[ci].flows.push(f);
                    self.obs.flows_delivered_late.inc();
                } else {
                    self.obs.flows_lost_late.inc();
                }
            }
        }

        let cdet_up = self.schedule.cdet_up(minute);
        if !cdet_up {
            self.obs.cdet_down_minutes.inc();
        }

        MinuteDelivery {
            minute,
            bins,
            present,
            cdet_up,
        }
    }

    /// Flows still held in the late queue (lost if the run ends now).
    pub fn pending_late_flows(&self) -> usize {
        self.late.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world(seed: u64) -> World {
        World::new(WorldConfig::smoke_test(seed))
    }

    #[test]
    fn clean_schedule_reproduces_the_raw_stream() {
        let mut raw = world(11);
        let mut faulted = FaultedWorld::new(world(11), FaultSchedule::clean());
        for _ in 0..40 {
            let a = raw.step();
            let d = faulted.step();
            assert!(d.present.iter().all(|&p| p));
            assert!(d.cdet_up);
            for (x, y) in a.iter().zip(&d.bins) {
                assert_eq!(x.flows, y.flows);
            }
        }
    }

    #[test]
    fn outage_suppresses_every_customer() {
        let w = world(12);
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::CollectorOutage,
                start: 5,
                end: 8,
                customer: None,
                magnitude: 1.0,
            }],
            seed: 1,
        };
        let mut f = FaultedWorld::new(w, schedule);
        for m in 0..12u32 {
            let d = f.step();
            assert_eq!(d.bins.len(), d.present.len());
            let expect_present = !(5..8).contains(&m);
            assert!(d.present.iter().all(|&p| p == expect_present), "m={m}");
            if !expect_present {
                assert!(d.bins.iter().all(|b| b.flows.is_empty()));
            }
        }
    }

    #[test]
    fn customer_gap_only_hits_its_target() {
        let w = world(13);
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::CustomerGap,
                start: 2,
                end: 6,
                customer: Some(1),
                magnitude: 1.0,
            }],
            seed: 1,
        };
        let mut f = FaultedWorld::new(w, schedule);
        for m in 0..8u32 {
            let d = f.step();
            for (ci, &p) in d.present.iter().enumerate() {
                let gapped = ci == 1 && (2..6).contains(&m);
                assert_eq!(p, !gapped, "m={m} ci={ci}");
            }
        }
    }

    #[test]
    fn late_flows_keep_their_original_minute() {
        let w = world(14);
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::LateFlows,
                start: 0,
                end: 5,
                customer: None,
                magnitude: 1.0, // hold everything
            }],
            seed: 2,
        };
        let mut f = FaultedWorld::new(w, schedule);
        let d0 = f.step();
        assert!(d0.bins.iter().all(|b| b.flows.is_empty()));
        assert!(f.pending_late_flows() > 0);
        let mut saw_stale = false;
        for _ in 1..10 {
            let d = f.step();
            for bin in &d.bins {
                for flow in &bin.flows {
                    if flow.minute < d.minute {
                        saw_stale = true;
                    }
                    assert!(flow.minute <= d.minute);
                    assert!(d.minute - flow.minute <= 3, "delay beyond cap");
                }
            }
        }
        assert!(saw_stale, "no late arrival observed");
    }

    #[test]
    fn duplication_only_adds_copies() {
        let mut raw = world(15);
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::DuplicateFlows,
                start: 0,
                end: 10,
                customer: None,
                magnitude: 1.0, // duplicate everything
            }],
            seed: 3,
        };
        let mut f = FaultedWorld::new(world(15), schedule);
        for _ in 0..10 {
            let a = raw.step();
            let d = f.step();
            for (x, y) in a.iter().zip(&d.bins) {
                assert_eq!(y.flows.len(), 2 * x.flows.len());
            }
        }
    }

    #[test]
    fn renegotiation_rescales_sampling_rate() {
        let w = world(16);
        let base_rate = w.config().sampling_rate;
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::SamplingRenegotiation,
                start: 0,
                end: 5,
                customer: None,
                magnitude: 4.0,
            }],
            seed: 4,
        };
        let mut f = FaultedWorld::new(w, schedule);
        let mut saw_flow = false;
        for _ in 0..5 {
            for bin in f.step().bins {
                for flow in bin.flows {
                    saw_flow = true;
                    assert_eq!(flow.sampling, base_rate * 4);
                }
            }
        }
        assert!(saw_flow, "thinning removed every flow");
        // After the window the stream returns to the base rate.
        for bin in f.step().bins {
            for flow in bin.flows {
                assert_eq!(flow.sampling, base_rate);
            }
        }
    }

    #[test]
    fn cdet_dropout_gates_only_the_feed_bit() {
        let w = world(17);
        let schedule = FaultSchedule {
            windows: vec![FaultWindow {
                kind: FaultKind::CdetDropout,
                start: 3,
                end: 7,
                customer: None,
                magnitude: 1.0,
            }],
            seed: 5,
        };
        let mut f = FaultedWorld::new(w, schedule);
        for m in 0..9u32 {
            let d = f.step();
            assert_eq!(d.cdet_up, !(3..7).contains(&m), "m={m}");
            assert!(d.present.iter().all(|&p| p));
        }
    }

    #[test]
    fn generated_schedules_are_deterministic_and_bounded() {
        let a = FaultSchedule::generate(99, 240, 4);
        let b = FaultSchedule::generate(99, 240, 4);
        assert_eq!(a, b);
        assert!(!a.windows.is_empty());
        for w in &a.windows {
            assert!(w.start < 240 && w.end <= 240 && w.end > w.start);
            if let Some(c) = w.customer {
                assert!(c < 4);
            }
        }
        let c = FaultSchedule::generate(100, 240, 4);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn every_builtin_name_resolves() {
        for name in BUILTIN_SCHEDULES {
            let s = FaultSchedule::builtin(name, 240, 4).expect("builtin resolves");
            for w in &s.windows {
                assert!(w.end <= 240);
            }
        }
        assert!(FaultSchedule::builtin("nonsense", 240, 4).is_none());
    }

    #[test]
    fn faulted_world_clone_resumes_bit_identically() {
        let schedule = FaultSchedule::generate(7, 240, 4);
        let mut a = FaultedWorld::new(world(18), schedule);
        for _ in 0..20 {
            a.step();
        }
        let mut b = a.clone();
        for _ in 0..20 {
            let da = a.step();
            let db = b.step();
            assert_eq!(da.present, db.present);
            for (x, y) in da.bins.iter().zip(&db.bins) {
                assert_eq!(x.flows, y.flows);
            }
        }
    }
}
