//! The streaming world: merges benign and attack traffic, applies sampling,
//! and exposes ground truth.

use crate::attack::{AttackEvent, InvalidEvent};
use crate::benign::BenignProfile;
use crate::botnet::{customer_addr, Ecosystem};
use crate::config::WorldConfig;
use crate::schedule::build_schedule;
use crate::vectors::AttackVector;
use std::collections::HashMap;
use xatu_netflow::addr::{Ipv4, Prefix, Subnet24};
use xatu_netflow::attack::Signature;
use xatu_netflow::binning::MinuteFlows;
use xatu_netflow::record::FlowRecord;
use xatu_netflow::sampler::{PacketSampler, SamplingMode};
use xatu_obs::Counter;

/// Id namespace for injected vectors, far above any scheduled event id, so
/// a vector's per-(id, minute) emission RNG never collides with an event's.
const VECTOR_ID_BASE: usize = 1 << 32;

/// The bin for `victim` in one minute's emission, if the victim is a
/// customer of this world. Replaces the old panicking `.find(..).unwrap()`
/// lookups: victims outside the customer set (or suppressed bins) resolve
/// to `None` instead of a panic.
pub fn victim_bin(bins: &[MinuteFlows], victim: Ipv4) -> Option<&MinuteFlows> {
    bins.iter().find(|b| b.customer == victim)
}

/// Signature-matching sampling-upscaled bytes delivered to `victim` in one
/// minute's bins; `0.0` when the victim emitted no flows this minute or is
/// not a customer at all.
pub fn victim_signature_bytes(bins: &[MinuteFlows], victim: Ipv4, sig: &Signature) -> f64 {
    victim_bin(bins, victim).map_or(0.0, |bin| {
        bin.flows
            .iter()
            .filter(|f| sig.matches(f))
            .map(|f| f.est_bytes() as f64)
            .sum()
    })
}

/// Generation-side telemetry, accumulated while the world streams.
///
/// Plain counters embedded in the (sequential) emission loop, so they are
/// deterministic in the seed and free to read; the pipeline folds them into
/// its obs registry after each streaming phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldObs {
    /// True flows generated before sampling (benign + attack).
    pub flows_generated: Counter,
    /// Attack-emitted flows before sampling.
    pub attack_flows_generated: Counter,
    /// Flows that survived the packet sampler.
    pub flows_emitted: Counter,
    /// Minutes stepped.
    pub minutes_stepped: Counter,
}

/// A running simulated ISP.
///
/// `Clone` is cheap relative to a re-simulation and is how the pipeline
/// checkpoints the stream (e.g. at the validation/test boundary).
#[derive(Clone)]
pub struct World {
    cfg: WorldConfig,
    customers: Vec<Ipv4>,
    benign: Vec<BenignProfile>,
    ecosystem: Ecosystem,
    schedule: Vec<AttackEvent>,
    /// Events indexed by victim for fast per-minute lookup.
    by_victim: HashMap<Ipv4, Vec<usize>>,
    /// Injected composable vectors (scenario matrix), in injection order.
    vectors: Vec<AttackVector>,
    /// Vectors indexed by victim for fast per-minute lookup.
    vec_by_victim: HashMap<Ipv4, Vec<usize>>,
    sampler: PacketSampler,
    minute: u32,
    obs: WorldObs,
}

impl World {
    /// Builds a world from a configuration. Deterministic in `cfg.seed`.
    pub fn new(cfg: WorldConfig) -> Self {
        let customers: Vec<Ipv4> = (0..cfg.n_customers).map(customer_addr).collect();
        let benign: Vec<BenignProfile> = customers
            .iter()
            .enumerate()
            .map(|(i, &c)| BenignProfile::new(&cfg, i, c))
            .collect();
        let ecosystem = Ecosystem::build(&cfg);
        let mut schedule = build_schedule(&cfg);
        // Re-anchor attack peaks to each victim's own traffic level: a
        // flood's defining property is overwhelming *this* victim (real
        // attacks run 10-1000x the target's normal volume), so peaks are
        // lognormal multiples of the victim's baseline (median ~12x)
        // rather than absolute rates. The absolute sample from the
        // schedule acts as a floor so attacks on tiny customers still
        // clear detector floors.
        {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let idx_of: HashMap<Ipv4, usize> = customers
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i))
                .collect();
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x45d9f3b).wrapping_add(3));
            for e in &mut schedule {
                if let Some(&vi) = idx_of.get(&e.victim) {
                    let base: f64 = benign[vi].base_bpm();
                    let z = {
                        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                        let u2: f64 = rng.random();
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    };
                    let rel = 12.0 * (0.8 * z).exp();
                    e.peak_bpm = (base * rel).max(e.peak_bpm * 0.2);
                }
            }
        }
        let mut by_victim: HashMap<Ipv4, Vec<usize>> = HashMap::new();
        for (i, e) in schedule.iter().enumerate() {
            by_victim.entry(e.victim).or_default().push(i);
        }
        let sampler = PacketSampler::new(
            cfg.sampling_rate,
            SamplingMode::Systematic,
            cfg.seed.wrapping_add(0xABCD),
        );
        World {
            cfg,
            customers,
            benign,
            ecosystem,
            schedule,
            by_victim,
            vectors: Vec::new(),
            vec_by_victim: HashMap::new(),
            sampler,
            minute: 0,
            obs: WorldObs::default(),
        }
    }

    /// Generation telemetry accumulated so far.
    pub fn obs(&self) -> &WorldObs {
        &self.obs
    }

    /// Attacks in the ground-truth schedule.
    pub fn attacks_scheduled(&self) -> usize {
        self.schedule.len()
    }

    /// Already-sampled flows the sampler rejected (should stay 0; a
    /// non-zero value means a caller double-sampled).
    pub fn sampler_double_sample_rejects(&self) -> u64 {
        self.sampler.double_sample_rejects()
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Customer addresses, index-aligned with emission order.
    pub fn customers(&self) -> &[Ipv4] {
        &self.customers
    }

    /// The full ground-truth attack schedule, sorted by onset.
    pub fn events(&self) -> &[AttackEvent] {
        &self.schedule
    }

    /// The attacker ecosystem (for audits and signal studies).
    pub fn ecosystem(&self) -> &Ecosystem {
        &self.ecosystem
    }

    /// Blocklist feed entries: `(category index 0..11, /24)`.
    pub fn blocklist_feed(&self) -> Vec<(usize, Subnet24)> {
        self.ecosystem.blocklist_feed()
    }

    /// BGP announcements for the spoof classifier.
    pub fn routed_prefixes(&self) -> Vec<(Prefix, u32)> {
        Ecosystem::routed_prefixes()
    }

    /// Total minutes the world will simulate.
    pub fn total_minutes(&self) -> u32 {
        self.cfg.total_minutes()
    }

    /// The current minute (the one `step` will produce next).
    pub fn minute(&self) -> u32 {
        self.minute
    }

    /// True when the configured period is exhausted.
    pub fn finished(&self) -> bool {
        self.minute >= self.total_minutes()
    }

    /// Appends a scripted event (used by `scenario::single_udp_attack`).
    pub(crate) fn push_event_internal(&mut self, mut event: AttackEvent, id: usize) {
        event.id = id;
        let idx = self.schedule.len();
        self.by_victim.entry(event.victim).or_default().push(idx);
        self.schedule.push(event);
    }

    /// Injected composable vectors, in injection order.
    pub fn vectors(&self) -> &[AttackVector] {
        &self.vectors
    }

    /// The victim's benign baseline volume (bytes/minute), if a customer.
    /// Scenario composers size attack peaks relative to this.
    pub fn baseline_bpm(&self, customer: Ipv4) -> Option<f64> {
        self.customers
            .iter()
            .position(|&c| c == customer)
            .map(|i| self.benign[i].base_bpm())
    }

    /// Injects a composable attack vector. The carrier id is reassigned
    /// into the vector id namespace (unique per injection, disjoint from
    /// scheduled event ids), so each vector's emission RNG is independent
    /// of every co-resident event and vector. Rejects invalid vectors.
    pub fn inject_vector(&mut self, mut vector: AttackVector) -> Result<(), InvalidEvent> {
        vector.carrier.id = VECTOR_ID_BASE + self.vectors.len();
        vector.validate()?;
        let idx = self.vectors.len();
        self.vec_by_victim
            .entry(vector.victim())
            .or_default()
            .push(idx);
        self.vectors.push(vector);
        Ok(())
    }

    /// Advances one minute: returns one [`MinuteFlows`] bin per customer,
    /// post-sampling, in customer order.
    pub fn step(&mut self) -> Vec<MinuteFlows> {
        let minute = self.minute;
        assert!(
            minute < self.total_minutes(),
            "world stepped past its configured period"
        );
        self.minute += 1;
        self.obs.minutes_stepped.inc();

        let mut out = Vec::with_capacity(self.customers.len());
        let mut scratch: Vec<FlowRecord> = Vec::with_capacity(128);
        for (i, &customer) in self.customers.iter().enumerate() {
            scratch.clear();
            self.benign[i].emit(minute, &mut scratch);
            let benign_flows = scratch.len();
            if let Some(event_ids) = self.by_victim.get(&customer) {
                for &ei in event_ids {
                    let e = &self.schedule[ei];
                    // Cheap range check before the full emit.
                    if minute >= e.prep_start && minute < e.end {
                        e.emit(
                            minute,
                            &self.ecosystem.botnets[e.botnet_id],
                            &self.ecosystem.resolvers,
                            &mut scratch,
                        );
                    }
                }
            }
            if let Some(vec_ids) = self.vec_by_victim.get(&customer) {
                for &vi in vec_ids {
                    let v = &self.vectors[vi];
                    let (first, last) = v.active_range();
                    if minute >= first && minute < last {
                        v.emit(
                            minute,
                            &self.ecosystem.botnets[v.carrier.botnet_id],
                            &self.ecosystem.resolvers,
                            &mut scratch,
                        );
                    }
                }
            }
            self.obs.flows_generated.add(scratch.len() as u64);
            self.obs
                .attack_flows_generated
                .add((scratch.len() - benign_flows) as u64);
            let flows: Vec<FlowRecord> = scratch
                .iter()
                .filter_map(|f| self.sampler.sample(*f))
                .collect();
            self.obs.flows_emitted.add(flows.len() as u64);
            out.push(MinuteFlows {
                minute,
                customer,
                flows,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackPhase;
    use xatu_netflow::attack::AttackType;

    fn world(seed: u64) -> World {
        World::new(WorldConfig::smoke_test(seed))
    }

    #[test]
    fn step_yields_one_bin_per_customer() {
        let mut w = world(1);
        let bins = w.step();
        assert_eq!(bins.len(), w.customers().len());
        for (bin, &c) in bins.iter().zip(w.customers()) {
            assert_eq!(bin.customer, c);
            assert_eq!(bin.minute, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = world(2);
        let mut b = world(2);
        for _ in 0..50 {
            let ba = a.step();
            let bb = b.step();
            for (x, y) in ba.iter().zip(&bb) {
                assert_eq!(x.flows, y.flows);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = world(3);
        let mut b = world(4);
        let fa: u64 = a.step().iter().map(|b| b.total_bytes()).sum();
        let fb: u64 = b.step().iter().map(|b| b.total_bytes()).sum();
        assert_ne!(fa, fb);
    }

    #[test]
    fn attack_minutes_carry_signature_matching_surge() {
        let mut w = world(5);
        let events: Vec<AttackEvent> = w.events().to_vec();
        assert!(!events.is_empty(), "smoke world should schedule attacks");
        let e = events
            .iter()
            .find(|e| e.phase(e.onset + e.ramp_minutes) == AttackPhase::Plateau)
            .expect("an event with a plateau")
            .clone();
        let sig = e.attack_type.signature();
        // Run to a plateau minute, measuring matching volume.
        let mut quiet = 0.0f64;
        let mut during = 0.0f64;
        let total = w.total_minutes();
        for m in 0..total.min(e.end + 1) {
            let bins = w.step();
            let vol = victim_signature_bytes(&bins, e.victim, &sig);
            if m + 1 == e.onset.saturating_sub(120) {
                quiet = vol;
            }
            if m >= e.onset + e.ramp_minutes && m < e.end {
                during = during.max(vol);
            }
        }
        assert!(
            during > 4.0 * quiet.max(1.0),
            "attack volume {during} vs quiet {quiet}"
        );
    }

    #[test]
    fn sampling_is_applied() {
        let mut w = world(6);
        let bins = w.step();
        for bin in bins {
            for f in bin.flows {
                assert_eq!(f.sampling, w.cfg.sampling_rate);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stepped past")]
    fn stepping_past_the_end_panics() {
        let mut w = world(7);
        for _ in 0..=w.total_minutes() {
            w.step();
        }
    }

    #[test]
    fn generation_telemetry_tracks_emission() {
        let mut w = world(9);
        let mut emitted = 0u64;
        for _ in 0..30 {
            emitted += w.step().iter().map(|b| b.flows.len() as u64).sum::<u64>();
        }
        let obs = w.obs();
        if xatu_obs::enabled() {
            assert_eq!(obs.minutes_stepped.get(), 30);
            assert_eq!(obs.flows_emitted.get(), emitted);
            assert!(obs.flows_generated.get() >= obs.flows_emitted.get());
            assert!(obs.flows_generated.get() >= obs.attack_flows_generated.get());
        } else {
            assert_eq!(obs.minutes_stepped.get(), 0);
        }
        assert_eq!(w.sampler_double_sample_rejects(), 0);
        assert_eq!(w.attacks_scheduled(), w.events().len());
    }

    #[test]
    fn victim_bin_lookups_are_graceful_for_absent_victims() {
        // Regression: the old `.find(..).unwrap()` pattern panicked when a
        // victim emitted no flows in a minute — e.g. a scripted event whose
        // victim is outside the customer set. The helpers resolve to
        // None / 0.0 instead.
        let mut w = world(11);
        let outsider = Ipv4::from_octets(203, 0, 113, 7);
        assert!(!w.customers().contains(&outsider));
        let mut e = w.events()[0].clone();
        e.victim = outsider;
        w.inject_event(e.clone()).expect("valid scripted event");
        let sig = e.attack_type.signature();
        for _ in 0..3 {
            let bins = w.step();
            assert!(victim_bin(&bins, outsider).is_none());
            assert_eq!(victim_signature_bytes(&bins, outsider, &sig), 0.0);
            // Present victims still resolve.
            let c = w.customers()[0];
            assert!(victim_bin(&bins, c).is_some());
        }
    }

    #[test]
    fn injected_vectors_emit_and_validate() {
        use crate::vectors::{AttackVector, VectorShape};
        let mut cfg = WorldConfig::smoke_test(12);
        cfg.n_chains = 0; // no background attacks polluting the volumes
        let mut w = World::new(cfg);
        let victim = w.customers()[0];
        let peak = 20.0 * w.baseline_bpm(victim).expect("victim is a customer");
        let carrier = AttackEvent {
            id: 0,
            victim,
            attack_type: AttackType::UdpFlood,
            botnet_id: 0,
            prep_start: 0,
            onset: 5,
            ramp_minutes: 0,
            end: 30,
            peak_bpm: peak,
            ramp_dr: 1.0,
            wave_id: None,
            spoofed_frac: 0.2,
            spoof_detectable_frac: 0.5,
            ramp_volume_scale: 1.0,
            prep_intensity: 1.0,
        };
        let sig = carrier.attack_type.signature();
        w.inject_vector(AttackVector {
            carrier: carrier.clone(),
            shape: VectorShape::Pulse {
                on: 3,
                off: 2,
                phase: 0,
            },
        })
        .expect("valid vector");
        assert_eq!(w.vectors().len(), 1);

        // Invalid vectors are rejected, not scheduled.
        let mut bad = carrier.clone();
        bad.end = bad.onset;
        assert!(w
            .inject_vector(AttackVector {
                carrier: bad,
                shape: VectorShape::Constant,
            })
            .is_err());
        assert_eq!(w.vectors().len(), 1);

        // The pulse train shows up in emitted volume: on-minutes loud,
        // off-minutes back at benign level.
        let mut on_vol = 0.0f64;
        let mut off_vol = 0.0f64;
        for m in 0..30 {
            let bins = w.step();
            let vol = victim_signature_bytes(&bins, victim, &sig);
            if m >= 5 {
                let t = m - 5;
                if t % 5 < 3 {
                    on_vol = on_vol.max(vol);
                } else {
                    off_vol = off_vol.max(vol);
                }
            }
        }
        assert!(
            on_vol > 4.0 * off_vol.max(1.0),
            "pulse on {on_vol} vs off {off_vol}"
        );
    }

    #[test]
    fn vector_emission_is_independent_of_co_resident_vectors() {
        use crate::vectors::{AttackVector, VectorShape};
        // Exact additivity: with sampling off, a vector's flows are
        // bit-identical whether it runs alone or with another vector on the
        // same victim — composed emission is the concatenation of parts.
        let mut cfg = WorldConfig::smoke_test(13);
        cfg.sampling_rate = 1;
        cfg.n_chains = 0;
        let build = |with_second: bool| -> World {
            let mut w = World::new(cfg);
            let victim = w.customers()[0];
            let mk = |ty: AttackType| AttackEvent {
                id: 0,
                victim,
                attack_type: ty,
                botnet_id: 0,
                prep_start: 0,
                onset: 5,
                ramp_minutes: 2,
                end: 40,
                peak_bpm: 4e7,
                ramp_dr: 1.0,
                wave_id: None,
                spoofed_frac: 0.2,
                spoof_detectable_frac: 0.5,
                ramp_volume_scale: 1.0,
                prep_intensity: 1.0,
            };
            w.inject_vector(AttackVector {
                carrier: mk(AttackType::TcpSyn),
                shape: VectorShape::Constant,
            })
            .unwrap();
            if with_second {
                w.inject_vector(AttackVector {
                    carrier: mk(AttackType::IcmpFlood),
                    shape: VectorShape::Pulse {
                        on: 3,
                        off: 2,
                        phase: 0,
                    },
                })
                .unwrap();
            }
            w
        };
        let mut solo = build(false);
        let mut both = build(true);
        let victim = solo.customers()[0];
        let syn = AttackType::TcpSyn.signature();
        for _ in 0..40 {
            let a = solo.step();
            let b = both.step();
            let fa: Vec<_> = victim_bin(&a, victim)
                .map(|bin| bin.flows.iter().filter(|f| syn.matches(f)).collect())
                .unwrap_or_default();
            let fb: Vec<_> = victim_bin(&b, victim)
                .map(|bin| bin.flows.iter().filter(|f| syn.matches(f)).collect())
                .unwrap_or_default();
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn blocklist_feed_covers_botnet_space() {
        let w = world(8);
        let feed = w.blocklist_feed();
        assert!(!feed.is_empty());
        for (cat, s) in feed {
            assert!(cat < 11);
            assert_eq!(s.base().octets()[0], 60);
        }
    }

    #[test]
    fn event_types_cover_multiple_kinds() {
        // With the default mix, a full-size schedule has ≥3 distinct types.
        let w = World::new(WorldConfig::default());
        let kinds: std::collections::HashSet<AttackType> =
            w.events().iter().map(|e| e.attack_type).collect();
        assert!(kinds.len() >= 3, "only {kinds:?}");
    }
}
