//! The streaming world: merges benign and attack traffic, applies sampling,
//! and exposes ground truth.

use crate::attack::AttackEvent;
use crate::benign::BenignProfile;
use crate::botnet::{customer_addr, Ecosystem};
use crate::config::WorldConfig;
use crate::schedule::build_schedule;
use std::collections::HashMap;
use xatu_netflow::addr::{Ipv4, Prefix, Subnet24};
use xatu_netflow::binning::MinuteFlows;
use xatu_netflow::record::FlowRecord;
use xatu_netflow::sampler::{PacketSampler, SamplingMode};
use xatu_obs::Counter;

/// Generation-side telemetry, accumulated while the world streams.
///
/// Plain counters embedded in the (sequential) emission loop, so they are
/// deterministic in the seed and free to read; the pipeline folds them into
/// its obs registry after each streaming phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldObs {
    /// True flows generated before sampling (benign + attack).
    pub flows_generated: Counter,
    /// Attack-emitted flows before sampling.
    pub attack_flows_generated: Counter,
    /// Flows that survived the packet sampler.
    pub flows_emitted: Counter,
    /// Minutes stepped.
    pub minutes_stepped: Counter,
}

/// A running simulated ISP.
///
/// `Clone` is cheap relative to a re-simulation and is how the pipeline
/// checkpoints the stream (e.g. at the validation/test boundary).
#[derive(Clone)]
pub struct World {
    cfg: WorldConfig,
    customers: Vec<Ipv4>,
    benign: Vec<BenignProfile>,
    ecosystem: Ecosystem,
    schedule: Vec<AttackEvent>,
    /// Events indexed by victim for fast per-minute lookup.
    by_victim: HashMap<Ipv4, Vec<usize>>,
    sampler: PacketSampler,
    minute: u32,
    obs: WorldObs,
}

impl World {
    /// Builds a world from a configuration. Deterministic in `cfg.seed`.
    pub fn new(cfg: WorldConfig) -> Self {
        let customers: Vec<Ipv4> = (0..cfg.n_customers).map(customer_addr).collect();
        let benign: Vec<BenignProfile> = customers
            .iter()
            .enumerate()
            .map(|(i, &c)| BenignProfile::new(&cfg, i, c))
            .collect();
        let ecosystem = Ecosystem::build(&cfg);
        let mut schedule = build_schedule(&cfg);
        // Re-anchor attack peaks to each victim's own traffic level: a
        // flood's defining property is overwhelming *this* victim (real
        // attacks run 10-1000x the target's normal volume), so peaks are
        // lognormal multiples of the victim's baseline (median ~12x)
        // rather than absolute rates. The absolute sample from the
        // schedule acts as a floor so attacks on tiny customers still
        // clear detector floors.
        {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let idx_of: HashMap<Ipv4, usize> = customers
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i))
                .collect();
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x45d9f3b).wrapping_add(3));
            for e in &mut schedule {
                if let Some(&vi) = idx_of.get(&e.victim) {
                    let base: f64 = benign[vi].base_bpm();
                    let z = {
                        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                        let u2: f64 = rng.random();
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    };
                    let rel = 12.0 * (0.8 * z).exp();
                    e.peak_bpm = (base * rel).max(e.peak_bpm * 0.2);
                }
            }
        }
        let mut by_victim: HashMap<Ipv4, Vec<usize>> = HashMap::new();
        for (i, e) in schedule.iter().enumerate() {
            by_victim.entry(e.victim).or_default().push(i);
        }
        let sampler = PacketSampler::new(
            cfg.sampling_rate,
            SamplingMode::Systematic,
            cfg.seed.wrapping_add(0xABCD),
        );
        World {
            cfg,
            customers,
            benign,
            ecosystem,
            schedule,
            by_victim,
            sampler,
            minute: 0,
            obs: WorldObs::default(),
        }
    }

    /// Generation telemetry accumulated so far.
    pub fn obs(&self) -> &WorldObs {
        &self.obs
    }

    /// Attacks in the ground-truth schedule.
    pub fn attacks_scheduled(&self) -> usize {
        self.schedule.len()
    }

    /// Already-sampled flows the sampler rejected (should stay 0; a
    /// non-zero value means a caller double-sampled).
    pub fn sampler_double_sample_rejects(&self) -> u64 {
        self.sampler.double_sample_rejects()
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Customer addresses, index-aligned with emission order.
    pub fn customers(&self) -> &[Ipv4] {
        &self.customers
    }

    /// The full ground-truth attack schedule, sorted by onset.
    pub fn events(&self) -> &[AttackEvent] {
        &self.schedule
    }

    /// The attacker ecosystem (for audits and signal studies).
    pub fn ecosystem(&self) -> &Ecosystem {
        &self.ecosystem
    }

    /// Blocklist feed entries: `(category index 0..11, /24)`.
    pub fn blocklist_feed(&self) -> Vec<(usize, Subnet24)> {
        self.ecosystem.blocklist_feed()
    }

    /// BGP announcements for the spoof classifier.
    pub fn routed_prefixes(&self) -> Vec<(Prefix, u32)> {
        Ecosystem::routed_prefixes()
    }

    /// Total minutes the world will simulate.
    pub fn total_minutes(&self) -> u32 {
        self.cfg.total_minutes()
    }

    /// The current minute (the one `step` will produce next).
    pub fn minute(&self) -> u32 {
        self.minute
    }

    /// True when the configured period is exhausted.
    pub fn finished(&self) -> bool {
        self.minute >= self.total_minutes()
    }

    /// Appends a scripted event (used by `scenario::single_udp_attack`).
    pub(crate) fn push_event_internal(&mut self, mut event: AttackEvent, id: usize) {
        event.id = id;
        let idx = self.schedule.len();
        self.by_victim.entry(event.victim).or_default().push(idx);
        self.schedule.push(event);
    }

    /// Advances one minute: returns one [`MinuteFlows`] bin per customer,
    /// post-sampling, in customer order.
    pub fn step(&mut self) -> Vec<MinuteFlows> {
        let minute = self.minute;
        assert!(
            minute < self.total_minutes(),
            "world stepped past its configured period"
        );
        self.minute += 1;
        self.obs.minutes_stepped.inc();

        let mut out = Vec::with_capacity(self.customers.len());
        let mut scratch: Vec<FlowRecord> = Vec::with_capacity(128);
        for (i, &customer) in self.customers.iter().enumerate() {
            scratch.clear();
            self.benign[i].emit(minute, &mut scratch);
            let benign_flows = scratch.len();
            if let Some(event_ids) = self.by_victim.get(&customer) {
                for &ei in event_ids {
                    let e = &self.schedule[ei];
                    // Cheap range check before the full emit.
                    if minute >= e.prep_start && minute < e.end {
                        e.emit(
                            minute,
                            &self.ecosystem.botnets[e.botnet_id],
                            &self.ecosystem.resolvers,
                            &mut scratch,
                        );
                    }
                }
            }
            self.obs.flows_generated.add(scratch.len() as u64);
            self.obs
                .attack_flows_generated
                .add((scratch.len() - benign_flows) as u64);
            let flows: Vec<FlowRecord> = scratch
                .iter()
                .filter_map(|f| self.sampler.sample(*f))
                .collect();
            self.obs.flows_emitted.add(flows.len() as u64);
            out.push(MinuteFlows {
                minute,
                customer,
                flows,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackPhase;
    use xatu_netflow::attack::AttackType;

    fn world(seed: u64) -> World {
        World::new(WorldConfig::smoke_test(seed))
    }

    #[test]
    fn step_yields_one_bin_per_customer() {
        let mut w = world(1);
        let bins = w.step();
        assert_eq!(bins.len(), w.customers().len());
        for (bin, &c) in bins.iter().zip(w.customers()) {
            assert_eq!(bin.customer, c);
            assert_eq!(bin.minute, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = world(2);
        let mut b = world(2);
        for _ in 0..50 {
            let ba = a.step();
            let bb = b.step();
            for (x, y) in ba.iter().zip(&bb) {
                assert_eq!(x.flows, y.flows);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = world(3);
        let mut b = world(4);
        let fa: u64 = a.step().iter().map(|b| b.total_bytes()).sum();
        let fb: u64 = b.step().iter().map(|b| b.total_bytes()).sum();
        assert_ne!(fa, fb);
    }

    #[test]
    fn attack_minutes_carry_signature_matching_surge() {
        let mut w = world(5);
        let events: Vec<AttackEvent> = w.events().to_vec();
        assert!(!events.is_empty(), "smoke world should schedule attacks");
        let e = events
            .iter()
            .find(|e| e.phase(e.onset + e.ramp_minutes) == AttackPhase::Plateau)
            .expect("an event with a plateau")
            .clone();
        let sig = e.attack_type.signature();
        // Run to a plateau minute, measuring matching volume.
        let mut quiet = 0.0f64;
        let mut during = 0.0f64;
        let total = w.total_minutes();
        for m in 0..total.min(e.end + 1) {
            let bins = w.step();
            let bin = bins.iter().find(|b| b.customer == e.victim).unwrap();
            let vol: f64 = bin
                .flows
                .iter()
                .filter(|f| sig.matches(f))
                .map(|f| f.est_bytes() as f64)
                .sum();
            if m + 1 == e.onset.saturating_sub(120) {
                quiet = vol;
            }
            if m >= e.onset + e.ramp_minutes && m < e.end {
                during = during.max(vol);
            }
        }
        assert!(
            during > 4.0 * quiet.max(1.0),
            "attack volume {during} vs quiet {quiet}"
        );
    }

    #[test]
    fn sampling_is_applied() {
        let mut w = world(6);
        let bins = w.step();
        for bin in bins {
            for f in bin.flows {
                assert_eq!(f.sampling, w.cfg.sampling_rate);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stepped past")]
    fn stepping_past_the_end_panics() {
        let mut w = world(7);
        for _ in 0..=w.total_minutes() {
            w.step();
        }
    }

    #[test]
    fn generation_telemetry_tracks_emission() {
        let mut w = world(9);
        let mut emitted = 0u64;
        for _ in 0..30 {
            emitted += w.step().iter().map(|b| b.flows.len() as u64).sum::<u64>();
        }
        let obs = w.obs();
        if xatu_obs::enabled() {
            assert_eq!(obs.minutes_stepped.get(), 30);
            assert_eq!(obs.flows_emitted.get(), emitted);
            assert!(obs.flows_generated.get() >= obs.flows_emitted.get());
            assert!(obs.flows_generated.get() >= obs.attack_flows_generated.get());
        } else {
            assert_eq!(obs.minutes_stepped.get(), 0);
        }
        assert_eq!(w.sampler_double_sample_rejects(), 0);
        assert_eq!(w.attacks_scheduled(), w.events().len());
    }

    #[test]
    fn blocklist_feed_covers_botnet_space() {
        let w = world(8);
        let feed = w.blocklist_feed();
        assert!(!feed.is_empty());
        for (cat, s) in feed {
            assert!(cat < 11);
            assert_eq!(s.base().octets()[0], 60);
        }
    }

    #[test]
    fn event_types_cover_multiple_kinds() {
        // With the default mix, a full-size schedule has ≥3 distinct types.
        let w = World::new(WorldConfig::default());
        let kinds: std::collections::HashSet<AttackType> =
            w.events().iter().map(|e| e.attack_type).collect();
        assert!(kinds.len() >= 3, "only {kinds:?}");
    }
}
