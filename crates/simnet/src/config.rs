//! World configuration.

use serde::{Deserialize, Serialize};
use xatu_netflow::MINUTES_PER_DAY;

/// Full configuration of a simulated ISP world.
///
/// Defaults give a laptop-scale world that a full pipeline run (simulate →
/// detect → extract → train → evaluate) finishes in minutes; the paper-scale
/// values are noted per field.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every stream of randomness derives from it.
    pub seed: u64,
    /// Number of customer networks (paper: >1000).
    pub n_customers: usize,
    /// Simulated days (paper: 100).
    pub days: u32,
    /// Router sampling rate 1:N applied to all flows (paper: 1:1–1:10,000).
    pub sampling_rate: u32,

    // --- benign traffic ---
    /// Median benign customer volume, bytes/minute (≈1 Mbps).
    pub benign_median_bpm: f64,
    /// Log-normal sigma of per-customer base volume.
    pub benign_sigma: f64,
    /// Probability per customer-minute of starting a benign flash crowd.
    pub flash_crowd_prob: f64,

    // --- attacker ecosystem ---
    /// Number of botnets.
    pub n_botnets: usize,
    /// Member /24 subnets per botnet.
    pub botnet_subnets: usize,
    /// Fraction of botnet subnets present on public blocklists.
    pub blocklisted_frac: f64,
    /// Fraction of attack flows using spoofed sources (SYN/UDP attacks).
    pub spoofed_frac: f64,
    /// Fraction of spoofed flows that are *detectably* spoofed (bogon or
    /// unrouted); the rest imitate routed space and evade the classifier,
    /// mirroring the paper's "we likely miss much-spoofed traffic".
    pub spoof_detectable_frac: f64,

    // --- attack schedule ---
    /// Expected number of attack chains (victim × botnet relationships).
    pub n_chains: usize,
    /// Mean attacks per chain.
    pub chain_len_mean: f64,
    /// Probability that the next attack in a chain repeats the same type
    /// (paper: 97.9 %).
    pub same_type_prob: f64,
    /// Days of preparation probing before each chain's attacks (paper:
    /// signals visible up to 10 days out).
    pub prep_days: f64,
    /// Fraction of chains that are part of correlated multi-customer waves.
    pub wave_frac: f64,
    /// Scale factor applied to anomalous traffic during the ramp-up period
    /// (before a CDet-style detector would fire). 1.0 = unmodified; the
    /// §6.4 volume-changing attacker lowers this.
    pub ramp_volume_scale: f64,
    /// Override of the ramp-up rate `dR` (Appendix G). `None` samples per
    /// attack; the §6.4 rate-changing attacker pins it.
    pub ramp_dr_override: Option<f64>,
    /// Scale factor on preparation-phase probing (0 disables preparation
    /// signals entirely — an attacker evading auxiliary signals).
    pub prep_intensity: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1,
            n_customers: 24,
            days: 28,
            sampling_rate: 10,
            benign_median_bpm: 7.5e6, // ~1 Mbps
            benign_sigma: 1.0,
            flash_crowd_prob: 2.5e-4,
            n_botnets: 10,
            botnet_subnets: 24,
            blocklisted_frac: 0.55,
            spoofed_frac: 0.3,
            spoof_detectable_frac: 0.4,
            n_chains: 19,
            chain_len_mean: 24.0,
            same_type_prob: 0.979,
            prep_days: 10.0,
            wave_frac: 0.3,
            ramp_volume_scale: 1.0,
            ramp_dr_override: None,
            prep_intensity: 1.0,
        }
    }
}

impl WorldConfig {
    /// Total simulated minutes.
    pub fn total_minutes(&self) -> u32 {
        self.days * MINUTES_PER_DAY
    }

    /// A tiny world for unit tests and smoke runs (seconds, not minutes).
    pub fn smoke_test(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_customers: 6,
            days: 4,
            n_botnets: 3,
            botnet_subnets: 10,
            n_chains: 6,
            chain_len_mean: 3.0,
            prep_days: 2.0,
            ..WorldConfig::default()
        }
    }

    /// A minimal world for retrain-heavy sweeps (one run ≈ a minute).
    pub fn mini(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_customers: 8,
            days: 10,
            n_botnets: 5,
            botnet_subnets: 12,
            n_chains: 6,
            chain_len_mean: 12.0,
            prep_days: 3.0,
            ..WorldConfig::default()
        }
    }

    /// A small world for fast sweep experiments (Fig 12/18 retrain loops).
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_customers: 16,
            days: 18,
            n_botnets: 6,
            botnet_subnets: 16,
            n_chains: 12,
            chain_len_mean: 18.0,
            prep_days: 6.0,
            ..WorldConfig::default()
        }
    }
}
