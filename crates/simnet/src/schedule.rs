//! Attack scheduling: serial chains, type transitions, correlated waves.
//!
//! Reproduces the §3.3 measurement structure:
//!
//! * Attacks come in per-victim *chains* conducted by one botnet; the next
//!   attack in a chain repeats the previous type with probability ~0.979
//!   (Fig 4(b): 43.0 K of 43.9 K consecutive pairs share a type).
//! * When the type does change, specific transitions dominate: SYN → RST
//!   (probing the same TCP resource), DNS-amp → UDP and ICMP → UDP
//!   (escalating to raw volume).
//! * A configurable fraction of chains is grouped into *waves*: the same
//!   botnet attacks several customers with onsets staggered by ~5 minutes
//!   (Fig 4(c)).
//! * Durations skew short (63 % < 5 min, 77 % < 10 min per the paper's
//!   motivation) and peaks skew low (75 % below 21 Mbps).

use crate::attack::AttackEvent;
use crate::botnet::customer_addr;
use crate::config::WorldConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xatu_netflow::attack::AttackType;
use xatu_netflow::MINUTES_PER_DAY;

/// Base popularity of each attack type when a chain starts (Table 2 mix).
fn initial_type(rng: &mut StdRng) -> AttackType {
    let roll: f64 = rng.random();
    // UDP 26.3 %, TCP ACK 62.0 %, TCP SYN 1.4 %, TCP RST 1.1 %,
    // DNS Amp 7.2 %, ICMP 2.0 %.
    if roll < 0.263 {
        AttackType::UdpFlood
    } else if roll < 0.883 {
        AttackType::TcpAck
    } else if roll < 0.897 {
        AttackType::TcpSyn
    } else if roll < 0.908 {
        AttackType::TcpRst
    } else if roll < 0.980 {
        AttackType::DnsAmplification
    } else {
        AttackType::IcmpFlood
    }
}

/// The next type in a chain, honouring the same-type probability and the
/// paper's named cross-type transitions.
pub fn next_type(prev: AttackType, same_type_prob: f64, rng: &mut StdRng) -> AttackType {
    if rng.random_bool(same_type_prob) {
        return prev;
    }
    match prev {
        // "TCP SYN attacks are sometimes followed by TCP RST attacks".
        AttackType::TcpSyn if rng.random_bool(0.6) => AttackType::TcpRst,
        // "DNS amplification … followed by UDP flood attacks".
        AttackType::DnsAmplification if rng.random_bool(0.6) => AttackType::UdpFlood,
        // "0.1 % of ICMP attacks are followed by UDP flood attacks".
        AttackType::IcmpFlood if rng.random_bool(0.5) => AttackType::UdpFlood,
        _ => loop {
            // The changed-type branch must actually change the type.
            let next = initial_type(rng);
            if next != prev {
                break next;
            }
        },
    }
}

/// Samples an attack duration in minutes, matching the paper's §2.3
/// statistics for *CDet-alerted* attacks: "nearly 74 % of attacks are
/// shorter than 20 minutes", with a meaningful short tail (short attacks
/// exist and are the hardest to mitigate) and a long tail out to 90 min.
pub fn sample_duration(rng: &mut StdRng) -> u32 {
    let roll: f64 = rng.random();
    if roll < 0.30 {
        rng.random_range(3..5)
    } else if roll < 0.55 {
        rng.random_range(5..10)
    } else if roll < 0.74 {
        rng.random_range(10..20)
    } else {
        rng.random_range(20..90)
    }
}

/// Samples a peak volume (bytes/minute): log-normal with 75 % below
/// 21 Mbps.
pub fn sample_peak_bpm(rng: &mut StdRng) -> f64 {
    const MBPS_TO_BPM: f64 = 1e6 * 60.0 / 8.0;
    // Median 9 Mbps, sigma ~1.25 → P(X < 21 Mbps) ≈ 0.75.
    let z = {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    9.0 * MBPS_TO_BPM * (1.25 * z).exp()
}

/// Samples a ramp rate `dR` per type (ICMP ramps fast; others moderate).
pub fn sample_ramp_dr(ty: AttackType, rng: &mut StdRng) -> f64 {
    match ty {
        AttackType::IcmpFlood => rng.random_range(2.0..4.0),
        AttackType::UdpFlood | AttackType::DnsAmplification => rng.random_range(0.5..2.0),
        _ => rng.random_range(0.3..1.5),
    }
}

/// Builds the full attack schedule for a world.
pub fn build_schedule(cfg: &WorldConfig) -> Vec<AttackEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xC2B2_AE35).wrapping_add(99));
    let total = cfg.total_minutes();
    let prep_minutes = (cfg.prep_days * MINUTES_PER_DAY as f64) as u32;
    let mut events = Vec::new();
    let mut next_id = 0usize;
    let mut next_wave = 0usize;

    // Victims are dealt round-robin from a shuffled deck so chains rarely
    // interleave on one customer — preserving the paper's clean per-victim
    // serial structure (Fig 4(b)) even in a small world.
    let chained = cfg.n_chains.min(cfg.n_customers);
    let mut victim_deck: Vec<usize> = (0..chained.max(1)).collect();
    for i in (1..victim_deck.len()).rev() {
        victim_deck.swap(i, rng.random_range(0..=i));
    }

    for chain_i in 0..cfg.n_chains {
        let botnet_id = rng.random_range(0..cfg.n_botnets);
        let victim_idx = victim_deck[chain_i % victim_deck.len()];
        // Waves: this chain's attacks replicate onto 2–3 extra customers
        // with 5-minute staggers. Extras are drawn from customers that do
        // not host their own chains when any exist, so per-victim alert
        // streams keep the paper's clean serial same-type structure
        // (Fig 4(b)) while waves still correlate customers (Fig 4(c)).
        let wave = if rng.random_bool(cfg.wave_frac) {
            let unchained = cfg.n_customers.saturating_sub(cfg.n_chains.min(cfg.n_customers));
            let extras: Vec<usize> = (0..rng.random_range(2..4usize))
                .map(|_| {
                    if unchained > 0 {
                        cfg.n_customers - 1 - rng.random_range(0..unchained)
                    } else {
                        rng.random_range(0..cfg.n_customers)
                    }
                })
                .filter(|&v| v != victim_idx)
                .collect();
            next_wave += 1;
            Some((next_wave - 1, extras))
        } else {
            None
        };

        let n_attacks = (sample_poissonish(cfg.chain_len_mean, &mut rng)).max(1);
        let mut ty = initial_type(&mut rng);
        // First onset: two days in (enough history for pooled contexts
        // and detector baselines), spread over the full period. Earlier
        // chains simply have their preparation phase clipped at minute 0.
        let earliest = (2 * MINUTES_PER_DAY).min(total / 3) + 2 * 60;
        if earliest >= total {
            continue;
        }
        // Chains begin in the first third of the period and run forward;
        // their length (below) is sized so serial attacks keep arriving
        // throughout the train/validation/test timeline.
        let start_region_end = (total * 35 / 100).max(earliest + 1);
        let mut onset = rng.random_range(earliest..start_region_end);
        for _ in 0..n_attacks {
            if onset + 10 >= total {
                break;
            }
            let duration = sample_duration(&mut rng);
            let peak = sample_peak_bpm(&mut rng);
            let dr = cfg
                .ramp_dr_override
                .unwrap_or_else(|| sample_ramp_dr(ty, &mut rng));
            // Ramp long enough to land on the peak from a 1 % seed:
            // (1+dR)^n = 100 → n = ln(100)/ln(1+dR), capped by duration.
            let ramp = ((100.0f64.ln() / (1.0 + dr).ln()).ceil() as u32)
                .clamp(1, duration.max(2) - 1);
            let emit_for = |victim_idx: usize, onset: u32, wave_id: Option<usize>,
                                events: &mut Vec<AttackEvent>,
                                next_id: &mut usize| {
                let end = (onset + duration).min(total);
                events.push(AttackEvent {
                    id: *next_id,
                    victim: customer_addr(victim_idx),
                    attack_type: ty,
                    botnet_id,
                    prep_start: onset.saturating_sub(prep_minutes),
                    onset,
                    ramp_minutes: ramp,
                    end,
                    peak_bpm: peak,
                    ramp_dr: dr,
                    wave_id,
                    spoofed_frac: match ty {
                        AttackType::TcpSyn => cfg.spoofed_frac * 2.0,
                        AttackType::DnsAmplification => 0.0,
                        _ => cfg.spoofed_frac,
                    }
                    .min(0.95),
                    spoof_detectable_frac: cfg.spoof_detectable_frac,
                    ramp_volume_scale: cfg.ramp_volume_scale,
                    prep_intensity: cfg.prep_intensity,
                });
                *next_id += 1;
            };
            emit_for(
                victim_idx,
                onset,
                wave.as_ref().map(|(id, _)| *id),
                &mut events,
                &mut next_id,
            );
            if let Some((wave_id, extras)) = &wave {
                for (j, &extra) in extras.iter().enumerate() {
                    let staggered = onset + 5 * (j as u32 + 1);
                    if staggered + 10 < total {
                        emit_for(extra, staggered, Some(*wave_id), &mut events, &mut next_id);
                    }
                }
            }
            // Gap to the next attack in the chain: hours to ~1.5 days.
            let gap = rng.random_range(4 * 60..36 * 60);
            onset = onset.saturating_add(duration + gap);
            ty = next_type(ty, cfg.same_type_prob, &mut rng);
            if onset >= total {
                break;
            }
        }
    }
    events.sort_by_key(|e| e.onset);
    // Re-assign ids in onset order for readability.
    for (i, e) in events.iter_mut().enumerate() {
        e.id = i;
    }
    events
}

/// A cheap Poisson-ish sampler (geometric mixture; exact distribution is
/// irrelevant, only the mean matters for schedule density).
fn sample_poissonish(mean: f64, rng: &mut StdRng) -> usize {
    let mut n = 0usize;
    let p = 1.0 / (1.0 + mean);
    while !rng.random_bool(p) && n < 200 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64) -> Vec<AttackEvent> {
        build_schedule(&WorldConfig {
            seed,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = schedule(5);
        let b = schedule(5);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.onset, y.onset);
            assert_eq!(x.attack_type, y.attack_type);
        }
        assert!(a.windows(2).all(|w| w[0].onset <= w[1].onset));
    }

    #[test]
    fn durations_match_section_2_3() {
        let mut rng = StdRng::seed_from_u64(1);
        let durs: Vec<u32> = (0..5000).map(|_| sample_duration(&mut rng)).collect();
        let under20 = durs.iter().filter(|&&d| d < 20).count() as f64 / 5000.0;
        let under5 = durs.iter().filter(|&&d| d < 5).count() as f64 / 5000.0;
        assert!((under20 - 0.74).abs() < 0.03, "under20={under20}");
        assert!((under5 - 0.30).abs() < 0.03, "under5={under5}");
    }

    #[test]
    fn peaks_skew_low() {
        const MBPS_TO_BPM: f64 = 1e6 * 60.0 / 8.0;
        let mut rng = StdRng::seed_from_u64(2);
        let peaks: Vec<f64> = (0..5000).map(|_| sample_peak_bpm(&mut rng)).collect();
        let under21 =
            peaks.iter().filter(|&&p| p < 21.0 * MBPS_TO_BPM).count() as f64 / 5000.0;
        assert!((under21 - 0.75).abs() < 0.05, "under21={under21}");
    }

    #[test]
    fn same_type_transitions_dominate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut same = 0;
        let n = 20_000;
        for _ in 0..n {
            let prev = initial_type(&mut rng);
            if next_type(prev, 0.979, &mut rng) == prev {
                same += 1;
            }
        }
        let frac = same as f64 / n as f64;
        assert!((frac - 0.979).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn syn_transitions_prefer_rst() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rst = 0;
        let mut changed = 0;
        for _ in 0..20_000 {
            let next = next_type(AttackType::TcpSyn, 0.0, &mut rng);
            if next != AttackType::TcpSyn {
                changed += 1;
                if next == AttackType::TcpRst {
                    rst += 1;
                }
            }
        }
        assert!(rst as f64 / changed as f64 > 0.5);
    }

    #[test]
    fn chains_share_victim_and_botnet() {
        let events = schedule(7);
        // Consecutive same-victim events mostly share a botnet (chains).
        use std::collections::HashMap;
        let mut per_victim: HashMap<_, Vec<&AttackEvent>> = HashMap::new();
        for e in &events {
            per_victim.entry(e.victim).or_default().push(e);
        }
        let mut same_type_pairs = 0usize;
        let mut pairs = 0usize;
        for evs in per_victim.values() {
            for w in evs.windows(2) {
                pairs += 1;
                if w[0].attack_type == w[1].attack_type {
                    same_type_pairs += 1;
                }
            }
        }
        if pairs > 20 {
            let frac = same_type_pairs as f64 / pairs as f64;
            assert!(frac > 0.7, "serial same-type fraction {frac}");
        }
    }

    #[test]
    fn waves_are_staggered_on_distinct_customers() {
        let events = build_schedule(&WorldConfig {
            seed: 11,
            wave_frac: 1.0,
            ..WorldConfig::default()
        });
        use std::collections::HashMap;
        let mut waves: HashMap<usize, Vec<&AttackEvent>> = HashMap::new();
        for e in &events {
            if let Some(w) = e.wave_id {
                waves.entry(w).or_default().push(e);
            }
        }
        assert!(!waves.is_empty());
        let mut saw_multi = false;
        for evs in waves.values() {
            let mut by_onset: Vec<_> = evs.iter().collect();
            by_onset.sort_by_key(|e| e.onset);
            for w in by_onset.windows(2) {
                if w[0].onset != w[1].onset {
                    let gap = w[1].onset - w[0].onset;
                    // Staggering of small multiples of 5 minutes (or chain gaps).
                    if gap <= 15 {
                        saw_multi = true;
                        assert_eq!(gap % 5, 0, "stagger gap {gap}");
                    }
                }
            }
        }
        assert!(saw_multi, "expected at least one staggered wave");
    }

    #[test]
    fn prep_precedes_onset_by_configured_days() {
        let cfg = WorldConfig::default();
        let events = build_schedule(&cfg);
        for e in &events {
            assert!(e.prep_start <= e.onset);
            let prep_len = e.onset - e.prep_start;
            assert!(
                prep_len <= (cfg.prep_days * MINUTES_PER_DAY as f64) as u32,
                "prep too long"
            );
        }
    }

    #[test]
    fn events_fit_inside_the_period() {
        let cfg = WorldConfig::default();
        let events = build_schedule(&cfg);
        for e in &events {
            assert!(e.end <= cfg.total_minutes());
            assert!(e.onset < e.end);
            assert!(e.ramp_minutes >= 1);
        }
    }
}
