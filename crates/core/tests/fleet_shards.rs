//! Shard-boundary bit-identity for the fleet batch step.
//!
//! The sharded dispatch carves the customer arenas into contiguous
//! blocks and the batched kernels tile each block — so the interesting
//! edge cases are small fleets around the tile/lane widths: `n` smaller
//! than `threads`, `n` not a multiple of the 4-customer tile or the
//! 8-customer SIMD lane width, and block boundaries landing mid-tile.
//! Every fleet size 1..=17 is driven through a schedule that mixes real
//! frames, explicit gaps, skips (catch-up imputation) and attack bursts,
//! and every minute's survivals and lifecycle events are required to be
//! **bit-identical** across thread counts — and, under `fast-math`,
//! between auto SIMD dispatch and the forced-scalar reference.

use xatu_core::config::XatuConfig;
use xatu_core::fleet::{FleetDetector, FleetInput};
use xatu_core::model::XatuModel;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;

const MINUTES: u32 = 75;

fn addr(i: usize) -> Ipv4 {
    Ipv4(0x0a00_0100 + i as u32)
}

fn build(n: usize) -> FleetDetector {
    let cfg = XatuConfig::smoke_test();
    let model = XatuModel::new(&cfg);
    let mut det = FleetDetector::new(model, AttackType::UdpFlood, 0.35, &cfg);
    for i in 0..n {
        det.add_customer(addr(i));
    }
    det
}

/// Deterministic per-(customer, minute) input: mostly benign frames,
/// periodic gaps and skips (to exercise imputation and catch-up), and a
/// per-customer attack burst late enough to clear warm-up.
fn fill(i: usize, _a: Ipv4, frame: &mut [f64], minute: u32) -> FleetInput {
    let key = i as u32 * 31 + minute;
    if key % 11 == 7 {
        return FleetInput::Skip;
    }
    if key % 7 == 3 {
        return FleetInput::Gap;
    }
    frame.fill(0.0);
    frame[0] = 0.02 + (i as f64) * 1e-3;
    frame[1] = 0.1;
    let burst_start = 40 + (i as u32 % 5) * 4;
    if minute >= burst_start && minute < burst_start + 8 {
        frame[0] = 2.0 + (minute - burst_start) as f64 * 0.4;
        frame[2] = 1.5;
    }
    FleetInput::Frame
}

/// Drives `det` for [`MINUTES`] at `threads`, returning every minute's
/// event log and the full per-customer survival trace (as raw bits).
fn run(mut det: FleetDetector, n: usize, threads: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
    let mut events = Vec::new();
    let mut survivals = Vec::new();
    for m in 0..MINUTES {
        let evs = det
            .step_minute_batch(m, threads, |i, a, f| fill(i, a, f, m))
            .unwrap();
        // Events are Copy + PartialEq; hash-free bitwise compare via Debug
        // would be lossy, so keep a canonical encoding: (kind, customer,
        // detected_at, end).
        events.push(
            evs.iter()
                .map(|e| {
                    let (kind, al) = match e {
                        xatu_detectors::traits::DetectorEvent::Raised(a) => (1u64, a),
                        xatu_detectors::traits::DetectorEvent::Ended(a) => (2u64, a),
                    };
                    (kind << 62)
                        | ((al.customer.0 as u64) << 30)
                        | ((al.detected_at as u64) << 8)
                        | al.mitigation_end.map_or(0xff, |e| e as u64) % 0xff
                })
                .collect(),
        );
        for i in 0..n {
            survivals.push(det.survival_of(addr(i)).to_bits());
        }
    }
    (events, survivals)
}

#[test]
fn thread_count_is_bit_invariant_for_every_small_fleet() {
    for n in 1..=17usize {
        let reference = run(build(n), n, 1);
        for threads in [2usize, 4] {
            let got = run(build(n), n, threads);
            assert_eq!(
                reference.0, got.0,
                "events diverged at n = {n}, threads = {threads}"
            );
            assert_eq!(
                reference.1, got.1,
                "survival bits diverged at n = {n}, threads = {threads}"
            );
        }
    }
}

#[test]
fn more_threads_than_customers_clamps_cleanly() {
    // n < threads must behave exactly like threads = n (the clamp), not
    // panic or produce empty shards.
    for n in [1usize, 2, 3] {
        let reference = run(build(n), n, 1);
        let got = run(build(n), n, 16);
        assert_eq!(reference.0, got.0, "events diverged at n = {n}");
        assert_eq!(reference.1, got.1, "survival bits diverged at n = {n}");
    }
}

#[cfg(feature = "fast-math")]
mod fast {
    use super::*;

    fn build_fast(n: usize, no_simd: bool) -> FleetDetector {
        let mut cfg = XatuConfig::smoke_test();
        cfg.no_simd = no_simd;
        let model = XatuModel::new(&cfg);
        let mut det = FleetDetector::new_fast(model, AttackType::UdpFlood, 0.35, &cfg);
        for i in 0..n {
            det.add_customer(addr(i));
        }
        det
    }

    #[test]
    fn fast_thread_count_is_bit_invariant_for_every_small_fleet() {
        for n in 1..=17usize {
            let reference = run(build_fast(n, false), n, 1);
            for threads in [2usize, 4] {
                let got = run(build_fast(n, false), n, threads);
                assert_eq!(
                    reference.0, got.0,
                    "fast events diverged at n = {n}, threads = {threads}"
                );
                assert_eq!(
                    reference.1, got.1,
                    "fast survival bits diverged at n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn forced_scalar_matches_auto_simd_dispatch_bitwise() {
        // Fleet sizes straddling the 8-lane AVX2 width and the 4-lane
        // SSE2 width, at 1 and 4 threads: the SIMD kernels vectorize
        // across the customer-batch dimension without changing any
        // customer's reduction order, so `no_simd` must not move a bit.
        for n in [1usize, 3, 4, 7, 8, 9, 15, 16, 17] {
            for threads in [1usize, 4] {
                let auto = run(build_fast(n, false), n, threads);
                let scalar = run(build_fast(n, true), n, threads);
                assert_eq!(
                    auto.0, scalar.0,
                    "events diverged at n = {n}, threads = {threads}"
                );
                assert_eq!(
                    auto.1, scalar.1,
                    "survival bits diverged at n = {n}, threads = {threads}"
                );
            }
        }
    }
}
