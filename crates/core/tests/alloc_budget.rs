//! Allocation-budget regression tests for the training hot path.
//!
//! This integration test is its own binary, so its counting
//! `#[global_allocator]` sees exactly this file's work. Both measurements
//! live in one `#[test]` — the harness would otherwise interleave
//! allocations from concurrently-running tests into the counters.
//!
//! Pinned invariants:
//!
//! * **Steady state is allocation-free**: a warm forward+backward
//!   (`forward_wide` into a reused trace, `backward_with` against a reused
//!   workspace) performs **zero** heap allocations. Any regression — a
//!   stray `Vec` in a step loop, a clone in BPTT — fails this exactly.
//! * **Cold start is bounded**: the first pass may allocate (arenas grow
//!   once), but within a pinned byte ceiling, so trace/workspace bloat
//!   can't creep in silently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use xatu_core::config::XatuConfig;
use xatu_core::fleet::{FleetDetector, FleetInput};
use xatu_core::model::{ForwardTrace, ModelWorkspace, XatuModel};
use xatu_core::sample::{Sample, SampleMeta, WideSample};
use xatu_features::frame::{NUM_FEATURES, VOLUMETRIC_WIDTH};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_nn::init::Initializer;
use xatu_nn::{AeWorkspace, FrameArena, LstmAutoencoder};
use xatu_survival::safe_loss::safe_loss_and_grad;

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// One attack-shaped sample at the paper's default geometry.
fn sample(c: &XatuConfig) -> Sample {
    let frame = |v: f32| -> Vec<f32> {
        let mut f = vec![0.0f32; NUM_FEATURES];
        f[0] = v;
        f[1] = 0.1;
        f
    };
    Sample {
        short: vec![frame(0.02); c.short_len],
        medium: vec![frame(0.02); c.medium_len],
        long: vec![frame(0.02); c.long_len],
        window: (0..c.window)
            .map(|t| frame(if t >= 4 { 1.0 + t as f32 * 0.2 } else { 0.05 }))
            .collect(),
        label: true,
        event_step: c.window - 1,
        anomaly_step: Some(5),
        meta: SampleMeta {
            customer: Ipv4(1),
            attack_type: AttackType::UdpFlood,
            window_start: 0,
        },
    }
}

#[test]
fn hot_path_allocation_budget() {
    let c = XatuConfig::default();
    let mut model = XatuModel::new(&c);
    let s = sample(&c);
    let wide = WideSample::from_sample(&s);
    let mut trace = ForwardTrace::default();
    let mut ws = ModelWorkspace::default();

    // --- Cold pass: arenas and workspaces grow exactly once. ---
    let (c0, b0) = snapshot();
    model.forward_wide(&wide, &mut trace);
    let g = safe_loss_and_grad(&trace.hazards, s.label, s.event_step);
    model.backward_with(&trace, Some(&g.dl_dhazard), None, false, &mut ws);
    let (c1, b1) = snapshot();
    let cold_bytes = b1 - b0;
    // Default geometry (273 features, hidden 24, window 30, ctx
    // 90/108/240) measures ~1.6 MB of cold buffer growth; the ceiling
    // leaves headroom for allocator rounding but catches structural bloat.
    assert!(
        cold_bytes < 4_000_000,
        "cold forward+backward grew {cold_bytes} bytes (allocs: {})",
        c1 - c0
    );

    // Second warm-up pass: Vec growth amortization (doubling) must settle.
    model.forward_wide(&wide, &mut trace);
    model.backward_with(&trace, Some(&g.dl_dhazard), None, false, &mut ws);

    // --- Steady state: zero heap allocations, the refactor's contract. ---
    let (c2, b2) = snapshot();
    model.forward_wide(&wide, &mut trace);
    model.backward_with(&trace, Some(&g.dl_dhazard), None, false, &mut ws);
    let (c3, b3) = snapshot();
    assert_eq!(
        c3 - c2,
        0,
        "steady-state forward+backward allocated {} times ({} bytes)",
        c3 - c2,
        b3 - b2
    );

    // The attribution variant (want_dx) must also be steady-state free.
    model.backward_with(&trace, Some(&g.dl_dhazard), None, true, &mut ws);
    let (c4, _) = snapshot();
    model.forward_wide(&wide, &mut trace);
    model.backward_with(&trace, Some(&g.dl_dhazard), None, true, &mut ws);
    let (c5, _) = snapshot();
    assert_eq!(c5 - c4, 0, "want_dx steady state allocated {}", c5 - c4);

    // --- Autoencoder companion: same contract, same gate. ---
    let mut ae = LstmAutoencoder::new(VOLUMETRIC_WIDTH, 16, &mut Initializer::new(9));
    ae.ensure_grads();
    let mut window = FrameArena::new(VOLUMETRIC_WIDTH);
    for t in 0..c.window {
        let mut f = vec![0.0; VOLUMETRIC_WIDTH];
        f[0] = 0.05 + t as f64 * 0.01;
        window.push(&f);
    }
    let mut ae_ws = AeWorkspace::new();

    // Cold pass: traces and workspaces grow once, within a pinned ceiling.
    let (a0, ab0) = snapshot();
    ae.reconstruction_error(&window, &mut ae_ws);
    ae.loss_and_grad(&window, &mut ae_ws);
    let (a1, ab1) = snapshot();
    let ae_cold = ab1 - ab0;
    assert!(
        ae_cold < 2_000_000,
        "cold autoencoder forward+backward grew {ae_cold} bytes (allocs: {})",
        a1 - a0
    );

    // Warm-up pass, then the steady state must be allocation-free for both
    // scoring (forward only) and training (forward+backward).
    ae.reconstruction_error(&window, &mut ae_ws);
    ae.loss_and_grad(&window, &mut ae_ws);
    let (a2, ab2) = snapshot();
    ae.reconstruction_error(&window, &mut ae_ws);
    ae.loss_and_grad(&window, &mut ae_ws);
    let (a3, ab3) = snapshot();
    assert_eq!(
        a3 - a2,
        0,
        "steady-state autoencoder pass allocated {} times ({} bytes)",
        a3 - a2,
        ab3 - ab2
    );

    // --- Fleet batch step: zero steady-state allocations at any thread
    // count. The sharded path's range buffer, shard cursor, task slots
    // and worker pool are all reused scratch, so a warm minute performs
    // no heap allocation even at `threads = 4` — the counting allocator
    // is process-global, so pool-thread allocations would be caught too.
    let fleet_cfg = XatuConfig::smoke_test();
    let fleet_model = XatuModel::new(&fleet_cfg);
    // Threshold 0.0: survival can never go below it, so no alert ever
    // raises and the lifecycle event buffers stay empty (asserted below —
    // an event push would be a legitimate allocation, not a regression).
    let mut fleet = FleetDetector::new(fleet_model, AttackType::UdpFlood, 0.0, &fleet_cfg);
    for i in 0..32u32 {
        fleet.add_customer(Ipv4(0x0a00_0000 + i));
    }
    let fill = |_i: usize, _a: Ipv4, frame: &mut [f64]| {
        frame.fill(0.0);
        frame[0] = 0.02;
        frame[1] = 0.1;
        FleetInput::Frame
    };
    // Warm-up: single-thread minutes grow worker 0's workspace for the
    // full-fleet batch, then sharded minutes spawn the pool, size the
    // range scratch, and cover full medium/long pooling cycles so every
    // boundary-minute code path has run at least once per shard width.
    for m in 0..60 {
        fleet.step_minute_batch(m, 1, fill).unwrap();
    }
    for m in 60..180 {
        fleet.step_minute_batch(m, 4, fill).unwrap();
    }
    // Steady state, single-threaded: a full long-granularity cycle.
    let (f0, fb0) = snapshot();
    for m in 180..240 {
        let events = fleet.step_minute_batch(m, 1, fill).unwrap();
        assert!(events.is_empty(), "unexpected lifecycle event at {m}");
    }
    let (f1, fb1) = snapshot();
    assert_eq!(
        f1 - f0,
        0,
        "steady-state fleet minutes (threads = 1) allocated {} times ({} bytes)",
        f1 - f0,
        fb1 - fb0
    );
    // Steady state, sharded: same cycle at 4 threads.
    let (f2, fb2) = snapshot();
    for m in 240..300 {
        let events = fleet.step_minute_batch(m, 4, fill).unwrap();
        assert!(events.is_empty(), "unexpected lifecycle event at {m}");
    }
    let (f3, fb3) = snapshot();
    assert_eq!(
        f3 - f2,
        0,
        "steady-state fleet minutes (threads = 4) allocated {} times ({} bytes)",
        f3 - f2,
        fb3 - fb2
    );
}
