//! Typed errors for input-dependent failure modes.
//!
//! The workspace's panic policy (DESIGN.md §12): panics are reserved for
//! *invariants* — conditions that only a bug inside this codebase can
//! violate — and every remaining panic site carries a comment stating the
//! invariant. Everything an external input can trigger (malformed samples,
//! out-of-order telemetry, truncated or corrupted checkpoint files) must
//! surface as an [`XatuError`] so a long-running deployment can log, skip,
//! or fall back instead of dying.

use std::fmt;
use xatu_netflow::addr::Ipv4;

/// The current checkpoint container version (see `checkpoint` module).
pub const CHECKPOINT_VERSION: u16 = 1;

/// Every recoverable failure the core crate can report.
#[derive(Clone, Debug, PartialEq)]
pub enum XatuError {
    /// A minute older than (or equal to) the newest one already observed
    /// was fed to a streaming detector for this customer. Accepting it
    /// would corrupt the rolling survival window, so it is rejected.
    OutOfOrderMinute {
        /// Customer whose stream regressed.
        customer: Ipv4,
        /// The offending minute.
        minute: u32,
        /// The newest minute already observed for this customer.
        last: u32,
    },
    /// A feature frame with the wrong dimensionality was fed to a detector.
    DimensionMismatch {
        /// What the detector expected.
        expected: usize,
        /// What the caller supplied.
        found: usize,
    },
    /// A training sample failed validation.
    InvalidSample {
        /// Index of the sample in the caller's slice.
        index: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A checkpoint file failed structural validation (bad magic, short
    /// read, checksum mismatch, truncated payload).
    CorruptCheckpoint {
        /// The file in question.
        path: String,
        /// What was wrong.
        reason: String,
    },
    /// A checkpoint file has an unsupported format version.
    CheckpointVersion {
        /// The file in question.
        path: String,
        /// Version found in the header.
        found: u16,
        /// Version this build writes and reads.
        expected: u16,
    },
    /// A structurally-valid checkpoint does not match the run trying to
    /// resume from it (different model shape, sample count, seed, …).
    CheckpointMismatch {
        /// The file in question.
        path: String,
        /// What disagreed.
        reason: String,
    },
    /// A decoded, structurally-valid checkpoint carries values that cannot
    /// be loaded into a live detector (shape disagreements, non-finite
    /// state, internally-inconsistent cursors). Unlike
    /// [`XatuError::CorruptCheckpoint`] this is an in-memory validation
    /// failure, so it carries no file path; callers that loaded the
    /// checkpoint from disk can re-wrap it with
    /// [`XatuError::corrupt`] to attach one.
    InvalidCheckpoint {
        /// What was wrong.
        reason: String,
    },
    /// An I/O failure while reading or writing a checkpoint.
    Io {
        /// The file in question.
        path: String,
        /// The operation that failed (`"read"`, `"write"`, `"rename"`…).
        op: &'static str,
        /// The underlying error message.
        message: String,
    },
}

impl fmt::Display for XatuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XatuError::OutOfOrderMinute {
                customer,
                minute,
                last,
            } => write!(
                f,
                "out-of-order minute {minute} for customer {customer} (newest already observed: {last})"
            ),
            XatuError::DimensionMismatch { expected, found } => {
                write!(f, "feature frame has {found} values, detector expects {expected}")
            }
            XatuError::InvalidSample { index, reason } => {
                write!(f, "invalid training sample #{index}: {reason}")
            }
            XatuError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint {path}: {reason}")
            }
            XatuError::CheckpointVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {path} has format version {found}, this build supports {expected}"
            ),
            XatuError::CheckpointMismatch { path, reason } => {
                write!(f, "checkpoint {path} does not match this run: {reason}")
            }
            XatuError::InvalidCheckpoint { reason } => {
                write!(f, "invalid checkpoint state: {reason}")
            }
            XatuError::Io { path, op, message } => {
                write!(f, "checkpoint {op} failed for {path}: {message}")
            }
        }
    }
}

impl std::error::Error for XatuError {}

impl XatuError {
    /// Wraps an [`std::io::Error`] with path and operation context.
    pub fn io(path: &std::path::Path, op: &'static str, e: std::io::Error) -> Self {
        XatuError::Io {
            path: path.display().to_string(),
            op,
            message: e.to_string(),
        }
    }

    /// A [`XatuError::CorruptCheckpoint`] with path context.
    pub fn corrupt(path: &std::path::Path, reason: impl Into<String>) -> Self {
        XatuError::CorruptCheckpoint {
            path: path.display().to_string(),
            reason: reason.into(),
        }
    }

    /// An [`XatuError::InvalidCheckpoint`] from any displayable cause.
    pub fn invalid_checkpoint(reason: impl Into<String>) -> Self {
        XatuError::InvalidCheckpoint {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = XatuError::OutOfOrderMinute {
            customer: Ipv4(7),
            minute: 10,
            last: 12,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("12"), "{s}");

        let e = XatuError::CheckpointVersion {
            path: "x.ckpt".into(),
            found: 9,
            expected: CHECKPOINT_VERSION,
        };
        assert!(e.to_string().contains("version 9"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = XatuError::DimensionMismatch {
            expected: 273,
            found: 3,
        };
        assert_eq!(
            a,
            XatuError::DimensionMismatch {
                expected: 273,
                found: 3
            }
        );
    }
}
