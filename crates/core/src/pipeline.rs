//! The end-to-end Xatu experiment pipeline.
//!
//! Timeline (§5/§6 of the paper, scaled):
//!
//! 1. **Phase A** — stream the whole simulated world once: bin flows,
//!    extract Table 1 features with CDet-fed auxiliary trackers, run the
//!    NetScout-style CDet live, record per-(customer, type) signature
//!    volumes, and collect balanced training samples from the training
//!    period.
//! 2. **Train** — one multi-timescale survival model per attack type with
//!    enough positives, plus the Random-Forest baseline.
//! 3. **Phase B** — re-stream the identical world with CDet events
//!    replayed: warm the online LSTM states, record per-minute Xatu and RF
//!    detection scores over the validation period, and checkpoint the full
//!    stream state at the validation/test boundary.
//! 4. **Calibrate** — pick the score threshold that maximizes median
//!    validation effectiveness subject to the 75th-percentile per-customer
//!    overhead bound (§5.3).
//! 5. **Test** — from the checkpoint, run the stabilization + test periods
//!    with Xatu auto-regressively feeding its own alerts into its A2/A4/A5
//!    trackers (the CDet-fed extractor keeps serving the RF baseline), then
//!    evaluate every system on the post-stabilization window.

use crate::config::XatuConfig;
use crate::dataset::{DatasetBuilder, DatasetBundle, SplitBoundaries};
use crate::eval::{
    alerts_from_score_series, build_ground_truth, evaluate_system, intervals_of, GtEvent,
    SystemAlerts, SystemEval, VolumeStore,
};
use crate::model::XatuModel;
use crate::online::OnlineDetector;
use crate::trainer::train_with_obs;
use serde::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use xatu_detectors::alert::Alert;
use xatu_detectors::fastnetmon::FastNetMon;
use xatu_detectors::netscout::NetScout;
use xatu_detectors::rf::{RandomForest, RfConfig};
use xatu_detectors::traits::{Detector, DetectorEvent, MinuteObservation};
use xatu_features::blocklist::BlocklistCategory;
use xatu_features::pooled_history::{PooledHistory, Timescales};
use xatu_features::table1::FeatureExtractor;
use xatu_metrics::percentile::Summary;
use xatu_metrics::roc::{roc_curve, RocPoint};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::{AttackType, Severity};
use xatu_netflow::binning::MinuteFlows;
use xatu_obs::{FieldValue, Registry, Snapshot, StderrSink};
use xatu_par::{par_map, resolve_threads};
use xatu_simnet::{World, WorldConfig};
use xatu_survival::calibrate::{pick_threshold, threshold_grid, CandidateEval, QuantileBound};

/// Top-level experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// The simulated world.
    pub world: WorldConfig,
    /// Model/training knobs.
    pub xatu: XatuConfig,
    /// Scrubbing-overhead bound (e.g. 0.001 = 0.1 %).
    pub overhead_bound: f64,
    /// Per-customer-minute probability of a negative training candidate.
    pub neg_prob: f64,
    /// Train and evaluate the Random-Forest baseline.
    pub with_rf: bool,
    /// Evaluate the FastNetMon-style detector.
    pub with_fnm: bool,
    /// Print progress to stderr.
    pub verbose: bool,
    /// Restricts the A1 blocklist feed to a subset of the 11 categories
    /// (`None` = all enabled) — the Fig 17 sweep knob.
    pub blocklist_categories: Option<BlocklistCategorySet>,
    /// Uses the FastNetMon-style detector as the CDet label source instead
    /// of the NetScout-style one — the Fig 18(a) independence check.
    pub label_with_fnm: bool,
}

/// A bitmask over the 11 blocklist categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlocklistCategorySet(pub u16);

impl BlocklistCategorySet {
    /// Empty set (A1 effectively disabled at the feed level).
    pub const NONE: BlocklistCategorySet = BlocklistCategorySet(0);

    /// True if the category index is enabled.
    pub fn contains_index(self, idx: usize) -> bool {
        (self.0 >> idx) & 1 == 1
    }
}

impl From<&[BlocklistCategory]> for BlocklistCategorySet {
    fn from(cats: &[BlocklistCategory]) -> Self {
        let mut mask = 0u16;
        for c in cats {
            mask |= 1 << c.index();
        }
        BlocklistCategorySet(mask)
    }
}

impl PipelineConfig {
    /// Laptop-scale default (Fig 8/9/10 class experiments).
    pub fn default_eval(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                ..XatuConfig::default()
            },
            overhead_bound: 0.001,
            neg_prob: 1.0e-3,
            with_rf: true,
            with_fnm: true,
            verbose: false,
            blocklist_categories: None,
            label_with_fnm: false,
        }
    }

    /// Small preset for retrain-heavy sweeps.
    pub fn sweep(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::small(seed),
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                ..XatuConfig::sweep()
            },
            neg_prob: 1.5e-3,
            ..Self::default_eval(seed)
        }
    }

    /// Minimal preset for retrain-heavy sweeps (Fig 12/13/17/18): one
    /// full pipeline run in about a minute.
    pub fn mini(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::mini(seed),
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                ..XatuConfig::mini()
            },
            neg_prob: 2e-3,
            ..Self::default_eval(seed)
        }
    }

    /// Tiny smoke-test preset (CI-sized).
    pub fn smoke_test(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::smoke_test(seed),
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                short_len: 30,
                medium_len: 18,
                long_len: 12,
                window: 15,
                hidden: 8,
                epochs: 10,
                min_positives: 2,
                ..XatuConfig::smoke_test()
            },
            overhead_bound: 0.01,
            neg_prob: 2e-3,
            with_rf: false,
            with_fnm: false,
            verbose: false,
            blocklist_categories: None,
            label_with_fnm: false,
        }
    }
}

/// Everything phase A + training + validation produced; test evaluations
/// for different overhead bounds reuse it.
pub struct Prepared {
    cfg: PipelineConfig,
    split: SplitBoundaries,
    volumes: VolumeStore,
    /// Completed NetScout alerts over the full period.
    pub cdet_alerts: Vec<Alert>,
    /// Completed FastNetMon alerts (if enabled).
    pub fnm_alerts: Vec<Alert>,
    /// Ground truth derived from CDet alerts + CUSUM.
    pub ground_truth: Vec<GtEvent>,
    /// Per-type alert counts per period (Table 2).
    pub table2: Table2,
    /// Trained per-type survival models.
    pub models: Vec<(AttackType, XatuModel)>,
    /// Trained per-type RF baselines.
    pub rf_models: Vec<(AttackType, RandomForest)>,
    /// The balanced training bundle (kept for attribution case studies).
    pub bundle: DatasetBundle,
    /// Validation-period score series per system.
    val_scores_xatu: HashMap<(Ipv4, AttackType), Vec<f32>>,
    val_scores_rf: HashMap<(Ipv4, AttackType), Vec<f32>>,
    /// Checkpoint of the stream at the validation/test boundary.
    checkpoint: Checkpoint,
    /// Replayable CDet events by minute.
    cdet_events_by_minute: HashMap<u32, Vec<DetectorEvent>>,
    /// Telemetry frozen at the end of preparation (phases A + train + B).
    /// Each [`Prepared::evaluate`] call records its own run-local registry
    /// and absorbs this into the report's snapshot.
    pub obs: Snapshot,
}

/// Table 2: per-type CDet alert counts per split period.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table2 {
    /// `counts[type][0..3]` = train/validation/test alerts.
    pub counts: [[usize; 3]; 6],
}

/// Stream state frozen at the validation/test boundary.
#[derive(Clone)]
struct Checkpoint {
    world: World,
    extractor: FeatureExtractor,
    detectors: Vec<OnlineDetector>,
    rf_histories: HashMap<Ipv4, PooledHistory>,
    active_cdet: BTreeMap<(Ipv4, AttackType), ActiveAlert>,
}

/// Bookkeeping for an alert currently scrubbing.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ActiveAlert {
    pub(crate) peak_bpm: f64,
}

/// The pipeline driver.
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline { cfg }
    }

    /// Runs everything end to end at the configured overhead bound.
    pub fn run(self) -> EvalReport {
        let bound = self.cfg.overhead_bound;
        let prepared = self.prepare();
        prepared.evaluate(bound)
    }

    /// Phases A + training + phase-B validation. The result can evaluate
    /// multiple overhead bounds cheaply.
    pub fn prepare(self) -> Prepared {
        let cfg = self.cfg;
        let threads = resolve_threads(cfg.xatu.threads);
        let split = SplitBoundaries::from_days(cfg.world.days);
        let mut obs = pipeline_registry(cfg.verbose);

        // ---------------- Phase A ----------------
        obs.trace("phase", &[("name", "A: streaming world with live CDet".into())]);
        let phase_a_start = Instant::now();
        let mut world = World::new(cfg.world);
        let mut extractor = build_extractor(&world, &cfg.xatu, cfg.blocklist_categories);
        let mut histories: HashMap<Ipv4, PooledHistory> = HashMap::new();
        let mut volumes = VolumeStore::new(split.total);
        let mut cdet: Box<dyn Detector> = if cfg.label_with_fnm {
            Box::new(FastNetMon::new())
        } else {
            Box::new(NetScout::new())
        };
        let mut dataset = DatasetBuilder::new(&cfg.xatu, cfg.neg_prob);
        let mut cdet_alerts: Vec<Alert> = Vec::new();
        let mut cdet_events_by_minute: HashMap<u32, Vec<DetectorEvent>> = HashMap::new();
        let mut active_cdet: BTreeMap<(Ipv4, AttackType), ActiveAlert> = BTreeMap::new();
        let mut alert_minutes: Vec<(Ipv4, u32)> = Vec::new();

        let raw_retain = cfg.xatu.raw_history_minutes() + 32;
        // Trailing per-customer volume EWMA for surge detection (negative
        // sampling must cover benign flash crowds — the volumetric
        // surges *without* auxiliary signals that the model has to learn
        // to ignore).
        let mut volume_ewma: HashMap<Ipv4, f64> = HashMap::new();
        let ts = Timescales {
            short: cfg.xatu.timescales.0,
            medium: cfg.xatu.timescales.1,
            long: cfg.xatu.timescales.2,
        };

        while !world.finished() {
            let bins = world.step();
            let minute = bins[0].minute;
            for bin in &bins {
                volumes.record(bin);
            }
            // CDet observes every (customer, type) signature volume.
            for bin in &bins {
                for ty in AttackType::ALL {
                    let obs = MinuteObservation {
                        minute,
                        customer: bin.customer,
                        attack_type: ty,
                        bytes: volumes.bytes_at(bin.customer, ty, minute),
                        packets: volumes.packets_at(bin.customer, ty, minute),
                    };
                    for ev in cdet.observe(&obs) {
                        cdet_events_by_minute.entry(minute).or_default().push(ev);
                        handle_alert_event(
                            &ev,
                            minute,
                            &volumes,
                            &mut extractor,
                            &mut active_cdet,
                            &mut cdet_alerts,
                        );
                        if let DetectorEvent::Raised(a) = ev {
                            alert_minutes.push((a.customer, a.detected_at));
                            if minute < split.train_end {
                                let onset = onset_of(&volumes, &a);
                                dataset.on_alert(a.customer, a.attack_type, onset, a.detected_at);
                            }
                        }
                    }
                }
            }
            // Tracker upkeep first (mutates shared per-customer state),
            // then feature extraction fanned out across customers — frames
            // come back in bin order, so the sequential consumption below
            // is identical for every thread count.
            for bin in &bins {
                update_trackers(&mut extractor, bin, &mut active_cdet, &volumes, false);
            }
            extractor.spoof.ensure_built();
            let frames = par_map(threads, &bins, |_, bin| extractor.extract_shared(bin));
            obs.add("features.frames_phase_a", frames.len() as u64);
            for (bin, frame) in bins.iter().zip(frames) {
                let total = bin.total_bytes() as f64;
                let ewma = volume_ewma.entry(bin.customer).or_insert(total);
                let surge = total > 4.0 * *ewma + 1e5;
                if !surge {
                    *ewma = 0.98 * *ewma + 0.02 * total;
                }
                if minute < split.train_end {
                    // Hard negatives of two kinds: minutes with live A1/A2
                    // signal (prep probing) and benign volumetric surges
                    // (flash crowds). Both patterns must be abundantly
                    // represented as non-attacks or the model fires on
                    // them; candidates too close to real alerts are
                    // dropped later by the alert-proximity filter.
                    let aux_active = frame.aux_block(1).iter().any(|&v| v > 0.0)
                        || frame.aux_block(2).iter().any(|&v| v > 0.0);
                    dataset.maybe_negative_weighted(
                        bin.customer,
                        minute,
                        if surge {
                            24.0
                        } else if aux_active {
                            8.0
                        } else {
                            1.0
                        },
                    );
                }
                histories
                    .entry(bin.customer)
                    .or_insert_with(|| PooledHistory::new(ts, raw_retain, cfg.xatu.long_len + 8))
                    .push(frame);
            }
            extractor.clustering.expire(minute);
            dataset.collect_ready(minute, &histories);
        }
        let bundle = dataset.finish(&alert_minutes);
        let ground_truth = build_ground_truth(&cdet_alerts, &volumes);
        let table2 = table2_of(&cdet_alerts, &split);
        record_world_obs(&mut obs, &world);
        obs.record_wall("pipeline.phase_a_seconds", phase_a_start.elapsed().as_secs_f64());
        obs.event(
            "pipeline.phase_a_done",
            vec![
                ("cdet_alerts", cdet_alerts.len().into()),
                ("gt_events", ground_truth.len().into()),
                ("train_positives", bundle.positives.len().into()),
                ("train_negatives", bundle.negatives.len().into()),
            ],
        );

        // ---------------- FastNetMon (offline over stored volumes) -------
        let fnm_alerts = if cfg.with_fnm {
            obs.trace("phase", &[("name", "FastNetMon offline replay".into())]);
            let fnm_start = Instant::now();
            let alerts = run_fnm(&volumes, &world, split.total, threads);
            obs.record_wall("pipeline.fnm_seconds", fnm_start.elapsed().as_secs_f64());
            obs.add("fnm.alerts", alerts.len() as u64);
            alerts
        } else {
            Vec::new()
        };

        // ---------------- Training ----------------
        obs.trace("phase", &[("name", "training per-type survival models".into())]);
        let train_start = Instant::now();
        let models = train_models(&bundle, &cfg.xatu, &mut obs);
        obs.record_wall("pipeline.train_seconds", train_start.elapsed().as_secs_f64());
        let rf_models = if cfg.with_rf {
            obs.trace("phase", &[("name", "training RF baselines".into())]);
            let rf_start = Instant::now();
            let rf = train_rf_models(&bundle, &cfg.xatu, threads);
            obs.record_wall("pipeline.rf_train_seconds", rf_start.elapsed().as_secs_f64());
            rf
        } else {
            Vec::new()
        };

        // ---------------- Phase B: warm + validation ----------------
        obs.trace(
            "phase",
            &[("name", "B: warming online states and scoring validation".into())],
        );
        let phase_b_start = Instant::now();
        let mut world_b = World::new(cfg.world);
        let mut extractor_b = build_extractor(&world_b, &cfg.xatu, cfg.blocklist_categories);
        let mut detectors: Vec<OnlineDetector> = models
            .iter()
            .map(|(ty, m)| {
                let mut d = OnlineDetector::new(m.clone(), *ty, 0.0, &cfg.xatu);
                d.set_warmup(u32::MAX); // alerts disabled until the test run
                d
            })
            .collect();
        let mut rf_histories: HashMap<Ipv4, PooledHistory> = HashMap::new();
        let mut rf_feats: Vec<f64> = Vec::new();
        let mut active_b: BTreeMap<(Ipv4, AttackType), ActiveAlert> = BTreeMap::new();
        let mut val_scores_xatu: HashMap<(Ipv4, AttackType), Vec<f32>> = HashMap::new();
        let mut val_scores_rf: HashMap<(Ipv4, AttackType), Vec<f32>> = HashMap::new();

        while world_b.minute() < split.val_end {
            let bins = world_b.step();
            let minute = bins[0].minute;
            replay_cdet_events(
                &cdet_events_by_minute,
                minute,
                &volumes,
                &mut extractor_b,
                &mut active_b,
            );
            for bin in &bins {
                update_trackers(&mut extractor_b, bin, &mut active_b, &volumes, false);
            }
            extractor_b.spoof.ensure_built();
            let frames = par_map(threads, &bins, |_, bin| extractor_b.extract_shared(bin));
            obs.add("features.frames_phase_b", frames.len() as u64);
            for (bin, frame) in bins.iter().zip(frames) {
                for det in detectors.iter_mut() {
                    // The pipeline drives every customer strictly minute by
                    // minute with full-width frames, so observe can only
                    // fail on a pipeline bug — surface it loudly.
                    let (_, survival, _) = det
                        .observe(bin.customer, minute, &frame.0)
                        .expect("pipeline feeds monotone minutes");
                    if minute >= split.train_end {
                        val_scores_xatu
                            .entry((bin.customer, det.attack_type()))
                            .or_default()
                            .push(survival as f32);
                    }
                }
                if cfg.with_rf {
                    let h = rf_histories
                        .entry(bin.customer)
                        .or_insert_with(|| PooledHistory::new(ts, 64, 8));
                    h.push(frame);
                    if minute >= split.train_end {
                        // One feature vector serves every per-type RF: the
                        // features depend only on the history, not the type.
                        rf_online_features_into(h, &mut rf_feats);
                        for (ty, rf) in &rf_models {
                            let score = 1.0 - rf.predict_proba(&rf_feats);
                            val_scores_rf
                                .entry((bin.customer, *ty))
                                .or_default()
                                .push(score as f32);
                        }
                    }
                }
            }
            extractor_b.clustering.expire(minute);
        }

        obs.record_wall("pipeline.phase_b_seconds", phase_b_start.elapsed().as_secs_f64());
        // Warm-up/validation detector telemetry (alerts are disabled here,
        // so only suppression counts and the survival distribution move).
        for det in &detectors {
            obs.add("online.warmup_suppressed", det.obs().warmup_suppressed.get());
            obs.merge_histogram("online.survival", &det.obs().survival);
        }

        let checkpoint = Checkpoint {
            world: world_b,
            extractor: extractor_b,
            detectors,
            rf_histories,
            active_cdet: active_b,
        };

        Prepared {
            cfg,
            split,
            volumes,
            cdet_alerts,
            fnm_alerts,
            ground_truth,
            table2,
            models,
            rf_models,
            bundle,
            val_scores_xatu,
            val_scores_rf,
            checkpoint,
            cdet_events_by_minute,
            obs: obs.snapshot(),
        }
    }
}

impl Prepared {
    /// The chronological split in use.
    pub fn split(&self) -> SplitBoundaries {
        self.split
    }

    /// The stored signature-volume series.
    pub fn volumes(&self) -> &VolumeStore {
        &self.volumes
    }

    /// Calibrates thresholds on validation and evaluates the test period at
    /// `bound` for every system.
    pub fn evaluate(&self, bound: f64) -> EvalReport {
        let mut obs = pipeline_registry(self.cfg.verbose);
        let quiet = 5u32;
        let q = QuantileBound {
            quantile: 0.75,
            bound,
        };
        let calibrate_start = Instant::now();
        let gt_val: Vec<GtEvent> = self
            .ground_truth
            .iter()
            .filter(|e| {
                e.cdet_detected >= self.split.train_end && e.cdet_detected < self.split.val_end
            })
            .copied()
            .collect();

        // Per-type calibration: each attack type's model has its own score
        // distribution (UDP survival collapses harder than TCP ACK's), so
        // each gets its own threshold — the paper trains and evaluates the
        // six models independently.
        let xatu_thresholds: Vec<(AttackType, f64)> = self
            .models
            .iter()
            .map(|(ty, _)| {
                let th = self
                    .calibrate(&self.val_scores_xatu, &gt_val, q, quiet, Some(*ty))
                    .unwrap_or(0.002);
                (*ty, th)
            })
            .collect();
        let rf_thresholds: Vec<(AttackType, f64)> = if self.cfg.with_rf {
            self.rf_models
                .iter()
                .map(|(ty, _)| {
                    let th = self
                        .calibrate(&self.val_scores_rf, &gt_val, q, quiet, Some(*ty))
                        .unwrap_or(0.002);
                    (*ty, th)
                })
                .collect()
        } else {
            Vec::new()
        };
        obs.record_wall(
            "pipeline.calibrate_seconds",
            calibrate_start.elapsed().as_secs_f64(),
        );
        for (system, thresholds) in [("xatu", &xatu_thresholds), ("rf", &rf_thresholds)] {
            for (ty, th) in thresholds {
                obs.event(
                    "calibrate.threshold",
                    vec![
                        ("system", system.into()),
                        ("attack_type", format!("{ty:?}").into()),
                        ("threshold", (*th).into()),
                    ],
                );
            }
        }

        // ---------------- Test run (auto-regressive Xatu) ----------------
        let test_start = Instant::now();
        let (xatu_alerts, rf_alerts, test_scores_xatu, test_scores_rf) =
            self.run_test(&xatu_thresholds, &rf_thresholds, quiet, &mut obs);
        obs.record_wall("pipeline.test_seconds", test_start.elapsed().as_secs_f64());

        // ---------------- Evaluate all systems ----------------
        let eval_start = self.split.stabilization_end;
        let eval_end = self.split.total;
        let mut systems = Vec::new();

        let cdet_intervals = intervals_of(&self.cdet_alerts, eval_end);
        systems.push(evaluate_system(
            "NetScout",
            &cdet_intervals,
            &self.ground_truth,
            &self.volumes,
            eval_start,
            eval_end,
        ));
        if self.cfg.with_fnm {
            let fnm_intervals = intervals_of(&self.fnm_alerts, eval_end);
            systems.push(evaluate_system(
                "FastNetMon",
                &fnm_intervals,
                &self.ground_truth,
                &self.volumes,
                eval_start,
                eval_end,
            ));
        }
        if self.cfg.with_rf {
            systems.push(evaluate_system(
                "RF",
                &rf_alerts,
                &self.ground_truth,
                &self.volumes,
                eval_start,
                eval_end,
            ));
        }
        systems.push(evaluate_system(
            "Xatu",
            &xatu_alerts,
            &self.ground_truth,
            &self.volumes,
            eval_start,
            eval_end,
        ));

        // ---------------- ROC over test minutes ----------------
        let mut roc = Vec::new();
        roc.push((
            "Xatu".to_string(),
            self.minute_roc(&test_scores_xatu, eval_start),
        ));
        if self.cfg.with_rf {
            roc.push((
                "RF".to_string(),
                self.minute_roc(&test_scores_rf, eval_start),
            ));
        }

        // The report's snapshot is the prepare-time telemetry plus this
        // run's own recording, stitched in that fixed order.
        let mut snapshot = self.obs.clone();
        snapshot.absorb(&obs.snapshot());

        EvalReport {
            bound,
            xatu_thresholds,
            rf_thresholds,
            systems,
            gt_test: self
                .ground_truth
                .iter()
                .filter(|e| e.cdet_detected >= eval_start && e.cdet_detected < eval_end)
                .copied()
                .collect(),
            table2: self.table2,
            roc,
            obs: snapshot,
        }
    }

    /// Distribution diagnostics of the validation survival scores:
    /// (min, mean, fraction of minutes below 0.5).
    pub fn val_score_stats(&self) -> (f64, f64, f64) {
        let mut min = 1.0f64;
        let mut sum = 0.0f64;
        let mut below = 0usize;
        let mut n = 0usize;
        for series in self.val_scores_xatu.values() {
            for &s in series {
                let s = s as f64;
                min = min.min(s);
                sum += s;
                if s < 0.5 {
                    below += 1;
                }
                n += 1;
            }
        }
        if n == 0 {
            return (1.0, 1.0, 0.0);
        }
        (min, sum / n as f64, below as f64 / n as f64)
    }

    /// Renders the calibration candidate table for debugging: per
    /// threshold, the median validation effectiveness and p75 overhead.
    pub fn calibration_debug(&self) -> String {
        let quiet = 5u32;
        let base = self.split.train_end;
        let gt_val: Vec<GtEvent> = self
            .ground_truth
            .iter()
            .filter(|e| {
                e.cdet_detected >= self.split.train_end && e.cdet_detected < self.split.val_end
            })
            .copied()
            .collect();
        let mut out = format!("calibration over {} val events\n", gt_val.len());
        for threshold in threshold_grid(24) {
            let mut alerts: SystemAlerts = HashMap::new();
            let mut n_alerts = 0usize;
            for (&key, series) in &self.val_scores_xatu {
                let intervals = alerts_from_score_series(series, base, threshold, quiet);
                n_alerts += intervals.len();
                if !intervals.is_empty() {
                    alerts.insert(key, intervals);
                }
            }
            let eval = evaluate_system(
                "cand",
                &alerts,
                &gt_val,
                &self.volumes,
                base,
                self.split.val_end,
            );
            let eff = Summary::p10_50_90(&eval.effectiveness_values());
            out.push_str(&format!(
                "th={threshold:.5} alerts={n_alerts} eff_med={:.3} p75_ovh={:.4} detected={}/{}\n",
                eff.median,
                eval.overhead.p75(),
                eval.detected,
                eval.delay.total()
            ));
        }
        out
    }

    /// Threshold calibration on validation scores (§5.3).
    fn calibrate(
        &self,
        scores: &HashMap<(Ipv4, AttackType), Vec<f32>>,
        gt_val: &[GtEvent],
        q: QuantileBound,
        quiet: u32,
        only_type: Option<AttackType>,
    ) -> Option<f64> {
        let base = self.split.train_end;
        let gt_filtered: Vec<GtEvent> = gt_val
            .iter()
            .filter(|e| only_type.is_none_or(|t| e.attack_type == t))
            .copied()
            .collect();
        // Each candidate threshold is scored independently over the same
        // read-only validation scores, so the sweep fans out across
        // threads; candidates come back in grid order, making
        // `pick_threshold` see the identical list for any thread count.
        let grid = threshold_grid(24);
        let candidates: Vec<CandidateEval> =
            par_map(resolve_threads(self.cfg.xatu.threads), &grid, |_, &threshold| {
                let mut alerts: SystemAlerts = HashMap::new();
                for (&key, series) in scores {
                    if only_type.is_some_and(|t| key.1 != t) {
                        continue;
                    }
                    let intervals = alerts_from_score_series(series, base, threshold, quiet);
                    if !intervals.is_empty() {
                        alerts.insert(key, intervals);
                    }
                }
                // The scrubbing centre releases clean traffic during
                // validation exactly as it will during testing.
                self.apply_scrub_release(&mut alerts);
                let eval = evaluate_system(
                    "cand",
                    &alerts,
                    &gt_filtered,
                    &self.volumes,
                    base,
                    self.split.val_end,
                );
                let eff = Summary::p10_50_90(&eval.effectiveness_values());
                CandidateEval {
                    threshold,
                    objective: if eff.median.is_nan() { 0.0 } else { eff.median },
                    per_customer_cost: eval.overhead.ratios(),
                }
            });
        pick_threshold(&candidates, q)
    }

    /// Streams the stabilization + test periods from the checkpoint with
    /// live thresholds; returns alert intervals and per-minute scores.
    #[allow(clippy::type_complexity)]
    fn run_test(
        &self,
        xatu_thresholds: &[(AttackType, f64)],
        rf_thresholds: &[(AttackType, f64)],
        quiet: u32,
        obs: &mut Registry,
    ) -> (
        SystemAlerts,
        SystemAlerts,
        HashMap<(Ipv4, AttackType), Vec<f32>>,
        HashMap<(Ipv4, AttackType), Vec<f32>>,
    ) {
        let cfg = &self.cfg;
        // These checkpoint clones are load-bearing, not waste:
        // [`Prepared::evaluate`] runs once per overhead bound over the same
        // `Prepared`, so every test run must fork the frozen stream state
        // rather than consume it.
        let mut world = self.checkpoint.world.clone();
        // Fork the extractor: CDet-fed for RF, Xatu-fed for Xatu (§5.3:
        // "for stabilization and testing periods, we rely on Xatu's
        // detection to extract these features").
        let mut extractor_cdet = self.checkpoint.extractor.clone();
        let mut extractor_xatu = self.checkpoint.extractor.clone();
        let mut detectors = self.checkpoint.detectors.clone();
        for d in detectors.iter_mut() {
            let th = xatu_thresholds
                .iter()
                .find(|(ty, _)| *ty == d.attack_type())
                .map_or(0.002, |(_, th)| *th);
            d.set_threshold(th);
            d.set_warmup(0);
            // Fresh recording scope: phase-B observations were already
            // folded into the prepare-time snapshot.
            d.reset_obs();
        }
        let mut rf_histories = self.checkpoint.rf_histories.clone();
        let mut active_cdet = self.checkpoint.active_cdet.clone();
        let mut active_xatu: BTreeMap<(Ipv4, AttackType), ActiveAlert> = BTreeMap::new();

        let ts = Timescales {
            short: cfg.xatu.timescales.0,
            medium: cfg.xatu.timescales.1,
            long: cfg.xatu.timescales.2,
        };
        let mut xatu_alert_list: Vec<Alert> = Vec::new();
        let mut test_scores_xatu: HashMap<(Ipv4, AttackType), Vec<f32>> = HashMap::new();
        let mut test_scores_rf: HashMap<(Ipv4, AttackType), Vec<f32>> = HashMap::new();
        let mut rf_feats: Vec<f64> = Vec::new();
        let threads = resolve_threads(cfg.xatu.threads);

        while !world.finished() {
            let bins = world.step();
            let minute = bins[0].minute;
            replay_cdet_events(
                &self.cdet_events_by_minute,
                minute,
                &self.volumes,
                &mut extractor_cdet,
                &mut active_cdet,
            );
            // During the stabilization prefix the Xatu-fed extractor also
            // receives the CDet feed: the paper's stabilization period
            // exists to let the auto-regressive feature state settle
            // before metrics are taken; afterwards Xatu is on its own.
            if minute < self.split.stabilization_end {
                replay_cdet_events(
                    &self.cdet_events_by_minute,
                    minute,
                    &self.volumes,
                    &mut extractor_xatu,
                    &mut active_xatu,
                );
            }
            // Tracker upkeep for both extractor forks, then one extraction
            // fan-out per fork; frames return in bin order so the
            // sequential consumption below matches every thread count.
            if cfg.with_rf {
                for bin in &bins {
                    update_trackers(&mut extractor_cdet, bin, &mut active_cdet, &self.volumes, false);
                }
            }
            for bin in &bins {
                update_trackers(&mut extractor_xatu, bin, &mut active_xatu, &self.volumes, true);
            }
            let frames_cdet = if cfg.with_rf {
                extractor_cdet.spoof.ensure_built();
                par_map(threads, &bins, |_, bin| extractor_cdet.extract_shared(bin))
            } else {
                Vec::new()
            };
            extractor_xatu.spoof.ensure_built();
            let frames_xatu = par_map(threads, &bins, |_, bin| extractor_xatu.extract_shared(bin));
            let mut frames_cdet = frames_cdet.into_iter();
            for (bin, frame_xatu) in bins.iter().zip(frames_xatu) {
                // --- CDet-fed side: RF baseline. ---
                if cfg.with_rf {
                    let frame_cdet = frames_cdet.next().expect("one CDet frame per bin");
                    let h = rf_histories
                        .entry(bin.customer)
                        .or_insert_with(|| PooledHistory::new(ts, 64, 8));
                    h.push(frame_cdet);
                    // One feature vector serves every per-type RF.
                    rf_online_features_into(h, &mut rf_feats);
                    for (ty, rf) in &self.rf_models {
                        let score = 1.0 - rf.predict_proba(&rf_feats);
                        test_scores_rf
                            .entry((bin.customer, *ty))
                            .or_default()
                            .push(score as f32);
                    }
                }

                // --- Xatu-fed side: auto-regressive detection. ---
                if cfg.verbose && cfg.with_rf {
                    // Frame-divergence diagnostic during ground-truth
                    // attacks (only when the CDet-fed frame exists).
                    let in_attack = self.ground_truth.iter().any(|e| {
                        e.customer == bin.customer
                            && minute >= e.anomaly_start
                            && minute < e.mitigation_end
                            && e.cdet_detected >= self.split.stabilization_end
                    });
                    if in_attack {
                        let sum = |v: &[f64]| v.iter().sum::<f64>();
                        obs.trace(
                            "frame.divergence",
                            &[
                                ("customer", bin.customer.to_string().into()),
                                ("minute", minute.into()),
                                ("volumetric", sum(frame_xatu.volumetric()).into()),
                                ("a1", sum(frame_xatu.aux_block(1)).into()),
                                ("a2", sum(frame_xatu.aux_block(2)).into()),
                                ("a4", sum(frame_xatu.aux_block(4)).into()),
                            ],
                        );
                    }
                }
                for det in detectors.iter_mut() {
                    // Monotone minutes and full-width frames by
                    // construction, as in phase B.
                    let (_, survival, events) = det
                        .observe(bin.customer, minute, &frame_xatu.0)
                        .expect("pipeline feeds monotone minutes");
                    test_scores_xatu
                        .entry((bin.customer, det.attack_type()))
                        .or_default()
                        .push(survival as f32);
                    for ev in events {
                        handle_alert_event(
                            &ev,
                            minute,
                            &self.volumes,
                            &mut extractor_xatu,
                            &mut active_xatu,
                            &mut xatu_alert_list,
                        );
                    }
                }
            }
            extractor_cdet.clustering.expire(minute);
            extractor_xatu.clustering.expire(minute);
        }
        for det in detectors.iter_mut() {
            for ev in det.close_all(self.split.total) {
                if let DetectorEvent::Ended(a) = ev {
                    close_alert(&mut xatu_alert_list, &a);
                }
            }
        }
        // Detector lifecycle telemetry from this run, stitched in detector
        // (model) order. `close_all` ends are included in `alerts_ended`.
        for det in &detectors {
            let d = det.obs();
            obs.add("online.alerts_raised", d.raised.get());
            obs.add("online.alerts_ended", d.ended.get());
            obs.add("online.alerts_force_ended", d.force_ended.get());
            obs.add("online.warmup_suppressed", d.warmup_suppressed.get());
            obs.merge_histogram("online.survival", &d.survival);
        }

        if cfg.verbose {
            let min_s = test_scores_xatu
                .values()
                .flat_map(|v| v.iter())
                .fold(1.0f32, |a, &b| a.min(b));
            obs.trace(
                "test.summary",
                &[
                    ("xatu_alerts", xatu_alert_list.len().into()),
                    ("min_survival", f64::from(min_s).into()),
                ],
            );
            for a in xatu_alert_list.iter().take(60) {
                obs.trace(
                    "test.alert",
                    &[
                        ("attack_type", format!("{:?}", a.attack_type).into()),
                        ("customer", a.customer.to_string().into()),
                        ("detected_at", a.detected_at.into()),
                        ("mitigation_end", format!("{:?}", a.mitigation_end).into()),
                    ],
                );
            }
            for e in self.ground_truth.iter().filter(|e| e.cdet_detected >= self.split.stabilization_end) {
                // Min survival of the matching model around this event.
                let min_s = test_scores_xatu
                    .get(&(e.customer, e.attack_type))
                    .map(|series| {
                        let base = self.split.val_end;
                        let from = e.anomaly_start.saturating_sub(15).saturating_sub(base) as usize;
                        let to = ((e.mitigation_end - base) as usize).min(series.len());
                        series[from.min(to)..to]
                            .iter()
                            .fold(1.0f32, |a, &b| a.min(b))
                    })
                    .unwrap_or(9.9);
                obs.trace(
                    "test.gt_event",
                    &[
                        ("attack_type", format!("{:?}", e.attack_type).into()),
                        ("customer", e.customer.to_string().into()),
                        ("onset", e.anomaly_start.into()),
                        ("detected", e.cdet_detected.into()),
                        ("mitigation_end", e.mitigation_end.into()),
                        ("min_survival", f64::from(min_s).into()),
                    ],
                );
            }
        }
        let mut xatu_alerts = intervals_of(&xatu_alert_list, self.split.total);
        self.apply_scrub_release(&mut xatu_alerts);
        // RF alerts from its score series.
        let mut rf_alerts: SystemAlerts = HashMap::new();
        if cfg.with_rf {
            for (&key, series) in &test_scores_rf {
                let th = rf_thresholds
                    .iter()
                    .find(|(ty, _)| *ty == key.1)
                    .map_or(0.002, |(_, th)| *th);
                let intervals =
                    alerts_from_score_series(series, self.split.val_end, th, quiet);
                if !intervals.is_empty() {
                    rf_alerts.insert(key, intervals);
                }
            }
            self.apply_scrub_release(&mut rf_alerts);
        }
        (xatu_alerts, rf_alerts, test_scores_xatu, test_scores_rf)
    }

    /// The scrubbing centre's release behaviour (§2.1: once traffic runs
    /// clean, customers are told to stop diverting): each scrub interval
    /// is truncated after [`SCRUB_QUIET`] consecutive minutes without
    /// anomalous signature volume once any anomalous minute was scrubbed,
    /// or after [`SCRUB_GRACE`] minutes if none ever appears. This bounds
    /// the cost of false and too-early alerts exactly the way a real
    /// CScrub deployment does.
    fn apply_scrub_release(&self, alerts: &mut SystemAlerts) {
        const SCRUB_QUIET: u32 = 5;
        const SCRUB_GRACE: u32 = 15;
        for (&(customer, ty), intervals) in alerts.iter_mut() {
            for iv in intervals.iter_mut() {
                let (start, end) = *iv;
                let mut saw_anomalous = false;
                let mut quiet_run = 0u32;
                let mut release = end;
                for m in start..end {
                    if volume_is_anomalous(&self.volumes, customer, ty, m) {
                        saw_anomalous = true;
                        quiet_run = 0;
                    } else {
                        quiet_run += 1;
                    }
                    if saw_anomalous && quiet_run >= SCRUB_QUIET {
                        release = m + 1;
                        break;
                    }
                    if !saw_anomalous && m - start + 1 >= SCRUB_GRACE {
                        release = m + 1;
                        break;
                    }
                }
                iv.1 = release;
            }
            intervals.retain(|&(s, t)| t > s);
        }
    }

    /// Minute-level ROC over the post-stabilization test period.
    fn minute_roc(
        &self,
        scores: &HashMap<(Ipv4, AttackType), Vec<f32>>,
        eval_start: u32,
    ) -> Vec<RocPoint> {
        let base = self.split.val_end;
        let mut samples: Vec<(f64, bool)> = Vec::new();
        for (&(cust, ty), series) in scores {
            let spans: Vec<(u32, u32)> = self
                .ground_truth
                .iter()
                .filter(|e| e.customer == cust && e.attack_type == ty)
                .map(|e| (e.anomaly_start, e.mitigation_end))
                .collect();
            for (i, &s) in series.iter().enumerate() {
                let minute = base + i as u32;
                if minute < eval_start {
                    continue;
                }
                let label = spans.iter().any(|&(a, b)| minute >= a && minute < b);
                // Higher score = more attack-like for the ROC convention.
                samples.push((1.0 - s as f64, label));
            }
        }
        roc_curve(&samples)
    }
}

/// One full evaluation at a given overhead bound.
pub struct EvalReport {
    /// The overhead bound used for calibration.
    pub bound: f64,
    /// Calibrated per-type Xatu survival thresholds.
    pub xatu_thresholds: Vec<(AttackType, f64)>,
    /// Calibrated per-type RF score thresholds.
    pub rf_thresholds: Vec<(AttackType, f64)>,
    /// Per-system evaluations (NetScout, FastNetMon?, RF?, Xatu).
    pub systems: Vec<SystemEval>,
    /// Ground-truth events inside the reported test window.
    pub gt_test: Vec<GtEvent>,
    /// Table 2 counts.
    pub table2: Table2,
    /// ROC curves per ML system.
    pub roc: Vec<(String, Vec<RocPoint>)>,
    /// Stitched telemetry: preparation plus this evaluation run. The
    /// digest covers only the deterministic sections, so it is identical
    /// for every thread count.
    pub obs: Snapshot,
}

impl EvalReport {
    /// The evaluation of one system by name.
    pub fn system(&self, name: &str) -> Option<&SystemEval> {
        self.systems.iter().find(|s| s.name == name)
    }

    /// The telemetry snapshot as indented JSON, rendered through the
    /// workspace serde stack ([`Snapshot::to_json`] is the compact
    /// single-line form). Floats round-trip bit-exactly.
    pub fn telemetry_json(&self) -> String {
        serde_json::to_string_pretty(&RawValue(snapshot_value(&self.obs)))
            .expect("telemetry snapshot serializes")
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "overhead bound {:.3}% | {} ground-truth test events\n",
            100.0 * self.bound,
            self.gt_test.len()
        ));
        for s in &self.systems {
            let eff = Summary::p10_50_90(&s.effectiveness_values());
            let delay = s.delay.summary();
            let ovh = s.overhead.summary();
            out.push_str(&format!(
                "{:>10}: eff med {:5.1}% [{:5.1}, {:5.1}] | delay med {:+5.1} min | ovh p75 {:.4} | detected {}/{}\n",
                s.name,
                100.0 * eff.median,
                100.0 * eff.lo,
                100.0 * eff.hi,
                delay.median,
                ovh.hi,
                s.detected,
                s.delay.total(),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Helpers shared by the phases.
// ---------------------------------------------------------------------

/// The registry for one recording scope: verbose runs stream events and
/// traces to stderr, quiet runs record silently.
fn pipeline_registry(verbose: bool) -> Registry {
    if verbose {
        Registry::with_sink(Arc::new(StderrSink { prefix: "pipeline" }))
    } else {
        Registry::new()
    }
}

/// Folds the world's generation counters into the registry. Every one is a
/// pure function of the seeded config, hence digest-safe.
fn record_world_obs(obs: &mut Registry, world: &World) {
    let w = world.obs();
    obs.add("simnet.minutes_stepped", w.minutes_stepped.get());
    obs.add("simnet.flows_generated", w.flows_generated.get());
    obs.add("simnet.attack_flows_generated", w.attack_flows_generated.get());
    obs.add("simnet.flows_emitted", w.flows_emitted.get());
    obs.add("simnet.attacks_scheduled", world.attacks_scheduled() as u64);
    obs.add(
        "netflow.double_sample_rejects",
        world.sampler_double_sample_rejects(),
    );
}

/// A pre-built [`Value`] tree passed through the serde stack unchanged.
struct RawValue(Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Renders a telemetry snapshot as a serde [`Value`] tree.
fn snapshot_value(s: &Snapshot) -> Value {
    let u64_map = |entries: &[(String, u64)]| {
        Value::Map(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), Value::U64(*v)))
                .collect(),
        )
    };
    let field_value = |v: &FieldValue| match v {
        FieldValue::U64(v) => Value::U64(*v),
        FieldValue::I64(v) => Value::I64(*v),
        FieldValue::F64(v) => Value::F64(*v),
        FieldValue::Str(v) => Value::Str(v.clone()),
    };
    Value::Map(vec![
        (
            "digest".to_string(),
            Value::Str(format!("{:016x}", s.digest())),
        ),
        ("counters".to_string(), u64_map(&s.counters)),
        (
            "gauges".to_string(),
            Value::Map(
                s.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::F64(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Value::Map(
                s.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Value::Map(vec![
                                (
                                    "bounds".to_string(),
                                    Value::Seq(h.bounds.iter().map(|&b| Value::F64(b)).collect()),
                                ),
                                (
                                    "counts".to_string(),
                                    Value::Seq(h.counts.iter().map(|&c| Value::U64(c)).collect()),
                                ),
                                ("count".to_string(), Value::U64(h.count)),
                                ("sum".to_string(), Value::F64(h.sum)),
                                ("nan".to_string(), Value::U64(h.nan)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "events".to_string(),
            Value::Seq(
                s.events
                    .iter()
                    .map(|e| {
                        let mut m = vec![("kind".to_string(), Value::Str(e.kind.to_string()))];
                        m.extend(
                            e.fields
                                .iter()
                                .map(|(name, v)| (name.to_string(), field_value(v))),
                        );
                        Value::Map(m)
                    })
                    .collect(),
            ),
        ),
        (
            "wall".to_string(),
            Value::Map(
                s.wall
                    .iter()
                    .map(|(k, t)| {
                        (
                            k.clone(),
                            Value::Map(vec![
                                ("count".to_string(), Value::U64(t.count)),
                                ("total_seconds".to_string(), Value::F64(t.total_seconds)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("volatile".to_string(), u64_map(&s.volatile)),
    ])
}

/// Builds a feature extractor loaded with the world's blocklist feed and
/// routed prefixes.
pub(crate) fn build_extractor(
    world: &World,
    xatu: &XatuConfig,
    categories: Option<BlocklistCategorySet>,
) -> FeatureExtractor {
    let mut ex = FeatureExtractor::new();
    for (cat, subnet) in world.blocklist_feed() {
        ex.blocklists.add(BlocklistCategory::ALL[cat], subnet);
    }
    if let Some(set) = categories {
        for (i, cat) in BlocklistCategory::ALL.iter().enumerate() {
            ex.blocklists.set_enabled(*cat, set.contains_index(i));
        }
    }
    for (prefix, asn) in world.routed_prefixes() {
        ex.spoof.announce(prefix, asn);
    }
    ex.spoof.build();
    ex.mask = xatu.feature_mask;
    ex
}

/// CUSUM onset for an alert from the stored volumes.
fn onset_of(volumes: &VolumeStore, alert: &Alert) -> u32 {
    let lookback = alert.detected_at.saturating_sub(180);
    let series = volumes.bytes_range(
        alert.customer,
        alert.attack_type,
        lookback,
        alert.detected_at + 1,
    );
    xatu_detectors::cusum::mark_anomaly_start(
        &series,
        lookback,
        alert.detected_at,
        alert.attack_type,
    )
}

/// Applies a detector lifecycle event (CDet's or Xatu's own) to the
/// tracker state: registers active scrubbing, records A4 severity on end,
/// and keeps the alert log coherent.
pub(crate) fn handle_alert_event(
    ev: &DetectorEvent,
    minute: u32,
    volumes: &VolumeStore,
    extractor: &mut FeatureExtractor,
    active: &mut BTreeMap<(Ipv4, AttackType), ActiveAlert>,
    log: &mut Vec<Alert>,
) {
    match ev {
        DetectorEvent::Raised(a) => {
            active.insert(
                (a.customer, a.attack_type),
                ActiveAlert {
                    peak_bpm: volumes.bytes_at(a.customer, a.attack_type, minute),
                },
            );
            log.push(*a);
        }
        DetectorEvent::Ended(a) => {
            if let Some(st) = active.remove(&(a.customer, a.attack_type)) {
                extractor.history.record(
                    a.customer,
                    a.attack_type,
                    Severity::of_peak_bytes_per_minute(st.peak_bpm),
                    minute,
                );
            }
            close_alert(log, a);
        }
    }
}

/// Marks the matching raised alert in `log` as ended.
fn close_alert(log: &mut [Alert], ended: &Alert) {
    if let Some(slot) = log.iter_mut().rev().find(|x| {
        x.customer == ended.customer
            && x.attack_type == ended.attack_type
            && x.mitigation_end.is_none()
    }) {
        slot.mitigation_end = ended.mitigation_end;
    }
}

/// Per-minute tracker upkeep while alerts are active: previous-attacker
/// recording, clustering incidences, and peak tracking (§5.1: "all sources
/// of traffic matching the alert signature for the time from the CDet's
/// alert to the CDet's mitigation-end notice").
///
/// `gated` requires volumetric corroboration before sources are recorded.
/// CDet alerts are volume-triggered by construction, so their matching
/// traffic is predominantly attack traffic and recording is ungated. But
/// Xatu's *own* early alerts can fire before (or without) an attack; if
/// their matching-but-benign sources entered the previous-attacker set,
/// the A2 features would light up on normal traffic and keep the alert
/// alive — a runaway auto-regressive feedback loop. The gate breaks it:
/// sources are only recorded while the signature volume exceeds a
/// multiple of the customer's trailing baseline.
pub(crate) fn update_trackers(
    extractor: &mut FeatureExtractor,
    bin: &MinuteFlows,
    active: &mut BTreeMap<(Ipv4, AttackType), ActiveAlert>,
    volumes: &VolumeStore,
    gated: bool,
) {
    for ((customer, ty), st) in active.iter_mut() {
        if *customer != bin.customer {
            continue;
        }
        if gated && !volume_is_anomalous(volumes, *customer, *ty, bin.minute) {
            continue;
        }
        let sig = ty.signature();
        let mut any = false;
        for f in &bin.flows {
            if sig.matches(f) {
                extractor
                    .prev_attackers
                    .record(*customer, f.src, bin.minute);
                extractor
                    .clustering
                    .record(bin.minute, f.src.subnet24(), *customer);
                any = true;
            }
        }
        if any {
            st.peak_bpm = st
                .peak_bpm
                .max(volumes.bytes_at(*customer, *ty, bin.minute));
        }
    }
}

/// True if the signature volume at `minute` clearly exceeds the trailing
/// baseline (mean over [minute−180, minute−60)) — the corroboration gate
/// for auto-regressive tracker updates.
fn volume_is_anomalous(volumes: &VolumeStore, customer: Ipv4, ty: AttackType, minute: u32) -> bool {
    let now = volumes.bytes_at(customer, ty, minute);
    if now <= 0.0 {
        return false;
    }
    let start = minute.saturating_sub(180);
    let end = minute.saturating_sub(60).max(start);
    if end <= start {
        return true; // not enough history to judge; trust the alert
    }
    let base = volumes.bytes_range(customer, ty, start, end);
    let mean = base.iter().sum::<f64>() / base.len() as f64;
    now > 4.0 * mean + 1e5
}

/// Replays recorded CDet events into an extractor (phase B).
fn replay_cdet_events(
    events: &HashMap<u32, Vec<DetectorEvent>>,
    minute: u32,
    volumes: &VolumeStore,
    extractor: &mut FeatureExtractor,
    active: &mut BTreeMap<(Ipv4, AttackType), ActiveAlert>,
) {
    if let Some(evs) = events.get(&minute) {
        let mut sink = Vec::new();
        for ev in evs {
            handle_alert_event(ev, minute, volumes, extractor, active, &mut sink);
        }
    }
}

/// Trains the per-type survival models. Sequential over types on purpose:
/// [`train_with_obs`] is internally data-parallel over each minibatch, so
/// nesting a per-type fan-out on top would oversubscribe the cores —
/// and the sequential type order keeps the shared registry's epoch-event
/// stream deterministic.
fn train_models(
    bundle: &DatasetBundle,
    cfg: &XatuConfig,
    obs: &mut Registry,
) -> Vec<(AttackType, XatuModel)> {
    bundle
        .trainable_types(cfg.min_positives)
        .into_iter()
        .map(|ty| {
            let samples = bundle.for_type(ty);
            obs.event(
                "train.model",
                vec![
                    ("attack_type", format!("{ty:?}").into()),
                    ("samples", samples.len().into()),
                ],
            );
            let mut model = XatuModel::new(cfg);
            // Samples come from the dataset builder, which constructs them
            // consistent by design; a validation failure is a builder bug.
            train_with_obs(&mut model, &samples, cfg, obs).expect("builder emits valid samples");
            (ty, model)
        })
        .collect()
}

/// RF instance features at window step `t` (0-based): the current minute
/// frame plus the latest medium/long representations — "the same feature
/// set from the same three timescales".
fn rf_sample_features(s: &crate::sample::Sample, t: usize) -> Vec<f64> {
    let mut out: Vec<f64> = s.window[t].iter().map(|&v| v as f64).collect();
    let dim = out.len();
    let med: Vec<f64> = if t >= 10 {
        mean_frames(&s.window[t - 10..t])
    } else {
        s.medium
            .last()
            .map(|f| f.iter().map(|&v| v as f64).collect())
            .unwrap_or_else(|| vec![0.0; dim])
    };
    let long: Vec<f64> = s
        .long
        .last()
        .map(|f| f.iter().map(|&v| v as f64).collect())
        .unwrap_or_else(|| vec![0.0; dim]);
    out.extend(med);
    out.extend(long);
    out
}

fn mean_frames(frames: &[Vec<f32>]) -> Vec<f64> {
    let dim = frames[0].len();
    let mut acc = vec![0.0f64; dim];
    for f in frames {
        for (a, &v) in acc.iter_mut().zip(f) {
            *a += v as f64;
        }
    }
    let inv = 1.0 / frames.len() as f64;
    acc.iter_mut().for_each(|v| *v *= inv);
    acc
}

/// RF online features from a pooled history: latest raw frame + latest
/// medium and long representations, written into a caller-held buffer so
/// the per-customer-minute loops never re-allocate it. The callers invoke
/// it once per customer-minute (outside the per-type loop).
fn rf_online_features_into(h: &PooledHistory, out: &mut Vec<f64>) {
    let dim = xatu_features::frame::NUM_FEATURES;
    out.clear();
    out.reserve(3 * dim);
    match h.latest() {
        Some(f) => out.extend_from_slice(&f.0),
        None => out.resize(dim, 0.0),
    }
    match h.medium_tail(1).pop() {
        Some(med) => out.extend_from_slice(&med),
        None => out.resize(2 * dim, 0.0),
    }
    match h.long_tail(1).pop() {
        Some(long) => out.extend_from_slice(&long),
        None => out.resize(3 * dim, 0.0),
    }
}

/// Trains the per-type RF baselines on instance-expanded samples. Each
/// type's forest grows from its own seeded RNG, so the per-type fan-out is
/// deterministic regardless of thread count.
fn train_rf_models(
    bundle: &DatasetBundle,
    cfg: &XatuConfig,
    threads: usize,
) -> Vec<(AttackType, RandomForest)> {
    let types = bundle.trainable_types(cfg.min_positives);
    par_map(threads, &types, |_, &ty| {
            let samples = bundle.for_type(ty);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for s in &samples {
                if s.label {
                    let onset = s.anomaly_step.unwrap_or(s.event_step).max(1);
                    for t in onset - 1..s.event_step {
                        xs.push(rf_sample_features(s, t));
                        ys.push(true);
                    }
                    // Early-window steps are pre-attack: negatives.
                    if onset > 2 {
                        xs.push(rf_sample_features(s, 0));
                        ys.push(false);
                    }
                } else {
                    xs.push(rf_sample_features(s, s.window.len() - 1));
                    ys.push(false);
                    xs.push(rf_sample_features(s, s.window.len() / 2));
                    ys.push(false);
                }
            }
            let rf = RandomForest::train(
                &xs,
                &ys,
                RfConfig {
                    n_trees: 40,
                    max_depth: 10,
                    seed: cfg.seed,
                    ..RfConfig::default()
                },
            );
            (ty, rf)
    })
}

/// Runs the FastNetMon-style detector over the stored volume series.
/// The detector's cells are keyed by (customer, type) with no cross-
/// customer state, so the per-customer streams fan out across threads;
/// per-customer logs are stitched back in `world.customers()` order.
fn run_fnm(volumes: &VolumeStore, world: &World, total: u32, threads: usize) -> Vec<Alert> {
    let logs = par_map(threads, world.customers(), |_, &customer| {
        let mut fnm = FastNetMon::new();
        let mut log: Vec<Alert> = Vec::new();
        for minute in 0..total {
            for ty in AttackType::ALL {
                let obs = MinuteObservation {
                    minute,
                    customer,
                    attack_type: ty,
                    bytes: volumes.bytes_at(customer, ty, minute),
                    packets: volumes.packets_at(customer, ty, minute),
                };
                for ev in fnm.observe(&obs) {
                    match ev {
                        DetectorEvent::Raised(a) => log.push(a),
                        DetectorEvent::Ended(a) => close_alert(&mut log, &a),
                    }
                }
            }
        }
        log
    });
    logs.into_iter().flatten().collect()
}

/// Table 2 counts from the CDet alert stream.
fn table2_of(alerts: &[Alert], split: &SplitBoundaries) -> Table2 {
    let mut t = Table2::default();
    for a in alerts {
        let col = if a.detected_at < split.train_end {
            0
        } else if a.detected_at < split.val_end {
            1
        } else {
            2
        };
        t.counts[a.attack_type.index()][col] += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_end_to_end() {
        let report = Pipeline::new(PipelineConfig::smoke_test(5)).run();
        assert!(report.system("NetScout").is_some());
        let xatu = report.system("Xatu").expect("xatu evaluated");
        for v in xatu.effectiveness_values() {
            assert!((0.0..=1.0).contains(&v));
        }
        // In a world this tiny (≤4 positives per type) the calibrator may
        // legitimately pick very conservative thresholds; the smoke test
        // validates mechanics, not learning quality.
        for (_, th) in &report.xatu_thresholds {
            assert!((0.0..1.0).contains(th));
        }
        assert!(report.summary().contains("Xatu"));
        if xatu_obs::enabled() {
            assert!(report.obs.counter("simnet.flows_emitted") > 0);
            assert!(report.obs.counter("features.frames_phase_a") > 0);
            assert!(report.obs.counter("features.frames_phase_b") > 0);
            assert_eq!(
                report.obs.counter("online.alerts_raised"),
                report.obs.counter("online.alerts_ended")
            );
            let json = report.telemetry_json();
            assert!(json.contains("\"digest\""));
            assert!(json.contains(&format!("{:016x}", report.obs.digest())));
        }
    }

    #[test]
    fn table2_counts_sum_to_alert_count() {
        let prepared = Pipeline::new(PipelineConfig::smoke_test(6)).prepare();
        let total: usize = prepared.table2.counts.iter().flat_map(|r| r.iter()).sum();
        assert_eq!(total, prepared.cdet_alerts.len());
    }

    #[test]
    fn prepared_supports_multiple_bounds() {
        let prepared = Pipeline::new(PipelineConfig::smoke_test(7)).prepare();
        let a = prepared.evaluate(0.05);
        let b = prepared.evaluate(0.0005);
        // A looser bound admits thresholds at least as aggressive.
        for ((ty_a, th_a), (ty_b, th_b)) in a.xatu_thresholds.iter().zip(&b.xatu_thresholds) {
            assert_eq!(ty_a, ty_b);
            assert!(*th_a >= th_b - 1e-12);
        }
    }
}
