//! Xatu's core: the multi-timescale LSTM survival model, its trainer, the
//! online auto-regressive detector, and the end-to-end pipeline.
//!
//! Module map (mirrors Fig 5 of the paper):
//!
//! * [`config`] — every knob of the system, with paper-scale and
//!   laptop-scale presets.
//! * [`sample`] — the training-sample representation: three context
//!   sequences at 1/10/60-minute granularity plus a detection window, a
//!   label, and the CDet event step.
//! * [`model`] — the multi-timescale LSTM (§4.1): three LSTMs over the
//!   pooled series, a dense combiner, and a softplus hazard head, with full
//!   hand-derived backpropagation (gradient-checked in tests).
//! * [`trainer`] — SAFE-loss training with Adam (§4.2, §5.3) and the binary
//!   cross-entropy ablation (Fig 18(d)).
//! * [`dataset`] — turning a simulated world plus CDet alerts into balanced
//!   train/validation sample sets (§5.3) and Table 2 statistics.
//! * [`online`] — the streaming detector: per-(customer, type) LSTM states,
//!   rolling survival, thresholded alerts, auto-regressive tracker feedback
//!   (§5.3: during testing Xatu's own detections feed A2/A4/A5).
//! * [`pipeline`] — the full experiment: simulate → detect (CDet) → extract
//!   features → train per-type models → calibrate thresholds on validation
//!   → evaluate all systems on the test period.
//! * [`gradients`] — input-gradient attribution (Fig 11: which auxiliary
//!   signal drove a detection, and when).
//! * [`error`] — the typed fault taxonomy ([`XatuError`]): what degraded
//!   input, corrupt checkpoints and I/O failures look like to callers.
//! * [`checkpoint`] — crash-safe checkpoint files (atomic write-then-
//!   rename, checksummed, versioned) for the trainer and online detector.
//! * [`faulted`] — the fault-injected streaming driver: runs the online
//!   detector against a [`xatu_simnet::FaultedWorld`] with graceful
//!   degradation and optional mid-run checkpoint/kill/resume.
//! * [`fleet`] — the fleet-scale variant of the online detector: the same
//!   ladder and checkpoint format, with per-customer state transposed into
//!   flat SoA arenas, cross-customer batched LSTM kernels, and
//!   thread-invariant sharding for 100k+ customers per box.
//! * [`scenarios`] — the adversarial scenario matrix: streams composed
//!   multi-vector / pulse-wave / low-and-slow / carpet-bomb scenarios
//!   through both volumetric CDets, the booster and the fleet detector,
//!   and scores detection rate, median delay and overhead per detector.
//! * [`ae_trainer`] — benign-window training for the unsupervised
//!   reconstruction companion (LSTM autoencoder over volumetric frames),
//!   with the same bit-identical checkpoint/resume as the main trainer.
//! * [`fusion`] — score fusion: benign-quantile error normalization plus
//!   max-combine / learned-logistic blending of the survival score with
//!   the companion's reconstruction score.

pub mod ae_trainer;
pub mod checkpoint;
pub mod config;
pub mod dataset;
pub mod error;
pub mod eval;
pub mod faulted;
pub mod fleet;
pub mod fusion;
pub mod gradients;
pub mod model;
pub mod online;
pub mod pipeline;
pub mod sample;
pub mod scenarios;
pub mod trainer;

pub use config::XatuConfig;
pub use error::XatuError;
pub use fleet::{FleetDetector, FleetInput};
pub use model::XatuModel;
pub use pipeline::{Pipeline, PipelineConfig};
pub use scenarios::{run_scenario, DetectorScore, ScenarioReport, ScenarioRunConfig};
