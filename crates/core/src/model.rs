//! The multi-timescale LSTM hazard model (Fig 6 of the paper).
//!
//! Three LSTMs consume the pooled feature series; a dense layer combines
//! their hidden states; a softplus head emits the instantaneous hazard
//! `λ_t ≥ 0` for every step of the detection window.
//!
//! During the window the short LSTM steps every minute, while the
//! medium/long LSTM states refresh only when a full medium/long pooling
//! bucket of window frames completes (held constant in between) — exactly
//! the streaming behaviour of the deployed system. The backward pass
//! routes each window step's combiner gradient to the short trace position
//! it read and to whichever medium/long trace position was *current* at
//! that step, then runs BPTT through all three LSTMs. Verified against
//! finite differences in the tests.

use crate::config::{TimescaleMode, XatuConfig};
use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use xatu_features::frame::NUM_FEATURES;
use xatu_nn::activations::{dsoftplus, sigmoid, softplus};
use xatu_nn::init::Initializer;
use xatu_nn::lstm::{Lstm, LstmState, LstmTrace};
use xatu_nn::pooling::avg_pool;
use xatu_nn::{Dense, Params};

/// The model: three LSTMs + combiner + hazard head.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XatuModel {
    /// Configuration snapshot (timescales, hidden size, mode).
    pub cfg: ModelConfig,
    lstm_short: Lstm,
    lstm_medium: Lstm,
    lstm_long: Lstm,
    head: Dense,
}

/// The subset of [`XatuConfig`] the model itself needs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// (short, medium, long) pooling granularities in minutes.
    pub timescales: (u32, u32, u32),
    /// Hidden units per LSTM.
    pub hidden: usize,
    /// Which LSTMs are active.
    pub mode: TimescaleMode,
}

impl From<&XatuConfig> for ModelConfig {
    fn from(c: &XatuConfig) -> Self {
        ModelConfig {
            timescales: c.timescales,
            hidden: c.hidden,
            mode: c.timescale_mode,
        }
    }
}

/// Everything the backward pass needs from one forward pass.
pub struct ForwardTrace {
    /// Short LSTM trace over context ++ window (1-minute granularity).
    short: LstmTrace,
    /// Medium LSTM trace over context ++ consumed window buckets.
    medium: LstmTrace,
    /// Long LSTM trace over context ++ consumed window buckets.
    long: LstmTrace,
    /// Lengths of the pure-context prefixes of each trace.
    short_ctx: usize,
    med_ctx: usize,
    long_ctx: usize,
    /// Window length (number of hazard outputs).
    window_len: usize,
    /// Combiner inputs per window step (cached for Dense backward).
    combined_inputs: Vec<Vec<f64>>,
    /// Pre-softplus head outputs (logits).
    pub logits: Vec<f64>,
    /// Softplus hazards.
    pub hazards: Vec<f64>,
}

impl XatuModel {
    /// Builds a model with seeded Xavier weights.
    pub fn new(cfg: &XatuConfig) -> Self {
        let mut init = Initializer::new(cfg.seed);
        let h = cfg.hidden;
        let mut head = Dense::new(3 * h, 1, &mut init);
        // Rare-event output bias: softplus(−4) ≈ 0.018, so an untrained
        // model predicts near-certain survival instead of firing on every
        // quiet minute (which would make threshold calibration impossible
        // before the loss has pushed quiet-period hazards down).
        head.bias_mut()[0] = -4.0;
        XatuModel {
            cfg: ModelConfig::from(cfg),
            lstm_short: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_medium: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_long: Lstm::new(NUM_FEATURES, h, &mut init),
            head,
        }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.cfg.hidden
    }

    /// Runs the model on a sample, producing hazards for each window step.
    pub fn forward(&self, sample: &Sample) -> ForwardTrace {
        let short_ctx_frames = Sample::widen(&sample.short);
        let med_ctx_frames = Sample::widen(&sample.medium);
        let long_ctx_frames = Sample::widen(&sample.long);
        let window_frames = Sample::widen(&sample.window);
        self.forward_frames(
            &short_ctx_frames,
            &med_ctx_frames,
            &long_ctx_frames,
            &window_frames,
        )
    }

    /// Core forward over explicit f64 sequences (also used by attribution).
    pub fn forward_frames(
        &self,
        short_ctx: &[Vec<f64>],
        med_ctx: &[Vec<f64>],
        long_ctx: &[Vec<f64>],
        window: &[Vec<f64>],
    ) -> ForwardTrace {
        let (_, med_gran, long_gran) = self.cfg.timescales;
        let window_len = window.len();

        // Window frames pooled into completed medium/long buckets.
        let med_buckets = completed_buckets(window, med_gran as usize);
        let long_buckets = completed_buckets(window, long_gran as usize);

        // Short trace: context ++ window at native granularity.
        let mut short_seq = short_ctx.to_vec();
        short_seq.extend(window.iter().cloned());
        let short = self.lstm_short.forward(&short_seq);

        let mut med_seq = med_ctx.to_vec();
        med_seq.extend(med_buckets.iter().cloned());
        let medium = self.lstm_medium.forward(&med_seq);

        let mut long_seq = long_ctx.to_vec();
        long_seq.extend(long_buckets.iter().cloned());
        let long = self.lstm_long.forward(&long_seq);

        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        let h = self.cfg.hidden;
        let zero = vec![0.0; h];

        let mut combined_inputs = Vec::with_capacity(window_len);
        let mut logits = Vec::with_capacity(window_len);
        let mut hazards = Vec::with_capacity(window_len);
        for t in 0..window_len {
            let hs = if use_s {
                short_hidden(&short, short_ctx.len(), t)
            } else {
                &zero
            };
            let hm = if use_m {
                coarse_hidden(&medium, med_ctx.len(), t, med_gran as usize)
            } else {
                &zero
            };
            let hl = if use_l {
                coarse_hidden(&long, long_ctx.len(), t, long_gran as usize)
            } else {
                &zero
            };
            let mut input = Vec::with_capacity(3 * h);
            input.extend_from_slice(hs);
            input.extend_from_slice(hm);
            input.extend_from_slice(hl);
            let logit = self.head.forward(&input)[0];
            logits.push(logit);
            hazards.push(softplus(logit));
            combined_inputs.push(input);
        }

        ForwardTrace {
            short,
            medium,
            long,
            short_ctx: short_ctx.len(),
            med_ctx: med_ctx.len(),
            long_ctx: long_ctx.len(),
            window_len,
            combined_inputs,
            logits,
            hazards,
        }
    }

    /// Backward pass from per-step hazard gradients. Set `d_logits_direct`
    /// instead to skip the softplus (used by the cross-entropy ablation).
    /// Accumulates parameter gradients; returns per-input gradients when
    /// `want_dx` (for attribution).
    pub fn backward(
        &mut self,
        trace: &ForwardTrace,
        d_hazards: Option<&[f64]>,
        d_logits_direct: Option<&[f64]>,
        want_dx: bool,
    ) -> Option<InputGradients> {
        let h = self.cfg.hidden;
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        let (_, med_gran, long_gran) = self.cfg.timescales;

        let mut dhs_short = vec![vec![0.0; h]; trace.short.len()];
        let mut dhs_med = vec![vec![0.0; h]; trace.medium.len()];
        let mut dhs_long = vec![vec![0.0; h]; trace.long.len()];

        for t in 0..trace.window_len {
            let dlogit = match (d_hazards, d_logits_direct) {
                (Some(dh), None) => dh[t] * dsoftplus(trace.logits[t]),
                (None, Some(dl)) => dl[t],
                _ => panic!("pass exactly one of d_hazards / d_logits_direct"),
            };
            if dlogit == 0.0 {
                continue;
            }
            let dinput = self.head.backward(&trace.combined_inputs[t], &[dlogit]);
            if use_s {
                if let Some(pos) = short_pos(trace.short_ctx, t, trace.short.len()) {
                    acc(&mut dhs_short[pos], &dinput[0..h]);
                }
            }
            if use_m {
                if let Some(pos) =
                    coarse_pos(trace.med_ctx, t, med_gran as usize, trace.medium.len())
                {
                    acc(&mut dhs_med[pos], &dinput[h..2 * h]);
                }
            }
            if use_l {
                if let Some(pos) =
                    coarse_pos(trace.long_ctx, t, long_gran as usize, trace.long.len())
                {
                    acc(&mut dhs_long[pos], &dinput[2 * h..3 * h]);
                }
            }
        }

        let (dx_short, _) = self.lstm_short.backward(&trace.short, &dhs_short, want_dx);
        let (dx_med, _) = self.lstm_medium.backward(&trace.medium, &dhs_med, want_dx);
        let (dx_long, _) = self.lstm_long.backward(&trace.long, &dhs_long, want_dx);

        if want_dx {
            Some(InputGradients {
                short: dx_short.expect("requested"),
                medium: dx_med.expect("requested"),
                long: dx_long.expect("requested"),
                short_ctx: trace.short_ctx,
                med_ctx: trace.med_ctx,
                long_ctx: trace.long_ctx,
                window_len: trace.window_len,
            })
        } else {
            None
        }
    }

    /// Hazards only (inference convenience).
    pub fn hazards(&self, sample: &Sample) -> Vec<f64> {
        self.forward(sample).hazards
    }

    /// Per-step attack probability under the classification reading
    /// (`p_t = σ(logit_t)`), used by the cross-entropy ablation.
    pub fn step_probabilities(&self, sample: &Sample) -> Vec<f64> {
        self.forward(sample).logits.iter().map(|&l| sigmoid(l)).collect()
    }

    /// Online stepping state for streaming detection.
    pub fn new_online_state(&self) -> OnlineState {
        let h = self.cfg.hidden;
        OnlineState {
            short: LstmState::zeros(h),
            medium: LstmState::zeros(h),
            long: LstmState::zeros(h),
        }
    }

    /// One online step: feed the minute frame to the short LSTM, refresh
    /// the medium/long states when their pooled buckets complete (callers
    /// pass `med_bucket`/`long_bucket` when a bucket just completed), and
    /// return the hazard.
    pub fn step_online(
        &self,
        state: &mut OnlineState,
        minute_frame: &[f64],
        med_bucket: Option<&[f64]>,
        long_bucket: Option<&[f64]>,
    ) -> f64 {
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        if use_s {
            state.short = self.lstm_short.step_online(minute_frame, &state.short);
        }
        if use_m {
            if let Some(b) = med_bucket {
                state.medium = self.lstm_medium.step_online(b, &state.medium);
            }
        }
        if use_l {
            if let Some(b) = long_bucket {
                state.long = self.lstm_long.step_online(b, &state.long);
            }
        }
        let h = self.cfg.hidden;
        let zero = vec![0.0; h];
        let mut input = Vec::with_capacity(3 * h);
        input.extend_from_slice(if use_s { &state.short.h } else { &zero });
        input.extend_from_slice(if use_m { &state.medium.h } else { &zero });
        input.extend_from_slice(if use_l { &state.long.h } else { &zero });
        softplus(self.head.forward(&input)[0])
    }
}

/// Streaming LSTM states for one (customer, type).
#[derive(Clone, Debug)]
pub struct OnlineState {
    /// Short LSTM state.
    pub short: LstmState,
    /// Medium LSTM state.
    pub medium: LstmState,
    /// Long LSTM state.
    pub long: LstmState,
}

/// A pair of staggered LSTM states with bounded context age.
///
/// Training always runs the LSTMs from a zero state over a context of
/// `period` steps; a naive streaming state instead accumulates thousands of
/// steps, drifting away from the training distribution and mis-calibrating
/// the hazard head. The dual state fixes that: both states step on every
/// input, the *aged* one (context length in `[period, 2·period)`) produces
/// the output, and on reaching `2·period` it is replaced by the fresh one
/// (which by then has exactly `period` steps of context) — so the serving
/// context length always matches training.
#[derive(Clone, Debug)]
pub struct DualState {
    aged: LstmState,
    fresh: LstmState,
    aged_age: u32,
    fresh_age: u32,
    period: u32,
}

impl DualState {
    /// Creates a dual state for a given hidden size and reset period.
    pub fn new(hidden: usize, period: u32) -> Self {
        DualState {
            aged: LstmState::zeros(hidden),
            fresh: LstmState::zeros(hidden),
            // Pretend the aged state already has `period` context so the
            // first promotion happens when the fresh one is fully warmed.
            aged_age: period.max(1),
            fresh_age: 0,
            period: period.max(1),
        }
    }

    /// Steps both states and returns the aged hidden state.
    pub fn step(&mut self, lstm: &Lstm, x: &[f64]) -> &[f64] {
        self.aged = lstm.step_online(x, &self.aged);
        self.fresh = lstm.step_online(x, &self.fresh);
        self.aged_age += 1;
        self.fresh_age += 1;
        if self.aged_age >= 2 * self.period {
            std::mem::swap(&mut self.aged, &mut self.fresh);
            self.aged_age = self.fresh_age;
            self.fresh = LstmState::zeros(self.aged.h.len());
            self.fresh_age = 0;
        }
        &self.aged.h
    }

    /// The current output hidden state without stepping.
    pub fn hidden(&self) -> &[f64] {
        &self.aged.h
    }
}

/// Streaming state with bounded-context dual LSTM states, used by the
/// online detector.
#[derive(Clone, Debug)]
pub struct StreamingState {
    /// Short-timescale dual state (steps every minute).
    pub short: DualState,
    /// Medium-timescale dual state (steps on completed medium buckets).
    pub medium: DualState,
    /// Long-timescale dual state (steps on completed long buckets).
    pub long: DualState,
}

impl XatuModel {
    /// Creates a streaming state whose reset periods mirror the training
    /// context lengths.
    pub fn new_streaming_state(&self, short_len: usize, med_len: usize, long_len: usize) -> StreamingState {
        let h = self.cfg.hidden;
        StreamingState {
            short: DualState::new(h, short_len as u32),
            medium: DualState::new(h, med_len as u32),
            long: DualState::new(h, long_len as u32),
        }
    }

    /// One streaming step with bounded-context states; mirrors
    /// [`XatuModel::step_online`] but keeps the serving distribution
    /// aligned with training.
    pub fn step_streaming(
        &self,
        state: &mut StreamingState,
        minute_frame: &[f64],
        med_bucket: Option<&[f64]>,
        long_bucket: Option<&[f64]>,
    ) -> f64 {
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        if use_s {
            state.short.step(&self.lstm_short, minute_frame);
        }
        if use_m {
            if let Some(b) = med_bucket {
                state.medium.step(&self.lstm_medium, b);
            }
        }
        if use_l {
            if let Some(b) = long_bucket {
                state.long.step(&self.lstm_long, b);
            }
        }
        let h = self.cfg.hidden;
        let zero = vec![0.0; h];
        let mut input = Vec::with_capacity(3 * h);
        input.extend_from_slice(if use_s { state.short.hidden() } else { &zero });
        input.extend_from_slice(if use_m { state.medium.hidden() } else { &zero });
        input.extend_from_slice(if use_l { state.long.hidden() } else { &zero });
        softplus(self.head.forward(&input)[0])
    }
}

/// Per-input gradients for attribution, split by sequence.
pub struct InputGradients {
    /// d/d(short sequence) — context ++ window positions.
    pub short: Vec<Vec<f64>>,
    /// d/d(medium sequence).
    pub medium: Vec<Vec<f64>>,
    /// d/d(long sequence).
    pub long: Vec<Vec<f64>>,
    /// Context prefix lengths.
    pub short_ctx: usize,
    /// Medium context prefix length.
    pub med_ctx: usize,
    /// Long context prefix length.
    pub long_ctx: usize,
    /// Window length.
    pub window_len: usize,
}

impl Params for XatuModel {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.lstm_short.visit(f);
        self.lstm_medium.visit(f);
        self.lstm_long.visit(f);
        self.head.visit(f);
    }
}

/// Pools window frames into fully-completed buckets of `gran` minutes.
fn completed_buckets(window: &[Vec<f64>], gran: usize) -> Vec<Vec<f64>> {
    let n_complete = window.len() / gran;
    if n_complete == 0 {
        return Vec::new();
    }
    avg_pool(&window[..n_complete * gran], gran)
}

/// Position in the short trace the head reads at window step `t`;
/// `None` if the trace is empty.
fn short_pos(ctx: usize, t: usize, trace_len: usize) -> Option<usize> {
    let pos = ctx + t;
    (pos < trace_len).then_some(pos)
}

/// The short hidden state at window step `t`.
fn short_hidden(trace: &LstmTrace, ctx: usize, t: usize) -> &[f64] {
    &trace.hs[ctx + t]
}

/// Position in a coarse trace current at window step `t`:
/// `ctx − 1 + floor(t / gran)` buckets consumed; `None` before any state
/// exists (empty context and no bucket yet).
fn coarse_pos(ctx: usize, t: usize, gran: usize, trace_len: usize) -> Option<usize> {
    let consumed = t / gran; // buckets completed strictly before step t+1
    let pos = ctx + consumed;
    if pos == 0 {
        return None;
    }
    Some((pos - 1).min(trace_len.saturating_sub(1)))
}

/// The coarse (medium/long) hidden state current at window step `t`.
fn coarse_hidden(trace: &LstmTrace, ctx: usize, t: usize, gran: usize) -> &[f64] {
    static EMPTY: [f64; 0] = [];
    match coarse_pos(ctx, t, gran, trace.len()) {
        Some(pos) if !trace.is_empty() => &trace.hs[pos],
        _ => {
            // No state yet: the caller's zero vector must be used instead;
            // this branch is unreachable given ctx >= 1 in practice.
            let _ = &EMPTY;
            unreachable!("coarse hidden requested with no context and no buckets")
        }
    }
}

fn acc(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleMeta;
    use xatu_netflow::addr::Ipv4;
    use xatu_netflow::attack::AttackType;
    use xatu_nn::gradcheck::check_params_gradient_sampled;
    use xatu_survival::safe_loss::safe_loss_and_grad;

    /// A tiny config so gradient checks stay fast; feature dim is the real
    /// 273 (the model is hard-wired to Table 1 width).
    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 5,
            medium_len: 4,
            long_len: 3,
            window: 7,
            hidden: 3,
            ..XatuConfig::smoke_test()
        }
    }

    fn sample(c: &XatuConfig, label: bool) -> Sample {
        let frame = |s: usize, t: usize| -> Vec<f32> {
            (0..NUM_FEATURES)
                .map(|k| 0.3 * (((s * 31 + t * 7 + k) % 17) as f32 / 17.0 - 0.5))
                .collect()
        };
        Sample {
            short: (0..c.short_len).map(|t| frame(0, t)).collect(),
            medium: (0..c.medium_len).map(|t| frame(1, t)).collect(),
            long: (0..c.long_len).map(|t| frame(2, t)).collect(),
            window: (0..c.window).map(|t| frame(3, t)).collect(),
            label,
            event_step: if label { 5 } else { 7 },
            anomaly_step: label.then_some(3),
            meta: SampleMeta {
                customer: Ipv4(1),
                attack_type: AttackType::UdpFlood,
                window_start: 0,
            },
        }
    }

    #[test]
    fn forward_emits_one_hazard_per_window_step() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);
        let trace = model.forward(&s);
        assert_eq!(trace.hazards.len(), c.window);
        assert!(trace.hazards.iter().all(|&h| h >= 0.0));
    }

    #[test]
    fn full_model_gradient_check_survival_loss() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let loss_fn = |m: &mut XatuModel| {
            let tr = m.forward(&s);
            safe_loss_and_grad(&tr.hazards, s.label, s.event_step).loss
        };
        let max_rel = check_params_gradient_sampled(
            &mut model,
            loss_fn,
            |m| {
                let tr = m.forward(&s);
                let g = safe_loss_and_grad(&tr.hazards, s.label, s.event_step);
                m.backward(&tr, Some(&g.dl_dhazard), None, false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn full_model_gradient_check_censored_sample() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, false);
        let max_rel = check_params_gradient_sampled(
            &mut model,
            |m| {
                let tr = m.forward(&s);
                safe_loss_and_grad(&tr.hazards, false, s.event_step).loss
            },
            |m| {
                let tr = m.forward(&s);
                let g = safe_loss_and_grad(&tr.hazards, false, s.event_step);
                m.backward(&tr, Some(&g.dl_dhazard), None, false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn gradient_check_each_timescale_mode() {
        for mode in [
            TimescaleMode::ShortOnly,
            TimescaleMode::NoMedium,
            TimescaleMode::NoLong,
            TimescaleMode::NoShort,
        ] {
            let mut c = cfg();
            c.timescale_mode = mode;
            let mut model = XatuModel::new(&c);
            let s = sample(&c, true);
            let max_rel = check_params_gradient_sampled(
                &mut model,
                |m| {
                    let tr = m.forward(&s);
                    safe_loss_and_grad(&tr.hazards, true, s.event_step).loss
                },
                |m| {
                    let tr = m.forward(&s);
                    let g = safe_loss_and_grad(&tr.hazards, true, s.event_step);
                    m.backward(&tr, Some(&g.dl_dhazard), None, false);
                },
                1e-4,
                37,
            );
            assert!(max_rel < 1e-4, "{mode:?}: max relative error {max_rel}");
        }
    }

    #[test]
    fn online_stepping_matches_batch_forward() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);

        // Batch.
        let trace = model.forward(&s);

        // Online: replay context, then the window minute by minute with
        // bucket completions at the pooled granularities.
        let short_ctx = Sample::widen(&s.short);
        let med_ctx = Sample::widen(&s.medium);
        let long_ctx = Sample::widen(&s.long);
        let window = Sample::widen(&s.window);

        let mut st = model.new_online_state();
        for f in &short_ctx {
            st.short = model.lstm_short.step_online(f, &st.short);
        }
        for f in &med_ctx {
            st.medium = model.lstm_medium.step_online(f, &st.medium);
        }
        for f in &long_ctx {
            st.long = model.lstm_long.step_online(f, &st.long);
        }
        let med_gran = c.timescales.1 as usize;
        let long_gran = c.timescales.2 as usize;
        for (t, frame) in window.iter().enumerate() {
            // A bucket completes *before* step t when t % gran == 0, t > 0.
            let med_bucket = (t > 0 && t % med_gran == 0).then(|| {
                avg_pool(&window[t - med_gran..t], med_gran)[0].clone()
            });
            let long_bucket = (t > 0 && t % long_gran == 0).then(|| {
                avg_pool(&window[t - long_gran..t], long_gran)[0].clone()
            });
            let hz = model.step_online(
                &mut st,
                frame,
                med_bucket.as_deref(),
                long_bucket.as_deref(),
            );
            assert!(
                (hz - trace.hazards[t]).abs() < 1e-9,
                "t={t}: online {hz} vs batch {}",
                trace.hazards[t]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let targets: Vec<f64> = (0..c.window)
            .map(|t| if s.label && t + 1 >= s.anomaly_step.unwrap() { 1.0 } else { 0.0 })
            .collect();
        let bce = |logits: &[f64]| -> f64 {
            logits
                .iter()
                .zip(&targets)
                .map(|(&l, &y)| {
                    // Stable BCE-with-logits.
                    l.max(0.0) - l * y + (-l.abs()).exp().ln_1p()
                })
                .sum()
        };
        let max_rel = check_params_gradient_sampled(
            &mut model,
            |m| bce(&m.forward(&s).logits),
            |m| {
                let tr = m.forward(&s);
                let dl: Vec<f64> = tr
                    .logits
                    .iter()
                    .zip(&targets)
                    .map(|(&l, &y)| sigmoid(l) - y)
                    .collect();
                m.backward(&tr, None, Some(&dl), false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);
        let json = serde_json::to_string(&model).unwrap();
        let back: XatuModel = serde_json::from_str(&json).unwrap();
        let a = model.hazards(&s);
        let b = back.hazards(&s);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradients_have_trace_shapes() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let tr = model.forward(&s);
        let g = safe_loss_and_grad(&tr.hazards, true, s.event_step);
        let gx = model
            .backward(&tr, Some(&g.dl_dhazard), None, true)
            .expect("input grads");
        assert_eq!(gx.short.len(), c.short_len + c.window);
        assert_eq!(gx.medium.len(), c.medium_len + c.window / 3);
        assert_eq!(gx.long.len(), c.long_len + c.window / 6);
        // Window steps influence the loss, so late short grads are nonzero.
        let late: f64 = gx.short[c.short_len].iter().map(|v| v.abs()).sum();
        assert!(late > 0.0);
    }
}
