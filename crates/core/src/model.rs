//! The multi-timescale LSTM hazard model (Fig 6 of the paper).
//!
//! Three LSTMs consume the pooled feature series; a dense layer combines
//! their hidden states; a softplus head emits the instantaneous hazard
//! `λ_t ≥ 0` for every step of the detection window.
//!
//! During the window the short LSTM steps every minute, while the
//! medium/long LSTM states refresh only when a full medium/long pooling
//! bucket of window frames completes (held constant in between) — exactly
//! the streaming behaviour of the deployed system. The backward pass
//! routes each window step's combiner gradient to the short trace position
//! it read and to whichever medium/long trace position was *current* at
//! that step, then runs BPTT through all three LSTMs. Verified against
//! finite differences in the tests.
//!
//! # Hot path
//!
//! The training hot path is allocation-free in steady state: a
//! [`ForwardTrace`] owns every per-sequence buffer (LSTM traces, pooled
//! buckets, combiner inputs, logits, hazards) as flat arenas reused across
//! [`XatuModel::forward_wide`] calls, and [`XatuModel::backward_with`]
//! takes a [`ModelWorkspace`] holding the flat upstream-gradient buffers
//! and the per-LSTM BPTT workspaces. The allocating [`XatuModel::forward`]
//! / [`XatuModel::backward`] wrappers remain for evaluation and
//! attribution, and produce bit-identical results.

use crate::config::{TimescaleMode, XatuConfig};
use crate::sample::{Sample, WideSample};
use serde::{Deserialize, Serialize};
use xatu_features::frame::NUM_FEATURES;
use xatu_nn::activations::{dsoftplus, sigmoid, softplus};
use xatu_nn::init::Initializer;
use xatu_nn::lstm::{Lstm, LstmState, LstmTrace, LstmWorkspace};
use xatu_nn::{Dense, FrameArena, Params};

/// The model: three LSTMs + combiner + hazard head.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XatuModel {
    /// Configuration snapshot (timescales, hidden size, mode).
    pub cfg: ModelConfig,
    lstm_short: Lstm,
    lstm_medium: Lstm,
    lstm_long: Lstm,
    head: Dense,
}

/// The subset of [`XatuConfig`] the model itself needs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// (short, medium, long) pooling granularities in minutes.
    pub timescales: (u32, u32, u32),
    /// Hidden units per LSTM.
    pub hidden: usize,
    /// Which LSTMs are active.
    pub mode: TimescaleMode,
}

impl From<&XatuConfig> for ModelConfig {
    fn from(c: &XatuConfig) -> Self {
        ModelConfig {
            timescales: c.timescales,
            hidden: c.hidden,
            mode: c.timescale_mode,
        }
    }
}

/// Everything the backward pass needs from one forward pass, stored as
/// reusable flat buffers. A default-constructed trace grows on first use;
/// passing the same trace to repeated [`XatuModel::forward_wide`] calls
/// performs no heap allocations once warm.
#[derive(Default)]
pub struct ForwardTrace {
    /// Short LSTM trace over context ++ window (1-minute granularity).
    short: LstmTrace,
    /// Medium LSTM trace over context ++ consumed window buckets.
    medium: LstmTrace,
    /// Long LSTM trace over context ++ consumed window buckets.
    long: LstmTrace,
    /// Lengths of the pure-context prefixes of each trace.
    short_ctx: usize,
    med_ctx: usize,
    long_ctx: usize,
    /// Window length (number of hazard outputs).
    window_len: usize,
    /// Completed medium/long pooling buckets of the window.
    med_buckets: FrameArena,
    long_buckets: FrameArena,
    /// Combiner inputs per window step, `window_len × 3h` (cached for the
    /// Dense backward).
    combined: FrameArena,
    /// Pre-softplus head outputs (logits).
    pub logits: Vec<f64>,
    /// Softplus hazards.
    pub hazards: Vec<f64>,
}

/// Reusable scratch for [`XatuModel::backward_with`]: one BPTT workspace
/// per LSTM plus the flat upstream-gradient buffers. One per training
/// worker; steady-state backward passes through a warm workspace allocate
/// nothing.
#[derive(Default)]
pub struct ModelWorkspace {
    short: LstmWorkspace,
    medium: LstmWorkspace,
    long: LstmWorkspace,
    /// ∂Loss/∂h per trace position, flat `t * hidden + k`.
    dhs_short: Vec<f64>,
    dhs_med: Vec<f64>,
    dhs_long: Vec<f64>,
    /// Combiner-input gradient scratch (`3h`).
    dinput: Vec<f64>,
}

impl ModelWorkspace {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clears and re-zeroes `v` to length `n`, keeping its allocation.
fn fit(v: &mut Vec<f64>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}

impl XatuModel {
    /// Builds a model with seeded Xavier weights.
    pub fn new(cfg: &XatuConfig) -> Self {
        let mut init = Initializer::new(cfg.seed);
        let h = cfg.hidden;
        let mut head = Dense::new(3 * h, 1, &mut init);
        // Rare-event output bias: softplus(−4) ≈ 0.018, so an untrained
        // model predicts near-certain survival instead of firing on every
        // quiet minute (which would make threshold calibration impossible
        // before the loss has pushed quiet-period hazards down).
        head.bias_mut()[0] = -4.0;
        XatuModel {
            cfg: ModelConfig::from(cfg),
            lstm_short: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_medium: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_long: Lstm::new(NUM_FEATURES, h, &mut init),
            head,
        }
    }

    /// Builds a model directly from a [`ModelConfig`], with placeholder
    /// weights (seed 0). Used by checkpoint restore, which immediately
    /// overwrites every parameter via `Params::import_params_from`.
    pub fn with_config(cfg: ModelConfig) -> Self {
        let mut init = Initializer::new(0);
        let h = cfg.hidden;
        let mut head = Dense::new(3 * h, 1, &mut init);
        head.bias_mut()[0] = -4.0;
        XatuModel {
            cfg,
            lstm_short: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_medium: Lstm::new(NUM_FEATURES, h, &mut init),
            lstm_long: Lstm::new(NUM_FEATURES, h, &mut init),
            head,
        }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.cfg.hidden
    }

    /// The short-timescale LSTM (crate-internal: fleet batched stepping).
    pub(crate) fn lstm_short(&self) -> &Lstm {
        &self.lstm_short
    }

    /// The medium-timescale LSTM (crate-internal: fleet batched stepping).
    pub(crate) fn lstm_medium(&self) -> &Lstm {
        &self.lstm_medium
    }

    /// The long-timescale LSTM (crate-internal: fleet batched stepping).
    pub(crate) fn lstm_long(&self) -> &Lstm {
        &self.lstm_long
    }

    /// The combiner head (crate-internal: fleet batched stepping).
    pub(crate) fn head(&self) -> &Dense {
        &self.head
    }

    /// Runs the model on a sample, producing hazards for each window step.
    ///
    /// Allocating convenience wrapper: widens the sample and builds a fresh
    /// trace. The training loop uses [`XatuModel::forward_wide`] with a
    /// cached [`WideSample`] and a reused trace instead.
    pub fn forward(&self, sample: &Sample) -> ForwardTrace {
        let wide = WideSample::from_sample(sample);
        let mut trace = ForwardTrace::default();
        self.forward_wide(&wide, &mut trace);
        trace
    }

    /// Core forward over a pre-widened sample into a reusable trace.
    pub fn forward_wide(&self, sample: &WideSample, out: &mut ForwardTrace) {
        self.forward_arenas(
            &sample.short,
            &sample.medium,
            &sample.long,
            &sample.window,
            out,
        );
    }

    /// Core forward over explicit f64 sequences (also used by attribution).
    pub fn forward_frames(
        &self,
        short_ctx: &[Vec<f64>],
        med_ctx: &[Vec<f64>],
        long_ctx: &[Vec<f64>],
        window: &[Vec<f64>],
    ) -> ForwardTrace {
        let dim_of = |v: &[Vec<f64>]| v.first().map_or(0, Vec::len);
        let mut s = FrameArena::new(dim_of(short_ctx));
        let mut m = FrameArena::new(dim_of(med_ctx));
        let mut l = FrameArena::new(dim_of(long_ctx));
        let mut w = FrameArena::new(dim_of(window));
        s.fill_from_rows(dim_of(short_ctx), short_ctx);
        m.fill_from_rows(dim_of(med_ctx), med_ctx);
        l.fill_from_rows(dim_of(long_ctx), long_ctx);
        w.fill_from_rows(dim_of(window), window);
        let mut trace = ForwardTrace::default();
        self.forward_arenas(&s, &m, &l, &w, &mut trace);
        trace
    }

    /// The forward pass proper: pool the window into completed buckets, run
    /// the three LSTMs over context ++ consumed frames, and emit one hazard
    /// per window step from the combiner head. Every output buffer lives in
    /// `out` and is reused with capacity-keeping resets.
    fn forward_arenas(
        &self,
        short_ctx: &FrameArena,
        med_ctx: &FrameArena,
        long_ctx: &FrameArena,
        window: &FrameArena,
        out: &mut ForwardTrace,
    ) {
        let (_, med_gran, long_gran) = self.cfg.timescales;
        let window_len = window.len();

        // Window frames pooled into fully-completed medium/long buckets.
        pool_completed_into(window, med_gran as usize, &mut out.med_buckets);
        pool_completed_into(window, long_gran as usize, &mut out.long_buckets);

        // Short trace: context ++ window at native granularity.
        self.lstm_short.begin(&mut out.short);
        self.lstm_short.extend_arena(short_ctx, &mut out.short);
        self.lstm_short.extend_arena(window, &mut out.short);

        self.lstm_medium.begin(&mut out.medium);
        self.lstm_medium.extend_arena(med_ctx, &mut out.medium);
        self.lstm_medium.extend_arena(&out.med_buckets, &mut out.medium);

        self.lstm_long.begin(&mut out.long);
        self.lstm_long.extend_arena(long_ctx, &mut out.long);
        self.lstm_long.extend_arena(&out.long_buckets, &mut out.long);

        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        let h = self.cfg.hidden;

        out.combined.reset(3 * h);
        out.logits.clear();
        out.hazards.clear();
        let mut logit_buf = [0.0f64; 1];
        for t in 0..window_len {
            // Disabled timescales keep their zeroed third of the input.
            let input = out.combined.push_zeroed();
            if use_s {
                input[0..h].copy_from_slice(short_hidden(&out.short, short_ctx.len(), t));
            }
            if use_m {
                input[h..2 * h].copy_from_slice(coarse_hidden(
                    &out.medium,
                    med_ctx.len(),
                    t,
                    med_gran as usize,
                ));
            }
            if use_l {
                input[2 * h..3 * h].copy_from_slice(coarse_hidden(
                    &out.long,
                    long_ctx.len(),
                    t,
                    long_gran as usize,
                ));
            }
            self.head.forward_into(input, &mut logit_buf);
            let logit = logit_buf[0];
            out.logits.push(logit);
            out.hazards.push(softplus(logit));
        }

        out.short_ctx = short_ctx.len();
        out.med_ctx = med_ctx.len();
        out.long_ctx = long_ctx.len();
        out.window_len = window_len;
    }

    /// Backward pass from per-step hazard gradients. Set `d_logits_direct`
    /// instead to skip the softplus (used by the cross-entropy ablation).
    /// Accumulates parameter gradients; returns per-input gradients when
    /// `want_dx` (for attribution).
    ///
    /// Allocating convenience wrapper over [`XatuModel::backward_with`].
    pub fn backward(
        &mut self,
        trace: &ForwardTrace,
        d_hazards: Option<&[f64]>,
        d_logits_direct: Option<&[f64]>,
        want_dx: bool,
    ) -> Option<InputGradients> {
        let mut ws = ModelWorkspace::default();
        self.backward_with(trace, d_hazards, d_logits_direct, want_dx, &mut ws);
        want_dx.then(|| InputGradients {
            short: ws.short.take_dxs(),
            medium: ws.medium.take_dxs(),
            long: ws.long.take_dxs(),
            short_ctx: trace.short_ctx,
            med_ctx: trace.med_ctx,
            long_ctx: trace.long_ctx,
            window_len: trace.window_len,
        })
    }

    /// The backward pass proper, against caller-held scratch: routes each
    /// window step's combiner gradient to the trace positions it read, then
    /// runs BPTT through all three LSTMs. After the call, `ws` holds the
    /// input-gradient arenas (iff `want_dx`). Allocation-free once `ws` is
    /// warm.
    pub fn backward_with(
        &mut self,
        trace: &ForwardTrace,
        d_hazards: Option<&[f64]>,
        d_logits_direct: Option<&[f64]>,
        want_dx: bool,
        ws: &mut ModelWorkspace,
    ) {
        let h = self.cfg.hidden;
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        let (_, med_gran, long_gran) = self.cfg.timescales;

        fit(&mut ws.dhs_short, trace.short.len() * h);
        fit(&mut ws.dhs_med, trace.medium.len() * h);
        fit(&mut ws.dhs_long, trace.long.len() * h);
        fit(&mut ws.dinput, 3 * h);

        for t in 0..trace.window_len {
            let dlogit = match (d_hazards, d_logits_direct) {
                (Some(dh), None) => dh[t] * dsoftplus(trace.logits[t]),
                (None, Some(dl)) => dl[t],
                _ => panic!("pass exactly one of d_hazards / d_logits_direct"),
            };
            if dlogit == 0.0 {
                continue;
            }
            self.head
                .backward_into(trace.combined.frame(t), &[dlogit], &mut ws.dinput);
            if use_s {
                if let Some(pos) = short_pos(trace.short_ctx, t, trace.short.len()) {
                    acc(
                        &mut ws.dhs_short[pos * h..(pos + 1) * h],
                        &ws.dinput[0..h],
                    );
                }
            }
            if use_m {
                if let Some(pos) =
                    coarse_pos(trace.med_ctx, t, med_gran as usize, trace.medium.len())
                {
                    acc(&mut ws.dhs_med[pos * h..(pos + 1) * h], &ws.dinput[h..2 * h]);
                }
            }
            if use_l {
                if let Some(pos) =
                    coarse_pos(trace.long_ctx, t, long_gran as usize, trace.long.len())
                {
                    acc(
                        &mut ws.dhs_long[pos * h..(pos + 1) * h],
                        &ws.dinput[2 * h..3 * h],
                    );
                }
            }
        }

        self.lstm_short
            .backward_flat(&trace.short, &ws.dhs_short, want_dx, &mut ws.short);
        self.lstm_medium
            .backward_flat(&trace.medium, &ws.dhs_med, want_dx, &mut ws.medium);
        self.lstm_long
            .backward_flat(&trace.long, &ws.dhs_long, want_dx, &mut ws.long);
    }

    /// Hazards only (inference convenience).
    pub fn hazards(&self, sample: &Sample) -> Vec<f64> {
        self.forward(sample).hazards
    }

    /// Per-step attack probability under the classification reading
    /// (`p_t = σ(logit_t)`), used by the cross-entropy ablation.
    pub fn step_probabilities(&self, sample: &Sample) -> Vec<f64> {
        self.forward(sample).logits.iter().map(|&l| sigmoid(l)).collect()
    }

    /// Online stepping state for streaming detection.
    pub fn new_online_state(&self) -> OnlineState {
        let h = self.cfg.hidden;
        OnlineState {
            short: LstmState::zeros(h),
            medium: LstmState::zeros(h),
            long: LstmState::zeros(h),
            z: Vec::new(),
            input: Vec::new(),
        }
    }

    /// One online step: feed the minute frame to the short LSTM, refresh
    /// the medium/long states when their pooled buckets complete (callers
    /// pass `med_bucket`/`long_bucket` when a bucket just completed), and
    /// return the hazard. States update in place against the scratch
    /// buffers held inside `state` — no allocations once warm.
    pub fn step_online(
        &self,
        state: &mut OnlineState,
        minute_frame: &[f64],
        med_bucket: Option<&[f64]>,
        long_bucket: Option<&[f64]>,
    ) -> f64 {
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        if use_s {
            self.lstm_short
                .step_online_into(minute_frame, &mut state.short, &mut state.z);
        }
        if use_m {
            if let Some(b) = med_bucket {
                self.lstm_medium
                    .step_online_into(b, &mut state.medium, &mut state.z);
            }
        }
        if use_l {
            if let Some(b) = long_bucket {
                self.lstm_long
                    .step_online_into(b, &mut state.long, &mut state.z);
            }
        }
        let h = self.cfg.hidden;
        fit(&mut state.input, 3 * h);
        if use_s {
            state.input[0..h].copy_from_slice(&state.short.h);
        }
        if use_m {
            state.input[h..2 * h].copy_from_slice(&state.medium.h);
        }
        if use_l {
            state.input[2 * h..3 * h].copy_from_slice(&state.long.h);
        }
        let mut logit = [0.0f64; 1];
        self.head.forward_into(&state.input, &mut logit);
        softplus(logit[0])
    }
}

/// Streaming LSTM states for one (customer, type), plus private scratch so
/// stepping allocates nothing.
#[derive(Clone, Debug)]
pub struct OnlineState {
    /// Short LSTM state.
    pub short: LstmState,
    /// Medium LSTM state.
    pub medium: LstmState,
    /// Long LSTM state.
    pub long: LstmState,
    /// Pre-activation scratch shared by the three LSTM steps.
    z: Vec<f64>,
    /// Combiner input scratch (`3h`).
    input: Vec<f64>,
}

/// A pair of staggered LSTM states with bounded context age.
///
/// Training always runs the LSTMs from a zero state over a context of
/// `period` steps; a naive streaming state instead accumulates thousands of
/// steps, drifting away from the training distribution and mis-calibrating
/// the hazard head. The dual state fixes that: both states step on every
/// input, the *aged* one (context length in `[period, 2·period)`) produces
/// the output, and on reaching `2·period` it is replaced by the fresh one
/// (which by then has exactly `period` steps of context) — so the serving
/// context length always matches training.
#[derive(Clone, Debug)]
pub struct DualState {
    aged: LstmState,
    fresh: LstmState,
    aged_age: u32,
    fresh_age: u32,
    period: u32,
    /// Pre-activation scratch for the in-place LSTM steps.
    z: Vec<f64>,
}

impl DualState {
    /// Creates a dual state for a given hidden size and reset period.
    pub fn new(hidden: usize, period: u32) -> Self {
        DualState {
            aged: LstmState::zeros(hidden),
            fresh: LstmState::zeros(hidden),
            // Pretend the aged state already has `period` context so the
            // first promotion happens when the fresh one is fully warmed.
            aged_age: period.max(1),
            fresh_age: 0,
            period: period.max(1),
            z: Vec::new(),
        }
    }

    /// Steps both states in place and returns the aged hidden state.
    pub fn step(&mut self, lstm: &Lstm, x: &[f64]) -> &[f64] {
        lstm.step_online_into(x, &mut self.aged, &mut self.z);
        lstm.step_online_into(x, &mut self.fresh, &mut self.z);
        self.aged_age += 1;
        self.fresh_age += 1;
        if self.aged_age >= 2 * self.period {
            std::mem::swap(&mut self.aged, &mut self.fresh);
            self.aged_age = self.fresh_age;
            self.fresh.h.fill(0.0);
            self.fresh.c.fill(0.0);
            self.fresh_age = 0;
        }
        &self.aged.h
    }

    /// The current output hidden state without stepping.
    pub fn hidden(&self) -> &[f64] {
        &self.aged.h
    }

    /// The configured reset period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Current `(aged_age, fresh_age)` context lengths.
    pub fn ages(&self) -> (u32, u32) {
        (self.aged_age, self.fresh_age)
    }

    /// The `(aged, fresh)` LSTM states, for checkpointing.
    pub fn states(&self) -> (&LstmState, &LstmState) {
        (&self.aged, &self.fresh)
    }

    /// Rebuilds a dual state from checkpointed parts. Returns `Err` when
    /// the parts are internally inconsistent (mismatched hidden sizes,
    /// non-finite values, an aged age at or past the swap point — a state
    /// the stepping logic can never be observed in).
    pub fn restore(
        aged: LstmState,
        fresh: LstmState,
        aged_age: u32,
        fresh_age: u32,
        period: u32,
    ) -> Result<Self, &'static str> {
        if period == 0 {
            return Err("dual-state period must be >= 1");
        }
        let h = aged.h.len();
        if aged.c.len() != h || fresh.h.len() != h || fresh.c.len() != h {
            return Err("dual-state hidden sizes disagree");
        }
        if aged_age >= 2 * period || fresh_age > aged_age {
            return Err("dual-state ages out of range");
        }
        let finite = |s: &LstmState| {
            s.h.iter().all(|v| v.is_finite()) && s.c.iter().all(|v| v.is_finite())
        };
        if !finite(&aged) || !finite(&fresh) {
            return Err("non-finite dual-state values");
        }
        Ok(DualState {
            aged,
            fresh,
            aged_age,
            fresh_age,
            period,
            z: Vec::new(),
        })
    }
}

/// Streaming state with bounded-context dual LSTM states, used by the
/// online detector.
#[derive(Clone, Debug)]
pub struct StreamingState {
    /// Short-timescale dual state (steps every minute).
    pub short: DualState,
    /// Medium-timescale dual state (steps on completed medium buckets).
    pub medium: DualState,
    /// Long-timescale dual state (steps on completed long buckets).
    pub long: DualState,
    /// Combiner input scratch (`3h`).
    input: Vec<f64>,
}

impl StreamingState {
    /// Assembles a streaming state from checkpointed dual states (scratch
    /// buffers start empty and grow on the first step).
    pub fn from_parts(short: DualState, medium: DualState, long: DualState) -> Self {
        StreamingState {
            short,
            medium,
            long,
            input: Vec::new(),
        }
    }
}

impl OnlineState {
    /// Assembles an online state from checkpointed LSTM states.
    pub fn from_parts(short: LstmState, medium: LstmState, long: LstmState) -> Self {
        OnlineState {
            short,
            medium,
            long,
            z: Vec::new(),
            input: Vec::new(),
        }
    }
}

impl XatuModel {
    /// Creates a streaming state whose reset periods mirror the training
    /// context lengths.
    pub fn new_streaming_state(&self, short_len: usize, med_len: usize, long_len: usize) -> StreamingState {
        let h = self.cfg.hidden;
        StreamingState {
            short: DualState::new(h, short_len as u32),
            medium: DualState::new(h, med_len as u32),
            long: DualState::new(h, long_len as u32),
            input: Vec::new(),
        }
    }

    /// One streaming step with bounded-context states; mirrors
    /// [`XatuModel::step_online`] but keeps the serving distribution
    /// aligned with training.
    pub fn step_streaming(
        &self,
        state: &mut StreamingState,
        minute_frame: &[f64],
        med_bucket: Option<&[f64]>,
        long_bucket: Option<&[f64]>,
    ) -> f64 {
        let (use_s, use_m, use_l) = self.cfg.mode.enabled();
        if use_s {
            state.short.step(&self.lstm_short, minute_frame);
        }
        if use_m {
            if let Some(b) = med_bucket {
                state.medium.step(&self.lstm_medium, b);
            }
        }
        if use_l {
            if let Some(b) = long_bucket {
                state.long.step(&self.lstm_long, b);
            }
        }
        let h = self.cfg.hidden;
        fit(&mut state.input, 3 * h);
        if use_s {
            state.input[0..h].copy_from_slice(state.short.hidden());
        }
        if use_m {
            state.input[h..2 * h].copy_from_slice(state.medium.hidden());
        }
        if use_l {
            state.input[2 * h..3 * h].copy_from_slice(state.long.hidden());
        }
        let mut logit = [0.0f64; 1];
        self.head.forward_into(&state.input, &mut logit);
        softplus(logit[0])
    }
}

/// Per-input gradients for attribution, split by sequence. Each sequence's
/// gradients are a flat arena, one frame per trace position.
pub struct InputGradients {
    /// d/d(short sequence) — context ++ window positions.
    pub short: FrameArena,
    /// d/d(medium sequence).
    pub medium: FrameArena,
    /// d/d(long sequence).
    pub long: FrameArena,
    /// Context prefix lengths.
    pub short_ctx: usize,
    /// Medium context prefix length.
    pub med_ctx: usize,
    /// Long context prefix length.
    pub long_ctx: usize,
    /// Window length.
    pub window_len: usize,
}

impl Params for XatuModel {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.lstm_short.visit(f);
        self.lstm_medium.visit(f);
        self.lstm_long.visit(f);
        self.head.visit(f);
    }
}

/// Pools window frames into fully-completed buckets of `gran` minutes,
/// reusing `out`. Matches `avg_pool` on the truncated-to-complete prefix
/// bit for bit (same accumulate-then-scale order per bucket).
fn pool_completed_into(window: &FrameArena, gran: usize, out: &mut FrameArena) {
    out.reset(window.dim());
    let n_complete = window.len() / gran;
    if n_complete == 0 {
        return;
    }
    let inv = 1.0 / gran as f64;
    for b in 0..n_complete {
        let bucket = out.push_zeroed();
        for t in b * gran..(b + 1) * gran {
            for (a, v) in bucket.iter_mut().zip(window.frame(t)) {
                *a += v;
            }
        }
        for a in bucket.iter_mut() {
            *a *= inv;
        }
    }
}

/// Position in the short trace the head reads at window step `t`;
/// `None` if the trace is empty.
fn short_pos(ctx: usize, t: usize, trace_len: usize) -> Option<usize> {
    let pos = ctx + t;
    (pos < trace_len).then_some(pos)
}

/// The short hidden state at window step `t`.
fn short_hidden(trace: &LstmTrace, ctx: usize, t: usize) -> &[f64] {
    trace.h(ctx + t)
}

/// Position in a coarse trace current at window step `t`:
/// `ctx − 1 + floor(t / gran)` buckets consumed; `None` before any state
/// exists (empty context and no bucket yet).
fn coarse_pos(ctx: usize, t: usize, gran: usize, trace_len: usize) -> Option<usize> {
    let consumed = t / gran; // buckets completed strictly before step t+1
    let pos = ctx + consumed;
    if pos == 0 {
        return None;
    }
    Some((pos - 1).min(trace_len.saturating_sub(1)))
}

/// The coarse (medium/long) hidden state current at window step `t`.
fn coarse_hidden(trace: &LstmTrace, ctx: usize, t: usize, gran: usize) -> &[f64] {
    match coarse_pos(ctx, t, gran, trace.len()) {
        Some(pos) if !trace.is_empty() => trace.h(pos),
        // No state yet: the caller's zero block must be used instead; this
        // branch is unreachable given ctx >= 1 in practice.
        _ => unreachable!("coarse hidden requested with no context and no buckets"),
    }
}

fn acc(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleMeta;
    use xatu_netflow::addr::Ipv4;
    use xatu_netflow::attack::AttackType;
    use xatu_nn::gradcheck::check_params_gradient_sampled;
    use xatu_nn::pooling::avg_pool;
    use xatu_survival::safe_loss::safe_loss_and_grad;

    /// A tiny config so gradient checks stay fast; feature dim is the real
    /// 273 (the model is hard-wired to Table 1 width).
    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 5,
            medium_len: 4,
            long_len: 3,
            window: 7,
            hidden: 3,
            ..XatuConfig::smoke_test()
        }
    }

    fn sample(c: &XatuConfig, label: bool) -> Sample {
        let frame = |s: usize, t: usize| -> Vec<f32> {
            (0..NUM_FEATURES)
                .map(|k| 0.3 * (((s * 31 + t * 7 + k) % 17) as f32 / 17.0 - 0.5))
                .collect()
        };
        Sample {
            short: (0..c.short_len).map(|t| frame(0, t)).collect(),
            medium: (0..c.medium_len).map(|t| frame(1, t)).collect(),
            long: (0..c.long_len).map(|t| frame(2, t)).collect(),
            window: (0..c.window).map(|t| frame(3, t)).collect(),
            label,
            event_step: if label { 5 } else { 7 },
            anomaly_step: label.then_some(3),
            meta: SampleMeta {
                customer: Ipv4(1),
                attack_type: AttackType::UdpFlood,
                window_start: 0,
            },
        }
    }

    #[test]
    fn forward_emits_one_hazard_per_window_step() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);
        let trace = model.forward(&s);
        assert_eq!(trace.hazards.len(), c.window);
        assert!(trace.hazards.iter().all(|&h| h >= 0.0));
    }

    #[test]
    fn full_model_gradient_check_survival_loss() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let loss_fn = |m: &mut XatuModel| {
            let tr = m.forward(&s);
            safe_loss_and_grad(&tr.hazards, s.label, s.event_step).loss
        };
        let max_rel = check_params_gradient_sampled(
            &mut model,
            loss_fn,
            |m| {
                let tr = m.forward(&s);
                let g = safe_loss_and_grad(&tr.hazards, s.label, s.event_step);
                m.backward(&tr, Some(&g.dl_dhazard), None, false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn full_model_gradient_check_censored_sample() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, false);
        let max_rel = check_params_gradient_sampled(
            &mut model,
            |m| {
                let tr = m.forward(&s);
                safe_loss_and_grad(&tr.hazards, false, s.event_step).loss
            },
            |m| {
                let tr = m.forward(&s);
                let g = safe_loss_and_grad(&tr.hazards, false, s.event_step);
                m.backward(&tr, Some(&g.dl_dhazard), None, false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn gradient_check_each_timescale_mode() {
        for mode in [
            TimescaleMode::ShortOnly,
            TimescaleMode::NoMedium,
            TimescaleMode::NoLong,
            TimescaleMode::NoShort,
        ] {
            let mut c = cfg();
            c.timescale_mode = mode;
            let mut model = XatuModel::new(&c);
            let s = sample(&c, true);
            let max_rel = check_params_gradient_sampled(
                &mut model,
                |m| {
                    let tr = m.forward(&s);
                    safe_loss_and_grad(&tr.hazards, true, s.event_step).loss
                },
                |m| {
                    let tr = m.forward(&s);
                    let g = safe_loss_and_grad(&tr.hazards, true, s.event_step);
                    m.backward(&tr, Some(&g.dl_dhazard), None, false);
                },
                1e-4,
                37,
            );
            assert!(max_rel < 1e-4, "{mode:?}: max relative error {max_rel}");
        }
    }

    #[test]
    fn online_stepping_matches_batch_forward() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);

        // Batch.
        let trace = model.forward(&s);

        // Online: replay context, then the window minute by minute with
        // bucket completions at the pooled granularities.
        let short_ctx = Sample::widen(&s.short);
        let med_ctx = Sample::widen(&s.medium);
        let long_ctx = Sample::widen(&s.long);
        let window = Sample::widen(&s.window);

        let mut st = model.new_online_state();
        let mut z = Vec::new();
        for f in &short_ctx {
            model.lstm_short.step_online_into(f, &mut st.short, &mut z);
        }
        for f in &med_ctx {
            model.lstm_medium.step_online_into(f, &mut st.medium, &mut z);
        }
        for f in &long_ctx {
            model.lstm_long.step_online_into(f, &mut st.long, &mut z);
        }
        let med_gran = c.timescales.1 as usize;
        let long_gran = c.timescales.2 as usize;
        for (t, frame) in window.iter().enumerate() {
            // A bucket completes *before* step t when t % gran == 0, t > 0.
            let med_bucket = (t > 0 && t % med_gran == 0).then(|| {
                avg_pool(&window[t - med_gran..t], med_gran)[0].clone()
            });
            let long_bucket = (t > 0 && t % long_gran == 0).then(|| {
                avg_pool(&window[t - long_gran..t], long_gran)[0].clone()
            });
            let hz = model.step_online(
                &mut st,
                frame,
                med_bucket.as_deref(),
                long_bucket.as_deref(),
            );
            assert!(
                (hz - trace.hazards[t]).abs() < 1e-9,
                "t={t}: online {hz} vs batch {}",
                trace.hazards[t]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let targets: Vec<f64> = (0..c.window)
            .map(|t| if s.label && t + 1 >= s.anomaly_step.unwrap() { 1.0 } else { 0.0 })
            .collect();
        let bce = |logits: &[f64]| -> f64 {
            logits
                .iter()
                .zip(&targets)
                .map(|(&l, &y)| {
                    // Stable BCE-with-logits.
                    l.max(0.0) - l * y + (-l.abs()).exp().ln_1p()
                })
                .sum()
        };
        let max_rel = check_params_gradient_sampled(
            &mut model,
            |m| bce(&m.forward(&s).logits),
            |m| {
                let tr = m.forward(&s);
                let dl: Vec<f64> = tr
                    .logits
                    .iter()
                    .zip(&targets)
                    .map(|(&l, &y)| sigmoid(l) - y)
                    .collect();
                m.backward(&tr, None, Some(&dl), false);
            },
            1e-4,
            37,
        );
        assert!(max_rel < 1e-4, "max relative error {max_rel}");
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let s = sample(&c, true);
        let json = serde_json::to_string(&model).unwrap();
        let back: XatuModel = serde_json::from_str(&json).unwrap();
        let a = model.hazards(&s);
        let b = back.hazards(&s);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradients_have_trace_shapes() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let s = sample(&c, true);
        let tr = model.forward(&s);
        let g = safe_loss_and_grad(&tr.hazards, true, s.event_step);
        let gx = model
            .backward(&tr, Some(&g.dl_dhazard), None, true)
            .expect("input grads");
        assert_eq!(gx.short.len(), c.short_len + c.window);
        assert_eq!(gx.medium.len(), c.medium_len + c.window / 3);
        assert_eq!(gx.long.len(), c.long_len + c.window / 6);
        // Window steps influence the loss, so late short grads are nonzero.
        let late: f64 = gx.short[c.short_len].iter().map(|v| v.abs()).sum();
        assert!(late > 0.0);
    }

    // ------------------------------------------------------------------
    // Equivalence of the arena/workspace hot path with the allocating
    // composition it replaced.
    // ------------------------------------------------------------------

    /// The pre-refactor forward, recomposed from the allocating primitives
    /// (`Sample::widen`, `Vec` concatenation, `avg_pool` bucket pooling,
    /// per-step `Vec` combiner inputs, allocating `Dense::forward`).
    fn reference_forward(m: &XatuModel, s: &Sample) -> (Vec<f64>, Vec<f64>) {
        let short_ctx = Sample::widen(&s.short);
        let med_ctx = Sample::widen(&s.medium);
        let long_ctx = Sample::widen(&s.long);
        let window = Sample::widen(&s.window);
        let (_, med_gran, long_gran) = m.cfg.timescales;

        let buckets = |gran: usize| -> Vec<Vec<f64>> {
            let n_complete = window.len() / gran;
            if n_complete == 0 {
                return Vec::new();
            }
            avg_pool(&window[..n_complete * gran], gran)
        };
        let med_buckets = buckets(med_gran as usize);
        let long_buckets = buckets(long_gran as usize);

        let mut short_seq = short_ctx.clone();
        short_seq.extend(window.iter().cloned());
        let short = m.lstm_short.forward(&short_seq);
        let mut med_seq = med_ctx.clone();
        med_seq.extend(med_buckets.iter().cloned());
        let medium = m.lstm_medium.forward(&med_seq);
        let mut long_seq = long_ctx.clone();
        long_seq.extend(long_buckets.iter().cloned());
        let long = m.lstm_long.forward(&long_seq);

        let (use_s, use_m, use_l) = m.cfg.mode.enabled();
        let h = m.cfg.hidden;
        let zero = vec![0.0; h];
        let mut logits = Vec::new();
        let mut hazards = Vec::new();
        for t in 0..window.len() {
            let hs = if use_s { short_hidden(&short, short_ctx.len(), t) } else { &zero };
            let hm = if use_m {
                coarse_hidden(&medium, med_ctx.len(), t, med_gran as usize)
            } else {
                &zero
            };
            let hl = if use_l {
                coarse_hidden(&long, long_ctx.len(), t, long_gran as usize)
            } else {
                &zero
            };
            let mut input = Vec::with_capacity(3 * h);
            input.extend_from_slice(hs);
            input.extend_from_slice(hm);
            input.extend_from_slice(hl);
            let logit = m.head.forward(&input)[0];
            logits.push(logit);
            hazards.push(softplus(logit));
        }
        (logits, hazards)
    }

    #[test]
    fn forward_matches_allocating_reference_bitwise() {
        for mode in [
            TimescaleMode::All,
            TimescaleMode::ShortOnly,
            TimescaleMode::NoMedium,
            TimescaleMode::NoLong,
            TimescaleMode::NoShort,
        ] {
            let mut c = cfg();
            c.timescale_mode = mode;
            let model = XatuModel::new(&c);
            for label in [true, false] {
                let s = sample(&c, label);
                let trace = model.forward(&s);
                let (ref_logits, ref_hazards) = reference_forward(&model, &s);
                assert_eq!(trace.logits.len(), ref_logits.len());
                for (a, b) in trace.logits.iter().zip(&ref_logits) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}");
                }
                for (a, b) in trace.hazards.iter().zip(&ref_hazards) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn warm_trace_and_workspace_reuse_is_bit_identical() {
        // Run sample A through a trace+workspace, then sample B through the
        // same (now warm, differently-sized) buffers: results and gradients
        // must equal a fresh run of B exactly.
        let c = cfg();
        let mut c_big = c;
        c_big.window = 11;
        c_big.short_len = 9;
        let model = XatuModel::new(&c);
        let sa = sample(&c_big, true);
        let sb = sample(&c, false);

        let mut warm_model = model.clone();
        let mut trace = ForwardTrace::default();
        let mut ws = ModelWorkspace::default();
        for s in [&sa, &sb] {
            let wide = WideSample::from_sample(s);
            warm_model.forward_wide(&wide, &mut trace);
            let g = safe_loss_and_grad(&trace.hazards, s.label, s.event_step);
            warm_model.backward_with(&trace, Some(&g.dl_dhazard), None, true, &mut ws);
        }

        let mut fresh_model = model.clone();
        // Replay A's gradient contribution so accumulated grads match.
        let tr_a = fresh_model.forward(&sa);
        let g_a = safe_loss_and_grad(&tr_a.hazards, sa.label, sa.event_step);
        fresh_model.backward(&tr_a, Some(&g_a.dl_dhazard), None, true);
        let tr_b = fresh_model.forward(&sb);
        let g_b = safe_loss_and_grad(&tr_b.hazards, sb.label, sb.event_step);
        let gx_b = fresh_model
            .backward(&tr_b, Some(&g_b.dl_dhazard), None, true)
            .expect("input grads");

        for (a, b) in trace.hazards.iter().zip(&tr_b.hazards) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let n = warm_model.param_count();
        let (mut gw, mut gf) = (vec![0.0; n], vec![0.0; n]);
        warm_model.export_grads_into(&mut gw);
        fresh_model.export_grads_into(&mut gf);
        for (a, b) in gw.iter().zip(&gf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Input gradients of the warm B pass match the fresh B pass.
        assert_eq!(ws.short.dxs().len(), gx_b.short.len());
        for (a, b) in ws.short.dxs().data().iter().zip(gx_b.short.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in ws.medium.dxs().data().iter().zip(gx_b.medium.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn with_config_plus_param_import_reproduces_a_model() {
        let c = cfg();
        let mut original = XatuModel::new(&c);
        let n = original.param_count();
        let mut params = vec![0.0; n];
        original.export_params_into(&mut params);

        let mut restored = XatuModel::with_config(original.cfg);
        assert_eq!(restored.param_count(), n);
        restored.import_params_from(&params);

        let s = sample(&c, true);
        let a = original.hazards(&s);
        let b = restored.hazards(&s);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dual_state_restore_resumes_bit_identically() {
        let c = cfg();
        let model = XatuModel::new(&c);
        let frame = |t: usize| -> Vec<f64> {
            (0..NUM_FEATURES)
                .map(|k| 0.2 * (((t * 13 + k) % 11) as f64 / 11.0 - 0.5))
                .collect()
        };
        let mut a = DualState::new(c.hidden, 4);
        for t in 0..9 {
            a.step(&model.lstm_short, &frame(t));
        }
        let (aged, fresh) = a.states();
        let (aged_age, fresh_age) = a.ages();
        let mut b =
            DualState::restore(aged.clone(), fresh.clone(), aged_age, fresh_age, a.period())
                .unwrap();
        // Continue past a swap boundary on both copies.
        for t in 9..20 {
            let ha: Vec<f64> = a.step(&model.lstm_short, &frame(t)).to_vec();
            let hb = b.step(&model.lstm_short, &frame(t));
            for (x, y) in ha.iter().zip(hb) {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t}");
            }
        }
    }

    #[test]
    fn dual_state_restore_rejects_inconsistent_parts() {
        let ok = LstmState::zeros(3);
        assert!(DualState::restore(ok.clone(), ok.clone(), 1, 0, 0).is_err());
        assert!(DualState::restore(ok.clone(), LstmState::zeros(4), 1, 0, 4).is_err());
        assert!(DualState::restore(ok.clone(), ok.clone(), 8, 0, 4).is_err());
        assert!(DualState::restore(ok.clone(), ok.clone(), 2, 3, 4).is_err());
        let mut bad = LstmState::zeros(3);
        bad.h[0] = f64::NAN;
        assert!(DualState::restore(bad, ok.clone(), 4, 1, 4).is_err());
        assert!(DualState::restore(ok.clone(), ok, 4, 1, 4).is_ok());
    }

    #[test]
    fn pool_completed_matches_avg_pool_bitwise() {
        let mut window = FrameArena::new(3);
        let rows: Vec<Vec<f64>> = (0..11)
            .map(|t| (0..3).map(|k| ((t * 3 + k) as f64 * 0.31).sin() * 1e3).collect())
            .collect();
        window.fill_from_rows(3, &rows);
        for gran in [1usize, 2, 3, 4, 6, 12] {
            let mut out = FrameArena::new(0);
            pool_completed_into(&window, gran, &mut out);
            let n_complete = rows.len() / gran;
            let want = if n_complete == 0 {
                Vec::new()
            } else {
                avg_pool(&rows[..n_complete * gran], gran)
            };
            assert_eq!(out.len(), want.len(), "gran={gran}");
            for (t, row) in want.iter().enumerate() {
                for (a, b) in out.frame(t).iter().zip(row) {
                    assert_eq!(a.to_bits(), b.to_bits(), "gran={gran}");
                }
            }
        }
    }
}
