//! Training loop: SAFE survival loss (or the cross-entropy ablation) with
//! Adam, deterministic shuffling, gradient clipping and loss logging.
//!
//! Minibatches are data-parallel: each sample's forward/backward runs on a
//! worker replica of the model and writes its gradient into a pooled
//! per-sample buffer; the batch gradient is then reduced sequentially in
//! chunk index order. Every thread count — including 1 — performs the same
//! floating-point operations in the same order, so trained parameters are
//! bit-identical no matter how many workers run.

use crate::checkpoint::{load_trainer, save_trainer, TrainerCheckpoint};
use crate::config::{LossKind, XatuConfig};
use crate::error::XatuError;
use crate::model::{ForwardTrace, ModelWorkspace, XatuModel};
use crate::sample::{Sample, WideSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use xatu_nn::activations::sigmoid;
use xatu_nn::{Adam, GradBufferPool, Params};
use xatu_obs::{alloc_hook, Registry};
use xatu_par::{par_zip_with_workers, resolve_threads};
use xatu_survival::safe_loss::safe_loss_and_grad;

/// Per-epoch training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean loss over the epoch.
    pub mean_loss: f64,
    /// Mean global gradient norm before clipping.
    pub mean_grad_norm: f64,
}

/// Crash-safe checkpointing policy for [`train_resumable`].
#[derive(Clone, Copy, Debug)]
pub struct TrainCheckpointSpec<'a> {
    /// Checkpoint file (written atomically; see [`crate::checkpoint`]).
    pub path: &'a Path,
    /// Save after every this many completed epochs (and at the end).
    pub every_epochs: usize,
    /// Load `path` before training if it exists, resuming where the
    /// checkpoint left off instead of starting over.
    pub resume: bool,
    /// Fault injection: abandon the run after this many epochs *this
    /// invocation*, simulating a crash. Nothing is saved at the kill
    /// point — only the periodic checkpoints survive, exactly as when a
    /// real process dies.
    pub kill_after_epochs: Option<usize>,
}

/// Trains `model` on `samples` in place; returns per-epoch stats.
///
/// Shuffling is seeded from `cfg.seed` so training is fully reproducible.
/// Fails on an internally inconsistent sample ([`XatuError::InvalidSample`]).
pub fn train(
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
) -> Result<Vec<EpochStats>, XatuError> {
    let mut obs = Registry::new();
    train_with_obs(model, samples, cfg, &mut obs)
}

/// [`train_with_obs`] with crash-safe checkpoint/resume.
///
/// With `spec.resume` set and a checkpoint on disk, training fast-forwards
/// to the checkpointed epoch — parameters and Adam moments are restored
/// exactly, and the shuffle RNG is replayed through the completed epochs'
/// permutations — so the final model is bit-identical to an uninterrupted
/// run, at every thread count. A checkpoint from a different run (other
/// seed, loss, learning rate, batch size, sample count, epoch budget or
/// model shape) is rejected with [`XatuError::CheckpointMismatch`] instead
/// of silently producing a chimera.
pub fn train_resumable(
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
    obs: &mut Registry,
    spec: &TrainCheckpointSpec<'_>,
) -> Result<Vec<EpochStats>, XatuError> {
    train_inner(model, samples, cfg, obs, Some(spec))
}

/// [`train`], recording telemetry into `obs`.
///
/// Per-epoch loss and gradient norm are emitted as `train.epoch` events:
/// both are bit-identical across thread counts (fixed-order gradient
/// reduction), so they belong in the deterministic digest. Epoch wall time
/// goes into the wall section and per-epoch allocation deltas (read from
/// [`alloc_hook`], fed by a counting allocator when one is installed) into
/// the volatile section — both digest-exempt.
pub fn train_with_obs(
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
    obs: &mut Registry,
) -> Result<Vec<EpochStats>, XatuError> {
    train_inner(model, samples, cfg, obs, None)
}

fn train_inner(
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
    obs: &mut Registry,
    ckpt: Option<&TrainCheckpointSpec<'_>>,
) -> Result<Vec<EpochStats>, XatuError> {
    if samples.is_empty() {
        return Ok(Vec::new());
    }
    for (index, s) in samples.iter().enumerate() {
        s.validate()
            .map_err(|reason| XatuError::InvalidSample { index, reason })?;
    }
    let threads = resolve_threads(cfg.threads);
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x7EA1));
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);

    // Resume: restore parameters and optimizer state exactly, then replay
    // the completed epochs' Fisher-Yates permutations so both the RNG and
    // the `order` vector (which persists across epochs) reach the precise
    // state the checkpointed run had — resumed training is bit-identical
    // to never having stopped.
    let mut start_epoch = 0usize;
    if let Some(spec) = ckpt {
        if spec.resume && spec.path.exists() {
            let ck = load_trainer(spec.path)?;
            check_resume_identity(&ck, model, samples, cfg, spec.path)?;
            model.import_params_from(&ck.params);
            adam.restore_moments(ck.adam_t, ck.adam_m.clone(), ck.adam_v.clone())
                .map_err(|e| XatuError::corrupt(spec.path, e))?;
            for _ in 0..ck.epochs_done {
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
            }
            start_epoch = ck.epochs_done as usize;
        }
    }

    // Every sample is widened f32→f64 exactly once, up front; the epoch
    // loop then runs entirely on the flat arenas.
    let wide: Vec<WideSample> = samples.iter().map(WideSample::from_sample).collect();

    // Data-parallel scaffolding, reused across batches and epochs: one
    // pooled flat gradient buffer per sample slot, worker replicas (model +
    // trace + BPTT workspace, grown lazily, params re-synced from `model`
    // each batch), a scratch vector for the parameter snapshot, and the
    // sequential path's own persistent trace/workspace. Steady-state
    // forward+backward through these buffers allocates nothing.
    let param_count = model.param_count();
    let mut pool = GradBufferPool::new(param_count);
    let mut workers: Vec<TrainWorker> = Vec::new();
    let mut param_snapshot = vec![0.0; param_count];
    let mut chunk_items: Vec<(&Sample, &WideSample)> = Vec::new();
    let mut seq_trace = ForwardTrace::default();
    let mut seq_ws = ModelWorkspace::default();
    let mut seq_dlogits: Vec<f64> = Vec::new();

    obs.add("train.samples", samples.len() as u64);
    obs.add("train.epochs", (cfg.epochs - start_epoch) as u64);
    for epoch in start_epoch..cfg.epochs {
        let epoch_start = xatu_obs::enabled().then(std::time::Instant::now);
        let allocs_before = alloc_hook::allocs();
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut epoch_loss = 0.0;
        let mut epoch_norm = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let slots = pool.take(chunk.len());
            let n_workers = threads.min(chunk.len());
            if n_workers <= 1 {
                // Same canonical computation as the parallel path — each
                // sample's gradient from a zeroed model into its own
                // buffer — just without the replica sync.
                for (slot, &i) in slots.iter_mut().zip(chunk) {
                    model.zero_grads();
                    slot.1 = accumulate_sample(
                        model,
                        &samples[i],
                        &wide[i],
                        cfg.loss,
                        &mut seq_trace,
                        &mut seq_ws,
                        &mut seq_dlogits,
                    );
                    model.export_grads_into(&mut slot.0);
                }
            } else {
                while workers.len() < n_workers {
                    workers.push(TrainWorker::new(model.clone()));
                }
                model.export_params_into(&mut param_snapshot);
                for w in &mut workers[..n_workers] {
                    w.model.import_params_from(&param_snapshot);
                }
                chunk_items.clear();
                chunk_items.extend(chunk.iter().map(|&i| (&samples[i], &wide[i])));
                let loss_kind = cfg.loss;
                par_zip_with_workers(
                    &mut workers[..n_workers],
                    &chunk_items,
                    &mut slots[..],
                    |w, _idx, (s, ws), slot| {
                        w.model.zero_grads();
                        slot.1 = accumulate_sample(
                            &mut w.model,
                            s,
                            ws,
                            loss_kind,
                            &mut w.trace,
                            &mut w.ws,
                            &mut w.d_logits,
                        );
                        w.model.export_grads_into(&mut slot.0);
                    },
                );
            }
            // Fixed-order reduction: the batch gradient is summed in chunk
            // index order regardless of which worker filled which buffer.
            model.zero_grads();
            let mut batch_loss = 0.0;
            for (buf, sample_loss) in slots.iter() {
                model.accumulate_grads_from(buf);
                batch_loss += *sample_loss;
            }
            model.scale_grads(1.0 / chunk.len() as f64);
            epoch_norm += model.grad_norm();
            model.clip_grad_norm(cfg.grad_clip);
            adam.step(model);
            epoch_loss += batch_loss / chunk.len() as f64;
            batches += 1;
        }
        let st = EpochStats {
            epoch,
            mean_loss: epoch_loss / batches as f64,
            mean_grad_norm: epoch_norm / batches as f64,
        };
        obs.add("train.batches", batches as u64);
        obs.event(
            "train.epoch",
            vec![
                ("epoch", epoch.into()),
                ("loss", st.mean_loss.into()),
                ("grad_norm", st.mean_grad_norm.into()),
            ],
        );
        if let Some(t0) = epoch_start {
            obs.record_wall("train.epoch_seconds", t0.elapsed().as_secs_f64());
        }
        obs.add_volatile(
            "train.epoch_allocs",
            alloc_hook::allocs().saturating_sub(allocs_before),
        );
        stats.push(st);

        if let Some(spec) = ckpt {
            let done = epoch + 1;
            if done % spec.every_epochs.max(1) == 0 || done == cfg.epochs {
                save_trainer(spec.path, &snapshot(model, &adam, samples, cfg, done))?;
            }
            if spec.kill_after_epochs == Some(done - start_epoch) && done < cfg.epochs {
                // Simulated crash: return what ran, save nothing further.
                return Ok(stats);
            }
        }
    }
    Ok(stats)
}

/// Builds the checkpoint record for the current training state.
fn snapshot(
    model: &mut XatuModel,
    adam: &Adam,
    samples: &[Sample],
    cfg: &XatuConfig,
    epochs_done: usize,
) -> TrainerCheckpoint {
    let mut params = vec![0.0; model.param_count()];
    model.export_params_into(&mut params);
    let (adam_t, m, v) = adam.moments();
    TrainerCheckpoint {
        seed: cfg.seed,
        lr_bits: cfg.lr.to_bits(),
        batch_size: cfg.batch_size as u64,
        loss: cfg.loss,
        sample_count: samples.len() as u64,
        epochs_total: cfg.epochs as u64,
        epochs_done: epochs_done as u64,
        params,
        adam_t,
        adam_m: m.to_vec(),
        adam_v: v.to_vec(),
    }
}

/// Rejects a checkpoint that does not describe *this* run.
fn check_resume_identity(
    ck: &TrainerCheckpoint,
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
    path: &Path,
) -> Result<(), XatuError> {
    let mismatch = |reason: String| XatuError::CheckpointMismatch {
        path: path.display().to_string(),
        reason,
    };
    if ck.seed != cfg.seed {
        return Err(mismatch(format!("seed {} != {}", ck.seed, cfg.seed)));
    }
    if ck.lr_bits != cfg.lr.to_bits() {
        return Err(mismatch(format!(
            "learning rate {} != {}",
            f64::from_bits(ck.lr_bits),
            cfg.lr
        )));
    }
    if ck.batch_size != cfg.batch_size as u64 {
        return Err(mismatch(format!(
            "batch size {} != {}",
            ck.batch_size, cfg.batch_size
        )));
    }
    if ck.loss != cfg.loss {
        return Err(mismatch(format!("loss {:?} != {:?}", ck.loss, cfg.loss)));
    }
    if ck.sample_count != samples.len() as u64 {
        return Err(mismatch(format!(
            "sample count {} != {}",
            ck.sample_count,
            samples.len()
        )));
    }
    if ck.epochs_total != cfg.epochs as u64 {
        return Err(mismatch(format!(
            "epoch budget {} != {}",
            ck.epochs_total, cfg.epochs
        )));
    }
    if ck.params.len() != model.param_count() {
        return Err(mismatch(format!(
            "parameter count {} != {}",
            ck.params.len(),
            model.param_count()
        )));
    }
    Ok(())
}

/// One worker replica of the training state: a model copy plus the trace
/// and BPTT workspace it reuses across samples, batches and epochs.
struct TrainWorker {
    model: XatuModel,
    trace: ForwardTrace,
    ws: ModelWorkspace,
    d_logits: Vec<f64>,
}

impl TrainWorker {
    fn new(model: XatuModel) -> Self {
        TrainWorker {
            model,
            trace: ForwardTrace::default(),
            ws: ModelWorkspace::default(),
            d_logits: Vec::new(),
        }
    }
}

/// Forward + backward for one sample through caller-held buffers; returns
/// its loss. Gradients accumulate into the model's buffers.
fn accumulate_sample(
    model: &mut XatuModel,
    sample: &Sample,
    wide: &WideSample,
    loss: LossKind,
    trace: &mut ForwardTrace,
    ws: &mut ModelWorkspace,
    d_logits: &mut Vec<f64>,
) -> f64 {
    model.forward_wide(wide, trace);
    match loss {
        LossKind::Survival => {
            let g = safe_loss_and_grad(&trace.hazards, sample.label, sample.event_step);
            model.backward_with(trace, Some(&g.dl_dhazard), None, false, ws);
            g.loss
        }
        LossKind::CrossEntropy => {
            // Per-step targets: attack from the anomaly step (or the CDet
            // event step when the onset is unknown) onward.
            let onset = sample.anomaly_step.unwrap_or(sample.event_step);
            let mut loss_val = 0.0;
            d_logits.clear();
            d_logits.extend(trace.logits.iter().enumerate().map(|(t, &l)| {
                let y = if sample.label && t + 1 >= onset { 1.0 } else { 0.0 };
                // Stable BCE-with-logits.
                loss_val += l.max(0.0) - l * y + (-l.abs()).exp().ln_1p();
                sigmoid(l) - y
            }));
            model.backward_with(trace, None, Some(d_logits), false, ws);
            loss_val / trace.logits.len().max(1) as f64
        }
    }
}

/// The detection *score* of a sample trajectory under each loss kind:
/// lower = more attack-like, so one thresholding rule ("alert when
/// score < threshold") serves both. Survival mode returns `S_t`
/// trajectories; cross-entropy mode returns `1 − p_t`.
pub fn score_trajectory(model: &XatuModel, sample: &Sample, loss: LossKind) -> Vec<f64> {
    match loss {
        LossKind::Survival => xatu_survival::hazard::survival_curve(&model.hazards(sample)),
        LossKind::CrossEntropy => model
            .step_probabilities(sample)
            .iter()
            .map(|p| 1.0 - p)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleMeta;
    use xatu_features::frame::NUM_FEATURES;
    use xatu_netflow::addr::Ipv4;
    use xatu_netflow::attack::AttackType;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            epochs: 30,
            batch_size: 4,
            lr: 2e-2,
            ..XatuConfig::smoke_test()
        }
    }

    /// Synthetic dataset where attacks have a clear feature signature:
    /// feature 0 ramps up inside the window for positives.
    fn dataset(c: &XatuConfig, n: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for i in 0..n {
            let label = i % 2 == 0;
            let frame = |v: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[0] = v;
                f[1] = 0.1;
                f
            };
            let window: Vec<Vec<f32>> = (0..c.window)
                .map(|t| {
                    if label && t >= 2 {
                        frame(1.0 + t as f32 * 0.5)
                    } else {
                        frame(0.05 * ((i + t) % 3) as f32)
                    }
                })
                .collect();
            out.push(Sample {
                short: vec![frame(0.02); c.short_len],
                medium: vec![frame(0.02); c.medium_len],
                long: vec![frame(0.02); c.long_len],
                window,
                label,
                event_step: if label { c.window - 1 } else { c.window },
                anomaly_step: label.then_some(3),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            });
        }
        out
    }

    #[test]
    fn loss_decreases_over_training() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 12);
        let stats = train(&mut model, &samples, &c).unwrap();
        assert_eq!(stats.len(), c.epochs);
        let first = stats[0].mean_loss;
        let last = stats.last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn trained_model_separates_classes() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 16);
        train(&mut model, &samples, &c).unwrap();
        // Survival at the event step: low for attacks, high for quiet.
        let mut atk = Vec::new();
        let mut quiet = Vec::new();
        for s in &samples {
            let traj = score_trajectory(&model, s, LossKind::Survival);
            let v = traj[s.event_step - 1];
            if s.label {
                atk.push(v);
            } else {
                quiet.push(v);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&atk) < mean(&quiet) - 0.2,
            "attack {} vs quiet {}",
            mean(&atk),
            mean(&quiet)
        );
    }

    #[test]
    fn cross_entropy_mode_also_learns() {
        let mut c = cfg();
        c.loss = LossKind::CrossEntropy;
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 12);
        let stats = train(&mut model, &samples, &c).unwrap();
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        // Scores: lower for attacks.
        let s_atk = score_trajectory(&model, &samples[0], c.loss);
        let s_quiet = score_trajectory(&model, &samples[1], c.loss);
        assert!(s_atk[c.window - 1] < s_quiet[c.window - 1]);
    }

    #[test]
    fn training_is_deterministic() {
        let c = cfg();
        let samples = dataset(&c, 8);
        let mut m1 = XatuModel::new(&c);
        let mut m2 = XatuModel::new(&c);
        let s1 = train(&mut m1, &samples, &c).unwrap();
        let s2 = train(&mut m2, &samples, &c).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.mean_loss, b.mean_loss);
        }
        assert_eq!(m1.hazards(&samples[0]), m2.hazards(&samples[0]));
    }

    #[test]
    fn training_telemetry_is_deterministic_and_matches_stats() {
        let c = cfg();
        let samples = dataset(&c, 8);
        let mut m1 = XatuModel::new(&c);
        let mut m2 = XatuModel::new(&c);
        let mut o1 = Registry::new();
        let mut o2 = Registry::new();
        let stats = train_with_obs(&mut m1, &samples, &c, &mut o1).unwrap();
        train_with_obs(&mut m2, &samples, &c, &mut o2).unwrap();
        let s1 = o1.snapshot();
        assert_eq!(s1.digest(), o2.snapshot().digest());
        if xatu_obs::enabled() {
            assert_eq!(s1.counter("train.epochs"), c.epochs as u64);
            assert_eq!(s1.counter("train.samples"), samples.len() as u64);
            let events = s1.events_of("train.epoch");
            assert_eq!(events.len(), c.epochs);
            // The recorded loss is the exact value returned to the caller.
            let last = events.last().unwrap();
            let loss_field = last
                .fields
                .iter()
                .find(|(n, _)| *n == "loss")
                .map(|(_, v)| v.to_string())
                .unwrap();
            assert_eq!(
                loss_field,
                format!("{:?}", stats.last().unwrap().mean_loss)
            );
        }
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        assert!(train(&mut model, &[], &c).unwrap().is_empty());
    }

    #[test]
    fn gradients_are_finite_throughout() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 8);
        let stats = train(&mut model, &samples, &c).unwrap();
        for st in &stats {
            assert!(st.mean_loss.is_finite());
            assert!(st.mean_grad_norm.is_finite());
        }
    }

    #[test]
    fn invalid_sample_is_a_typed_error() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let mut samples = dataset(&c, 4);
        samples[2].event_step = 99;
        match train(&mut model, &samples, &c) {
            Err(crate::error::XatuError::InvalidSample { index: 2, reason }) => {
                assert!(reason.contains("event_step"), "{reason}");
            }
            other => panic!("expected InvalidSample, got {other:?}"),
        }
    }

    fn ck_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xatu_train_ck_{}_{name}", std::process::id()));
        p
    }

    fn params_of(m: &mut XatuModel) -> Vec<u64> {
        let mut p = vec![0.0; m.param_count()];
        m.export_params_into(&mut p);
        p.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn killed_training_resumes_bit_identically() {
        let c = cfg();
        let samples = dataset(&c, 12);
        let path = ck_path("kill_resume");
        let _ = std::fs::remove_file(&path);

        // The reference: one uninterrupted run.
        let mut reference = XatuModel::new(&c);
        let ref_stats = train(&mut reference, &samples, &c).unwrap();

        // The victim: checkpoints every 7 epochs, "crashes" after 13 —
        // so the newest surviving checkpoint is from epoch 7.
        let mut victim = XatuModel::new(&c);
        let killed = train_resumable(
            &mut victim,
            &samples,
            &c,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 7,
                resume: false,
                kill_after_epochs: Some(13),
            },
        )
        .unwrap();
        assert_eq!(killed.len(), 13, "kill point ignored");

        // The survivor: a fresh process resuming from disk.
        let mut survivor = XatuModel::new(&c);
        let resumed = train_resumable(
            &mut survivor,
            &samples,
            &c,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 7,
                resume: true,
                kill_after_epochs: None,
            },
        )
        .unwrap();
        assert_eq!(resumed.len(), c.epochs - 7, "did not resume from epoch 7");
        assert_eq!(resumed[0].epoch, 7);
        // Per-epoch losses of the resumed tail match the reference run
        // exactly, and so do the final parameters.
        for (a, b) in resumed.iter().zip(&ref_stats[7..]) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.mean_grad_norm.to_bits(), b.mean_grad_norm.to_bits());
        }
        assert_eq!(params_of(&mut survivor), params_of(&mut reference));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_across_thread_counts_is_bit_identical() {
        let mut c1 = cfg();
        c1.threads = 1;
        let mut c4 = cfg();
        c4.threads = 4;
        let samples = dataset(&c1, 12);
        let path = ck_path("threads");
        let _ = std::fs::remove_file(&path);

        // Reference at 1 thread, uninterrupted.
        let mut reference = XatuModel::new(&c1);
        train(&mut reference, &samples, &c1).unwrap();

        // Crash at 4 threads, resume at 1: the result must still match.
        let mut m = XatuModel::new(&c4);
        train_resumable(
            &mut m,
            &samples,
            &c4,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 5,
                resume: false,
                kill_after_epochs: Some(11),
            },
        )
        .unwrap();
        let mut survivor = XatuModel::new(&c1);
        train_resumable(
            &mut survivor,
            &samples,
            &c1,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 5,
                resume: true,
                kill_after_epochs: None,
            },
        )
        .unwrap();
        assert_eq!(params_of(&mut survivor), params_of(&mut reference));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let c = cfg();
        let samples = dataset(&c, 8);
        let path = ck_path("foreign");
        let _ = std::fs::remove_file(&path);
        let mut m = XatuModel::new(&c);
        train_resumable(
            &mut m,
            &samples,
            &c,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 10,
                resume: false,
                kill_after_epochs: Some(10),
            },
        )
        .unwrap();
        let mut other = cfg();
        other.seed = c.seed.wrapping_add(1);
        let mut m2 = XatuModel::new(&other);
        match train_resumable(
            &mut m2,
            &samples,
            &other,
            &mut Registry::new(),
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 10,
                resume: true,
                kill_after_epochs: None,
            },
        ) {
            Err(crate::error::XatuError::CheckpointMismatch { reason, .. }) => {
                assert!(reason.contains("seed"), "{reason}");
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
