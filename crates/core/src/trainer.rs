//! Training loop: SAFE survival loss (or the cross-entropy ablation) with
//! Adam, deterministic shuffling, gradient clipping and loss logging.
//!
//! Minibatches are data-parallel: each sample's forward/backward runs on a
//! worker replica of the model and writes its gradient into a pooled
//! per-sample buffer; the batch gradient is then reduced sequentially in
//! chunk index order. Every thread count — including 1 — performs the same
//! floating-point operations in the same order, so trained parameters are
//! bit-identical no matter how many workers run.

use crate::config::{LossKind, XatuConfig};
use crate::model::{ForwardTrace, ModelWorkspace, XatuModel};
use crate::sample::{Sample, WideSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xatu_nn::activations::sigmoid;
use xatu_nn::{Adam, GradBufferPool, Params};
use xatu_obs::{alloc_hook, Registry};
use xatu_par::{par_zip_with_workers, resolve_threads};
use xatu_survival::safe_loss::safe_loss_and_grad;

/// Per-epoch training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean loss over the epoch.
    pub mean_loss: f64,
    /// Mean global gradient norm before clipping.
    pub mean_grad_norm: f64,
}

/// Trains `model` on `samples` in place; returns per-epoch stats.
///
/// Shuffling is seeded from `cfg.seed` so training is fully reproducible.
pub fn train(model: &mut XatuModel, samples: &[Sample], cfg: &XatuConfig) -> Vec<EpochStats> {
    let mut obs = Registry::new();
    train_with_obs(model, samples, cfg, &mut obs)
}

/// [`train`], recording telemetry into `obs`.
///
/// Per-epoch loss and gradient norm are emitted as `train.epoch` events:
/// both are bit-identical across thread counts (fixed-order gradient
/// reduction), so they belong in the deterministic digest. Epoch wall time
/// goes into the wall section and per-epoch allocation deltas (read from
/// [`alloc_hook`], fed by a counting allocator when one is installed) into
/// the volatile section — both digest-exempt.
pub fn train_with_obs(
    model: &mut XatuModel,
    samples: &[Sample],
    cfg: &XatuConfig,
    obs: &mut Registry,
) -> Vec<EpochStats> {
    if samples.is_empty() {
        return Vec::new();
    }
    for s in samples {
        s.validate();
    }
    let threads = resolve_threads(cfg.threads);
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x7EA1));
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);

    // Every sample is widened f32→f64 exactly once, up front; the epoch
    // loop then runs entirely on the flat arenas.
    let wide: Vec<WideSample> = samples.iter().map(WideSample::from_sample).collect();

    // Data-parallel scaffolding, reused across batches and epochs: one
    // pooled flat gradient buffer per sample slot, worker replicas (model +
    // trace + BPTT workspace, grown lazily, params re-synced from `model`
    // each batch), a scratch vector for the parameter snapshot, and the
    // sequential path's own persistent trace/workspace. Steady-state
    // forward+backward through these buffers allocates nothing.
    let param_count = model.param_count();
    let mut pool = GradBufferPool::new(param_count);
    let mut workers: Vec<TrainWorker> = Vec::new();
    let mut param_snapshot = vec![0.0; param_count];
    let mut chunk_items: Vec<(&Sample, &WideSample)> = Vec::new();
    let mut seq_trace = ForwardTrace::default();
    let mut seq_ws = ModelWorkspace::default();
    let mut seq_dlogits: Vec<f64> = Vec::new();

    obs.add("train.samples", samples.len() as u64);
    obs.add("train.epochs", cfg.epochs as u64);
    for epoch in 0..cfg.epochs {
        let epoch_start = xatu_obs::enabled().then(std::time::Instant::now);
        let allocs_before = alloc_hook::allocs();
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut epoch_loss = 0.0;
        let mut epoch_norm = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let slots = pool.take(chunk.len());
            let n_workers = threads.min(chunk.len());
            if n_workers <= 1 {
                // Same canonical computation as the parallel path — each
                // sample's gradient from a zeroed model into its own
                // buffer — just without the replica sync.
                for (slot, &i) in slots.iter_mut().zip(chunk) {
                    model.zero_grads();
                    slot.1 = accumulate_sample(
                        model,
                        &samples[i],
                        &wide[i],
                        cfg.loss,
                        &mut seq_trace,
                        &mut seq_ws,
                        &mut seq_dlogits,
                    );
                    model.export_grads_into(&mut slot.0);
                }
            } else {
                while workers.len() < n_workers {
                    workers.push(TrainWorker::new(model.clone()));
                }
                model.export_params_into(&mut param_snapshot);
                for w in &mut workers[..n_workers] {
                    w.model.import_params_from(&param_snapshot);
                }
                chunk_items.clear();
                chunk_items.extend(chunk.iter().map(|&i| (&samples[i], &wide[i])));
                let loss_kind = cfg.loss;
                par_zip_with_workers(
                    &mut workers[..n_workers],
                    &chunk_items,
                    &mut slots[..],
                    |w, _idx, (s, ws), slot| {
                        w.model.zero_grads();
                        slot.1 = accumulate_sample(
                            &mut w.model,
                            s,
                            ws,
                            loss_kind,
                            &mut w.trace,
                            &mut w.ws,
                            &mut w.d_logits,
                        );
                        w.model.export_grads_into(&mut slot.0);
                    },
                );
            }
            // Fixed-order reduction: the batch gradient is summed in chunk
            // index order regardless of which worker filled which buffer.
            model.zero_grads();
            let mut batch_loss = 0.0;
            for (buf, sample_loss) in slots.iter() {
                model.accumulate_grads_from(buf);
                batch_loss += *sample_loss;
            }
            model.scale_grads(1.0 / chunk.len() as f64);
            epoch_norm += model.grad_norm();
            model.clip_grad_norm(cfg.grad_clip);
            adam.step(model);
            epoch_loss += batch_loss / chunk.len() as f64;
            batches += 1;
        }
        let st = EpochStats {
            epoch,
            mean_loss: epoch_loss / batches as f64,
            mean_grad_norm: epoch_norm / batches as f64,
        };
        obs.add("train.batches", batches as u64);
        obs.event(
            "train.epoch",
            vec![
                ("epoch", epoch.into()),
                ("loss", st.mean_loss.into()),
                ("grad_norm", st.mean_grad_norm.into()),
            ],
        );
        if let Some(t0) = epoch_start {
            obs.record_wall("train.epoch_seconds", t0.elapsed().as_secs_f64());
        }
        obs.add_volatile(
            "train.epoch_allocs",
            alloc_hook::allocs().saturating_sub(allocs_before),
        );
        stats.push(st);
    }
    stats
}

/// One worker replica of the training state: a model copy plus the trace
/// and BPTT workspace it reuses across samples, batches and epochs.
struct TrainWorker {
    model: XatuModel,
    trace: ForwardTrace,
    ws: ModelWorkspace,
    d_logits: Vec<f64>,
}

impl TrainWorker {
    fn new(model: XatuModel) -> Self {
        TrainWorker {
            model,
            trace: ForwardTrace::default(),
            ws: ModelWorkspace::default(),
            d_logits: Vec::new(),
        }
    }
}

/// Forward + backward for one sample through caller-held buffers; returns
/// its loss. Gradients accumulate into the model's buffers.
fn accumulate_sample(
    model: &mut XatuModel,
    sample: &Sample,
    wide: &WideSample,
    loss: LossKind,
    trace: &mut ForwardTrace,
    ws: &mut ModelWorkspace,
    d_logits: &mut Vec<f64>,
) -> f64 {
    model.forward_wide(wide, trace);
    match loss {
        LossKind::Survival => {
            let g = safe_loss_and_grad(&trace.hazards, sample.label, sample.event_step);
            model.backward_with(trace, Some(&g.dl_dhazard), None, false, ws);
            g.loss
        }
        LossKind::CrossEntropy => {
            // Per-step targets: attack from the anomaly step (or the CDet
            // event step when the onset is unknown) onward.
            let onset = sample.anomaly_step.unwrap_or(sample.event_step);
            let mut loss_val = 0.0;
            d_logits.clear();
            d_logits.extend(trace.logits.iter().enumerate().map(|(t, &l)| {
                let y = if sample.label && t + 1 >= onset { 1.0 } else { 0.0 };
                // Stable BCE-with-logits.
                loss_val += l.max(0.0) - l * y + (-l.abs()).exp().ln_1p();
                sigmoid(l) - y
            }));
            model.backward_with(trace, None, Some(d_logits), false, ws);
            loss_val / trace.logits.len().max(1) as f64
        }
    }
}

/// The detection *score* of a sample trajectory under each loss kind:
/// lower = more attack-like, so one thresholding rule ("alert when
/// score < threshold") serves both. Survival mode returns `S_t`
/// trajectories; cross-entropy mode returns `1 − p_t`.
pub fn score_trajectory(model: &XatuModel, sample: &Sample, loss: LossKind) -> Vec<f64> {
    match loss {
        LossKind::Survival => xatu_survival::hazard::survival_curve(&model.hazards(sample)),
        LossKind::CrossEntropy => model
            .step_probabilities(sample)
            .iter()
            .map(|p| 1.0 - p)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleMeta;
    use xatu_features::frame::NUM_FEATURES;
    use xatu_netflow::addr::Ipv4;
    use xatu_netflow::attack::AttackType;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            epochs: 30,
            batch_size: 4,
            lr: 2e-2,
            ..XatuConfig::smoke_test()
        }
    }

    /// Synthetic dataset where attacks have a clear feature signature:
    /// feature 0 ramps up inside the window for positives.
    fn dataset(c: &XatuConfig, n: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for i in 0..n {
            let label = i % 2 == 0;
            let frame = |v: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[0] = v;
                f[1] = 0.1;
                f
            };
            let window: Vec<Vec<f32>> = (0..c.window)
                .map(|t| {
                    if label && t >= 2 {
                        frame(1.0 + t as f32 * 0.5)
                    } else {
                        frame(0.05 * ((i + t) % 3) as f32)
                    }
                })
                .collect();
            out.push(Sample {
                short: vec![frame(0.02); c.short_len],
                medium: vec![frame(0.02); c.medium_len],
                long: vec![frame(0.02); c.long_len],
                window,
                label,
                event_step: if label { c.window - 1 } else { c.window },
                anomaly_step: label.then_some(3),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            });
        }
        out
    }

    #[test]
    fn loss_decreases_over_training() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 12);
        let stats = train(&mut model, &samples, &c);
        assert_eq!(stats.len(), c.epochs);
        let first = stats[0].mean_loss;
        let last = stats.last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn trained_model_separates_classes() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 16);
        train(&mut model, &samples, &c);
        // Survival at the event step: low for attacks, high for quiet.
        let mut atk = Vec::new();
        let mut quiet = Vec::new();
        for s in &samples {
            let traj = score_trajectory(&model, s, LossKind::Survival);
            let v = traj[s.event_step - 1];
            if s.label {
                atk.push(v);
            } else {
                quiet.push(v);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&atk) < mean(&quiet) - 0.2,
            "attack {} vs quiet {}",
            mean(&atk),
            mean(&quiet)
        );
    }

    #[test]
    fn cross_entropy_mode_also_learns() {
        let mut c = cfg();
        c.loss = LossKind::CrossEntropy;
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 12);
        let stats = train(&mut model, &samples, &c);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        // Scores: lower for attacks.
        let s_atk = score_trajectory(&model, &samples[0], c.loss);
        let s_quiet = score_trajectory(&model, &samples[1], c.loss);
        assert!(s_atk[c.window - 1] < s_quiet[c.window - 1]);
    }

    #[test]
    fn training_is_deterministic() {
        let c = cfg();
        let samples = dataset(&c, 8);
        let mut m1 = XatuModel::new(&c);
        let mut m2 = XatuModel::new(&c);
        let s1 = train(&mut m1, &samples, &c);
        let s2 = train(&mut m2, &samples, &c);
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.mean_loss, b.mean_loss);
        }
        assert_eq!(m1.hazards(&samples[0]), m2.hazards(&samples[0]));
    }

    #[test]
    fn training_telemetry_is_deterministic_and_matches_stats() {
        let c = cfg();
        let samples = dataset(&c, 8);
        let mut m1 = XatuModel::new(&c);
        let mut m2 = XatuModel::new(&c);
        let mut o1 = Registry::new();
        let mut o2 = Registry::new();
        let stats = train_with_obs(&mut m1, &samples, &c, &mut o1);
        train_with_obs(&mut m2, &samples, &c, &mut o2);
        let s1 = o1.snapshot();
        assert_eq!(s1.digest(), o2.snapshot().digest());
        if xatu_obs::enabled() {
            assert_eq!(s1.counter("train.epochs"), c.epochs as u64);
            assert_eq!(s1.counter("train.samples"), samples.len() as u64);
            let events = s1.events_of("train.epoch");
            assert_eq!(events.len(), c.epochs);
            // The recorded loss is the exact value returned to the caller.
            let last = events.last().unwrap();
            let loss_field = last
                .fields
                .iter()
                .find(|(n, _)| *n == "loss")
                .map(|(_, v)| v.to_string())
                .unwrap();
            assert_eq!(
                loss_field,
                format!("{:?}", stats.last().unwrap().mean_loss)
            );
        }
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        assert!(train(&mut model, &[], &c).is_empty());
    }

    #[test]
    fn gradients_are_finite_throughout() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = dataset(&c, 8);
        let stats = train(&mut model, &samples, &c);
        for st in &stats {
            assert!(st.mean_loss.is_finite());
            assert!(st.mean_grad_norm.is_finite());
        }
    }
}
