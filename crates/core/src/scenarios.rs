//! Adversarial scenario evaluation: the per-family detection matrix.
//!
//! Drives a composed scenario ([`xatu_simnet::compose`]) through every
//! detection path at once:
//!
//! * **NetScout-style CDet** — the EWMA-baseline volumetric detector the
//!   evasion scheduler is tuned against. It doubles as the booster's CDet
//!   feed: its alerts update the auxiliary trackers, exactly as in the
//!   clean pipeline's test phase.
//! * **FastNetMon-style CDet** — the second volumetric detector, with a
//!   different sustain requirement (the matrix shows which shapes evade
//!   one but not the other).
//! * **Xatu booster** — one [`OnlineDetector`] per trained per-type model,
//!   fed the shared feature frames (volumetric + auxiliary signals).
//! * **Fleet booster** — a [`FleetDetector`] over the first trained model,
//!   fed the same frames through the batched path.
//!
//! Each detector is scored against the scenario's ground-truth spans:
//! detection rate, median detection delay (with the evaluation module's
//! early credit), and overhead (alert-minutes outside any span). The
//! recorded survival series is bit-comparable across thread counts — the
//! determinism gate in `bench_scenarios` replays a family at 1 and 4
//! workers and requires identical bits.

use crate::config::XatuConfig;
use crate::error::XatuError;
use crate::eval::{VolumeStore, EARLY_CREDIT};
use crate::fleet::{FleetDetector, FleetInput};
use crate::model::XatuModel;
use crate::online::OnlineDetector;
use crate::pipeline::{build_extractor, handle_alert_event, update_trackers, ActiveAlert};
use std::collections::BTreeMap;
use xatu_detectors::alert::Alert;
use xatu_detectors::fastnetmon::FastNetMon;
use xatu_detectors::netscout::NetScout;
use xatu_detectors::traits::{Detector, DetectorEvent, MinuteObservation};
use xatu_features::frame::FeatureFrame;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_par::{par_map, resolve_threads};
use xatu_simnet::{compose, ScenarioFamily, ScenarioSpan, WorldConfig};

/// Configuration of one scenario-matrix run.
#[derive(Clone, Debug)]
pub struct ScenarioRunConfig {
    /// Base world (seed, scale); the composer drops its attack chains.
    pub world: WorldConfig,
    /// Model/streaming knobs (timescales, window, threads).
    pub xatu: XatuConfig,
    /// Survival threshold for the booster detectors.
    pub threshold: f64,
}

/// One detector's score against a scenario's ground-truth spans.
#[derive(Clone, Debug)]
pub struct DetectorScore {
    /// Stable detector name for reports.
    pub detector: &'static str,
    /// Spans with at least one matching alert in the detection window.
    pub detected: usize,
    /// Total ground-truth spans.
    pub total: usize,
    /// Median minutes from span onset to first alert (negative with early
    /// credit; NaN when nothing was detected).
    pub median_delay: f64,
    /// Alert-minutes outside every span's detection window.
    pub overhead_minutes: u64,
}

/// What one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario family that ran.
    pub family: ScenarioFamily,
    /// Ground-truth spans the detectors were scored against.
    pub spans: Vec<ScenarioSpan>,
    /// Per-detector scores, in matrix order (NetScout, FastNetMon,
    /// booster, fleet booster).
    pub scores: Vec<DetectorScore>,
    /// Customers, in world order — the column order of `survivals`.
    pub customers: Vec<Ipv4>,
    /// Per-minute recorded survivals, row-major: for each minute, the
    /// first-model booster's survival per customer, then the fleet
    /// detector's. Bit-comparable across thread counts.
    pub survivals: Vec<f64>,
}

impl ScenarioReport {
    /// True when no recorded survival is NaN/∞.
    pub fn all_finite(&self) -> bool {
        self.survivals.iter().all(|v| v.is_finite())
    }

    /// The score row for `detector`, if present.
    pub fn score(&self, detector: &str) -> Option<&DetectorScore> {
        self.scores.iter().find(|s| s.detector == detector)
    }
}

/// Marks the newest matching open alert as ended.
fn close_alert(log: &mut [Alert], ended: &Alert) {
    if let Some(slot) = log.iter_mut().rev().find(|x| {
        x.customer == ended.customer
            && x.attack_type == ended.attack_type
            && x.mitigation_end.is_none()
    }) {
        slot.mitigation_end = ended.mitigation_end;
    }
}

fn record_event(log: &mut Vec<Alert>, ev: &DetectorEvent) {
    match ev {
        DetectorEvent::Raised(a) => log.push(*a),
        DetectorEvent::Ended(a) => close_alert(log, a),
    }
}

/// Scores one detector's alert log against the ground-truth spans.
fn score_alerts(
    detector: &'static str,
    alerts: &[Alert],
    spans: &[ScenarioSpan],
    total_minutes: u32,
) -> DetectorScore {
    let mut delays: Vec<f64> = Vec::new();
    for span in spans {
        let window_start = span.onset.saturating_sub(EARLY_CREDIT);
        let hit = alerts
            .iter()
            .filter(|a| {
                a.customer == span.victim
                    && a.detected_at >= window_start
                    && a.detected_at < span.end
            })
            .map(|a| a.detected_at)
            .min();
        if let Some(at) = hit {
            delays.push(at as f64 - span.onset as f64);
        }
    }
    let detected = delays.len();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let median_delay = if delays.is_empty() {
        f64::NAN
    } else if delays.len() % 2 == 1 {
        delays[delays.len() / 2]
    } else {
        0.5 * (delays[delays.len() / 2 - 1] + delays[delays.len() / 2])
    };
    let mut overhead_minutes = 0u64;
    for a in alerts {
        let end = a.mitigation_end.unwrap_or(total_minutes).min(total_minutes);
        for m in a.detected_at..end {
            let covered = spans.iter().any(|s| {
                s.victim == a.customer && m + EARLY_CREDIT >= s.onset && m < s.end
            });
            if !covered {
                overhead_minutes += 1;
            }
        }
    }
    DetectorScore {
        detector,
        detected,
        total: spans.len(),
        median_delay,
        overhead_minutes,
    }
}

/// Runs one scenario family through every detection path.
///
/// `models` are the trained per-type survival models (the first one also
/// drives the fleet detector); the boosters serve at `cfg.threshold`.
pub fn run_scenario(
    models: &[(AttackType, XatuModel)],
    cfg: &ScenarioRunConfig,
    family: ScenarioFamily,
) -> Result<ScenarioReport, XatuError> {
    assert!(!models.is_empty(), "scenario runs need at least one model");
    let composed = compose(family, &cfg.world);
    let mut world = composed.world;
    let spans = composed.spans;
    let customers: Vec<Ipv4> = world.customers().to_vec();
    let total_minutes = world.total_minutes();
    let threads = resolve_threads(cfg.xatu.threads);

    let mut extractor = build_extractor(&world, &cfg.xatu, None);
    let mut volumes = VolumeStore::new(total_minutes);
    let mut netscout = NetScout::new();
    let mut fnm = FastNetMon::new();
    let mut active_cdet: BTreeMap<(Ipv4, AttackType), ActiveAlert> = BTreeMap::new();
    let mut ns_alerts: Vec<Alert> = Vec::new();
    let mut fnm_alerts: Vec<Alert> = Vec::new();

    let mut boosters: Vec<OnlineDetector> = models
        .iter()
        .map(|(ty, m)| OnlineDetector::new(m.clone(), *ty, cfg.threshold, &cfg.xatu))
        .collect();
    let mut fleet = FleetDetector::new(
        models[0].1.clone(),
        models[0].0,
        cfg.threshold,
        &cfg.xatu,
    );
    for &c in &customers {
        fleet.add_customer(c);
    }
    let mut booster_alerts: Vec<Alert> = Vec::new();
    let mut fleet_alerts: Vec<Alert> = Vec::new();
    let mut survivals: Vec<f64> =
        Vec::with_capacity(total_minutes as usize * customers.len() * 2);

    while !world.finished() {
        let minute = world.minute();
        let bins = world.step();
        for bin in &bins {
            volumes.record(bin);
        }
        // Both volumetric detectors see every (customer, type) channel;
        // NetScout doubles as the booster's CDet feed.
        for bin in &bins {
            for ty in AttackType::ALL {
                let obs = MinuteObservation {
                    minute,
                    customer: bin.customer,
                    attack_type: ty,
                    bytes: volumes.bytes_at(bin.customer, ty, minute),
                    packets: volumes.packets_at(bin.customer, ty, minute),
                };
                for ev in netscout.observe(&obs) {
                    handle_alert_event(
                        &ev,
                        minute,
                        &volumes,
                        &mut extractor,
                        &mut active_cdet,
                        &mut ns_alerts,
                    );
                }
                for ev in fnm.observe(&obs) {
                    record_event(&mut fnm_alerts, &ev);
                }
            }
        }
        for bin in &bins {
            update_trackers(&mut extractor, bin, &mut active_cdet, &volumes, false);
        }

        extractor.spoof.ensure_built();
        let frames: Vec<FeatureFrame> =
            par_map(threads, &bins, |_, bin| extractor.extract_shared(bin));

        for (bin, frame) in bins.iter().zip(&frames) {
            for det in boosters.iter_mut() {
                let (_, _, events) = det.observe(bin.customer, minute, &frame.0)?;
                for e in events {
                    record_event(&mut booster_alerts, &e);
                }
            }
        }
        let fleet_events: Vec<DetectorEvent> = fleet
            .step_minute_batch(minute, threads, |g, _addr, buf| {
                buf.copy_from_slice(&frames[g].0);
                FleetInput::Frame
            })?
            .to_vec();
        for e in &fleet_events {
            record_event(&mut fleet_alerts, e);
        }

        for &c in &customers {
            survivals.push(boosters[0].survival_of(c));
        }
        for &c in &customers {
            survivals.push(fleet.survival_of(c));
        }
    }

    for det in boosters.iter_mut() {
        for e in det.close_all(total_minutes) {
            record_event(&mut booster_alerts, &e);
        }
    }
    for e in fleet.close_all(total_minutes) {
        record_event(&mut fleet_alerts, &e);
    }

    let scores = vec![
        score_alerts("netscout", &ns_alerts, &spans, total_minutes),
        score_alerts("fastnetmon", &fnm_alerts, &spans, total_minutes),
        score_alerts("xatu_booster", &booster_alerts, &spans, total_minutes),
        score_alerts("xatu_fleet", &fleet_alerts, &spans, total_minutes),
    ];
    Ok(ScenarioReport {
        family,
        spans,
        scores,
        customers,
        survivals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xatu_detectors::netscout::NetScoutConfig;
    use xatu_simnet::DetectorTimeConstants;

    fn smoke_cfg(seed: u64) -> ScenarioRunConfig {
        ScenarioRunConfig {
            world: WorldConfig::smoke_test(seed),
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                ..XatuConfig::smoke_test()
            },
            threshold: 0.5,
        }
    }

    #[test]
    fn evasion_constants_mirror_the_real_detector() {
        // The simnet composer cannot depend on xatu-detectors, so it
        // mirrors the NetScout defaults; this is the cross-check that the
        // mirror stays honest.
        let mirror = DetectorTimeConstants::netscout_default();
        let real = NetScoutConfig::default();
        assert_eq!(mirror.ewma_alpha, real.baseline_alpha);
        assert_eq!(mirror.multiplier, real.multiplier);
        assert_eq!(mirror.sustain, real.sustain);
        assert_eq!(mirror.fast_sustain, real.fast_sustain);
    }

    #[test]
    fn scenario_run_is_finite_and_thread_invariant() {
        // Untrained model: cheap, and determinism does not care about
        // weights. Survival bits must match between 1 and 4 workers.
        let mut cfg = smoke_cfg(5);
        let models = vec![(AttackType::UdpFlood, XatuModel::new(&cfg.xatu))];
        cfg.xatu.threads = 1;
        let r1 = run_scenario(&models, &cfg, ScenarioFamily::PulseWave).expect("run");
        cfg.xatu.threads = 4;
        let r4 = run_scenario(&models, &cfg, ScenarioFamily::PulseWave).expect("run");
        assert!(r1.all_finite());
        assert_eq!(r1.survivals.len(), r4.survivals.len());
        for (i, (a, b)) in r1.survivals.iter().zip(&r4.survivals).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "survival {i} diverged");
        }
        assert_eq!(r1.spans, r4.spans);
        assert_eq!(r1.scores.len(), 4);
    }

    #[test]
    fn pulse_wave_evades_the_netscout_sustain() {
        // The tentpole claim, pinned end to end: an on-run one minute
        // short of the fast-path sustain never accumulates enough
        // consecutive anomalous minutes for the NetScout-style CDet.
        let cfg = smoke_cfg(9);
        let models = vec![(AttackType::UdpFlood, XatuModel::new(&cfg.xatu))];
        let r = run_scenario(&models, &cfg, ScenarioFamily::PulseWave).expect("run");
        let ns = r.score("netscout").expect("netscout row");
        assert_eq!(
            ns.detected, 0,
            "pulse train must evade the sustain logic: {ns:?}"
        );
    }
}
