//! Fault-injected streaming: drives the online detector against a
//! [`FaultedWorld`] with graceful degradation and crash-safe
//! checkpoint/resume.
//!
//! This is the robustness harness the clean pipeline deliberately lacks.
//! The clean [`crate::pipeline`] assumes a perfect collector: every
//! customer, every minute, every flow. This driver assumes the opposite —
//! a [`FaultSchedule`] suppresses bins, duplicates and delays flows,
//! renegotiates sampling rates and takes the CDet alert feed down — and
//! checks that the detector *degrades* instead of breaking:
//!
//! * Absent customer-minutes are driven through
//!   [`OnlineDetector::observe_gap`] the minute they happen, so staleness
//!   handling runs on wall-clock time.
//! * While the CDet alert feed has been silent longer than
//!   `cdet_silence_limit`, extracted frames fall back to their volumetric
//!   block ([`FeatureFrame::degrade_to_volumetric`]) — auxiliary trackers
//!   frozen by the dead feed must not be served as live evidence.
//! * The run can checkpoint the detector at a chosen minute (atomic,
//!   checksummed — see [`crate::checkpoint`]), simulate a crash, and
//!   resume bit-identically: the world, volume store, CDet and feature
//!   extractor are deterministic functions of the seed and are fast-
//!   forwarded by re-streaming; only the detector state is restored from
//!   disk.
//!
//! To keep resume exact, this driver does **not** auto-regress Xatu's own
//! alerts into the extractor trackers (the clean pipeline's test phase
//! does): the extractor's evolution must depend only on the seeded world
//! and CDet, never on the detector being fast-forwarded past.

use crate::checkpoint::{load_detector, save_detector};
use crate::config::XatuConfig;
use crate::error::XatuError;
use crate::eval::VolumeStore;
use crate::model::XatuModel;
use crate::online::{Companion, OnlineDetector};
use crate::pipeline::{build_extractor, handle_alert_event, update_trackers, ActiveAlert};
use std::collections::BTreeMap;
use std::path::Path;
use xatu_detectors::alert::Alert;
use xatu_detectors::netscout::NetScout;
use xatu_detectors::traits::{Detector, DetectorEvent, MinuteObservation};
use xatu_features::frame::FeatureFrame;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_par::{par_map, resolve_threads};
use xatu_simnet::{FaultSchedule, FaultedWorld, World, WorldConfig};

/// Configuration of one fault-injected run.
#[derive(Clone, Debug)]
pub struct FaultedRunConfig {
    /// The simulated world (drives customers, attacks, blocklists).
    pub world: WorldConfig,
    /// Model/streaming knobs (timescales, window, threads).
    pub xatu: XatuConfig,
    /// The fault schedule layered over the world's flow stream.
    pub schedule: FaultSchedule,
    /// Minutes of CDet-feed silence tolerated before extracted frames are
    /// degraded to volumetric-only features.
    pub cdet_silence_limit: u32,
    /// Optional unsupervised companion attached to the detector. While the
    /// feed is degraded the fused score shifts onto the companion instead
    /// of dropping to volumetric-only survival alone; `None` reproduces
    /// the companion-free run bit for bit.
    pub companion: Option<Companion>,
}

impl FaultedRunConfig {
    /// Smoke-scale config with the given fault schedule.
    pub fn smoke_test(seed: u64, schedule: FaultSchedule) -> Self {
        let world = WorldConfig::smoke_test(seed);
        FaultedRunConfig {
            world,
            xatu: XatuConfig {
                seed: seed.wrapping_add(1),
                ..XatuConfig::smoke_test()
            },
            schedule,
            cdet_silence_limit: 10,
            companion: None,
        }
    }
}

/// Crash-safety control for [`run_faulted`].
#[derive(Clone, Copy, Debug)]
pub enum RunControl<'a> {
    /// Run start to finish.
    Full,
    /// Save a detector checkpoint after processing `minute`; with `kill`
    /// set, abandon the run right after saving (simulating a crash — the
    /// partial report is what a dead process would leave behind).
    CheckpointAt {
        /// Minute after which to checkpoint.
        minute: u32,
        /// Checkpoint file.
        path: &'a Path,
        /// Abandon the run after saving.
        kill: bool,
    },
    /// Load the detector from `path` and fast-forward the deterministic
    /// world/extractor/CDet state past the checkpointed minute; scores are
    /// recorded only for the resumed tail.
    ResumeFrom {
        /// Checkpoint file written by a previous `CheckpointAt`.
        path: &'a Path,
    },
}

/// Fault-injection counters, denormalized from the live counters so the
/// report is plain data (all zero when the `obs` feature is off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Customer-minute bins suppressed by outages/gaps.
    pub bins_suppressed: u64,
    /// Flows duplicated in delivery.
    pub flows_duplicated: u64,
    /// Flows held back for late delivery.
    pub flows_delayed: u64,
    /// Held-back flows that did arrive (late).
    pub flows_delivered_late: u64,
    /// Held-back flows lost entirely.
    pub flows_lost_late: u64,
    /// Flows removed by sampling renegotiation.
    pub flows_thinned_away: u64,
    /// Minutes with the CDet alert feed down.
    pub cdet_down_minutes: u64,
    /// Missing minutes the detector imputed.
    pub gaps_imputed: u64,
    /// Non-finite feature values sanitized.
    pub values_sanitized: u64,
    /// Customer states cold-restarted.
    pub cold_restarts: u64,
    /// Minutes served volumetric-only because the CDet feed was silent.
    pub degraded_feature_minutes: u64,
    /// Ladder transitions into full companion weight (feed went dark with
    /// a companion attached).
    pub fusion_engaged: u64,
    /// Ladder transitions back out of full companion weight (feed
    /// recovery started a re-warm-up ramp).
    pub fusion_recovered: u64,
    /// Minutes whose reported survival included the companion's score.
    pub fusion_ae_minutes: u64,
}

/// What one fault-injected run produced.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Customers, in world order — the column order of `survivals`.
    pub customers: Vec<Ipv4>,
    /// First minute with recorded scores (0 for full runs, the minute
    /// after the checkpoint for resumed runs).
    pub first_minute: u32,
    /// Minutes actually recorded (rows of `survivals`).
    pub minutes_recorded: u32,
    /// Reported survival per recorded minute × customer, row-major.
    /// Bit-comparable across runs: resume must reproduce these exactly.
    pub survivals: Vec<f64>,
    /// Xatu alerts over the recorded span (ends filled in when observed).
    pub alerts: Vec<Alert>,
    /// CDet alerts that got through the (possibly down) feed.
    pub cdet_alerts: Vec<Alert>,
    /// Fault-injection counters.
    pub counts: FaultCounts,
}

impl FaultReport {
    /// The recorded survival for (`minute`, customer index), if recorded.
    pub fn survival_at(&self, minute: u32, customer_idx: usize) -> Option<f64> {
        let row = minute.checked_sub(self.first_minute)? as usize;
        if row >= self.minutes_recorded as usize {
            return None;
        }
        Some(self.survivals[row * self.customers.len() + customer_idx])
    }

    /// True when no recorded value is NaN/∞ — the degradation contract.
    pub fn all_finite(&self) -> bool {
        self.survivals.iter().all(|v| v.is_finite())
    }
}

/// Streams the faulted world through the feature extractor and detector.
///
/// `model` is the (already trained, or deliberately untrained) survival
/// model; the detector serves `attack_type` at `threshold`. Returns the
/// per-minute score record plus fault accounting. See [`RunControl`] for
/// the checkpoint/kill/resume modes.
pub fn run_faulted(
    model: XatuModel,
    attack_type: AttackType,
    threshold: f64,
    cfg: &FaultedRunConfig,
    control: RunControl<'_>,
) -> Result<FaultReport, XatuError> {
    let world = World::new(cfg.world);
    let customers: Vec<Ipv4> = world.customers().to_vec();
    let total_minutes = world.total_minutes();
    let threads = resolve_threads(cfg.xatu.threads);

    let mut extractor = build_extractor(&world, &cfg.xatu, None);
    let mut volumes = VolumeStore::new(total_minutes);
    let mut cdet = NetScout::new();
    // BTreeMap, not HashMap: `update_trackers` iterates the open CDet
    // alerts with tracker side effects, so the iteration order must be
    // deterministic for checkpoint/resume bit-identity.
    let mut active_cdet: BTreeMap<(Ipv4, AttackType), ActiveAlert> = BTreeMap::new();
    let mut cdet_alerts: Vec<Alert> = Vec::new();

    // Resume: restore the detector, then replay the deterministic parts of
    // the stream (world, volumes, CDet, trackers) up to and including the
    // checkpointed minute without touching the detector.
    let (mut det, resume_after) = match control {
        RunControl::ResumeFrom { path } => {
            let ck = load_detector(path)?;
            let mut det = OnlineDetector::from_checkpoint(&ck)
                .map_err(|e| XatuError::corrupt(path, e.to_string()))?;
            if let Some(comp) = &cfg.companion {
                // Companion state is not checkpointed: re-attach and let
                // the rings re-warm over the resumed tail.
                det.set_companion(comp.clone());
            }
            let minute = ck
                .customers
                .iter()
                .filter_map(|c| c.last_minute)
                .max()
                .ok_or_else(|| {
                    XatuError::corrupt(path, "checkpoint has no driven customers to resume from")
                })?;
            (det, Some(minute))
        }
        _ => {
            let mut det = OnlineDetector::new(model.clone(), attack_type, threshold, &cfg.xatu);
            det.set_warmup(2 * cfg.xatu.window as u32);
            if let Some(comp) = &cfg.companion {
                det.set_companion(comp.clone());
            }
            (det, None)
        }
    };

    let mut fw = FaultedWorld::new(world, cfg.schedule.clone());
    let first_minute = resume_after.map_or(0, |m| m + 1);
    let rows = (total_minutes - first_minute) as usize;
    let mut survivals: Vec<f64> = Vec::with_capacity(rows * customers.len());
    let mut alerts: Vec<Alert> = Vec::new();
    let mut cdet_silence = u32::MAX; // no CDet contact yet
    let mut degraded_feature_minutes = 0u64;
    let mut minutes_recorded = 0u32;

    while !fw.finished() {
        let delivery = fw.step();
        let minute = delivery.minute;
        let fast_forward = resume_after.is_some_and(|m| minute <= m);

        // Volumes and CDet see only what the collector delivered.
        for (bin, &present) in delivery.bins.iter().zip(&delivery.present) {
            if present {
                volumes.record(bin);
            }
        }
        if delivery.cdet_up {
            cdet_silence = 0;
            for (bin, &present) in delivery.bins.iter().zip(&delivery.present) {
                if !present {
                    continue;
                }
                for ty in AttackType::ALL {
                    let obs = MinuteObservation {
                        minute,
                        customer: bin.customer,
                        attack_type: ty,
                        bytes: volumes.bytes_at(bin.customer, ty, minute),
                        packets: volumes.packets_at(bin.customer, ty, minute),
                    };
                    for ev in cdet.observe(&obs) {
                        handle_alert_event(
                            &ev,
                            minute,
                            &volumes,
                            &mut extractor,
                            &mut active_cdet,
                            &mut cdet_alerts,
                        );
                    }
                }
            }
        } else {
            cdet_silence = cdet_silence.saturating_add(1);
        }
        for (bin, &present) in delivery.bins.iter().zip(&delivery.present) {
            if present {
                update_trackers(&mut extractor, bin, &mut active_cdet, &volumes, false);
            }
        }

        if fast_forward {
            continue;
        }

        // Feature extraction for delivered bins only; absent customers go
        // through explicit gap observation instead of fake empty frames.
        extractor.spoof.ensure_built();
        let present_bins: Vec<_> = delivery
            .bins
            .iter()
            .zip(&delivery.present)
            .filter_map(|(bin, &p)| p.then_some(bin))
            .collect();
        let degrade = cdet_silence > cfg.cdet_silence_limit;
        if degrade {
            degraded_feature_minutes += 1;
        }
        // Ladder tick: with a companion attached, a dark feed shifts the
        // fused score onto the companion; recovery starts the re-warm-up
        // ramp. Without one, this only records the flag.
        det.set_feed_degraded(degrade);
        let frames: Vec<FeatureFrame> = par_map(threads, &present_bins, |_, bin| {
            let mut frame = extractor.extract_shared(bin);
            if degrade {
                frame.degrade_to_volumetric();
            }
            frame
        });

        let mut frame_iter = frames.into_iter();
        for (bin, &present) in delivery.bins.iter().zip(&delivery.present) {
            let events = if present {
                // Invariant: one frame per present bin, in bin order.
                let frame = frame_iter.next().expect("one frame per present bin");
                let (_, _, ev) = det.observe(bin.customer, minute, &frame.0)?;
                ev
            } else {
                let (_, _, ev) = det.observe_gap(bin.customer, minute)?;
                ev
            };
            for e in events {
                match e {
                    DetectorEvent::Raised(a) => alerts.push(a),
                    DetectorEvent::Ended(a) => close_alert(&mut alerts, &a),
                }
            }
        }
        for c in &customers {
            survivals.push(det.survival_of(*c));
        }
        minutes_recorded += 1;

        if let RunControl::CheckpointAt {
            minute: at,
            path,
            kill,
        } = control
        {
            if minute == at {
                save_detector(path, &det.to_checkpoint())?;
                if kill {
                    // Simulated crash: whatever was recorded so far is the
                    // dead process's legacy; the checkpoint is on disk.
                    return Ok(report(
                        customers,
                        first_minute,
                        minutes_recorded,
                        survivals,
                        alerts,
                        cdet_alerts,
                        &fw,
                        &det,
                        degraded_feature_minutes,
                    ));
                }
            }
        }
    }

    for e in det.close_all(total_minutes) {
        if let DetectorEvent::Ended(a) = e {
            close_alert(&mut alerts, &a);
        }
    }
    Ok(report(
        customers,
        first_minute,
        minutes_recorded,
        survivals,
        alerts,
        cdet_alerts,
        &fw,
        &det,
        degraded_feature_minutes,
    ))
}

/// Marks the newest matching open alert as ended.
fn close_alert(log: &mut [Alert], ended: &Alert) {
    if let Some(slot) = log.iter_mut().rev().find(|x| {
        x.customer == ended.customer
            && x.attack_type == ended.attack_type
            && x.mitigation_end.is_none()
    }) {
        slot.mitigation_end = ended.mitigation_end;
    }
}

#[allow(clippy::too_many_arguments)]
fn report(
    customers: Vec<Ipv4>,
    first_minute: u32,
    minutes_recorded: u32,
    survivals: Vec<f64>,
    alerts: Vec<Alert>,
    cdet_alerts: Vec<Alert>,
    fw: &FaultedWorld,
    det: &OnlineDetector,
    degraded_feature_minutes: u64,
) -> FaultReport {
    let f = fw.obs();
    let d = det.obs();
    FaultReport {
        customers,
        first_minute,
        minutes_recorded,
        survivals,
        alerts,
        cdet_alerts,
        counts: FaultCounts {
            bins_suppressed: f.bins_suppressed.get(),
            flows_duplicated: f.flows_duplicated.get(),
            flows_delayed: f.flows_delayed.get(),
            flows_delivered_late: f.flows_delivered_late.get(),
            flows_lost_late: f.flows_lost_late.get(),
            flows_thinned_away: f.flows_thinned_away.get(),
            cdet_down_minutes: f.cdet_down_minutes.get(),
            gaps_imputed: d.gaps_imputed.get(),
            values_sanitized: d.values_sanitized.get(),
            cold_restarts: d.cold_restarts.get(),
            degraded_feature_minutes,
            fusion_engaged: d.fusion_engaged.get(),
            fusion_recovered: d.fusion_recovered.get(),
            fusion_ae_minutes: d.fusion_ae_minutes.get(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xatu_faulted_{}_{name}", std::process::id()));
        p
    }

    fn run(schedule: FaultSchedule, control: RunControl<'_>) -> FaultReport {
        let cfg = FaultedRunConfig::smoke_test(7, schedule);
        let model = XatuModel::new(&cfg.xatu);
        run_faulted(model, AttackType::UdpFlood, 0.5, &cfg, control).expect("run")
    }

    #[test]
    fn clean_schedule_records_every_minute() {
        let cfg = FaultedRunConfig::smoke_test(7, FaultSchedule::clean());
        let total = World::new(cfg.world).total_minutes();
        let report = run(FaultSchedule::clean(), RunControl::Full);
        assert_eq!(report.first_minute, 0);
        assert_eq!(report.minutes_recorded, total);
        assert!(report.all_finite());
        assert_eq!(report.counts, FaultCounts::default());
    }

    #[test]
    fn everything_schedule_degrades_without_breaking() {
        let cfg = FaultedRunConfig::smoke_test(7, FaultSchedule::clean());
        let total = World::new(cfg.world).total_minutes();
        let n = World::new(cfg.world).customers().len();
        let schedule = FaultSchedule::builtin("everything", total, n).unwrap();
        let report = run(schedule, RunControl::Full);
        assert_eq!(report.minutes_recorded, total);
        assert!(report.all_finite());
        if xatu_obs::enabled() {
            assert!(report.counts.bins_suppressed > 0, "{:?}", report.counts);
            assert!(report.counts.gaps_imputed > 0, "{:?}", report.counts);
        }
    }

    #[test]
    fn checkpoint_kill_resume_is_bit_identical() {
        let cfg = FaultedRunConfig::smoke_test(7, FaultSchedule::clean());
        let total = World::new(cfg.world).total_minutes();
        let n = World::new(cfg.world).customers().len();
        let schedule = FaultSchedule::builtin("dup_late", total, n).unwrap();
        let at = total / 2;
        let path = tmp("kill_resume");
        let _ = std::fs::remove_file(&path);

        let full = run(schedule.clone(), RunControl::Full);
        let killed = run(
            schedule.clone(),
            RunControl::CheckpointAt {
                minute: at,
                path: &path,
                kill: true,
            },
        );
        assert_eq!(killed.minutes_recorded, at + 1);
        let resumed = run(schedule, RunControl::ResumeFrom { path: &path });
        assert_eq!(resumed.first_minute, at + 1);
        assert_eq!(resumed.minutes_recorded, total - at - 1);
        // The resumed tail reproduces the uninterrupted run bit for bit.
        let tail_start = (at + 1) as usize * full.customers.len();
        assert_eq!(full.survivals.len() - tail_start, resumed.survivals.len());
        for (i, (a, b)) in full.survivals[tail_start..]
            .iter()
            .zip(&resumed.survivals)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "survival {i} diverged");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
