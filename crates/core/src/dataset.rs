//! Dataset assembly: turning a streamed world plus CDet alerts into
//! balanced per-type training sets (§5.3) with chronological splits.

use crate::config::XatuConfig;
use crate::sample::{Sample, SampleMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xatu_features::pooled_history::PooledHistory;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_netflow::MINUTES_PER_DAY;

/// Chronological split boundaries (minutes), mirroring the paper's
/// 50/20/30-day split with the first third of testing used for the
/// auto-regressive stabilization period (§6: 10 of 30 days).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitBoundaries {
    /// End of the training period (exclusive).
    pub train_end: u32,
    /// End of the validation period (exclusive).
    pub val_end: u32,
    /// End of the stabilization prefix of the test period (exclusive).
    pub stabilization_end: u32,
    /// End of the whole period.
    pub total: u32,
}

impl SplitBoundaries {
    /// Builds the 50 % / 20 % / 30 % split over `days` days.
    pub fn from_days(days: u32) -> Self {
        let total = days * MINUTES_PER_DAY;
        let train_end = total / 2;
        let val_end = train_end + total / 5;
        let test_len = total - val_end;
        SplitBoundaries {
            train_end,
            val_end,
            stabilization_end: val_end + test_len / 3,
            total,
        }
    }

    /// Which period a minute falls into.
    pub fn period_of(&self, minute: u32) -> Period {
        if minute < self.train_end {
            Period::Train
        } else if minute < self.val_end {
            Period::Validation
        } else if minute < self.stabilization_end {
            Period::Stabilization
        } else {
            Period::Test
        }
    }
}

/// The four phases of the evaluation timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Period {
    /// Model training data.
    Train,
    /// Threshold calibration data.
    Validation,
    /// Auto-regressive warm-up, excluded from reported metrics.
    Stabilization,
    /// Reported evaluation period.
    Test,
}

/// How many minutes before the CUSUM anomaly onset the detection window
/// starts, so the window contains pre-onset context the model can alert in.
pub const WINDOW_LEAD: u32 = 10;

/// A positive sample waiting for its window frames to stream past.
#[derive(Clone, Debug)]
struct PendingPositive {
    customer: Ipv4,
    attack_type: AttackType,
    window_start: u32,
    /// CDet alert minute (absolute).
    event_minute: u32,
    /// CUSUM anomaly onset (absolute).
    anomaly_minute: u32,
}

/// A negative candidate waiting for its window frames.
#[derive(Clone, Debug)]
struct PendingNegative {
    customer: Ipv4,
    window_start: u32,
}

/// Streaming dataset builder. The pipeline drives it minute by minute.
pub struct DatasetBuilder {
    cfg: XatuConfig,
    pending_pos: Vec<PendingPositive>,
    pending_neg: Vec<PendingNegative>,
    positives: Vec<Sample>,
    negatives: Vec<Sample>,
    rng: StdRng,
    /// Per-customer-minute probability of drawing a negative candidate.
    neg_prob: f64,
}

impl DatasetBuilder {
    /// Creates a builder. `neg_prob` is tuned so candidate negatives
    /// comfortably outnumber expected positives before balancing.
    pub fn new(cfg: &XatuConfig, neg_prob: f64) -> Self {
        DatasetBuilder {
            cfg: *cfg,
            pending_pos: Vec::new(),
            pending_neg: Vec::new(),
            positives: Vec::new(),
            negatives: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(0xDA7A)),
            neg_prob,
        }
    }

    /// Registers a CDet alert: schedules a positive sample whose window
    /// starts [`WINDOW_LEAD`] minutes before the CUSUM onset.
    pub fn on_alert(
        &mut self,
        customer: Ipv4,
        attack_type: AttackType,
        anomaly_minute: u32,
        alert_minute: u32,
    ) {
        let window_start = anomaly_minute.saturating_sub(WINDOW_LEAD);
        self.pending_pos.push(PendingPositive {
            customer,
            attack_type,
            window_start,
            event_minute: alert_minute,
            anomaly_minute,
        });
    }

    /// Possibly schedules a negative candidate at (customer, minute).
    ///
    /// `aux_active` marks minutes whose frame shows auxiliary-signal
    /// activity (blocklisted / previous-attacker traffic). Those minutes
    /// are sampled at a boosted rate: they are the *hard negatives* that
    /// teach the model that preparation signals alone — without an
    /// imminent volumetric ramp — must not trigger an alarm (the paper's
    /// "Xatu does not raise an alarm right away" behaviour, §6.2).
    pub fn maybe_negative(&mut self, customer: Ipv4, minute: u32, aux_active: bool) {
        self.maybe_negative_weighted(customer, minute, if aux_active { 8.0 } else { 1.0 });
    }

    /// As [`Self::maybe_negative`], with an explicit sampling-probability
    /// multiplier (hard-negative mining weight).
    pub fn maybe_negative_weighted(&mut self, customer: Ipv4, minute: u32, weight: f64) {
        let p = (self.neg_prob * weight).min(1.0);
        if self.rng.random_bool(p) {
            self.pending_neg.push(PendingNegative {
                customer,
                window_start: minute,
            });
        }
    }

    /// Called after each minute's frames have been pushed into the pooled
    /// histories; materializes any pending samples whose windows are now
    /// fully in the past.
    pub fn collect_ready(
        &mut self,
        now: u32,
        histories: &std::collections::HashMap<Ipv4, PooledHistory>,
    ) {
        let window = self.cfg.window as u32;
        let cfg = self.cfg;

        let mut still_pos = Vec::new();
        for p in self.pending_pos.drain(..) {
            if p.window_start + window > now {
                still_pos.push(p);
                continue;
            }
            if let Some(h) = histories.get(&p.customer) {
                if let Some(mut s) = snapshot(&cfg, h, p.customer, p.window_start) {
                    s.label = true;
                    s.meta.attack_type = p.attack_type;
                    let step =
                        (p.event_minute.saturating_sub(p.window_start) + 1).clamp(1, window);
                    s.event_step = step as usize;
                    let astep =
                        (p.anomaly_minute.saturating_sub(p.window_start) + 1).clamp(1, window);
                    s.anomaly_step = Some(astep as usize);
                    self.positives.push(s);
                }
            }
        }
        self.pending_pos = still_pos;

        let mut still_neg = Vec::new();
        for p in self.pending_neg.drain(..) {
            if p.window_start + window > now {
                still_neg.push(p);
                continue;
            }
            if let Some(h) = histories.get(&p.customer) {
                if let Some(s) = snapshot(&cfg, h, p.customer, p.window_start) {
                    self.negatives.push(s);
                }
            }
        }
        self.pending_neg = still_neg;
    }

    /// Finishes building: drops negative candidates that overlap any alert
    /// window (± one hour), then returns per-type balanced training sets
    /// of (positives, negatives).
    ///
    /// `alert_minutes` lists every CDet alert as `(customer, minute)`.
    pub fn finish(
        mut self,
        alert_minutes: &[(Ipv4, u32)],
    ) -> DatasetBundle {
        let window = self.cfg.window as u32;
        self.negatives.retain(|n| {
            !alert_minutes.iter().any(|&(c, m)| {
                c == n.meta.customer
                    && (m as i64 - n.meta.window_start as i64).abs() < (window + 60) as i64
            })
        });
        DatasetBundle {
            positives: self.positives,
            negatives: self.negatives,
            seed: self.cfg.seed,
        }
    }

    /// Positives collected so far (diagnostics).
    pub fn positive_count(&self) -> usize {
        self.positives.len()
    }
}

/// The collected samples, ready for per-type assembly.
pub struct DatasetBundle {
    /// Attack samples, all types mixed.
    pub positives: Vec<Sample>,
    /// Clean samples.
    pub negatives: Vec<Sample>,
    seed: u64,
}

impl DatasetBundle {
    /// Attack types with at least `min_positives` samples, in fixed order.
    pub fn trainable_types(&self, min_positives: usize) -> Vec<AttackType> {
        AttackType::ALL
            .into_iter()
            .filter(|t| {
                self.positives
                    .iter()
                    .filter(|s| s.meta.attack_type == *t)
                    .count()
                    >= min_positives
            })
            .collect()
    }

    /// Negatives per positive in a per-type training set. The paper uses
    /// 1:1; we use 2:1 because the hard-negative pool (preparation-period
    /// minutes) must be dense enough to carve the "prep alone is not an
    /// attack" boundary at this scale (documented in DESIGN.md).
    pub const NEG_RATIO: usize = 2;

    /// Training set for one attack type: its positives plus
    /// `NEG_RATIO ×` negatives. Negatives are relabelled with the type so
    /// the sample metadata stays coherent.
    pub fn for_type(&self, ty: AttackType) -> Vec<Sample> {
        let pos: Vec<Sample> = self
            .positives
            .iter()
            .filter(|s| s.meta.attack_type == ty)
            .cloned()
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ (ty.index() as u64) << 17);
        let mut neg_idx: Vec<usize> = (0..self.negatives.len()).collect();
        for i in (1..neg_idx.len()).rev() {
            neg_idx.swap(i, rng.random_range(0..=i));
        }
        let mut out = pos;
        let n_pos = out.len();
        for &i in neg_idx
            .iter()
            .take((Self::NEG_RATIO * n_pos).min(self.negatives.len()))
        {
            let mut n = self.negatives[i].clone();
            n.meta.attack_type = ty;
            out.push(n);
        }
        out
    }

    /// Table 2 style counts: per-type (train-period) positives.
    pub fn counts_by_type(&self) -> [usize; 6] {
        let mut out = [0usize; 6];
        for s in &self.positives {
            out[s.meta.attack_type.index()] += 1;
        }
        out
    }
}

/// Snapshots the three context sequences and the window from a pooled
/// history as of `window_start`. Returns `None` if the raw ring no longer
/// holds the needed minutes.
fn snapshot(
    cfg: &XatuConfig,
    h: &PooledHistory,
    customer: Ipv4,
    window_start: u32,
) -> Option<Sample> {
    let window_end = window_start + cfg.window as u32;
    let window = h.raw_range(window_start, window_end)?;
    let short_span = cfg.short_len as u32 * cfg.timescales.0;
    let short_start = window_start.saturating_sub(short_span);
    let short_raw = h.raw_range(short_start, window_start)?;
    let short = if cfg.timescales.0 == 1 {
        short_raw
    } else {
        xatu_nn::pooling::avg_pool(&short_raw, cfg.timescales.0 as usize)
    };
    let medium = h.medium_tail_before(window_start, cfg.medium_len)?;
    let long = h.long_tail_before(window_start, cfg.long_len)?;
    // Too early in the stream for coarse context: the model requires at
    // least one medium and one long state (it holds the coarse hidden
    // constant between bucket completions).
    if window.is_empty() || short.is_empty() || medium.is_empty() || long.is_empty() {
        return None;
    }
    let narrow = |v: Vec<Vec<f64>>| -> Vec<Vec<f32>> {
        v.into_iter()
            .map(|f| f.into_iter().map(|x| x as f32).collect())
            .collect()
    };
    Some(Sample {
        short: narrow(short),
        medium: narrow(medium),
        long: narrow(long),
        window: narrow(window),
        label: false,
        event_step: cfg.window,
        anomaly_step: None,
        meta: SampleMeta {
            customer,
            attack_type: AttackType::UdpFlood, // overwritten by callers
            window_start,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use xatu_features::frame::{FeatureFrame, NUM_FEATURES};
    use xatu_features::pooled_history::Timescales;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 10, 60),
            short_len: 20,
            medium_len: 6,
            long_len: 2,
            window: 10,
            ..XatuConfig::smoke_test()
        }
    }

    fn histories(_c: &XatuConfig, minutes: u32) -> HashMap<Ipv4, PooledHistory> {
        // Tests push the whole stream before collecting, so retention must
        // cover everything (the pipeline collects minute-by-minute and
        // needs only `raw_history_minutes`).
        let mut h = PooledHistory::new(
            Timescales {
                short: 1,
                medium: 10,
                long: 60,
            },
            minutes as usize,
            300,
        );
        for m in 0..minutes {
            let mut f = FeatureFrame::zeros();
            f.0[0] = m as f64;
            h.push(f);
        }
        let mut map = HashMap::new();
        map.insert(Ipv4(1), h);
        map
    }

    #[test]
    fn split_is_50_20_30() {
        let s = SplitBoundaries::from_days(100);
        assert_eq!(s.train_end, 50 * MINUTES_PER_DAY);
        assert_eq!(s.val_end, 70 * MINUTES_PER_DAY);
        assert_eq!(s.stabilization_end, 80 * MINUTES_PER_DAY);
        assert_eq!(s.total, 100 * MINUTES_PER_DAY);
        assert_eq!(s.period_of(0), Period::Train);
        assert_eq!(s.period_of(s.train_end), Period::Validation);
        assert_eq!(s.period_of(s.val_end), Period::Stabilization);
        assert_eq!(s.period_of(s.stabilization_end), Period::Test);
    }

    #[test]
    fn positive_sample_carries_event_and_anomaly_steps() {
        let c = cfg();
        let mut b = DatasetBuilder::new(&c, 0.0);
        let h = histories(&c, 500);
        // Onset at 400; window starts at 390; alert at 404.
        b.on_alert(Ipv4(1), AttackType::TcpAck, 400, 404);
        b.collect_ready(399, &h); // too early: window incomplete
        assert_eq!(b.positive_count(), 0);
        b.collect_ready(400 - WINDOW_LEAD + 10, &h);
        assert_eq!(b.positive_count(), 1);
        let bundle = b.finish(&[]);
        let s = &bundle.positives[0];
        assert!(s.label);
        assert_eq!(s.meta.window_start, 390);
        // The raw step 404 − 390 + 1 = 15 exceeds the 10-minute window and
        // is clamped: CDet detected after the window closed.
        assert_eq!(s.event_step, 10);
        // Raw anomaly step 400 − 390 + 1 = 11 is one past this test's
        // 10-minute window (window == lead) and clamps to the last step.
        assert_eq!(s.anomaly_step, Some(10));
        assert_eq!(s.window.len(), 10);
        // Window frames carry the right minutes in feature 0.
        assert_eq!(s.window[0][0], 390.0);
        assert_eq!(s.short.len(), 20);
        assert_eq!(s.short[19][0], 389.0);
        s.validate().unwrap();
    }

    #[test]
    fn negatives_near_alerts_are_filtered() {
        let c = cfg();
        let mut b = DatasetBuilder::new(&c, 1.0);
        let h = histories(&c, 500);
        b.maybe_negative(Ipv4(1), 300, false);
        b.maybe_negative(Ipv4(1), 450, false);
        b.collect_ready(480, &h);
        let bundle = b.finish(&[(Ipv4(1), 310)]);
        // The 300-minute candidate is within ±(window+60) of the alert.
        assert_eq!(bundle.negatives.len(), 1);
        assert_eq!(bundle.negatives[0].meta.window_start, 450);
    }

    #[test]
    fn per_type_sets_are_balanced() {
        let c = cfg();
        let mut b = DatasetBuilder::new(&c, 1.0);
        let h = histories(&c, 3000);
        for k in 0..4 {
            b.on_alert(Ipv4(1), AttackType::UdpFlood, 500 + k * 100, 505 + k * 100);
        }
        for m in (1000..2500).step_by(100) {
            b.maybe_negative(Ipv4(1), m, false);
        }
        b.collect_ready(2990, &h);
        let bundle = b.finish(&[]);
        assert_eq!(bundle.counts_by_type()[0], 4);
        let set = bundle.for_type(AttackType::UdpFlood);
        let pos = set.iter().filter(|s| s.label).count();
        let neg = set.len() - pos;
        assert_eq!(pos, 4);
        assert_eq!(neg, DatasetBundle::NEG_RATIO * 4);
        assert!(set
            .iter()
            .all(|s| s.meta.attack_type == AttackType::UdpFlood));
    }

    #[test]
    fn trainable_types_respects_minimum() {
        let c = cfg();
        let mut b = DatasetBuilder::new(&c, 0.0);
        let h = histories(&c, 1000);
        b.on_alert(Ipv4(1), AttackType::IcmpFlood, 500, 505);
        b.collect_ready(990, &h);
        let bundle = b.finish(&[]);
        assert_eq!(bundle.trainable_types(1), vec![AttackType::IcmpFlood]);
        assert!(bundle.trainable_types(2).is_empty());
    }

    #[test]
    fn snapshot_fails_gracefully_past_retention() {
        let c = cfg();
        let h = histories(&c, 5000);
        // Window start far in the discarded past.
        assert!(snapshot(&c, &h[&Ipv4(1)], Ipv4(1), 10).is_none());
    }

    #[test]
    fn snapshot_has_full_feature_width() {
        let c = cfg();
        let h = histories(&c, 500);
        let s = snapshot(&c, &h[&Ipv4(1)], Ipv4(1), 400).unwrap();
        assert_eq!(s.window[0].len(), NUM_FEATURES);
        assert_eq!(s.medium.len(), c.medium_len);
        assert_eq!(s.long.len(), c.long_len);
    }
}
