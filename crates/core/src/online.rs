//! The streaming, auto-regressive Xatu detector.
//!
//! One [`OnlineDetector`] instance serves one attack type across all
//! customers. Per customer it keeps the three LSTM states, a partial
//! medium/long pooling bucket, and a rolling survival accumulator over the
//! last `window` hazards. An alert is raised when the rolling survival
//! drops below the calibrated threshold and ends after it has recovered
//! for a quiet period — the "consistent detection" behaviour §4.2 asks for.
//!
//! Auto-regression (§5.3): the pipeline feeds every alert this detector
//! raises back into the A2/A4/A5 trackers of the feature extractor it is
//! served features from.
//!
//! # Degraded input
//!
//! Real collectors drop minutes, deliver flows late, and occasionally emit
//! garbage. The detector's contract under degradation:
//!
//! * **Out-of-order minutes are rejected**, never silently absorbed —
//!   [`OnlineDetector::observe`] returns
//!   [`XatuError::OutOfOrderMinute`](crate::error::XatuError) and leaves
//!   the customer's state untouched.
//! * **Short gaps are imputed** by zero-order hold: each missing minute
//!   replays the customer's last sanitized frame so LSTM clocks, pooling
//!   buckets and the survival window stay aligned with wall time.
//! * **Staleness widens uncertainty.** Every imputed minute grows a
//!   per-customer stale run; the reported survival is blended toward 1.0
//!   (no evidence of attack) as the run approaches the survival window, and
//!   *new* alerts are suppressed once the input is fully stale. An open
//!   alert can still end — a scrubbing centre must not hold traffic on
//!   evidence that no longer exists.
//! * **Long gaps cold-restart the customer**: beyond `3 × window` missing
//!   minutes the imputation would be fiction, so the state is rebuilt from
//!   scratch (ending any open alert) and warm-up runs again.
//! * **Non-finite feature values are zeroed** on ingestion, before they
//!   can poison the LSTM cell state; every replacement is counted.

use crate::checkpoint::{CustomerCheckpoint, DetectorCheckpoint, DualStateCheckpoint};
use crate::config::XatuConfig;
use crate::error::XatuError;
use crate::fusion::{ErrorNormalizer, FusionMode};
use crate::model::{DualState, ModelConfig, StreamingState, XatuModel};
use std::collections::HashMap;
use xatu_detectors::alert::Alert;
use xatu_detectors::traits::DetectorEvent;
use xatu_features::frame::{NUM_FEATURES, VOLUMETRIC_WIDTH};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_nn::{AeWorkspace, FrameArena, LstmAutoencoder, LstmState, Params};
use xatu_obs::{Counter, FixedHistogram, GAP_RUN_BOUNDS, SURVIVAL_BOUNDS};
use xatu_survival::hazard::RollingSurvival;

/// Telemetry embedded in the detector hot path.
///
/// Plain counters and fixed-bucket histograms — one integer add (plus one
/// float compare chain per histogram) per observation, no locks, no
/// allocation, compiled out entirely without the `obs` feature. Alert
/// lifecycle counts and the survival distribution are functions of the
/// seeded input stream alone, so they are digest-safe when folded into a
/// [`xatu_obs::Registry`].
#[derive(Clone, Debug)]
pub struct DetectorObs {
    /// Alerts raised.
    pub raised: Counter,
    /// Alerts ended for any reason (includes force-ends; `close_all` ends
    /// are counted separately by the caller if needed).
    pub ended: Counter,
    /// Alerts ended *because* they hit `max_alert_minutes`.
    pub force_ended: Counter,
    /// Observations swallowed by per-customer warm-up suppression.
    pub warmup_suppressed: Counter,
    /// Distribution of rolling survival values over every observation.
    pub survival: FixedHistogram,
    /// Missing minutes filled by zero-order-hold imputation.
    pub gaps_imputed: Counter,
    /// Non-finite feature values zeroed on ingestion.
    pub values_sanitized: Counter,
    /// Out-of-order minutes rejected.
    pub out_of_order: Counter,
    /// Customer states rebuilt after a gap too long to impute.
    pub cold_restarts: Counter,
    /// Distribution of gap-run lengths (imputed or skipped minutes).
    pub gap_runs: FixedHistogram,
    /// Degradation-ladder transitions into companion-weighted fusion
    /// (the CDet feed went dark with a companion attached).
    pub fusion_engaged: Counter,
    /// Transitions back out of full companion weight (feed recovery
    /// started a re-warm-up ramp).
    pub fusion_recovered: Counter,
    /// Minutes whose reported survival actually included the companion's
    /// reconstruction score (ring full, companion attached).
    pub fusion_ae_minutes: Counter,
}

impl Default for DetectorObs {
    fn default() -> Self {
        DetectorObs {
            raised: Counter::new(),
            ended: Counter::new(),
            force_ended: Counter::new(),
            warmup_suppressed: Counter::new(),
            survival: FixedHistogram::new(SURVIVAL_BOUNDS),
            gaps_imputed: Counter::new(),
            values_sanitized: Counter::new(),
            out_of_order: Counter::new(),
            cold_restarts: Counter::new(),
            gap_runs: FixedHistogram::new(GAP_RUN_BOUNDS),
            fusion_engaged: Counter::new(),
            fusion_recovered: Counter::new(),
            fusion_ae_minutes: Counter::new(),
        }
    }
}

impl DetectorObs {
    /// Adds another recorder's counts into this one. The fleet detector's
    /// workers each record into their own `DetectorObs` and fold into the
    /// detector's aggregate in shard order after every batch; counter adds
    /// and bucket-wise histogram merges are order-independent, so the
    /// aggregate is identical for every thread count.
    pub fn merge_from(&mut self, other: &DetectorObs) {
        self.raised.add(other.raised.get());
        self.ended.add(other.ended.get());
        self.force_ended.add(other.force_ended.get());
        self.warmup_suppressed.add(other.warmup_suppressed.get());
        self.survival.merge(&other.survival);
        self.gaps_imputed.add(other.gaps_imputed.get());
        self.values_sanitized.add(other.values_sanitized.get());
        self.out_of_order.add(other.out_of_order.get());
        self.cold_restarts.add(other.cold_restarts.get());
        self.gap_runs.merge(&other.gap_runs);
        self.fusion_engaged.add(other.fusion_engaged.get());
        self.fusion_recovered.add(other.fusion_recovered.get());
        self.fusion_ae_minutes.add(other.fusion_ae_minutes.get());
    }

    /// Zeroes every counter and histogram in place, keeping allocations,
    /// so a per-worker recorder can be reused without allocating.
    pub fn reset(&mut self) {
        self.raised.reset();
        self.ended.reset();
        self.force_ended.reset();
        self.warmup_suppressed.reset();
        self.survival.reset();
        self.gaps_imputed.reset();
        self.values_sanitized.reset();
        self.out_of_order.reset();
        self.cold_restarts.reset();
        self.gap_runs.reset();
        self.fusion_engaged.reset();
        self.fusion_recovered.reset();
        self.fusion_ae_minutes.reset();
    }
}

/// The unsupervised reconstruction companion attached to a detector.
///
/// A trained [`LstmAutoencoder`] over the volumetric feature block (width
/// [`VOLUMETRIC_WIDTH`]) plus its benign-error calibration and the fusion
/// rule. The companion never sees auxiliary features, so its score is
/// unaffected when the CDet feed drops — the degradation ladder shifts
/// weight onto it instead of falling back to volumetric-only thresholds.
#[derive(Clone, Debug)]
pub struct Companion {
    /// The trained autoencoder (`input_dim` must be [`VOLUMETRIC_WIDTH`]).
    pub ae: LstmAutoencoder,
    /// Benign-quantile reconstruction-error normalizer.
    pub norm: ErrorNormalizer,
    /// How the survival score and the companion score are combined.
    pub mode: FusionMode,
    /// Window length (minutes) the autoencoder scores over.
    pub window: usize,
}

/// Per-customer streaming state.
#[derive(Clone)]
struct CustomerState {
    lstm: StreamingState,
    survival: RollingSurvival,
    /// Partial medium bucket: (sum, count).
    med_partial: (Vec<f64>, u32),
    /// Partial long bucket.
    long_partial: (Vec<f64>, u32),
    active: Option<Alert>,
    quiet_run: u32,
    last_survival: f64,
    /// Observations seen so far (for warm-up suppression).
    observed: u32,
    /// Last sanitized frame — the zero-order-hold imputation source.
    last_frame: Vec<f64>,
    /// Consecutive imputed minutes ending at the current step.
    stale_run: u32,
    /// Newest minute this customer has been driven to.
    last_minute: Option<u32>,
    /// Companion ring buffer: the last `window` volumetric slices, flat
    /// (`window × VOLUMETRIC_WIDTH`). Empty when no companion is attached.
    ae_ring: Vec<f64>,
    /// Next write slot in the ring (frame index, not scalar offset).
    ae_head: usize,
    /// Frames written so far, saturating at the companion window.
    ae_filled: usize,
}

/// Scalar knobs copied out of the detector so the per-minute free
/// functions can borrow the customer map mutably alongside them.
#[derive(Clone, Copy)]
struct Tunables {
    attack_type: AttackType,
    threshold: f64,
    window: usize,
    quiet: u32,
    warmup: u32,
    max_alert_minutes: u32,
    med_gran: u32,
    long_gran: u32,
    ctx: (usize, usize, usize),
    /// Stale run at which the blend saturates and raises are suppressed.
    stale_limit: u32,
    /// Longest gap bridged by imputation; anything longer cold-restarts.
    max_imputed_gap: u32,
    /// Companion ring length in frames (0 when no companion is attached).
    ae_window: usize,
}

/// Per-call companion context: the trained companion plus the detector's
/// shared scratch buffers, borrowed alongside the customer map by the
/// per-minute free functions.
struct CompanionCtx<'a> {
    comp: &'a Companion,
    ws: &'a mut AeWorkspace,
    scratch: &'a mut FrameArena,
    /// Degradation shift for this minute (1 = score purely from the
    /// companion, 0 = configured combine).
    ae_weight: f64,
}

/// The streaming detector for one attack type.
#[derive(Clone)]
pub struct OnlineDetector {
    model: XatuModel,
    attack_type: AttackType,
    threshold: f64,
    window: usize,
    quiet: u32,
    /// Per-customer observations to ignore before alerting: LSTM states
    /// need to settle from their cold start (the paper's stabilization
    /// period serves the same purpose at evaluation scale).
    warmup: u32,
    /// Training context lengths: the streaming dual states reset on these
    /// periods so serving matches the training distribution.
    ctx_lens: (usize, usize, usize),
    /// Maximum alert duration: the scrubbing centre stops diverting a
    /// customer's traffic once it runs clean (§2.1), so a stuck alert is
    /// force-ended after this many minutes and must re-trigger.
    max_alert_minutes: u32,
    customers: HashMap<Ipv4, CustomerState>,
    obs: DetectorObs,
    /// Optional unsupervised companion; `None` leaves every observation
    /// bit-identical to a companion-free detector.
    companion: Option<Companion>,
    /// Shared autoencoder workspace (reused across customers — scoring is
    /// sequential within one detector).
    ae_ws: AeWorkspace,
    /// Scratch window assembled from a customer's ring before scoring.
    ae_scratch: FrameArena,
    /// Ladder state: is the CDet feed currently considered dark?
    feed_degraded: bool,
    /// Re-warm-up minutes left on the companion-weight ramp (counts down
    /// after feed recovery).
    rewarm_left: u32,
    /// Full length of the re-warm-up ramp.
    rewarm_len: u32,
}

impl OnlineDetector {
    /// Wraps a trained model with a calibrated threshold.
    pub fn new(model: XatuModel, attack_type: AttackType, threshold: f64, cfg: &XatuConfig) -> Self {
        OnlineDetector {
            model,
            attack_type,
            threshold,
            window: cfg.window,
            quiet: 5,
            warmup: 2 * cfg.window as u32,
            ctx_lens: (cfg.short_len, cfg.medium_len, cfg.long_len),
            max_alert_minutes: 45,
            customers: HashMap::new(),
            obs: DetectorObs::default(),
            companion: None,
            ae_ws: AeWorkspace::new(),
            ae_scratch: FrameArena::new(VOLUMETRIC_WIDTH),
            feed_degraded: false,
            rewarm_left: 0,
            rewarm_len: cfg.window.max(1) as u32,
        }
    }

    /// Attaches the unsupervised companion. Every customer's companion ring
    /// is (re)built empty, so scoring re-warms over the next `window`
    /// minutes; the survival path itself is untouched until a ring fills.
    ///
    /// # Panics
    /// Panics if the autoencoder's input width is not [`VOLUMETRIC_WIDTH`]
    /// or the companion window is zero.
    pub fn set_companion(&mut self, companion: Companion) {
        assert_eq!(
            companion.ae.input_dim(),
            VOLUMETRIC_WIDTH,
            "companion autoencoder must score the volumetric block"
        );
        assert!(companion.window >= 1, "companion window must be >= 1");
        let flat = companion.window * VOLUMETRIC_WIDTH;
        for s in self.customers.values_mut() {
            s.ae_ring.clear();
            s.ae_ring.resize(flat, 0.0);
            s.ae_head = 0;
            s.ae_filled = 0;
        }
        self.companion = Some(companion);
    }

    /// The attached companion, if any.
    pub fn companion(&self) -> Option<&Companion> {
        self.companion.as_ref()
    }

    /// Once-per-minute ladder tick from the driving loop: `true` while the
    /// CDet feed is dark. With a companion attached, going dark shifts the
    /// fused score fully onto the companion ([`DetectorObs::fusion_engaged`]);
    /// recovery starts a linear re-warm-up ramp back to the configured
    /// combine ([`DetectorObs::fusion_recovered`]). Without a companion this
    /// only records the flag, changing nothing else.
    pub fn set_feed_degraded(&mut self, degraded: bool) {
        if self.companion.is_none() {
            self.feed_degraded = degraded;
            return;
        }
        if degraded && !self.feed_degraded {
            self.obs.fusion_engaged.inc();
            self.rewarm_left = 0;
        } else if !degraded && self.feed_degraded {
            self.obs.fusion_recovered.inc();
            self.rewarm_left = self.rewarm_len;
        } else if !degraded && self.rewarm_left > 0 {
            self.rewarm_left -= 1;
        }
        self.feed_degraded = degraded;
    }

    /// The current companion weight in `[0, 1]`: 1 while the feed is dark,
    /// ramping linearly back to 0 over the re-warm-up after recovery.
    /// Always 0 without a companion.
    pub fn companion_weight(&self) -> f64 {
        if self.companion.is_none() {
            return 0.0;
        }
        if self.feed_degraded {
            1.0
        } else if self.rewarm_len == 0 {
            0.0
        } else {
            (self.rewarm_left as f64 / self.rewarm_len as f64).clamp(0.0, 1.0)
        }
    }

    /// The detector's embedded telemetry.
    pub fn obs(&self) -> &DetectorObs {
        &self.obs
    }

    /// Zeroes the embedded telemetry — used when a cloned detector starts a
    /// fresh recording scope (the pipeline's test runs fork the phase-B
    /// checkpoint and must not re-count its observations).
    pub fn reset_obs(&mut self) {
        self.obs = DetectorObs::default();
    }

    /// The force-end cap, in minutes from `detected_at`.
    pub fn max_alert_minutes(&self) -> u32 {
        self.max_alert_minutes
    }

    /// Overrides the warm-up length (observations per customer before
    /// alerts may fire).
    pub fn set_warmup(&mut self, warmup: u32) {
        self.warmup = warmup;
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the threshold (re-calibration between periods).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The attack type this detector serves.
    pub fn attack_type(&self) -> AttackType {
        self.attack_type
    }

    fn tunables(&self) -> Tunables {
        let (_, med_gran, long_gran) = self.model.cfg.timescales;
        Tunables {
            attack_type: self.attack_type,
            threshold: self.threshold,
            window: self.window,
            quiet: self.quiet,
            warmup: self.warmup,
            max_alert_minutes: self.max_alert_minutes,
            med_gran,
            long_gran,
            ctx: self.ctx_lens,
            stale_limit: (self.window as u32).max(1),
            max_imputed_gap: 3 * self.window as u32,
            ae_window: self.companion.as_ref().map_or(0, |c| c.window),
        }
    }

    /// Feeds one minute's feature frame for `customer`; returns the hazard,
    /// the (possibly staleness-blended) rolling survival, and any lifecycle
    /// events — including events from minutes imputed to bridge a gap since
    /// the customer's previous observation.
    ///
    /// Fails on a wrong-width frame or a minute at or before the
    /// customer's newest, leaving the customer state untouched in both
    /// cases.
    pub fn observe(
        &mut self,
        customer: Ipv4,
        minute: u32,
        frame: &[f64],
    ) -> Result<(f64, f64, Vec<DetectorEvent>), XatuError> {
        if frame.len() != NUM_FEATURES {
            return Err(XatuError::DimensionMismatch {
                expected: NUM_FEATURES,
                found: frame.len(),
            });
        }
        let p = self.tunables();
        let ae_weight = self.companion_weight();
        let mut ctx = self.companion.as_ref().map(|comp| CompanionCtx {
            comp,
            ws: &mut self.ae_ws,
            scratch: &mut self.ae_scratch,
            ae_weight,
        });
        let state = entry(&mut self.customers, &self.model, &p, customer);
        let mut events = Vec::new();
        catch_up(
            &self.model,
            &p,
            &mut self.obs,
            state,
            customer,
            minute,
            ctx.as_mut(),
            &mut events,
        )?;

        // Sanitize the incoming frame into the ZOH buffer in place.
        let mut replaced = 0u64;
        for (dst, &v) in state.last_frame.iter_mut().zip(frame) {
            *dst = if v.is_finite() {
                v
            } else {
                replaced += 1;
                0.0
            };
        }
        if replaced > 0 {
            self.obs.values_sanitized.add(replaced);
        }
        // A real frame ends any stale run.
        if state.stale_run > 0 {
            self.obs.gap_runs.observe(state.stale_run as f64);
            state.stale_run = 0;
        }
        let (hazard, survival) = step_minute(
            &self.model,
            &p,
            &mut self.obs,
            state,
            customer,
            minute,
            false,
            ctx.as_mut(),
            &mut events,
        );
        state.last_minute = Some(minute);
        Ok((hazard, survival, events))
    }

    /// Drives `customer` through a minute known to be absent (collector
    /// outage, per-customer gap) without waiting for the next real frame:
    /// the minute is imputed immediately, so alert lifecycle decisions —
    /// in particular ending an alert whose evidence has gone stale — happen
    /// on time instead of retroactively.
    pub fn observe_gap(
        &mut self,
        customer: Ipv4,
        minute: u32,
    ) -> Result<(f64, f64, Vec<DetectorEvent>), XatuError> {
        let p = self.tunables();
        let ae_weight = self.companion_weight();
        let mut ctx = self.companion.as_ref().map(|comp| CompanionCtx {
            comp,
            ws: &mut self.ae_ws,
            scratch: &mut self.ae_scratch,
            ae_weight,
        });
        let state = entry(&mut self.customers, &self.model, &p, customer);
        let mut events = Vec::new();
        catch_up(
            &self.model,
            &p,
            &mut self.obs,
            state,
            customer,
            minute,
            ctx.as_mut(),
            &mut events,
        )?;
        let (hazard, survival) = step_minute(
            &self.model,
            &p,
            &mut self.obs,
            state,
            customer,
            minute,
            true,
            ctx.as_mut(),
            &mut events,
        );
        state.last_minute = Some(minute);
        Ok((hazard, survival, events))
    }

    /// The current rolling survival for a customer (1.0 if unseen).
    pub fn survival_of(&self, customer: Ipv4) -> f64 {
        self.customers
            .get(&customer)
            .map_or(1.0, |s| s.last_survival)
    }

    /// Forces any open alerts to end at `minute` (end of evaluation).
    pub fn close_all(&mut self, minute: u32) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for state in self.customers.values_mut() {
            if let Some(mut alert) = state.active.take() {
                alert.mitigation_end = Some(minute);
                self.obs.ended.inc();
                events.push(DetectorEvent::Ended(alert));
            }
        }
        events
    }

    /// Snapshots the full detector — configuration, model parameters, and
    /// every customer's streaming state — into a checkpoint. Telemetry is
    /// deliberately excluded: counters restart at zero on resume and cover
    /// the resumed segment only.
    pub fn to_checkpoint(&mut self) -> DetectorCheckpoint {
        let mut params = vec![0.0; self.model.param_count()];
        self.model.export_params_into(&mut params);
        let mut customers: Vec<&Ipv4> = self.customers.keys().collect();
        customers.sort_unstable_by_key(|a| a.0);
        let customers = customers
            .into_iter()
            .map(|addr| {
                let s = &self.customers[addr];
                let dual = [&s.lstm.short, &s.lstm.medium, &s.lstm.long].map(|d| {
                    let (aged, fresh) = d.states();
                    let (aged_age, fresh_age) = d.ages();
                    DualStateCheckpoint {
                        aged_h: aged.h.clone(),
                        aged_c: aged.c.clone(),
                        fresh_h: fresh.h.clone(),
                        fresh_c: fresh.c.clone(),
                        aged_age,
                        fresh_age,
                        period: d.period(),
                    }
                });
                let (window, buf, head, filled, sum) = s.survival.state();
                CustomerCheckpoint {
                    addr: addr.0,
                    dual,
                    survival: (window as u64, buf.to_vec(), head as u64, filled as u64, sum),
                    med_partial: (s.med_partial.0.clone(), s.med_partial.1),
                    long_partial: (s.long_partial.0.clone(), s.long_partial.1),
                    active_since: s.active.map(|a| a.detected_at),
                    quiet_run: s.quiet_run,
                    last_survival: s.last_survival,
                    observed: s.observed,
                    last_frame: s.last_frame.clone(),
                    stale_run: s.stale_run,
                    last_minute: s.last_minute,
                }
            })
            .collect();
        DetectorCheckpoint {
            attack_type: self.attack_type,
            threshold: self.threshold,
            window: self.window as u64,
            quiet: self.quiet,
            warmup: self.warmup,
            ctx_lens: (
                self.ctx_lens.0 as u64,
                self.ctx_lens.1 as u64,
                self.ctx_lens.2 as u64,
            ),
            max_alert_minutes: self.max_alert_minutes,
            timescales: self.model.cfg.timescales,
            hidden: self.model.cfg.hidden as u64,
            mode: self.model.cfg.mode,
            params,
            customers,
        }
    }

    /// Rebuilds a detector from a checkpoint, validating every invariant
    /// the streaming logic depends on (shape agreement, finite floats,
    /// consistent dual-state ages). The result resumes bit-identically to
    /// the detector that was snapshotted. Validation failures surface as
    /// [`XatuError::InvalidCheckpoint`].
    pub fn from_checkpoint(ck: &DetectorCheckpoint) -> Result<Self, XatuError> {
        let cfg = ModelConfig {
            timescales: ck.timescales,
            hidden: ck.hidden as usize,
            mode: ck.mode,
        };
        if ck.timescales.0 == 0 || ck.timescales.1 == 0 || ck.timescales.2 == 0 {
            return Err(XatuError::invalid_checkpoint(
                "timescale granularities must be >= 1",
            ));
        }
        let mut model = XatuModel::with_config(cfg);
        if ck.params.len() != model.param_count() {
            return Err(XatuError::invalid_checkpoint(format!(
                "checkpoint has {} parameters, model shape needs {}",
                ck.params.len(),
                model.param_count()
            )));
        }
        if ck.params.iter().any(|v| !v.is_finite()) {
            return Err(XatuError::invalid_checkpoint("non-finite model parameter"));
        }
        model.import_params_from(&ck.params);

        let window = ck.window as usize;
        if window == 0 {
            return Err(XatuError::invalid_checkpoint("survival window must be >= 1"));
        }
        let mut customers = HashMap::with_capacity(ck.customers.len());
        for c in &ck.customers {
            let state = restore_customer(&model, c, window, ck)
                .map_err(|e| XatuError::invalid_checkpoint(format!("customer {}: {e}", c.addr)))?;
            if customers.insert(Ipv4(c.addr), state).is_some() {
                return Err(XatuError::invalid_checkpoint(format!(
                    "customer {} appears twice",
                    c.addr
                )));
            }
        }
        Ok(OnlineDetector {
            model,
            attack_type: ck.attack_type,
            threshold: ck.threshold,
            window,
            quiet: ck.quiet,
            warmup: ck.warmup,
            ctx_lens: (
                ck.ctx_lens.0 as usize,
                ck.ctx_lens.1 as usize,
                ck.ctx_lens.2 as usize,
            ),
            max_alert_minutes: ck.max_alert_minutes,
            customers,
            obs: DetectorObs::default(),
            companion: None,
            ae_ws: AeWorkspace::new(),
            ae_scratch: FrameArena::new(VOLUMETRIC_WIDTH),
            feed_degraded: false,
            rewarm_left: 0,
            rewarm_len: (ck.window as u32).max(1),
        })
    }
}

/// Fetches or cold-creates one customer's state. A free function over the
/// map field (not a method) so the caller can keep borrowing the model and
/// telemetry alongside the returned state.
fn entry<'a>(
    customers: &'a mut HashMap<Ipv4, CustomerState>,
    model: &XatuModel,
    p: &Tunables,
    customer: Ipv4,
) -> &'a mut CustomerState {
    let (sl, ml, ll) = p.ctx;
    customers.entry(customer).or_insert_with(|| CustomerState {
        lstm: model.new_streaming_state(sl, ml, ll),
        survival: RollingSurvival::new(p.window),
        med_partial: (vec![0.0; NUM_FEATURES], 0),
        long_partial: (vec![0.0; NUM_FEATURES], 0),
        active: None,
        quiet_run: 0,
        last_survival: 1.0,
        observed: 0,
        last_frame: vec![0.0; NUM_FEATURES],
        stale_run: 0,
        last_minute: None,
        ae_ring: vec![0.0; p.ae_window * VOLUMETRIC_WIDTH],
        ae_head: 0,
        ae_filled: 0,
    })
}

/// Rebuilds one customer's state from its checkpoint record.
fn restore_customer(
    model: &XatuModel,
    c: &CustomerCheckpoint,
    window: usize,
    ck: &DetectorCheckpoint,
) -> Result<CustomerState, String> {
    let [short, medium, long] = &c.dual;
    let duals: Vec<DualState> = [short, medium, long]
        .into_iter()
        .map(|d| {
            DualState::restore(
                LstmState {
                    h: d.aged_h.clone(),
                    c: d.aged_c.clone(),
                },
                LstmState {
                    h: d.fresh_h.clone(),
                    c: d.fresh_c.clone(),
                },
                d.aged_age,
                d.fresh_age,
                d.period,
            )
            .map_err(String::from)
        })
        .collect::<Result<_, _>>()?;
    let hidden = model.cfg.hidden;
    for d in &duals {
        if d.states().0.h.len() != hidden {
            return Err(format!(
                "dual-state hidden size {} does not match model hidden {hidden}",
                d.states().0.h.len()
            ));
        }
    }
    let mut it = duals.into_iter();
    let lstm = StreamingState::from_parts(
        it.next().expect("three duals"),
        it.next().expect("three duals"),
        it.next().expect("three duals"),
    );

    let (w, buf, head, filled, sum) = &c.survival;
    if *w as usize != window {
        return Err(format!("survival window {w} does not match detector window {window}"));
    }
    let survival =
        RollingSurvival::restore(*w as usize, buf.clone(), *head as usize, *filled as usize, *sum)
            .map_err(String::from)?;

    for (name, partial) in [("medium", &c.med_partial), ("long", &c.long_partial)] {
        if partial.0.len() != NUM_FEATURES {
            return Err(format!("{name} partial bucket has width {}", partial.0.len()));
        }
        if partial.0.iter().any(|v| !v.is_finite()) {
            return Err(format!("non-finite value in {name} partial bucket"));
        }
    }
    let (_, med_gran, long_gran) = ck.timescales;
    if c.med_partial.1 >= med_gran || c.long_partial.1 >= long_gran {
        return Err("partial bucket count at or past its granularity".into());
    }
    if c.last_frame.len() != NUM_FEATURES {
        return Err(format!("last frame has width {}", c.last_frame.len()));
    }
    if c.last_frame.iter().any(|v| !v.is_finite()) || !c.last_survival.is_finite() {
        return Err("non-finite value in customer scalars".into());
    }
    Ok(CustomerState {
        lstm,
        survival,
        med_partial: (c.med_partial.0.clone(), c.med_partial.1),
        long_partial: (c.long_partial.0.clone(), c.long_partial.1),
        active: c.active_since.map(|detected_at| Alert {
            customer: Ipv4(c.addr),
            attack_type: ck.attack_type,
            detected_at,
            mitigation_end: None,
        }),
        quiet_run: c.quiet_run,
        last_survival: c.last_survival,
        observed: c.observed,
        last_frame: c.last_frame.clone(),
        stale_run: c.stale_run,
        last_minute: c.last_minute,
        // Companion state is deliberately not checkpointed: a companion is
        // re-attached after restore via `set_companion`, which re-warms the
        // rings. The solo resume path stays bit-identical either way.
        ae_ring: Vec::new(),
        ae_head: 0,
        ae_filled: 0,
    })
}

/// Validates minute ordering and bridges any gap since the customer's last
/// observation: short gaps are imputed minute by minute, long gaps
/// cold-restart the customer.
#[allow(clippy::too_many_arguments)]
fn catch_up(
    model: &XatuModel,
    p: &Tunables,
    obs: &mut DetectorObs,
    state: &mut CustomerState,
    customer: Ipv4,
    minute: u32,
    mut comp: Option<&mut CompanionCtx>,
    events: &mut Vec<DetectorEvent>,
) -> Result<(), XatuError> {
    let Some(last) = state.last_minute else {
        return Ok(());
    };
    if minute <= last {
        obs.out_of_order.inc();
        return Err(XatuError::OutOfOrderMinute {
            customer,
            minute,
            last,
        });
    }
    let gap = minute - last - 1;
    if gap == 0 {
        return Ok(());
    }
    if gap > p.max_imputed_gap {
        // Imputing hours of fiction would be slower *and* wronger than
        // admitting the context is gone.
        obs.gap_runs.observe(gap as f64);
        cold_restart(model, p, obs, state, minute, events);
    } else {
        for m in last + 1..minute {
            step_minute(model, p, obs, state, customer, m, true, comp.as_deref_mut(), events);
        }
    }
    Ok(())
}

/// Rebuilds a customer from scratch after an unbridgeable gap: ends any
/// open alert, resets every accumulator, and re-enters warm-up.
fn cold_restart(
    model: &XatuModel,
    p: &Tunables,
    obs: &mut DetectorObs,
    state: &mut CustomerState,
    minute: u32,
    events: &mut Vec<DetectorEvent>,
) {
    if let Some(mut alert) = state.active.take() {
        alert.mitigation_end = Some(minute);
        obs.ended.inc();
        events.push(DetectorEvent::Ended(alert));
    }
    let (sl, ml, ll) = p.ctx;
    state.lstm = model.new_streaming_state(sl, ml, ll);
    state.survival = RollingSurvival::new(p.window);
    state.med_partial.0.iter_mut().for_each(|v| *v = 0.0);
    state.med_partial.1 = 0;
    state.long_partial.0.iter_mut().for_each(|v| *v = 0.0);
    state.long_partial.1 = 0;
    state.quiet_run = 0;
    state.last_survival = 1.0;
    state.observed = 0;
    state.last_frame.iter_mut().for_each(|v| *v = 0.0);
    state.stale_run = 0;
    state.ae_ring.iter_mut().for_each(|v| *v = 0.0);
    state.ae_head = 0;
    state.ae_filled = 0;
    obs.cold_restarts.inc();
}

/// Advances one customer by one minute, stepping from the sanitized
/// `last_frame` (the caller has already refreshed it for real minutes;
/// imputed minutes replay it as-is). Returns `(hazard, reported
/// survival)`; lifecycle events append to `events`.
#[allow(clippy::too_many_arguments)]
fn step_minute(
    model: &XatuModel,
    p: &Tunables,
    obs: &mut DetectorObs,
    state: &mut CustomerState,
    customer: Ipv4,
    minute: u32,
    imputed: bool,
    mut comp: Option<&mut CompanionCtx>,
    events: &mut Vec<DetectorEvent>,
) -> (f64, f64) {
    // Disjoint field borrows: the ZOH frame is read while the accumulators
    // are written.
    let CustomerState {
        lstm,
        survival,
        med_partial,
        long_partial,
        active,
        quiet_run,
        last_survival,
        observed,
        last_frame,
        stale_run,
        ae_ring,
        ae_head,
        ae_filled,
        ..
    } = state;
    let frame: &[f64] = last_frame;

    if imputed {
        *stale_run += 1;
        obs.gaps_imputed.inc();
    }

    // The companion ring tracks the exact stream the LSTM sees — real and
    // imputed minutes both — so its window stays aligned with wall time.
    if let Some(ctx) = comp.as_deref_mut() {
        let w = ctx.comp.window;
        if ae_ring.len() == w * VOLUMETRIC_WIDTH {
            let start = *ae_head * VOLUMETRIC_WIDTH;
            ae_ring[start..start + VOLUMETRIC_WIDTH]
                .copy_from_slice(&frame[..VOLUMETRIC_WIDTH]);
            *ae_head = (*ae_head + 1) % w;
            if *ae_filled < w {
                *ae_filled += 1;
            }
        }
    }

    // Accumulate pooling buckets; complete ones step the coarse LSTMs.
    let med_bucket = accumulate(med_partial, frame, p.med_gran);
    let long_bucket = accumulate(long_partial, frame, p.long_gran);
    let hazard = model.step_streaming(lstm, frame, med_bucket.as_deref(), long_bucket.as_deref());
    let raw = survival.push(hazard);

    // Staleness blend: with no fresh evidence the reported survival decays
    // toward 1.0 ("nothing observable is wrong") as the stale run
    // approaches the survival window. The clean path (stale_run == 0)
    // reports `raw` untouched, bit-identically to a fault-free run.
    let reported = if *stale_run == 0 {
        raw
    } else {
        let w = (*stale_run).min(p.stale_limit) as f64 / p.stale_limit as f64;
        raw + (1.0 - raw) * w
    };

    // Companion fusion: once the ring holds a full window, blend the
    // survival score with the autoencoder's reconstruction score. Until
    // then (cold start, post-restore re-warm) the solo score passes
    // through untouched — and with no companion attached, this branch
    // never runs, so every value below stays bit-identical.
    let reported = match comp {
        Some(ctx) if *ae_filled == ctx.comp.window && !ae_ring.is_empty() => {
            let w = ctx.comp.window;
            ctx.scratch.reset(VOLUMETRIC_WIDTH);
            for i in 0..w {
                let t = (*ae_head + i) % w;
                ctx.scratch
                    .push(&ae_ring[t * VOLUMETRIC_WIDTH..(t + 1) * VOLUMETRIC_WIDTH]);
            }
            let err = ctx.comp.ae.reconstruction_error(ctx.scratch, ctx.ws);
            let ae_score = ctx.comp.norm.score(err);
            obs.fusion_ae_minutes.inc();
            ctx.comp.mode.fuse(reported, ae_score, ctx.ae_weight)
        }
        _ => reported,
    };
    *last_survival = reported;
    *observed += 1;
    obs.survival.observe(reported);

    if *observed <= p.warmup {
        obs.warmup_suppressed.inc();
        return (hazard, reported);
    }
    match *active {
        None => {
            // Stale input can never *raise*: a new alert needs fresh
            // evidence, and an imputed minute only replays old evidence.
            // (Open alerts may still *end* on stale input, below.)
            if reported < p.threshold && *stale_run == 0 {
                let alert = Alert {
                    customer,
                    attack_type: p.attack_type,
                    detected_at: minute,
                    mitigation_end: None,
                };
                *active = Some(alert);
                *quiet_run = 0;
                obs.raised.inc();
                events.push(DetectorEvent::Raised(alert));
            }
        }
        Some(mut alert) => {
            let over_cap = minute.saturating_sub(alert.detected_at) >= p.max_alert_minutes;
            if reported < p.threshold && !over_cap {
                *quiet_run = 0;
            } else {
                *quiet_run += 1;
                if *quiet_run >= p.quiet || over_cap {
                    alert.mitigation_end = Some(minute);
                    *active = None;
                    *quiet_run = 0;
                    obs.ended.inc();
                    if over_cap {
                        obs.force_ended.inc();
                    }
                    events.push(DetectorEvent::Ended(alert));
                }
            }
        }
    }
    (hazard, reported)
}

/// Adds `frame` to a partial bucket; when `gran` frames accumulated,
/// returns the averaged bucket and resets.
fn accumulate(partial: &mut (Vec<f64>, u32), frame: &[f64], gran: u32) -> Option<Vec<f64>> {
    for (a, v) in partial.0.iter_mut().zip(frame) {
        *a += v;
    }
    partial.1 += 1;
    if partial.1 == gran {
        let inv = 1.0 / gran as f64;
        let bucket = partial.0.iter().map(|v| v * inv).collect();
        partial.0.iter_mut().for_each(|v| *v = 0.0);
        partial.1 = 0;
        Some(bucket)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XatuConfig;
    use crate::sample::{Sample, SampleMeta};
    use crate::trainer::train;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            epochs: 40,
            batch_size: 4,
            lr: 2e-2,
            ..XatuConfig::smoke_test()
        }
    }

    fn frame(v: f64) -> Vec<f64> {
        let mut f = vec![0.0; NUM_FEATURES];
        f[0] = v;
        f
    }

    /// Trains a model to fire when feature 0 ramps.
    fn trained_model(c: &XatuConfig) -> XatuModel {
        let mut samples = Vec::new();
        for i in 0..16 {
            let label = i % 2 == 0;
            let f32frame = |v: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[0] = v;
                f
            };
            let window: Vec<Vec<f32>> = (0..c.window)
                .map(|t| {
                    if label && t >= 2 {
                        f32frame(2.0)
                    } else {
                        f32frame(0.05)
                    }
                })
                .collect();
            samples.push(Sample {
                short: vec![f32frame(0.05); c.short_len],
                medium: vec![f32frame(0.05); c.medium_len],
                long: vec![f32frame(0.05); c.long_len],
                window,
                label,
                event_step: c.window,
                anomaly_step: label.then_some(3),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            });
        }
        let mut model = XatuModel::new(c);
        train(&mut model, &samples, c).expect("training succeeds");
        model
    }

    fn obs(det: &mut OnlineDetector, cust: Ipv4, m: u32, v: f64) -> (f64, f64, Vec<DetectorEvent>) {
        det.observe(cust, m, &frame(v)).expect("in-order observe")
    }

    #[test]
    fn quiet_stream_never_alerts() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..200 {
            let (_, s, events) = obs(&mut det, Ipv4(1), m, 0.05);
            assert!(events.is_empty(), "minute {m}: survival {s}");
            if m > 30 {
                assert!(s > 0.5, "minute {m}: settled survival {s}");
            }
        }
    }

    #[test]
    fn ramp_triggers_alert_and_recovery_ends_it() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        let mut raised = None;
        let mut ended = None;
        for m in 0..300u32 {
            let v = if (100..140).contains(&m) { 2.0 } else { 0.05 };
            let (_, _, events) = obs(&mut det, Ipv4(1), m, v);
            for e in events {
                match e {
                    DetectorEvent::Raised(a) => raised = Some(a.detected_at),
                    DetectorEvent::Ended(a) => ended = Some(a.mitigation_end.unwrap()),
                }
            }
        }
        let raised = raised.expect("alert raised");
        let ended = ended.expect("alert ended");
        // Dual-state context promotion plus the rolling window add lag in
        // this tiny configuration; the alert must land on (or right after)
        // the surge, and must end once survival recovers.
        assert!((100..155).contains(&raised), "raised at {raised}");
        assert!(ended > raised, "ended at {ended}");
    }

    #[test]
    fn customers_are_independent() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        let mut cust2_alerts = 0;
        for m in 0..160u32 {
            let v1 = if m >= 100 { 2.0 } else { 0.05 };
            obs(&mut det, Ipv4(1), m, v1);
            let (_, _, ev) = obs(&mut det, Ipv4(2), m, 0.05);
            cust2_alerts += ev.len();
        }
        assert_eq!(cust2_alerts, 0);
        assert!(det.survival_of(Ipv4(1)) < det.survival_of(Ipv4(2)));
    }

    #[test]
    fn close_all_ends_open_alerts() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..130u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            obs(&mut det, Ipv4(1), m, v);
        }
        let events = det.close_all(130);
        assert_eq!(events.len(), 1);
        if let DetectorEvent::Ended(a) = events[0] {
            assert_eq!(a.mitigation_end, Some(130));
        }
    }

    #[test]
    fn stuck_alert_is_force_ended_at_the_cap() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        // Quiet lead-in, then a surge that never recovers: the scrubbing
        // centre's cap must cut the alert loose at max_alert_minutes.
        let mut spans = Vec::new();
        for m in 0..300u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            let (_, _, events) = obs(&mut det, Ipv4(1), m, v);
            for e in events {
                if let DetectorEvent::Ended(a) = e {
                    spans.push((a.detected_at, a.mitigation_end.unwrap()));
                }
            }
        }
        assert!(!spans.is_empty(), "stuck alert was never force-ended");
        for (start, end) in &spans {
            assert_eq!(
                end - start,
                det.max_alert_minutes(),
                "span {start}..{end} not cut at the cap"
            );
        }
        if xatu_obs::enabled() {
            let obs = det.obs();
            // Every recorded end here is a force-end, and the detector
            // re-raises right after each one.
            assert_eq!(obs.force_ended.get(), spans.len() as u64);
            assert_eq!(obs.ended.get(), spans.len() as u64);
            assert!(obs.raised.get() > spans.len() as u64);
            // One customer, warmup = 2 * window observations suppressed.
            assert_eq!(obs.warmup_suppressed.get(), 2 * c.window as u64);
            assert_eq!(obs.survival.count(), 300);
        }
    }

    #[test]
    fn threshold_zero_never_fires() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.0, &c);
        for m in 0..150u32 {
            let (_, _, ev) = obs(&mut det, Ipv4(1), m, 2.0);
            assert!(ev.is_empty());
        }
    }

    #[test]
    fn out_of_order_minutes_are_rejected() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        obs(&mut det, Ipv4(1), 10, 0.05);
        let before = det.survival_of(Ipv4(1));
        // Repeat and regress both fail, and neither perturbs state.
        for bad in [10, 3] {
            match det.observe(Ipv4(1), bad, &frame(0.05)) {
                Err(XatuError::OutOfOrderMinute { minute, last, .. }) => {
                    assert_eq!(minute, bad);
                    assert_eq!(last, 10);
                }
                other => panic!("expected OutOfOrderMinute, got {other:?}"),
            }
        }
        assert_eq!(before.to_bits(), det.survival_of(Ipv4(1)).to_bits());
        // The stream continues normally afterwards.
        obs(&mut det, Ipv4(1), 11, 0.05);
        if xatu_obs::enabled() {
            assert_eq!(det.obs().out_of_order.get(), 2);
        }
    }

    #[test]
    fn wrong_width_frame_is_rejected() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        assert!(matches!(
            det.observe(Ipv4(1), 0, &[0.0; 4]),
            Err(XatuError::DimensionMismatch {
                expected: NUM_FEATURES,
                found: 4
            })
        ));
    }

    #[test]
    fn short_gaps_are_imputed_and_the_stream_survives() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..60u32 {
            obs(&mut det, Ipv4(1), m, 0.05);
        }
        // Skip minutes 60..=64; minute 65 must impute five ZOH steps.
        let (_, s, _) = obs(&mut det, Ipv4(1), 65, 0.05);
        assert!(s.is_finite() && s > 0.5, "post-gap survival {s}");
        for m in 66..120u32 {
            let (_, s, _) = obs(&mut det, Ipv4(1), m, 0.05);
            assert!(s.is_finite());
        }
        if xatu_obs::enabled() {
            assert_eq!(det.obs().gaps_imputed.get(), 5);
            assert_eq!(det.obs().cold_restarts.get(), 0);
            assert_eq!(det.obs().gap_runs.count(), 1);
            // Wall-clock accounting stays aligned: 120 driven minutes.
            assert_eq!(det.obs().survival.count(), 120);
        }
    }

    #[test]
    fn staleness_blends_survival_toward_one_and_suppresses_raises() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        // Attack traffic throughout warm-up and beyond, but with the
        // threshold at 0.0 nothing can fire; then the feed goes dark.
        det.set_threshold(0.0);
        for m in 0..100u32 {
            obs(&mut det, Ipv4(1), m, 2.0);
        }
        det.set_threshold(0.5);
        let mut last = det.survival_of(Ipv4(1));
        assert!(last < 0.5, "attack survival {last}");
        // Drive explicit gap minutes: reported survival must rise
        // monotonically toward 1.0 as the ZOH evidence goes stale, and no
        // alert may be raised on fully stale input.
        for m in 100..120u32 {
            let (_, s, ev) = det.observe_gap(Ipv4(1), m).expect("in-order gap");
            // Essentially monotone: the ZOH hazard can wobble slightly as
            // coarse buckets complete, but the blend must dominate.
            assert!(s >= last - 0.05, "minute {m}: blend regressed {last} -> {s}");
            assert!(
                !ev.iter().any(|e| matches!(e, DetectorEvent::Raised(_))),
                "raised on stale input at minute {m}"
            );
            last = s;
        }
        assert!(last > 0.9, "fully stale survival {last}");
    }

    #[test]
    fn open_alert_ends_while_the_feed_is_dark() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        let mut raised = false;
        for m in 0..115u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            let (_, _, ev) = obs(&mut det, Ipv4(1), m, v);
            raised |= ev.iter().any(|e| matches!(e, DetectorEvent::Raised(_)));
        }
        assert!(raised, "surge never raised");
        // Feed goes dark mid-alert: the staleness blend must recover the
        // survival and end the alert without any real frame arriving.
        let mut ended_at = None;
        for m in 115..160u32 {
            let (_, _, ev) = det.observe_gap(Ipv4(1), m).expect("in-order gap");
            if let Some(DetectorEvent::Ended(a)) =
                ev.iter().find(|e| matches!(e, DetectorEvent::Ended(_)))
            {
                ended_at = Some(a.mitigation_end.unwrap());
                break;
            }
        }
        let ended_at = ended_at.expect("alert never ended during the outage");
        assert!(ended_at < 140, "alert lingered until {ended_at}");
    }

    #[test]
    fn long_gaps_cold_restart_the_customer() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        // Get an alert open, then vanish for far longer than 3×window.
        for m in 0..110u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            obs(&mut det, Ipv4(1), m, v);
        }
        let (_, s, ev) = obs(&mut det, Ipv4(1), 500, 0.05);
        assert!(
            ev.iter().any(|e| matches!(e, DetectorEvent::Ended(_))),
            "cold restart must end the open alert"
        );
        assert!(s.is_finite());
        if xatu_obs::enabled() {
            assert_eq!(det.obs().cold_restarts.get(), 1);
            assert_eq!(det.obs().gaps_imputed.get(), 0);
        }
        // Re-warm-up: the restarted customer cannot alert immediately.
        // Minute 500 was its first post-restart observation, so the
        // warm-up window covers minutes 500..500+warmup-1.
        for m in 501..(500 + det.warmup) {
            let (_, _, ev) = obs(&mut det, Ipv4(1), m, 2.0);
            assert!(ev.is_empty(), "alerted during re-warm-up at {m}");
        }
    }

    #[test]
    fn non_finite_frames_are_sanitized_not_propagated() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..40u32 {
            let mut f = frame(0.05);
            if m % 5 == 0 {
                f[0] = f64::NAN;
                f[17] = f64::INFINITY;
            }
            let (h, s, _) = det.observe(Ipv4(1), m, &f).expect("in-order");
            assert!(h.is_finite() && s.is_finite(), "minute {m}: {h} {s}");
        }
        assert!(det.survival_of(Ipv4(1)).is_finite());
        if xatu_obs::enabled() {
            assert_eq!(det.obs().values_sanitized.get(), 16);
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        // A messy prefix: two customers, a surge, a gap, an open alert.
        for m in 0..130u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            if m != 57 && m != 58 {
                obs(&mut det, Ipv4(1), m, v);
            }
            obs(&mut det, Ipv4(2), m, 0.05);
        }
        let ck = det.to_checkpoint();
        let mut resumed = OnlineDetector::from_checkpoint(&ck).expect("restore");
        // Continue both detectors through recovery and a second surge.
        for m in 130..260u32 {
            let v = if (180..200).contains(&m) { 2.0 } else { 0.05 };
            let (h1, s1, e1) = obs(&mut det, Ipv4(1), m, v);
            let (h2, s2, e2) = obs(&mut resumed, Ipv4(1), m, v);
            assert_eq!(h1.to_bits(), h2.to_bits(), "hazard diverged at {m}");
            assert_eq!(s1.to_bits(), s2.to_bits(), "survival diverged at {m}");
            assert_eq!(e1, e2, "events diverged at {m}");
            let (_, s1b, _) = obs(&mut det, Ipv4(2), m, 0.05);
            let (_, s2b, _) = obs(&mut resumed, Ipv4(2), m, 0.05);
            assert_eq!(s1b.to_bits(), s2b.to_bits(), "customer 2 diverged at {m}");
        }
    }

    /// A companion whose normalizer is calibrated on this test's benign
    /// traffic (feature 0 at `0.05`). The autoencoder is untrained — the
    /// tests only need benign windows to score near 0 and attack windows
    /// near 1, which calibration alone guarantees.
    fn companion_for(c: &XatuConfig) -> Companion {
        use xatu_nn::init::Initializer;
        let ae = LstmAutoencoder::new(VOLUMETRIC_WIDTH, 4, &mut Initializer::new(3));
        let mut ws = AeWorkspace::new();
        let mut win = FrameArena::new(VOLUMETRIC_WIDTH);
        for _ in 0..c.window {
            let mut f = vec![0.0; VOLUMETRIC_WIDTH];
            f[0] = 0.05;
            win.push(&f);
        }
        let err = ae.reconstruction_error(&win, &mut ws);
        Companion {
            norm: ErrorNormalizer::from_benign_errors(&[err]),
            mode: FusionMode::MaxCombine,
            window: c.window,
            ae,
        }
    }

    #[test]
    fn companion_scores_attacks_while_the_feed_is_dark() {
        let c = cfg();
        // Untrained survival model: any alert below must come from the
        // companion, via the full-degradation weight.
        let mut det = OnlineDetector::new(XatuModel::new(&c), AttackType::UdpFlood, 0.5, &c);
        det.set_companion(companion_for(&c));
        let mut raised_at = None;
        let mut ended_at = None;
        for m in 0..160u32 {
            det.set_feed_degraded(true);
            let v = if (60..80).contains(&m) { 2.0 } else { 0.05 };
            let (_, s, ev) = obs(&mut det, Ipv4(1), m, v);
            assert!(s.is_finite());
            for e in ev {
                match e {
                    DetectorEvent::Raised(a) if raised_at.is_none() => {
                        raised_at = Some(a.detected_at)
                    }
                    DetectorEvent::Ended(a) if ended_at.is_none() => {
                        ended_at = a.mitigation_end
                    }
                    _ => {}
                }
            }
        }
        let raised_at = raised_at.expect("companion never raised during the surge");
        assert!(
            (60..80).contains(&raised_at),
            "companion raised at {raised_at}, surge was 60..80"
        );
        let ended_at = ended_at.expect("companion alert never ended");
        assert!(ended_at >= 80, "ended at {ended_at} before the surge cleared");
        if xatu_obs::enabled() {
            assert_eq!(det.obs().fusion_engaged.get(), 1);
            assert_eq!(det.obs().fusion_recovered.get(), 0);
            // The ring fills after `window` minutes; every later minute is
            // companion-scored.
            assert_eq!(
                det.obs().fusion_ae_minutes.get(),
                160 - c.window as u64 + 1
            );
        }
    }

    #[test]
    fn companion_weight_ramps_down_over_the_rewarm_window() {
        let c = cfg();
        let mut det = OnlineDetector::new(XatuModel::new(&c), AttackType::UdpFlood, 0.5, &c);
        // Without a companion the ladder flag changes nothing.
        det.set_feed_degraded(true);
        assert_eq!(det.companion_weight(), 0.0);
        if xatu_obs::enabled() {
            assert_eq!(det.obs().fusion_engaged.get(), 0);
        }
        det.set_feed_degraded(false);

        det.set_companion(companion_for(&c));
        assert_eq!(det.companion_weight(), 0.0);
        det.set_feed_degraded(true);
        assert_eq!(det.companion_weight(), 1.0);
        det.set_feed_degraded(true);
        assert_eq!(det.companion_weight(), 1.0);
        // Recovery: full weight at the transition, then a strictly
        // decreasing ramp that reaches 0 and stays there.
        det.set_feed_degraded(false);
        let mut last = det.companion_weight();
        assert_eq!(last, 1.0);
        for _ in 0..2 * c.window {
            det.set_feed_degraded(false);
            let w = det.companion_weight();
            assert!(w <= last, "rewarm weight rose {last} -> {w}");
            last = w;
        }
        assert_eq!(last, 0.0);
        if xatu_obs::enabled() {
            assert_eq!(det.obs().fusion_engaged.get(), 1);
            assert_eq!(det.obs().fusion_recovered.get(), 1);
        }
    }

    #[test]
    fn companion_rings_rewarm_after_checkpoint_restore() {
        let c = cfg();
        let mut det = OnlineDetector::new(XatuModel::new(&c), AttackType::UdpFlood, 0.5, &c);
        det.set_companion(companion_for(&c));
        for m in 0..40u32 {
            obs(&mut det, Ipv4(1), m, 0.05);
        }
        let ck = det.to_checkpoint();
        let mut resumed = OnlineDetector::from_checkpoint(&ck).expect("restore");
        assert!(resumed.companion().is_none(), "companion is not checkpointed");
        resumed.set_companion(companion_for(&c));
        for m in 40..80u32 {
            let (_, s, _) = resumed.observe(Ipv4(1), m, &frame(0.05)).expect("in-order");
            assert!(s.is_finite());
        }
        if xatu_obs::enabled() {
            // The restored ring starts empty: the first `window - 1`
            // resumed minutes pass through solo, then scoring resumes.
            assert_eq!(
                resumed.obs().fusion_ae_minutes.get(),
                40 - c.window as u64 + 1
            );
        }
    }

    #[test]
    fn checkpoint_rejects_corrupt_customers() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..50u32 {
            obs(&mut det, Ipv4(1), m, 0.05);
        }
        let good = det.to_checkpoint();

        let mut bad = good.clone();
        bad.customers[0].last_frame.truncate(10);
        assert!(OnlineDetector::from_checkpoint(&bad).is_err());

        let mut bad = good.clone();
        bad.customers[0].dual[0].aged_h[0] = f64::NAN;
        assert!(OnlineDetector::from_checkpoint(&bad).is_err());

        let mut bad = good.clone();
        bad.params.pop();
        assert!(OnlineDetector::from_checkpoint(&bad).is_err());

        let mut bad = good;
        bad.customers[0].survival.0 = 99;
        assert!(OnlineDetector::from_checkpoint(&bad).is_err());
    }
}
