//! The streaming, auto-regressive Xatu detector.
//!
//! One [`OnlineDetector`] instance serves one attack type across all
//! customers. Per customer it keeps the three LSTM states, a partial
//! medium/long pooling bucket, and a rolling survival accumulator over the
//! last `window` hazards. An alert is raised when the rolling survival
//! drops below the calibrated threshold and ends after it has recovered
//! for a quiet period — the "consistent detection" behaviour §4.2 asks for.
//!
//! Auto-regression (§5.3): the pipeline feeds every alert this detector
//! raises back into the A2/A4/A5 trackers of the feature extractor it is
//! served features from.

use crate::config::XatuConfig;
use crate::model::{StreamingState, XatuModel};
use std::collections::HashMap;
use xatu_detectors::alert::Alert;
use xatu_detectors::traits::DetectorEvent;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_obs::{Counter, FixedHistogram, SURVIVAL_BOUNDS};
use xatu_survival::hazard::RollingSurvival;

/// Telemetry embedded in the detector hot path.
///
/// Plain counters and a fixed-bucket histogram — one integer add (plus one
/// float compare chain for the histogram) per observation, no locks, no
/// allocation, compiled out entirely without the `obs` feature. Alert
/// lifecycle counts and the survival distribution are functions of the
/// seeded input stream alone, so they are digest-safe when folded into a
/// [`xatu_obs::Registry`].
#[derive(Clone, Debug)]
pub struct DetectorObs {
    /// Alerts raised.
    pub raised: Counter,
    /// Alerts ended for any reason (includes force-ends; `close_all` ends
    /// are counted separately by the caller if needed).
    pub ended: Counter,
    /// Alerts ended *because* they hit `max_alert_minutes`.
    pub force_ended: Counter,
    /// Observations swallowed by per-customer warm-up suppression.
    pub warmup_suppressed: Counter,
    /// Distribution of rolling survival values over every observation.
    pub survival: FixedHistogram,
}

impl Default for DetectorObs {
    fn default() -> Self {
        DetectorObs {
            raised: Counter::new(),
            ended: Counter::new(),
            force_ended: Counter::new(),
            warmup_suppressed: Counter::new(),
            survival: FixedHistogram::new(SURVIVAL_BOUNDS),
        }
    }
}

/// Per-customer streaming state.
#[derive(Clone)]
struct CustomerState {
    lstm: StreamingState,
    survival: RollingSurvival,
    /// Partial medium bucket: (sum, count).
    med_partial: (Vec<f64>, u32),
    /// Partial long bucket.
    long_partial: (Vec<f64>, u32),
    active: Option<Alert>,
    quiet_run: u32,
    last_survival: f64,
    /// Observations seen so far (for warm-up suppression).
    observed: u32,
}

/// The streaming detector for one attack type.
#[derive(Clone)]
pub struct OnlineDetector {
    model: XatuModel,
    attack_type: AttackType,
    threshold: f64,
    window: usize,
    quiet: u32,
    /// Per-customer observations to ignore before alerting: LSTM states
    /// need to settle from their cold start (the paper's stabilization
    /// period serves the same purpose at evaluation scale).
    warmup: u32,
    /// Training context lengths: the streaming dual states reset on these
    /// periods so serving matches the training distribution.
    ctx_lens: (usize, usize, usize),
    /// Maximum alert duration: the scrubbing centre stops diverting a
    /// customer's traffic once it runs clean (§2.1), so a stuck alert is
    /// force-ended after this many minutes and must re-trigger.
    max_alert_minutes: u32,
    customers: HashMap<Ipv4, CustomerState>,
    obs: DetectorObs,
}

impl OnlineDetector {
    /// Wraps a trained model with a calibrated threshold.
    pub fn new(model: XatuModel, attack_type: AttackType, threshold: f64, cfg: &XatuConfig) -> Self {
        OnlineDetector {
            model,
            attack_type,
            threshold,
            window: cfg.window,
            quiet: 5,
            warmup: 2 * cfg.window as u32,
            ctx_lens: (cfg.short_len, cfg.medium_len, cfg.long_len),
            max_alert_minutes: 45,
            customers: HashMap::new(),
            obs: DetectorObs::default(),
        }
    }

    /// The detector's embedded telemetry.
    pub fn obs(&self) -> &DetectorObs {
        &self.obs
    }

    /// Zeroes the embedded telemetry — used when a cloned detector starts a
    /// fresh recording scope (the pipeline's test runs fork the phase-B
    /// checkpoint and must not re-count its observations).
    pub fn reset_obs(&mut self) {
        self.obs = DetectorObs::default();
    }

    /// The force-end cap, in minutes from `detected_at`.
    pub fn max_alert_minutes(&self) -> u32 {
        self.max_alert_minutes
    }

    /// Overrides the warm-up length (observations per customer before
    /// alerts may fire).
    pub fn set_warmup(&mut self, warmup: u32) {
        self.warmup = warmup;
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the threshold (re-calibration between periods).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The attack type this detector serves.
    pub fn attack_type(&self) -> AttackType {
        self.attack_type
    }

    /// Feeds one minute's feature frame for `customer`; returns the hazard,
    /// the rolling survival, and any lifecycle events.
    pub fn observe(
        &mut self,
        customer: Ipv4,
        minute: u32,
        frame: &[f64],
    ) -> (f64, f64, Vec<DetectorEvent>) {
        let dim = frame.len();
        let (_, med_gran, long_gran) = self.model.cfg.timescales;
        let window = self.window;
        let (sl, ml, ll) = self.ctx_lens;
        let state = self.customers.entry(customer).or_insert_with(|| CustomerState {
            lstm: self.model.new_streaming_state(sl, ml, ll),
            survival: RollingSurvival::new(window),
            med_partial: (vec![0.0; dim], 0),
            long_partial: (vec![0.0; dim], 0),
            active: None,
            quiet_run: 0,
            last_survival: 1.0,
            observed: 0,
        });

        // Accumulate pooling buckets; complete ones step the coarse LSTMs.
        let med_bucket = accumulate(&mut state.med_partial, frame, med_gran);
        let long_bucket = accumulate(&mut state.long_partial, frame, long_gran);

        let hazard = self.model.step_streaming(
            &mut state.lstm,
            frame,
            med_bucket.as_deref(),
            long_bucket.as_deref(),
        );
        let survival = state.survival.push(hazard);
        state.last_survival = survival;
        state.observed += 1;
        self.obs.survival.observe(survival);

        let mut events = Vec::new();
        if state.observed <= self.warmup {
            self.obs.warmup_suppressed.inc();
            return (hazard, survival, events);
        }
        match state.active {
            None => {
                if survival < self.threshold {
                    let alert = Alert {
                        customer,
                        attack_type: self.attack_type,
                        detected_at: minute,
                        mitigation_end: None,
                    };
                    state.active = Some(alert);
                    state.quiet_run = 0;
                    self.obs.raised.inc();
                    events.push(DetectorEvent::Raised(alert));
                }
            }
            Some(mut alert) => {
                let over_cap =
                    minute.saturating_sub(alert.detected_at) >= self.max_alert_minutes;
                if survival < self.threshold && !over_cap {
                    state.quiet_run = 0;
                } else {
                    state.quiet_run += 1;
                    if state.quiet_run >= self.quiet || over_cap {
                        alert.mitigation_end = Some(minute);
                        state.active = None;
                        state.quiet_run = 0;
                        self.obs.ended.inc();
                        if over_cap {
                            self.obs.force_ended.inc();
                        }
                        events.push(DetectorEvent::Ended(alert));
                    }
                }
            }
        }
        (hazard, survival, events)
    }

    /// The current rolling survival for a customer (1.0 if unseen).
    pub fn survival_of(&self, customer: Ipv4) -> f64 {
        self.customers
            .get(&customer)
            .map_or(1.0, |s| s.last_survival)
    }

    /// Forces any open alerts to end at `minute` (end of evaluation).
    pub fn close_all(&mut self, minute: u32) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for state in self.customers.values_mut() {
            if let Some(mut alert) = state.active.take() {
                alert.mitigation_end = Some(minute);
                self.obs.ended.inc();
                events.push(DetectorEvent::Ended(alert));
            }
        }
        events
    }
}

/// Adds `frame` to a partial bucket; when `gran` frames accumulated,
/// returns the averaged bucket and resets.
fn accumulate(partial: &mut (Vec<f64>, u32), frame: &[f64], gran: u32) -> Option<Vec<f64>> {
    for (a, v) in partial.0.iter_mut().zip(frame) {
        *a += v;
    }
    partial.1 += 1;
    if partial.1 == gran {
        let inv = 1.0 / gran as f64;
        let bucket = partial.0.iter().map(|v| v * inv).collect();
        partial.0.iter_mut().for_each(|v| *v = 0.0);
        partial.1 = 0;
        Some(bucket)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XatuConfig;
    use crate::sample::{Sample, SampleMeta};
    use crate::trainer::train;
    use xatu_features::frame::NUM_FEATURES;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            epochs: 40,
            batch_size: 4,
            lr: 2e-2,
            ..XatuConfig::smoke_test()
        }
    }

    fn frame(v: f64) -> Vec<f64> {
        let mut f = vec![0.0; NUM_FEATURES];
        f[0] = v;
        f
    }

    /// Trains a model to fire when feature 0 ramps.
    fn trained_model(c: &XatuConfig) -> XatuModel {
        let mut samples = Vec::new();
        for i in 0..16 {
            let label = i % 2 == 0;
            let f32frame = |v: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[0] = v;
                f
            };
            let window: Vec<Vec<f32>> = (0..c.window)
                .map(|t| {
                    if label && t >= 2 {
                        f32frame(2.0)
                    } else {
                        f32frame(0.05)
                    }
                })
                .collect();
            samples.push(Sample {
                short: vec![f32frame(0.05); c.short_len],
                medium: vec![f32frame(0.05); c.medium_len],
                long: vec![f32frame(0.05); c.long_len],
                window,
                label,
                event_step: c.window,
                anomaly_step: label.then_some(3),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            });
        }
        let mut model = XatuModel::new(c);
        train(&mut model, &samples, c);
        model
    }

    #[test]
    fn quiet_stream_never_alerts() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..200 {
            let (_, s, events) = det.observe(Ipv4(1), m, &frame(0.05));
            assert!(events.is_empty(), "minute {m}: survival {s}");
            if m > 30 {
                assert!(s > 0.5, "minute {m}: settled survival {s}");
            }
        }
    }

    #[test]
    fn ramp_triggers_alert_and_recovery_ends_it() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        let mut raised = None;
        let mut ended = None;
        for m in 0..300u32 {
            let v = if (100..140).contains(&m) { 2.0 } else { 0.05 };
            let (_, _, events) = det.observe(Ipv4(1), m, &frame(v));
            for e in events {
                match e {
                    DetectorEvent::Raised(a) => raised = Some(a.detected_at),
                    DetectorEvent::Ended(a) => ended = Some(a.mitigation_end.unwrap()),
                }
            }
        }
        let raised = raised.expect("alert raised");
        let ended = ended.expect("alert ended");
        // Dual-state context promotion plus the rolling window add lag in
        // this tiny configuration; the alert must land on (or right after)
        // the surge, and must end once survival recovers.
        assert!((100..155).contains(&raised), "raised at {raised}");
        assert!(ended > raised, "ended at {ended}");
    }

    #[test]
    fn customers_are_independent() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        let mut cust2_alerts = 0;
        for m in 0..160u32 {
            let v1 = if m >= 100 { 2.0 } else { 0.05 };
            det.observe(Ipv4(1), m, &frame(v1));
            let (_, _, ev) = det.observe(Ipv4(2), m, &frame(0.05));
            cust2_alerts += ev.len();
        }
        assert_eq!(cust2_alerts, 0);
        assert!(det.survival_of(Ipv4(1)) < det.survival_of(Ipv4(2)));
    }

    #[test]
    fn close_all_ends_open_alerts() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        for m in 0..130u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            det.observe(Ipv4(1), m, &frame(v));
        }
        let events = det.close_all(130);
        assert_eq!(events.len(), 1);
        if let DetectorEvent::Ended(a) = events[0] {
            assert_eq!(a.mitigation_end, Some(130));
        }
    }

    #[test]
    fn stuck_alert_is_force_ended_at_the_cap() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.5, &c);
        // Quiet lead-in, then a surge that never recovers: the scrubbing
        // centre's cap must cut the alert loose at max_alert_minutes.
        let mut spans = Vec::new();
        for m in 0..300u32 {
            let v = if m >= 100 { 2.0 } else { 0.05 };
            let (_, _, events) = det.observe(Ipv4(1), m, &frame(v));
            for e in events {
                if let DetectorEvent::Ended(a) = e {
                    spans.push((a.detected_at, a.mitigation_end.unwrap()));
                }
            }
        }
        assert!(!spans.is_empty(), "stuck alert was never force-ended");
        for (start, end) in &spans {
            assert_eq!(
                end - start,
                det.max_alert_minutes(),
                "span {start}..{end} not cut at the cap"
            );
        }
        if xatu_obs::enabled() {
            let obs = det.obs();
            // Every recorded end here is a force-end, and the detector
            // re-raises right after each one.
            assert_eq!(obs.force_ended.get(), spans.len() as u64);
            assert_eq!(obs.ended.get(), spans.len() as u64);
            assert!(obs.raised.get() > spans.len() as u64);
            // One customer, warmup = 2 * window observations suppressed.
            assert_eq!(obs.warmup_suppressed.get(), 2 * c.window as u64);
            assert_eq!(obs.survival.count(), 300);
        }
    }

    #[test]
    fn threshold_zero_never_fires() {
        let c = cfg();
        let model = trained_model(&c);
        let mut det = OnlineDetector::new(model, AttackType::UdpFlood, 0.0, &c);
        for m in 0..150u32 {
            let (_, _, ev) = det.observe(Ipv4(1), m, &frame(2.0));
            assert!(ev.is_empty());
        }
    }
}
