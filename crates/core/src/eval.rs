//! Evaluation plumbing: signature-volume bookkeeping, ground-truth event
//! construction (CDet alert + CUSUM onset), survival-series → alert
//! conversion, and per-system metric computation.

use std::collections::HashMap;
use xatu_detectors::alert::Alert;
use xatu_detectors::cusum::mark_anomaly_start;
use xatu_metrics::areas::{integrate_areas, AttackAreas, ScrubWindow};
use xatu_metrics::delay::{DelayObs, DelayStats};
use xatu_metrics::effectiveness::EffectivenessRecord;
use xatu_metrics::overhead::CustomerOverhead;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_netflow::binning::MinuteFlows;

/// Per-(customer, type) per-minute signature-matching volumes for the whole
/// period. ~24 customers × 6 types × 40 k minutes × 8 B ≈ 46 MB.
pub struct VolumeStore {
    total_minutes: usize,
    /// (customer, type) → per-minute bytes.
    bytes: HashMap<(Ipv4, AttackType), Vec<f32>>,
    /// (customer, type) → per-minute packets.
    packets: HashMap<(Ipv4, AttackType), Vec<f32>>,
}

impl VolumeStore {
    /// Creates a store for `total_minutes` minutes.
    pub fn new(total_minutes: u32) -> Self {
        VolumeStore {
            total_minutes: total_minutes as usize,
            bytes: HashMap::new(),
            packets: HashMap::new(),
        }
    }

    /// Records one customer-minute bin: accumulates signature-matching
    /// volume for every attack type.
    pub fn record(&mut self, bin: &MinuteFlows) {
        for ty in AttackType::ALL {
            let sig = ty.signature();
            let mut b = 0.0f64;
            let mut p = 0.0f64;
            for f in &bin.flows {
                if sig.matches(f) {
                    b += f.est_bytes() as f64;
                    p += f.est_packets() as f64;
                }
            }
            if b > 0.0 {
                let key = (bin.customer, ty);
                let total = self.total_minutes;
                let bytes = self
                    .bytes
                    .entry(key)
                    .or_insert_with(|| vec![0.0; total]);
                bytes[bin.minute as usize] += b as f32;
                let packets = self
                    .packets
                    .entry(key)
                    .or_insert_with(|| vec![0.0; total]);
                packets[bin.minute as usize] += p as f32;
            }
        }
    }

    /// Bytes series for a (customer, type); zeros if never seen.
    pub fn bytes_series(&self, customer: Ipv4, ty: AttackType) -> Option<&[f32]> {
        self.bytes.get(&(customer, ty)).map(Vec::as_slice)
    }

    /// Bytes at one minute.
    pub fn bytes_at(&self, customer: Ipv4, ty: AttackType, minute: u32) -> f64 {
        self.bytes
            .get(&(customer, ty))
            .map_or(0.0, |v| v[minute as usize] as f64)
    }

    /// Packets at one minute.
    pub fn packets_at(&self, customer: Ipv4, ty: AttackType, minute: u32) -> f64 {
        self.packets
            .get(&(customer, ty))
            .map_or(0.0, |v| v[minute as usize] as f64)
    }

    /// Bytes as f64 over a range (clipped to the period).
    pub fn bytes_range(&self, customer: Ipv4, ty: AttackType, start: u32, end: u32) -> Vec<f64> {
        let end = (end as usize).min(self.total_minutes);
        let start = (start as usize).min(end);
        match self.bytes.get(&(customer, ty)) {
            Some(v) => v[start..end].iter().map(|&x| x as f64).collect(),
            None => vec![0.0; end - start],
        }
    }
}

/// A ground-truth event: a CDet alert back-annotated with its CUSUM onset.
#[derive(Clone, Copy, Debug)]
pub struct GtEvent {
    /// Victim customer.
    pub customer: Ipv4,
    /// Attack type from the CDet alert.
    pub attack_type: AttackType,
    /// CUSUM-marked anomaly onset (§2.3 / Appendix A).
    pub anomaly_start: u32,
    /// CDet alert minute.
    pub cdet_detected: u32,
    /// CDet mitigation-end minute.
    pub mitigation_end: u32,
}

impl GtEvent {
    /// Ground-truth anomalous duration in minutes.
    pub fn duration(&self) -> u32 {
        self.mitigation_end.saturating_sub(self.anomaly_start)
    }
}

/// Builds ground-truth events from completed CDet alerts using retroactive
/// CUSUM onset marking over the stored volumes.
pub fn build_ground_truth(alerts: &[Alert], volumes: &VolumeStore) -> Vec<GtEvent> {
    alerts
        .iter()
        .filter_map(|a| {
            let end = a.mitigation_end?;
            let lookback = a.detected_at.saturating_sub(180);
            let series = volumes.bytes_range(a.customer, a.attack_type, lookback, end);
            let onset = mark_anomaly_start(&series, lookback, a.detected_at, a.attack_type);
            Some(GtEvent {
                customer: a.customer,
                attack_type: a.attack_type,
                anomaly_start: onset,
                cdet_detected: a.detected_at,
                mitigation_end: end,
            })
        })
        .collect()
}

/// Converts a per-minute survival (or `1 − p`) series into alert intervals:
/// raise when the score drops below `threshold`, end after `quiet`
/// consecutive recovered minutes.
pub fn alerts_from_score_series(
    scores: &[f32],
    base_minute: u32,
    threshold: f64,
    quiet: u32,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut open: Option<u32> = None;
    let mut quiet_run = 0u32;
    for (i, &s) in scores.iter().enumerate() {
        let m = base_minute + i as u32;
        let firing = (s as f64) < threshold;
        match open {
            None => {
                if firing {
                    open = Some(m);
                    quiet_run = 0;
                }
            }
            Some(start) => {
                if firing {
                    quiet_run = 0;
                } else {
                    quiet_run += 1;
                    if quiet_run >= quiet {
                        out.push((start, m));
                        open = None;
                    }
                }
            }
        }
    }
    if let Some(start) = open {
        out.push((start, base_minute + scores.len() as u32));
    }
    out
}

/// One detection system's alert intervals keyed by (customer, type).
pub type SystemAlerts = HashMap<(Ipv4, AttackType), Vec<(u32, u32)>>;

/// Converts an [`Alert`] list into interval form (open alerts closed at
/// `close_at`).
pub fn intervals_of(alerts: &[Alert], close_at: u32) -> SystemAlerts {
    let mut map: SystemAlerts = HashMap::new();
    for a in alerts {
        map.entry((a.customer, a.attack_type)).or_default().push((
            a.detected_at,
            a.mitigation_end.unwrap_or(close_at),
        ));
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

/// Full evaluation of one system against ground truth over
/// `[eval_start, eval_end)`.
pub struct SystemEval {
    /// System display name.
    pub name: String,
    /// Per-event effectiveness records.
    pub records: Vec<EffectivenessRecord>,
    /// Detection delays (miss-penalized).
    pub delay: DelayStats,
    /// Cumulative per-customer overhead.
    pub overhead: CustomerOverhead,
    /// Events detected / total.
    pub detected: usize,
}

/// How many minutes before the anomaly onset an alert still counts as
/// detecting that event (rather than as extraneous scrubbing of an
/// unrelated blip). Matches the paper's Fig 3 sweep range.
pub const EARLY_CREDIT: u32 = 15;

/// Evaluates a system's alert intervals against ground truth.
pub fn evaluate_system(
    name: &str,
    alerts: &SystemAlerts,
    gt: &[GtEvent],
    volumes: &VolumeStore,
    eval_start: u32,
    eval_end: u32,
) -> SystemEval {
    let mut records = Vec::new();
    let mut delay = DelayStats::new();
    let mut overhead = CustomerOverhead::new();
    let mut detected = 0usize;
    // Customer ids for the overhead accumulator: low 16 bits of the IP.
    let cust_id = |c: Ipv4| c.0 & 0xFFFF;

    let in_eval =
        |e: &GtEvent| e.cdet_detected >= eval_start && e.cdet_detected < eval_end;

    for e in gt.iter().filter(|e| in_eval(e)) {
        let windows: Vec<ScrubWindow> = alerts
            .get(&(e.customer, e.attack_type))
            .map(|v| {
                v.iter()
                    .map(|&(s, t)| ScrubWindow { start: s, end: t })
                    .collect()
            })
            .unwrap_or_default();
        // Detection time: earliest scrub window overlapping the credited
        // span of this event.
        let credit_start = e.anomaly_start.saturating_sub(EARLY_CREDIT);
        let det = windows
            .iter()
            .filter(|w| w.start < e.mitigation_end && w.end > credit_start)
            .map(|w| w.start)
            .min();
        match det {
            Some(d) => {
                detected += 1;
                delay.push(DelayObs::Detected(
                    d as f64 - e.anomaly_start as f64,
                ));
            }
            None => delay.push(DelayObs::Missed(e.duration())),
        }
        let base = credit_start;
        let volume = volumes.bytes_range(e.customer, e.attack_type, base, e.mitigation_end);
        let areas = integrate_areas(&volume, base, e.anomaly_start, e.mitigation_end, &windows);
        overhead.add(cust_id(e.customer), &areas);
        records.push(EffectivenessRecord {
            customer: cust_id(e.customer),
            attack_type: e.attack_type.index(),
            duration_min: e.duration(),
            areas,
        });
    }

    // False-alert overhead: scrubbed volume outside every ground-truth
    // anomaly span and outside every credited pre-onset span.
    for (&(customer, ty), intervals) in alerts {
        let spans: Vec<(u32, u32)> = gt
            .iter()
            .filter(|e| e.customer == customer && e.attack_type == ty)
            .map(|e| (e.anomaly_start.saturating_sub(EARLY_CREDIT), e.mitigation_end))
            .collect();
        let mut extraneous = 0.0;
        for &(s, t) in intervals {
            for m in s.max(eval_start)..t.min(eval_end) {
                if !spans.iter().any(|&(a, b)| m >= a && m < b) {
                    extraneous += volumes.bytes_at(customer, ty, m);
                }
            }
        }
        if extraneous > 0.0 {
            overhead.add_false_alert(cust_id(customer), extraneous);
        }
    }

    SystemEval {
        name: name.to_string(),
        records,
        delay,
        overhead,
        detected,
    }
}

impl SystemEval {
    /// Effectiveness values per event.
    pub fn effectiveness_values(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.areas.effectiveness())
            .collect()
    }

    /// Total A, B, C sums (diagnostics).
    pub fn total_areas(&self) -> AttackAreas {
        let mut t = AttackAreas::default();
        for r in &self.records {
            t.a += r.areas.a;
            t.b += r.areas.b;
            t.c += r.areas.c;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xatu_netflow::record::{FlowRecord, Protocol, TcpFlags};

    fn udp_bin(minute: u32, customer: Ipv4, bytes: u64) -> MinuteFlows {
        MinuteFlows {
            minute,
            customer,
            flows: vec![FlowRecord {
                minute,
                src: Ipv4(9),
                dst: customer,
                proto: Protocol::Udp,
                src_port: 4000,
                dst_port: 5000,
                tcp_flags: TcpFlags::default(),
                bytes,
                packets: bytes / 100,
                sampling: 1,
            }],
        }
    }

    #[test]
    fn volume_store_accumulates_per_signature() {
        let mut vs = VolumeStore::new(10);
        let c = Ipv4(1);
        vs.record(&udp_bin(3, c, 500));
        assert_eq!(vs.bytes_at(c, AttackType::UdpFlood, 3), 500.0);
        // UDP flow without src port 53 does not match DNS amp.
        assert_eq!(vs.bytes_at(c, AttackType::DnsAmplification, 3), 0.0);
        assert_eq!(vs.bytes_at(c, AttackType::UdpFlood, 4), 0.0);
        assert_eq!(vs.bytes_range(c, AttackType::UdpFlood, 2, 5), vec![0.0, 500.0, 0.0]);
    }

    #[test]
    fn score_series_to_alerts_lifecycle() {
        // Scores: quiet(1.0) then firing(0.1) then quiet again.
        let mut scores = vec![1.0f32; 10];
        scores.extend(vec![0.1f32; 5]);
        scores.extend(vec![1.0f32; 10]);
        let alerts = alerts_from_score_series(&scores, 100, 0.5, 3);
        assert_eq!(alerts, vec![(110, 117)]);
    }

    #[test]
    fn open_alert_is_closed_at_series_end() {
        let mut scores = vec![1.0f32; 3];
        scores.extend(vec![0.0f32; 4]);
        let alerts = alerts_from_score_series(&scores, 0, 0.5, 5);
        assert_eq!(alerts, vec![(3, 7)]);
    }

    #[test]
    fn flapping_within_quiet_stays_one_alert() {
        let scores = vec![1.0, 0.1, 1.0, 0.1, 1.0, 0.1, 1.0, 1.0, 1.0, 1.0f32];
        let alerts = alerts_from_score_series(&scores, 0, 0.5, 3);
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn evaluate_perfect_system() {
        let mut vs = VolumeStore::new(100);
        let c = Ipv4(1);
        for m in 40..50 {
            vs.record(&udp_bin(m, c, 1000));
        }
        let gt = vec![GtEvent {
            customer: c,
            attack_type: AttackType::UdpFlood,
            anomaly_start: 40,
            cdet_detected: 45,
            mitigation_end: 50,
        }];
        let mut alerts: SystemAlerts = HashMap::new();
        alerts.insert((c, AttackType::UdpFlood), vec![(40, 50)]);
        let eval = evaluate_system("x", &alerts, &gt, &vs, 0, 100);
        assert_eq!(eval.detected, 1);
        assert_eq!(eval.effectiveness_values(), vec![1.0]);
        assert_eq!(eval.overhead.ratios(), vec![0.0]);
        assert_eq!(eval.delay.summary().median, 0.0);
    }

    #[test]
    fn late_detection_halves_effectiveness() {
        let mut vs = VolumeStore::new(100);
        let c = Ipv4(1);
        for m in 40..50 {
            vs.record(&udp_bin(m, c, 1000));
        }
        let gt = vec![GtEvent {
            customer: c,
            attack_type: AttackType::UdpFlood,
            anomaly_start: 40,
            cdet_detected: 45,
            mitigation_end: 50,
        }];
        let mut alerts: SystemAlerts = HashMap::new();
        alerts.insert((c, AttackType::UdpFlood), vec![(45, 50)]);
        let eval = evaluate_system("x", &alerts, &gt, &vs, 0, 100);
        assert_eq!(eval.effectiveness_values(), vec![0.5]);
        assert_eq!(eval.delay.summary().median, 5.0);
    }

    #[test]
    fn missed_event_counts_as_miss() {
        let vs = VolumeStore::new(100);
        let gt = vec![GtEvent {
            customer: Ipv4(1),
            attack_type: AttackType::UdpFlood,
            anomaly_start: 40,
            cdet_detected: 45,
            mitigation_end: 50,
        }];
        let eval = evaluate_system("x", &HashMap::new(), &gt, &vs, 0, 100);
        assert_eq!(eval.detected, 0);
        assert_eq!(eval.delay.misses(), 1);
    }

    #[test]
    fn false_alert_accrues_customer_overhead() {
        let mut vs = VolumeStore::new(100);
        let c = Ipv4(1);
        // Benign UDP traffic at minutes 10..15 scrubbed by a false alert,
        // plus a real event later so the ratio is defined.
        for m in 10..15 {
            vs.record(&udp_bin(m, c, 200));
        }
        for m in 40..50 {
            vs.record(&udp_bin(m, c, 1000));
        }
        let gt = vec![GtEvent {
            customer: c,
            attack_type: AttackType::UdpFlood,
            anomaly_start: 40,
            cdet_detected: 45,
            mitigation_end: 50,
        }];
        let mut alerts: SystemAlerts = HashMap::new();
        alerts.insert((c, AttackType::UdpFlood), vec![(10, 15), (40, 50)]);
        let eval = evaluate_system("x", &alerts, &gt, &vs, 0, 100);
        // C = 5×200 = 1000; A = 10×1000 = 10000 → 0.1 cumulative.
        assert_eq!(eval.overhead.ratios(), vec![0.1]);
        assert_eq!(eval.effectiveness_values(), vec![1.0]);
    }

    #[test]
    fn early_detection_within_credit_counts() {
        let mut vs = VolumeStore::new(100);
        let c = Ipv4(1);
        for m in 35..50 {
            vs.record(&udp_bin(m, c, if m < 40 { 100 } else { 1000 }));
        }
        let gt = vec![GtEvent {
            customer: c,
            attack_type: AttackType::UdpFlood,
            anomaly_start: 40,
            cdet_detected: 45,
            mitigation_end: 50,
        }];
        let mut alerts: SystemAlerts = HashMap::new();
        alerts.insert((c, AttackType::UdpFlood), vec![(35, 50)]);
        let eval = evaluate_system("x", &alerts, &gt, &vs, 0, 100);
        assert_eq!(eval.detected, 1);
        assert_eq!(eval.delay.summary().median, -5.0);
        assert_eq!(eval.effectiveness_values(), vec![1.0]);
        // Pre-onset scrubbing is the C area: 5×100 / 10×1000.
        assert!((eval.overhead.ratios()[0] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_onset_is_marked_before_detection() {
        let mut vs = VolumeStore::new(400);
        let c = Ipv4(1);
        for m in 0..400 {
            let bytes = if (370..395).contains(&m) { 50_000 } else { 1_000 };
            vs.record(&udp_bin(m, c, bytes));
        }
        let alerts = vec![Alert {
            customer: c,
            attack_type: AttackType::UdpFlood,
            detected_at: 380,
            mitigation_end: Some(395),
        }];
        let gt = build_ground_truth(&alerts, &vs);
        assert_eq!(gt.len(), 1);
        assert!(
            (368..=372).contains(&gt[0].anomaly_start),
            "onset {}",
            gt[0].anomaly_start
        );
    }
}
