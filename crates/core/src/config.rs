//! Configuration of the Xatu model and training loop.

use serde::{Deserialize, Serialize};
use xatu_features::frame::FeatureMask;

/// Which of the three LSTMs are active — the Fig 18(b) ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimescaleMode {
    /// All three LSTMs (full Xatu).
    All,
    /// Only the short-timescale LSTM.
    ShortOnly,
    /// Drop the short LSTM.
    NoShort,
    /// Drop the medium LSTM.
    NoMedium,
    /// Drop the long LSTM.
    NoLong,
}

impl TimescaleMode {
    /// Whether each of (short, medium, long) is enabled.
    pub fn enabled(self) -> (bool, bool, bool) {
        match self {
            TimescaleMode::All => (true, true, true),
            TimescaleMode::ShortOnly => (true, false, false),
            TimescaleMode::NoShort => (false, true, true),
            TimescaleMode::NoMedium => (true, false, true),
            TimescaleMode::NoLong => (true, true, false),
        }
    }
}

/// The loss driving training — survival (paper) vs classification ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// The SAFE survival loss (§4.2).
    Survival,
    /// Per-step binary cross-entropy (the Fig 18(d) ablation).
    CrossEntropy,
}

/// All model/training knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct XatuConfig {
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
    /// Pooling granularities in minutes: (short, medium, long).
    /// Paper: (1, 10, 60).
    pub timescales: (u32, u32, u32),
    /// Short-context length in short-granularity steps (before the window).
    pub short_len: usize,
    /// Medium-context length in medium-granularity steps.
    pub medium_len: usize,
    /// Long-context length in long-granularity steps (paper: 10 days at
    /// 60 minutes = 240).
    pub long_len: usize,
    /// Detection-window length in minutes (paper: N = 30).
    pub window: usize,
    /// LSTM hidden units (paper: 200; Appendix H shows 150–700 equivalent —
    /// scaled down for CPU training).
    pub hidden: usize,
    /// Adam learning rate (paper: 1e-4 at hidden 200; scaled up for the
    /// smaller model).
    pub lr: f64,
    /// Batch size (paper: 64).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// Which feature blocks are active (Fig 12 ablations).
    pub feature_mask: FeatureMask,
    /// Which LSTMs are active (Fig 18(b) ablation).
    pub timescale_mode: TimescaleMode,
    /// Loss (Fig 18(d) ablation).
    pub loss: LossKind,
    /// Minimum positive samples required to train a per-type model.
    pub min_positives: usize,
    /// Worker threads for data-parallel training, feature extraction and
    /// threshold sweeps. `0` = auto: the `XATU_THREADS` environment
    /// variable if set, else all available cores. Results are bit-identical
    /// for every value — parallelism only changes wall-clock time.
    pub threads: usize,
    /// Force the scalar reference kernels in the f32 fleet backend,
    /// mirroring `threads`: `false` = auto (the `XATU_NO_SIMD`
    /// environment variable if set, else the widest SIMD level the host
    /// supports), `true` = always scalar. Results are bit-identical
    /// either way — SIMD only changes wall-clock time.
    pub no_simd: bool,
}

impl Default for XatuConfig {
    fn default() -> Self {
        XatuConfig {
            seed: 7,
            timescales: (1, 10, 60),
            short_len: 90,
            medium_len: 108,
            long_len: 240,
            window: 30,
            hidden: 24,
            lr: 3e-3,
            batch_size: 16,
            epochs: 8,
            grad_clip: 5.0,
            feature_mask: FeatureMask::all(),
            timescale_mode: TimescaleMode::All,
            loss: LossKind::Survival,
            min_positives: 8,
            threads: 0,
            no_simd: false,
        }
    }
}

impl XatuConfig {
    /// The paper's full-scale constants (documented, not used on CPU).
    pub fn paper_scale() -> Self {
        XatuConfig {
            timescales: (1, 10, 60),
            short_len: 240,
            medium_len: 1440 / 10,
            long_len: 240,
            window: 30,
            hidden: 200,
            lr: 1e-4,
            batch_size: 64,
            epochs: 20,
            ..XatuConfig::default()
        }
    }

    /// Minimal preset for retrain-heavy sweeps (Fig 12/13/17/18).
    pub fn mini() -> Self {
        XatuConfig {
            short_len: 45,
            medium_len: 36,
            long_len: 72,
            window: 20,
            hidden: 12,
            epochs: 6,
            min_positives: 4,
            ..XatuConfig::default()
        }
    }

    /// Small preset for retrain-heavy sweeps.
    pub fn sweep() -> Self {
        XatuConfig {
            short_len: 60,
            medium_len: 72,
            long_len: 120,
            hidden: 16,
            epochs: 10,
            min_positives: 5,
            ..XatuConfig::default()
        }
    }

    /// Tiny preset for unit tests.
    pub fn smoke_test() -> Self {
        XatuConfig {
            short_len: 12,
            medium_len: 8,
            long_len: 6,
            window: 10,
            hidden: 6,
            epochs: 2,
            min_positives: 2,
            ..XatuConfig::default()
        }
    }

    /// Raw minutes of history a sample needs (for ring sizing).
    pub fn raw_history_minutes(&self) -> usize {
        self.short_len * self.timescales.0 as usize + self.window + 60
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = XatuConfig::default();
        assert_eq!(c.timescales, (1, 10, 60));
        assert_eq!(c.window, 30);
        assert!(c.hidden > 0 && c.lr > 0.0);
    }

    #[test]
    fn timescale_modes() {
        assert_eq!(TimescaleMode::All.enabled(), (true, true, true));
        assert_eq!(TimescaleMode::ShortOnly.enabled(), (true, false, false));
        assert_eq!(TimescaleMode::NoLong.enabled(), (true, true, false));
    }

    #[test]
    fn paper_scale_matches_section_5_3() {
        let c = XatuConfig::paper_scale();
        assert_eq!(c.hidden, 200);
        assert_eq!(c.lr, 1e-4);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.long_len, 240); // 10 days at 60-minute pooling
    }

    #[test]
    fn raw_history_covers_short_context_plus_window() {
        let c = XatuConfig::smoke_test();
        assert!(c.raw_history_minutes() >= c.short_len + c.window);
    }
}
