//! Score fusion: combining the survival booster with the unsupervised
//! reconstruction companion.
//!
//! Two scores arrive each minute, in opposite orientations: the survival
//! score (lower = more attack-like) and the autoencoder's normalized
//! reconstruction score (higher = more attack-like). The fusion layer
//! maps reconstruction error into `[0, 1]` against *benign* error
//! quantiles ([`ErrorNormalizer`]), combines the two signals
//! ([`FusionMode`]: max-combine or a learned logistic blend), and exposes
//! a degradation weight that shifts the fused score toward the
//! autoencoder while the CDet feed is down — the companion needs no
//! labels, so it keeps its full signal exactly when the survival model
//! loses its auxiliary features.

use xatu_nn::activations::sigmoid;

/// Maps raw reconstruction error to an anomaly score in `[0, 1]` using
/// benign-error quantiles: the benign median scores 0, the benign upper
/// quantile scores 1, linear in between. Calibrated once after training,
/// on the same benign windows the autoencoder trained on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorNormalizer {
    /// Benign median error (score 0 at or below this).
    lo: f64,
    /// Benign upper-quantile error (score 1 at or above this).
    hi: f64,
}

impl ErrorNormalizer {
    /// A normalizer with explicit bounds. `hi` is clamped to stay above
    /// `lo` so the mapping is always well defined.
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = if lo.is_finite() { lo.max(0.0) } else { 0.0 };
        let hi = if hi.is_finite() { hi } else { lo };
        ErrorNormalizer {
            lo,
            hi: hi.max(lo * (1.0 + 1e-6) + 1e-12),
        }
    }

    /// Calibrates from benign reconstruction errors: `lo` = median,
    /// `hi` = 99th percentile (non-finite errors are ignored). An empty
    /// or all-NaN input yields a degenerate normalizer that scores
    /// everything 0 — no signal rather than a false one.
    pub fn from_benign_errors(errors: &[f64]) -> Self {
        let mut clean: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
        if clean.is_empty() {
            return ErrorNormalizer::new(f64::MAX, f64::MAX);
        }
        clean.sort_by(f64::total_cmp);
        let at = |q: f64| clean[((clean.len() - 1) as f64 * q).round() as usize];
        ErrorNormalizer::new(at(0.5), at(0.99))
    }

    /// The calibrated `(lo, hi)` bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Anomaly score of a reconstruction error: 0 at the benign median,
    /// 1 at the benign upper quantile, clamped. Non-finite errors score 0.
    pub fn score(&self, err: f64) -> f64 {
        if !err.is_finite() {
            return 0.0;
        }
        ((err - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

/// How the survival score and the autoencoder score are combined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusionMode {
    /// Most-anomalous-wins: the fused survival is the minimum of the
    /// survival score and the autoencoder's pseudo-survival `1 − score`.
    MaxCombine,
    /// A learned logistic blend over the two anomaly signals:
    /// `p = σ(bias + w_survival·(1−survival) + w_ae·ae_score)`, reported
    /// as the pseudo-survival `1 − p`. Weights come from
    /// [`FusionMode::fit_logistic`].
    Logistic {
        /// Intercept.
        bias: f64,
        /// Weight on the survival anomaly `1 − survival`.
        w_survival: f64,
        /// Weight on the autoencoder anomaly score.
        w_ae: f64,
    },
}

impl FusionMode {
    /// Fuses one minute's scores into a fused survival (lower = more
    /// attack-like, same orientation and thresholding rule as the solo
    /// survival score).
    ///
    /// `ae_weight` in `[0, 1]` is the degradation shift: 0 uses the
    /// configured combine, 1 scores purely from the autoencoder. The
    /// online detector ramps it while the CDet feed is down and back
    /// during re-warm-up after recovery.
    pub fn fuse(&self, survival: f64, ae_score: f64, ae_weight: f64) -> f64 {
        let survival = survival.clamp(0.0, 1.0);
        let ae_score = ae_score.clamp(0.0, 1.0);
        let s_ae = 1.0 - ae_score;
        let combined = match *self {
            FusionMode::MaxCombine => survival.min(s_ae),
            FusionMode::Logistic {
                bias,
                w_survival,
                w_ae,
            } => 1.0 - sigmoid(bias + w_survival * (1.0 - survival) + w_ae * ae_score),
        };
        let w = ae_weight.clamp(0.0, 1.0);
        (1.0 - w) * combined + w * s_ae
    }

    /// Fits the logistic blend by batch gradient descent on labeled
    /// `(survival, ae_score, is_attack)` examples (e.g. per-sample scores
    /// from a validation split). Deterministic: fixed iteration count,
    /// fixed example order. Returns [`FusionMode::MaxCombine`] when no
    /// examples (or only one class) are available — an unfittable blend
    /// must not silently bias the detector.
    pub fn fit_logistic(examples: &[(f64, f64, bool)], epochs: usize, lr: f64) -> FusionMode {
        let pos = examples.iter().filter(|e| e.2).count();
        if pos == 0 || pos == examples.len() {
            return FusionMode::MaxCombine;
        }
        let (mut bias, mut ws, mut wa) = (0.0f64, 0.0f64, 0.0f64);
        let n = examples.len() as f64;
        for _ in 0..epochs {
            let (mut gb, mut gs, mut ga) = (0.0, 0.0, 0.0);
            for &(survival, ae_score, label) in examples {
                let xs = 1.0 - survival.clamp(0.0, 1.0);
                let xa = ae_score.clamp(0.0, 1.0);
                let p = sigmoid(bias + ws * xs + wa * xa);
                let d = p - if label { 1.0 } else { 0.0 };
                gb += d;
                gs += d * xs;
                ga += d * xa;
            }
            bias -= lr * gb / n;
            ws -= lr * gs / n;
            wa -= lr * ga / n;
        }
        FusionMode::Logistic {
            bias,
            w_survival: ws,
            w_ae: wa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_maps_benign_quantiles_to_unit_range() {
        let errors: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let norm = ErrorNormalizer::from_benign_errors(&errors);
        let (lo, hi) = norm.bounds();
        assert!((lo - 0.50).abs() < 0.02, "median {lo}");
        assert!((hi - 0.98).abs() < 0.03, "p99 {hi}");
        assert_eq!(norm.score(0.0), 0.0);
        assert_eq!(norm.score(lo), 0.0);
        assert_eq!(norm.score(10.0), 1.0);
        let mid = norm.score((lo + hi) / 2.0);
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalizer_tolerates_degenerate_input() {
        // Empty / all-NaN: everything scores 0 (no false signal).
        assert_eq!(ErrorNormalizer::from_benign_errors(&[]).score(1e12), 0.0);
        let nan_only = ErrorNormalizer::from_benign_errors(&[f64::NAN, f64::INFINITY]);
        assert_eq!(nan_only.score(1e12), 0.0);
        // All-identical benign errors: larger errors still score 1.
        let flat = ErrorNormalizer::from_benign_errors(&[0.25; 8]);
        assert_eq!(flat.score(0.25), 0.0);
        assert_eq!(flat.score(0.5), 1.0);
        // NaN at score time is benign, never a poison value.
        assert_eq!(flat.score(f64::NAN), 0.0);
    }

    #[test]
    fn max_combine_takes_the_most_anomalous_signal() {
        let m = FusionMode::MaxCombine;
        assert_eq!(m.fuse(0.9, 0.0, 0.0), 0.9);
        assert!((m.fuse(0.9, 0.8, 0.0) - 0.2).abs() < 1e-12); // AE wins
        assert_eq!(m.fuse(0.1, 0.0, 0.0), 0.1); // survival wins
                                                // Full degradation weight ignores survival entirely.
        assert_eq!(m.fuse(0.0, 0.0, 1.0), 1.0);
        assert_eq!(m.fuse(1.0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn degradation_weight_interpolates_continuously() {
        let m = FusionMode::MaxCombine;
        // survival says attack (0.1), AE says benign (score 0 → s_ae 1).
        let w0 = m.fuse(0.1, 0.0, 0.0);
        let w_half = m.fuse(0.1, 0.0, 0.5);
        let w1 = m.fuse(0.1, 0.0, 1.0);
        assert_eq!(w0, 0.1);
        assert_eq!(w1, 1.0);
        assert!((w_half - 0.55).abs() < 1e-12);
    }

    #[test]
    fn logistic_fit_separates_labeled_scores() {
        // Attacks: low survival, high AE score. Benign: the opposite.
        let mut examples = Vec::new();
        for i in 0..50 {
            let eps = i as f64 / 500.0;
            examples.push((0.1 + eps, 0.9 - eps, true));
            examples.push((0.9 - eps, 0.1 + eps, false));
        }
        let mode = FusionMode::fit_logistic(&examples, 500, 0.5);
        let FusionMode::Logistic { w_survival, w_ae, .. } = mode else {
            panic!("expected a fitted logistic, got {mode:?}");
        };
        assert!(w_survival > 0.0 && w_ae > 0.0);
        // Fused survival must be decisively lower for attack-like scores.
        let attack = mode.fuse(0.1, 0.9, 0.0);
        let benign = mode.fuse(0.9, 0.1, 0.0);
        assert!(
            attack < 0.4 && benign > 0.6,
            "attack {attack} benign {benign}"
        );
    }

    #[test]
    fn one_class_fit_falls_back_to_max_combine() {
        let benign_only: Vec<(f64, f64, bool)> = vec![(0.9, 0.1, false); 10];
        assert_eq!(
            FusionMode::fit_logistic(&benign_only, 100, 0.5),
            FusionMode::MaxCombine
        );
        assert_eq!(FusionMode::fit_logistic(&[], 100, 0.5), FusionMode::MaxCombine);
    }
}
