//! Reduced-precision fleet scoring: `f32` customer arenas, rational fast
//! activations, and quiescence-aware incremental stepping.
//!
//! This is the `fast-math` backend of [`FleetDetector`] — compiled as a
//! child of [`crate::fleet`] so it can reuse the parent's private
//! sharding, lifecycle and telemetry machinery. Nothing here runs unless
//! [`FleetDetector::enable_fast`] (or [`FleetDetector::new_fast`] /
//! [`FleetDetector::from_checkpoint_fast`]) is called; the default
//! backend stays bit-exact `f64`.
//!
//! # What moves to `f32`, what stays `f64`
//!
//! The per-customer LSTM state (both dual-state halves of all three
//! timescales), the pooling buckets and the zero-order-hold frame are
//! stored in `f32` arenas ([`FastArenas`]); the model weights are widened
//! once into [`Lstm32`] layers at enable time. Everything downstream of
//! the hidden states stays exact `f64`: the combiner head, the softplus
//! hazard, the survival ring, the staleness blend, and the entire alert
//! lifecycle run the *same code* as the exact backend, on the same scalar
//! arenas. The accuracy contract (survival within
//! [`FAST_SURVIVAL_EPS`] of the exact backend, identical alert
//! decisions on the built-in fault schedules and the fleet bench
//! scenario) is pinned by the tests in this module and by
//! `bench_fleet --smoke`; see DESIGN.md §14.
//!
//! # Quiescence-aware stepping
//!
//! Under an all-zero input frame the LSTM recurrence is input-free: every
//! reachable state lies on the *idle trajectory* `S_k = T^k(0)` where `T`
//! is one zero-input step from the cold state. [`IdleTrajectory`]
//! precomputes that trajectory once per timescale (its length is bounded
//! by the dual-state promotion period — a half is zeroed every
//! `2·period` steps, so no half can take more than `4·period` consecutive
//! zero-input steps without being re-zeroed). A customer whose effective
//! input frame is exactly all-zero then advances by *bookkeeping alone*:
//! its row stores trajectory indices instead of recomputing the dense
//! recurrence, and the `h`/`c` vectors are marked stale. The first
//! non-idle minute (or a checkpoint) materializes the row back from the
//! trajectory table and re-enters the full kernel. Because the trajectory
//! is computed with the *same* `f32` kernels the full path uses, skipping
//! is bit-exact: `set_idle_skip(false)` produces bit-identical survivals
//! and events (pinned by `idle_skip_matches_always_stepping`).
//!
//! "Zero" means `v == 0.0` — `-0.0` counts, because the sparse input
//! kernel routes `±0.0` frames identically to the all-`+0.0` frame (see
//! the `lstm32` property tests) and accumulating `±0.0` into the pooling
//! buckets is a numeric no-op. Bucket accumulation is *not* skipped on
//! idle minutes (it is O(`NUM_FEATURES`) and keeping it shared with the
//! full path makes the skip/no-skip equivalence a pure statement about
//! the LSTM advance).

use super::*;
use xatu_nn::{Lstm32, OnlineBlockWorkspace32};

/// Calibrated tolerance between the fast backend's per-minute survival
/// and the exact `f64` backend's, pinned by the parity tests in this
/// module over the degraded-input schedule, every built-in fault
/// schedule, and idle-heavy traffic (observed worst case is ~`1.1e-8`
/// on the test configs; the bound carries several orders of magnitude
/// of margin for larger models and longer horizons). Alert *decisions*
/// carry no tolerance: the parity tests require raise/end sequences to
/// match exactly.
pub const FAST_SURVIVAL_EPS: f64 = 2e-4;

/// Trajectory-index sentinel: the state is not on the idle trajectory
/// (or wandered past the precomputed horizon, which promotion makes
/// unreachable in practice — see [`IdleTrajectory::new`]).
const NO_TRAJ: u32 = u32::MAX;

/// The precomputed zero-input state trajectory of one `f32` LSTM layer:
/// entry `k` is the state after `k` zero-input steps from the cold
/// (all-zero) state, computed with the same scalar kernel the full path
/// is pinned bit-identical to.
struct IdleTrajectory {
    /// `entries × hidden` hidden states; entry 0 is all zeros.
    hs: Vec<f32>,
    /// `entries × hidden` cell states; entry 0 is all zeros.
    cs: Vec<f32>,
    entries: usize,
    hidden: usize,
}

impl IdleTrajectory {
    /// Precomputes `4·period + 2` entries. Index bound argument: a fresh
    /// half is zeroed at every promotion, so `fresh_idx ≤ 2·period` when
    /// a promotion copies it into the aged slot, and the aged index then
    /// grows by at most another `2·period` before the next promotion —
    /// so no valid index exceeds `4·period`, and `4·period + 1` entries
    /// after entry 0 cover every skip. The runtime does not *rely* on
    /// the bound: [`DualShard32::can_skip`] refuses to skip past the
    /// table and the index saturates to [`NO_TRAJ`] instead of
    /// overflowing.
    fn new(lstm: &Lstm32, period: u32) -> Self {
        let hidden = lstm.hidden_dim();
        let entries = 4 * period.max(1) as usize + 2;
        let zero_x = vec![0.0f32; lstm.input_dim()];
        let mut hs = vec![0.0f32; entries * hidden];
        let mut cs = vec![0.0f32; entries * hidden];
        let mut h = vec![0.0f32; hidden];
        let mut c = vec![0.0f32; hidden];
        let mut z = Vec::new();
        for k in 1..entries {
            lstm.step_online_slices32(&zero_x, &mut h, &mut c, &mut z);
            hs[k * hidden..(k + 1) * hidden].copy_from_slice(&h);
            cs[k * hidden..(k + 1) * hidden].copy_from_slice(&c);
        }
        IdleTrajectory {
            hs,
            cs,
            entries,
            hidden,
        }
    }

    /// One past the largest valid index, as the skip guard bound.
    #[inline]
    fn limit(&self) -> u32 {
        self.entries as u32
    }

    /// Hidden state after `k` zero-input steps.
    #[inline]
    fn h(&self, k: u32) -> &[f32] {
        let k = k as usize;
        &self.hs[k * self.hidden..(k + 1) * self.hidden]
    }

    /// Cell state after `k` zero-input steps.
    #[inline]
    fn c(&self, k: u32) -> &[f32] {
        let k = k as usize;
        &self.cs[k * self.hidden..(k + 1) * self.hidden]
    }

    fn bytes(&self) -> usize {
        (self.hs.capacity() + self.cs.capacity()) * std::mem::size_of::<f32>()
    }
}

/// The `f32` dual-state arena for one timescale — the fast twin of the
/// parent's `DualArena`, extended with the quiescence bookkeeping: per
/// row, a trajectory index per half ([`NO_TRAJ`] when off-trajectory)
/// and a staleness flag. Invariants: `stale[j]` implies both indices are
/// valid and in table range (the `h`/`c` rows are then outdated and the
/// trajectory is authoritative); a valid index on a non-stale row means
/// the stored state bit-equals that trajectory entry.
struct DualArena32 {
    aged_h: Vec<f32>,
    aged_c: Vec<f32>,
    fresh_h: Vec<f32>,
    fresh_c: Vec<f32>,
    aged_age: Vec<u32>,
    fresh_age: Vec<u32>,
    aged_idx: Vec<u32>,
    fresh_idx: Vec<u32>,
    stale: Vec<bool>,
    period: u32,
    hidden: usize,
}

impl DualArena32 {
    fn new(hidden: usize, period: u32) -> Self {
        DualArena32 {
            aged_h: Vec::new(),
            aged_c: Vec::new(),
            fresh_h: Vec::new(),
            fresh_c: Vec::new(),
            aged_age: Vec::new(),
            fresh_age: Vec::new(),
            aged_idx: Vec::new(),
            fresh_idx: Vec::new(),
            stale: Vec::new(),
            period: period.max(1),
            hidden,
        }
    }

    /// Appends one customer in the cold state: all-zero halves sit at
    /// trajectory entry 0 regardless of their ages.
    fn push_default(&mut self) {
        let h = self.hidden;
        self.aged_h.resize(self.aged_h.len() + h, 0.0);
        self.aged_c.resize(self.aged_c.len() + h, 0.0);
        self.fresh_h.resize(self.fresh_h.len() + h, 0.0);
        self.fresh_c.resize(self.fresh_c.len() + h, 0.0);
        self.aged_age.push(self.period);
        self.fresh_age.push(0);
        self.aged_idx.push(0);
        self.fresh_idx.push(0);
        self.stale.push(false);
    }

    /// Appends one customer narrowed from row `i` of the `f64` arena.
    /// An all-zero half is exactly trajectory entry 0 (valid whatever
    /// its age — cold starts, cold restarts and promotion-zeroed fresh
    /// halves all land here); any other state starts off-trajectory and
    /// re-enters through the promotion ramp. Restored mid-trajectory
    /// states therefore lose their index — which only costs skips, never
    /// values, since a full zero-input step from a trajectory state
    /// lands bit-exactly on the next entry.
    fn push_narrowed(&mut self, src: &DualArena, i: usize) {
        let h = self.hidden;
        let r = i * h..(i + 1) * h;
        let aged_zero = src.aged_h[r.clone()]
            .iter()
            .chain(&src.aged_c[r.clone()])
            .all(|&v| v == 0.0);
        let fresh_zero = src.fresh_h[r.clone()]
            .iter()
            .chain(&src.fresh_c[r.clone()])
            .all(|&v| v == 0.0);
        self.aged_h.extend(src.aged_h[r.clone()].iter().map(|&v| v as f32));
        self.aged_c.extend(src.aged_c[r.clone()].iter().map(|&v| v as f32));
        self.fresh_h
            .extend(src.fresh_h[r.clone()].iter().map(|&v| v as f32));
        self.fresh_c.extend(src.fresh_c[r].iter().map(|&v| v as f32));
        self.aged_age.push(src.aged_age[i]);
        self.fresh_age.push(src.fresh_age[i]);
        self.aged_idx.push(if aged_zero { 0 } else { NO_TRAJ });
        self.fresh_idx.push(if fresh_zero { 0 } else { NO_TRAJ });
        self.stale.push(false);
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.aged_h.capacity()
            + self.aged_c.capacity()
            + self.fresh_h.capacity()
            + self.fresh_c.capacity())
            * size_of::<f32>()
            + (self.aged_age.capacity()
                + self.fresh_age.capacity()
                + self.aged_idx.capacity()
                + self.fresh_idx.capacity())
                * size_of::<u32>()
            + self.stale.capacity() * size_of::<bool>()
    }
}

/// A contiguous block of one [`DualArena32`], owned mutably by one
/// worker — the fast twin of the parent's `DualShard`.
struct DualShard32<'a> {
    aged_h: &'a mut [f32],
    aged_c: &'a mut [f32],
    fresh_h: &'a mut [f32],
    fresh_c: &'a mut [f32],
    aged_age: &'a mut [u32],
    fresh_age: &'a mut [u32],
    aged_idx: &'a mut [u32],
    fresh_idx: &'a mut [u32],
    stale: &'a mut [bool],
    period: u32,
    hidden: usize,
}

/// `idx + 1`, saturating to [`NO_TRAJ`] at the table bound.
#[inline]
fn bump(idx: u32, limit: u32) -> u32 {
    if idx == NO_TRAJ || idx + 1 >= limit {
        NO_TRAJ
    } else {
        idx + 1
    }
}

impl DualShard32<'_> {
    /// True when shard-local row `j` can take one more zero-input step
    /// by bookkeeping alone: both halves on-trajectory with the next
    /// entry inside the precomputed table.
    #[inline]
    fn can_skip(&self, j: usize, limit: u32) -> bool {
        let a = self.aged_idx[j];
        let f = self.fresh_idx[j];
        a != NO_TRAJ && f != NO_TRAJ && a + 1 < limit && f + 1 < limit
    }

    /// One zero-input step as pure bookkeeping (caller checked
    /// [`DualShard32::can_skip`]): both trajectory indices advance, the
    /// stored state is marked stale, and the age/promotion arithmetic of
    /// the full step runs on indices instead of state copies — a
    /// promotion moves the fresh index into the aged slot and re-zeroes
    /// the fresh half to trajectory entry 0.
    fn skip_advance(&mut self, j: usize) {
        self.aged_idx[j] += 1;
        self.fresh_idx[j] += 1;
        self.stale[j] = true;
        self.aged_age[j] += 1;
        self.fresh_age[j] += 1;
        if self.aged_age[j] >= 2 * self.period {
            self.aged_idx[j] = self.fresh_idx[j];
            self.fresh_idx[j] = 0;
            self.aged_age[j] = self.fresh_age[j];
            self.fresh_age[j] = 0;
        }
    }

    /// Copies row `j`'s state back out of the trajectory table if it is
    /// stale (no-op otherwise). The indices stay valid afterwards.
    fn materialize(&mut self, traj: &IdleTrajectory, j: usize) {
        if !self.stale[j] {
            return;
        }
        let h = self.hidden;
        let r = j * h..(j + 1) * h;
        self.aged_h[r.clone()].copy_from_slice(traj.h(self.aged_idx[j]));
        self.aged_c[r.clone()].copy_from_slice(traj.c(self.aged_idx[j]));
        self.fresh_h[r.clone()].copy_from_slice(traj.h(self.fresh_idx[j]));
        self.fresh_c[r].copy_from_slice(traj.c(self.fresh_idx[j]));
        self.stale[j] = false;
    }

    /// The aged hidden state of row `j` for the combiner — straight from
    /// the trajectory table when the row is stale, so reading it never
    /// forces a materialization.
    #[inline]
    fn aged_view<'t>(&'t self, traj: &'t IdleTrajectory, j: usize) -> &'t [f32] {
        if self.stale[j] {
            traj.h(self.aged_idx[j])
        } else {
            let h = self.hidden;
            &self.aged_h[j * h..(j + 1) * h]
        }
    }

    /// Post-step bookkeeping for a row that ran the full kernel: the
    /// trajectory indices advance on zero input (saturating at the table
    /// bound) or invalidate on non-zero input, then the age/promotion
    /// arithmetic of the parent's `advance_age` runs — including the
    /// state copy, plus the matching index moves.
    fn advance32(&mut self, j: usize, input_zero: bool, limit: u32) {
        if input_zero {
            self.aged_idx[j] = bump(self.aged_idx[j], limit);
            self.fresh_idx[j] = bump(self.fresh_idx[j], limit);
        } else {
            self.aged_idx[j] = NO_TRAJ;
            self.fresh_idx[j] = NO_TRAJ;
        }
        self.aged_age[j] += 1;
        self.fresh_age[j] += 1;
        if self.aged_age[j] >= 2 * self.period {
            let h = self.hidden;
            let r = j * h..(j + 1) * h;
            self.aged_h[r.clone()].copy_from_slice(&self.fresh_h[r.clone()]);
            self.aged_c[r.clone()].copy_from_slice(&self.fresh_c[r.clone()]);
            self.fresh_h[r.clone()].fill(0.0);
            self.fresh_c[r].fill(0.0);
            self.aged_idx[j] = self.fresh_idx[j];
            self.fresh_idx[j] = 0;
            self.aged_age[j] = self.fresh_age[j];
            self.fresh_age[j] = 0;
        }
    }

    /// Scalar full step for one row (imputed catch-up minutes):
    /// materialize, two reference `f32` steps, then the index/age
    /// bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn step_one32(
        &mut self,
        lstm: &Lstm32,
        traj: &IdleTrajectory,
        j: usize,
        x: &[f32],
        input_zero: bool,
        z: &mut Vec<f32>,
    ) {
        self.materialize(traj, j);
        let h = self.hidden;
        let r = j * h..(j + 1) * h;
        lstm.step_online_slices32(x, &mut self.aged_h[r.clone()], &mut self.aged_c[r.clone()], z);
        lstm.step_online_slices32(x, &mut self.fresh_h[r.clone()], &mut self.fresh_c[r], z);
        self.advance32(j, input_zero, traj.limit());
    }

    /// Batched full step over the contiguous run `a..b` (every row
    /// already materialized by phase A) — the fast twin of the parent's
    /// `step_block`, with the same tile size; the caller runs
    /// [`DualShard32::advance32`] per row afterwards because the
    /// zero-input flag is per row.
    fn step_block32(
        &mut self,
        lstm: &Lstm32,
        a: usize,
        b: usize,
        xs: &[f32],
        ws: &mut OnlineBlockWorkspace32,
    ) {
        const TILE: usize = 512;
        let h = self.hidden;
        let width = xs.len() / (b - a);
        let mut t = a;
        while t < b {
            let e = (t + TILE).min(b);
            lstm.step_online_dual_block(
                &xs[(t - a) * width..(e - a) * width],
                e - t,
                &mut self.aged_h[t * h..e * h],
                &mut self.aged_c[t * h..e * h],
                &mut self.fresh_h[t * h..e * h],
                &mut self.fresh_c[t * h..e * h],
                ws,
            );
            t = e;
        }
    }

    /// Back to the cold state (cold restart): zero halves at trajectory
    /// entry 0.
    fn reset_row(&mut self, j: usize) {
        let h = self.hidden;
        let r = j * h..(j + 1) * h;
        self.aged_h[r.clone()].fill(0.0);
        self.aged_c[r.clone()].fill(0.0);
        self.fresh_h[r.clone()].fill(0.0);
        self.fresh_c[r].fill(0.0);
        self.aged_age[j] = self.period;
        self.fresh_age[j] = 0;
        self.aged_idx[j] = 0;
        self.fresh_idx[j] = 0;
        self.stale[j] = false;
    }
}

/// The `f32` numeric arenas of the fast backend — the twins of the
/// numeric half of `FleetArenas` (which stays empty while this backend
/// is active), plus the zero-tracking flags the quiescence path keys on.
struct FastArenas {
    short: DualArena32,
    medium: DualArena32,
    long: DualArena32,
    med_partial: Vec<f32>,
    long_partial: Vec<f32>,
    last_frame: Vec<f32>,
    /// Whether the last sanitized frame (the zero-order-hold source) is
    /// exactly all-zero.
    last_zero: Vec<bool>,
    /// Whether every frame accumulated into the open medium bucket was
    /// all-zero (conservative: cancellation to zero does not set it).
    med_zero: Vec<bool>,
    long_zero: Vec<bool>,
    /// Per-minute phase flags: rows whose timescale needs the dense
    /// kernel this minute (scratch, valid only inside a batch step).
    short_step: Vec<bool>,
    med_step: Vec<bool>,
    long_step: Vec<bool>,
}

impl FastArenas {
    fn new(hidden: usize, ctx: (usize, usize, usize)) -> Self {
        FastArenas {
            short: DualArena32::new(hidden, ctx.0 as u32),
            medium: DualArena32::new(hidden, ctx.1 as u32),
            long: DualArena32::new(hidden, ctx.2 as u32),
            med_partial: Vec::new(),
            long_partial: Vec::new(),
            last_frame: Vec::new(),
            last_zero: Vec::new(),
            med_zero: Vec::new(),
            long_zero: Vec::new(),
            short_step: Vec::new(),
            med_step: Vec::new(),
            long_step: Vec::new(),
        }
    }

    /// Appends one cold customer.
    fn push_default(&mut self) {
        self.short.push_default();
        self.medium.push_default();
        self.long.push_default();
        self.med_partial
            .resize(self.med_partial.len() + NUM_FEATURES, 0.0);
        self.long_partial
            .resize(self.long_partial.len() + NUM_FEATURES, 0.0);
        self.last_frame
            .resize(self.last_frame.len() + NUM_FEATURES, 0.0);
        self.last_zero.push(true);
        self.med_zero.push(true);
        self.long_zero.push(true);
        self.short_step.push(false);
        self.med_step.push(false);
        self.long_step.push(false);
    }

    /// Appends one customer narrowed from row `i` of the `f64` arenas.
    fn push_narrowed(&mut self, src: &FleetArenas, i: usize) {
        self.short.push_narrowed(&src.short, i);
        self.medium.push_narrowed(&src.medium, i);
        self.long.push_narrowed(&src.long, i);
        let f = i * NUM_FEATURES;
        self.med_partial
            .extend(src.med_partial[f..f + NUM_FEATURES].iter().map(|&v| v as f32));
        self.long_partial
            .extend(src.long_partial[f..f + NUM_FEATURES].iter().map(|&v| v as f32));
        self.last_frame
            .extend(src.last_frame[f..f + NUM_FEATURES].iter().map(|&v| v as f32));
        self.last_zero
            .push(src.last_frame[f..f + NUM_FEATURES].iter().all(|&v| v == 0.0));
        self.med_zero
            .push(src.med_partial[f..f + NUM_FEATURES].iter().all(|&v| v == 0.0));
        self.long_zero
            .push(src.long_partial[f..f + NUM_FEATURES].iter().all(|&v| v == 0.0));
        self.short_step.push(false);
        self.med_step.push(false);
        self.long_step.push(false);
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.short.bytes()
            + self.medium.bytes()
            + self.long.bytes()
            + (self.med_partial.capacity()
                + self.long_partial.capacity()
                + self.last_frame.capacity())
                * size_of::<f32>()
            + (self.last_zero.capacity()
                + self.med_zero.capacity()
                + self.long_zero.capacity()
                + self.short_step.capacity()
                + self.med_step.capacity()
                + self.long_step.capacity())
                * size_of::<bool>()
    }
}

/// Everything the fast backend owns: widened layers, the idle
/// trajectories, the `f32` arenas and the skip knob.
pub(super) struct FastState {
    short: Lstm32,
    medium: Lstm32,
    long: Lstm32,
    traj_s: IdleTrajectory,
    traj_m: IdleTrajectory,
    traj_l: IdleTrajectory,
    arenas: FastArenas,
    idle_skip: bool,
}

impl FastState {
    /// Appends one cold customer (called from
    /// [`FleetDetector::add_customer`] alongside the scalar push).
    pub(super) fn push_default(&mut self) {
        self.arenas.push_default();
    }

    /// Measured footprint of the fast state in bytes.
    pub(super) fn bytes(&self) -> usize {
        self.arenas.bytes() + self.traj_s.bytes() + self.traj_m.bytes() + self.traj_l.bytes()
    }
}

/// Immutable model parts shared by every fast worker.
#[derive(Clone, Copy)]
struct Net32<'a> {
    short: &'a Lstm32,
    medium: &'a Lstm32,
    long: &'a Lstm32,
    traj_s: &'a IdleTrajectory,
    traj_m: &'a IdleTrajectory,
    traj_l: &'a IdleTrajectory,
    head: &'a Dense,
    idle_skip: bool,
}

/// Disjoint mutable views for one contiguous customer block, borrowing
/// the scalar bookkeeping from `FleetArenas` and the `f32` numerics from
/// [`FastArenas`] — the fast twin of the parent's `Shard`.
struct Shard32<'a> {
    start: usize,
    short: DualShard32<'a>,
    medium: DualShard32<'a>,
    long: DualShard32<'a>,
    ring: RingShard<'a>,
    med_partial: &'a mut [f32],
    med_count: &'a mut [u32],
    long_partial: &'a mut [f32],
    long_count: &'a mut [u32],
    last_frame: &'a mut [f32],
    last_zero: &'a mut [bool],
    med_zero: &'a mut [bool],
    long_zero: &'a mut [bool],
    short_step: &'a mut [bool],
    med_step: &'a mut [bool],
    long_step: &'a mut [bool],
    active_since: &'a mut [Option<u32>],
    quiet_run: &'a mut [u32],
    last_survival: &'a mut [f64],
    observed: &'a mut [u32],
    stale_run: &'a mut [u32],
    last_minute: &'a mut [Option<u32>],
    driven: &'a mut [bool],
    med_done: &'a mut [bool],
    long_done: &'a mut [bool],
}

impl Shard32<'_> {
    fn len(&self) -> usize {
        self.driven.len()
    }
}

/// Allocation-free cursor over a [`DualArena32`] — the fast twin of the
/// parent's `DualSplit`, extended with the quiescence bookkeeping
/// columns.
struct DualSplit32<'a> {
    aged_h: &'a mut [f32],
    aged_c: &'a mut [f32],
    fresh_h: &'a mut [f32],
    fresh_c: &'a mut [f32],
    aged_age: &'a mut [u32],
    fresh_age: &'a mut [u32],
    aged_idx: &'a mut [u32],
    fresh_idx: &'a mut [u32],
    stale: &'a mut [bool],
    period: u32,
    hidden: usize,
}

impl<'a> DualSplit32<'a> {
    fn new(a: &'a mut DualArena32) -> Self {
        DualSplit32 {
            aged_h: &mut a.aged_h,
            aged_c: &mut a.aged_c,
            fresh_h: &mut a.fresh_h,
            fresh_c: &mut a.fresh_c,
            aged_age: &mut a.aged_age,
            fresh_age: &mut a.fresh_age,
            aged_idx: &mut a.aged_idx,
            fresh_idx: &mut a.fresh_idx,
            stale: &mut a.stale,
            period: a.period,
            hidden: a.hidden,
        }
    }

    /// The next `n` customers as a shard.
    fn take(&mut self, n: usize) -> DualShard32<'a> {
        let h = self.hidden;
        DualShard32 {
            aged_h: take_rows(&mut self.aged_h, n, h),
            aged_c: take_rows(&mut self.aged_c, n, h),
            fresh_h: take_rows(&mut self.fresh_h, n, h),
            fresh_c: take_rows(&mut self.fresh_c, n, h),
            aged_age: take_rows(&mut self.aged_age, n, 1),
            fresh_age: take_rows(&mut self.fresh_age, n, 1),
            aged_idx: take_rows(&mut self.aged_idx, n, 1),
            fresh_idx: take_rows(&mut self.fresh_idx, n, 1),
            stale: take_rows(&mut self.stale, n, 1),
            period: self.period,
            hidden: h,
        }
    }
}

fn dual_shard_all32(a: &mut DualArena32) -> DualShard32<'_> {
    DualShard32 {
        aged_h: &mut a.aged_h,
        aged_c: &mut a.aged_c,
        fresh_h: &mut a.fresh_h,
        fresh_c: &mut a.fresh_c,
        aged_age: &mut a.aged_age,
        fresh_age: &mut a.fresh_age,
        aged_idx: &mut a.aged_idx,
        fresh_idx: &mut a.fresh_idx,
        stale: &mut a.stale,
        period: a.period,
        hidden: a.hidden,
    }
}

/// Allocation-free cursor over the scalar [`FleetArenas`] plus the `f32`
/// [`FastArenas`] — the fast twin of the parent's `ShardSplit`. Each
/// [`FastShardSplit::take`] yields the next contiguous customer block as
/// a [`Shard32`]; blocks must be taken in range order starting at 0.
struct FastShardSplit<'a> {
    window: usize,
    next_start: usize,
    short: DualSplit32<'a>,
    medium: DualSplit32<'a>,
    long: DualSplit32<'a>,
    ring_buf: &'a mut [f64],
    ring_head: &'a mut [u32],
    ring_filled: &'a mut [u32],
    ring_sum: &'a mut [f64],
    med_partial: &'a mut [f32],
    med_count: &'a mut [u32],
    long_partial: &'a mut [f32],
    long_count: &'a mut [u32],
    last_frame: &'a mut [f32],
    last_zero: &'a mut [bool],
    med_zero: &'a mut [bool],
    long_zero: &'a mut [bool],
    short_step: &'a mut [bool],
    med_step: &'a mut [bool],
    long_step: &'a mut [bool],
    active_since: &'a mut [Option<u32>],
    quiet_run: &'a mut [u32],
    last_survival: &'a mut [f64],
    observed: &'a mut [u32],
    stale_run: &'a mut [u32],
    last_minute: &'a mut [Option<u32>],
    driven: &'a mut [bool],
    med_done: &'a mut [bool],
    long_done: &'a mut [bool],
}

impl<'a> FastShardSplit<'a> {
    fn new(arenas: &'a mut FleetArenas, fa: &'a mut FastArenas, window: usize) -> Self {
        FastShardSplit {
            window,
            next_start: 0,
            short: DualSplit32::new(&mut fa.short),
            medium: DualSplit32::new(&mut fa.medium),
            long: DualSplit32::new(&mut fa.long),
            ring_buf: &mut arenas.ring_buf,
            ring_head: &mut arenas.ring_head,
            ring_filled: &mut arenas.ring_filled,
            ring_sum: &mut arenas.ring_sum,
            med_partial: &mut fa.med_partial,
            med_count: &mut arenas.med_count,
            long_partial: &mut fa.long_partial,
            long_count: &mut arenas.long_count,
            last_frame: &mut fa.last_frame,
            last_zero: &mut fa.last_zero,
            med_zero: &mut fa.med_zero,
            long_zero: &mut fa.long_zero,
            short_step: &mut fa.short_step,
            med_step: &mut fa.med_step,
            long_step: &mut fa.long_step,
            active_since: &mut arenas.active_since,
            quiet_run: &mut arenas.quiet_run,
            last_survival: &mut arenas.last_survival,
            observed: &mut arenas.observed,
            stale_run: &mut arenas.stale_run,
            last_minute: &mut arenas.last_minute,
            driven: &mut arenas.driven,
            med_done: &mut arenas.med_done,
            long_done: &mut arenas.long_done,
        }
    }

    /// The next `n` customers as a shard.
    fn take(&mut self, n: usize) -> Shard32<'a> {
        let window = self.window;
        let start = self.next_start;
        self.next_start += n;
        Shard32 {
            start,
            short: self.short.take(n),
            medium: self.medium.take(n),
            long: self.long.take(n),
            ring: RingShard {
                buf: take_rows(&mut self.ring_buf, n, window),
                head: take_rows(&mut self.ring_head, n, 1),
                filled: take_rows(&mut self.ring_filled, n, 1),
                sum: take_rows(&mut self.ring_sum, n, 1),
                window,
            },
            med_partial: take_rows(&mut self.med_partial, n, NUM_FEATURES),
            med_count: take_rows(&mut self.med_count, n, 1),
            long_partial: take_rows(&mut self.long_partial, n, NUM_FEATURES),
            long_count: take_rows(&mut self.long_count, n, 1),
            last_frame: take_rows(&mut self.last_frame, n, NUM_FEATURES),
            last_zero: take_rows(&mut self.last_zero, n, 1),
            med_zero: take_rows(&mut self.med_zero, n, 1),
            long_zero: take_rows(&mut self.long_zero, n, 1),
            short_step: take_rows(&mut self.short_step, n, 1),
            med_step: take_rows(&mut self.med_step, n, 1),
            long_step: take_rows(&mut self.long_step, n, 1),
            active_since: take_rows(&mut self.active_since, n, 1),
            quiet_run: take_rows(&mut self.quiet_run, n, 1),
            last_survival: take_rows(&mut self.last_survival, n, 1),
            observed: take_rows(&mut self.observed, n, 1),
            stale_run: take_rows(&mut self.stale_run, n, 1),
            last_minute: take_rows(&mut self.last_minute, n, 1),
            driven: take_rows(&mut self.driven, n, 1),
            med_done: take_rows(&mut self.med_done, n, 1),
            long_done: take_rows(&mut self.long_done, n, 1),
        }
    }
}

/// The whole fleet as a single fast shard (the allocation-free
/// `threads == 1` path).
fn shard_all_fast<'a>(
    arenas: &'a mut FleetArenas,
    fa: &'a mut FastArenas,
    window: usize,
) -> Shard32<'a> {
    Shard32 {
        start: 0,
        short: dual_shard_all32(&mut fa.short),
        medium: dual_shard_all32(&mut fa.medium),
        long: dual_shard_all32(&mut fa.long),
        ring: RingShard {
            buf: &mut arenas.ring_buf,
            head: &mut arenas.ring_head,
            filled: &mut arenas.ring_filled,
            sum: &mut arenas.ring_sum,
            window,
        },
        med_partial: &mut fa.med_partial,
        med_count: &mut arenas.med_count,
        long_partial: &mut fa.long_partial,
        long_count: &mut arenas.long_count,
        last_frame: &mut fa.last_frame,
        last_zero: &mut fa.last_zero,
        med_zero: &mut fa.med_zero,
        long_zero: &mut fa.long_zero,
        short_step: &mut fa.short_step,
        med_step: &mut fa.med_step,
        long_step: &mut fa.long_step,
        active_since: &mut arenas.active_since,
        quiet_run: &mut arenas.quiet_run,
        last_survival: &mut arenas.last_survival,
        observed: &mut arenas.observed,
        stale_run: &mut arenas.stale_run,
        last_minute: &mut arenas.last_minute,
        driven: &mut arenas.driven,
        med_done: &mut arenas.med_done,
        long_done: &mut arenas.long_done,
    }
}

/// Widens an `f32` slice into an `f64` one, element by element (exact).
#[inline]
fn widen(src: &[f32], dst: &mut [f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s as f64;
    }
}

/// The `f32` twin of the parent's `accumulate_row`.
fn accumulate_row32(partial: &mut [f32], count: &mut u32, frame: &[f32], gran: u32) -> bool {
    for (a, v) in partial.iter_mut().zip(frame) {
        *a += v;
    }
    *count += 1;
    if *count == gran {
        let inv = 1.0 / gran as f32;
        for a in partial.iter_mut() {
            *a *= inv;
        }
        *count = 0;
        true
    } else {
        false
    }
}

/// The parent's `cold_restart` on fast arenas: identical lifecycle and
/// telemetry, plus re-arming the zero trackers.
fn cold_restart32(
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard32<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    events: &mut Vec<DetectorEvent>,
) {
    if let Some(detected_at) = sh.active_since[j].take() {
        obs.ended.inc();
        events.push(DetectorEvent::Ended(Alert {
            customer: addr,
            attack_type: k.attack_type,
            detected_at,
            mitigation_end: Some(minute),
        }));
    }
    sh.short.reset_row(j);
    sh.medium.reset_row(j);
    sh.long.reset_row(j);
    sh.ring.reset_row(j);
    let f = j * NUM_FEATURES;
    sh.med_partial[f..f + NUM_FEATURES].fill(0.0);
    sh.med_count[j] = 0;
    sh.long_partial[f..f + NUM_FEATURES].fill(0.0);
    sh.long_count[j] = 0;
    sh.quiet_run[j] = 0;
    sh.last_survival[j] = 1.0;
    sh.observed[j] = 0;
    sh.last_frame[f..f + NUM_FEATURES].fill(0.0);
    sh.last_zero[j] = true;
    sh.med_zero[j] = true;
    sh.long_zero[j] = true;
    sh.stale_run[j] = 0;
    obs.cold_restarts.inc();
}

/// The parent's `combine_and_alert` with the combiner input widened from
/// the `f32` aged hidden states (straight from the trajectory table for
/// stale rows); head, softplus, ring, staleness blend and the alert
/// lifecycle are the identical exact-`f64` arithmetic.
#[allow(clippy::too_many_arguments)]
fn combine_and_alert32(
    net: Net32<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard32<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    let h = k.hidden;
    fit(input, 3 * h);
    if k.use_s {
        widen(sh.short.aged_view(net.traj_s, j), &mut input[0..h]);
    }
    if k.use_m {
        widen(sh.medium.aged_view(net.traj_m, j), &mut input[h..2 * h]);
    }
    if k.use_l {
        widen(sh.long.aged_view(net.traj_l, j), &mut input[2 * h..3 * h]);
    }
    let mut logit = [0.0f64; 1];
    net.head.forward_into(input, &mut logit);
    let hazard = softplus(logit[0]);
    let raw = sh.ring.push(j, hazard);

    let reported = if sh.stale_run[j] == 0 {
        raw
    } else {
        let w = sh.stale_run[j].min(k.stale_limit) as f64 / k.stale_limit as f64;
        raw + (1.0 - raw) * w
    };
    sh.last_survival[j] = reported;
    sh.observed[j] += 1;
    obs.survival.observe(reported);

    if sh.observed[j] <= k.warmup {
        obs.warmup_suppressed.inc();
        return;
    }
    match sh.active_since[j] {
        None => {
            if reported < k.threshold && sh.stale_run[j] == 0 {
                let alert = Alert {
                    customer: addr,
                    attack_type: k.attack_type,
                    detected_at: minute,
                    mitigation_end: None,
                };
                sh.active_since[j] = Some(minute);
                sh.quiet_run[j] = 0;
                obs.raised.inc();
                events.push(DetectorEvent::Raised(alert));
            }
        }
        Some(detected_at) => {
            let over_cap = minute.saturating_sub(detected_at) >= k.max_alert_minutes;
            if reported < k.threshold && !over_cap {
                sh.quiet_run[j] = 0;
            } else {
                sh.quiet_run[j] += 1;
                if sh.quiet_run[j] >= k.quiet || over_cap {
                    sh.active_since[j] = None;
                    sh.quiet_run[j] = 0;
                    obs.ended.inc();
                    if over_cap {
                        obs.force_ended.inc();
                    }
                    events.push(DetectorEvent::Ended(Alert {
                        customer: addr,
                        attack_type: k.attack_type,
                        detected_at,
                        mitigation_end: Some(minute),
                    }));
                }
            }
        }
    }
}

/// The parent's `scalar_step_minute` on fast arenas (imputed catch-up
/// minutes): zero-order-hold input through the scalar `f32` kernels.
/// Catch-up minutes always run the full kernel — they are rare, and
/// keeping them unconditional means the skip knob only ever gates the
/// batched phase.
#[allow(clippy::too_many_arguments)]
fn scalar_step_minute32(
    net: Net32<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard32<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    z: &mut Vec<f32>,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    sh.stale_run[j] += 1;
    obs.gaps_imputed.inc();
    let f = j * NUM_FEATURES;
    let input_zero = sh.last_zero[j];
    sh.med_zero[j] &= input_zero;
    sh.long_zero[j] &= input_zero;
    let med_done = accumulate_row32(
        &mut sh.med_partial[f..f + NUM_FEATURES],
        &mut sh.med_count[j],
        &sh.last_frame[f..f + NUM_FEATURES],
        k.med_gran,
    );
    let long_done = accumulate_row32(
        &mut sh.long_partial[f..f + NUM_FEATURES],
        &mut sh.long_count[j],
        &sh.last_frame[f..f + NUM_FEATURES],
        k.long_gran,
    );
    if k.use_s {
        sh.short.step_one32(
            net.short,
            net.traj_s,
            j,
            &sh.last_frame[f..f + NUM_FEATURES],
            input_zero,
            z,
        );
    }
    if k.use_m && med_done {
        sh.medium.step_one32(
            net.medium,
            net.traj_m,
            j,
            &sh.med_partial[f..f + NUM_FEATURES],
            sh.med_zero[j],
            z,
        );
    }
    if k.use_l && long_done {
        sh.long.step_one32(
            net.long,
            net.traj_l,
            j,
            &sh.long_partial[f..f + NUM_FEATURES],
            sh.long_zero[j],
            z,
        );
    }
    if med_done {
        sh.med_partial[f..f + NUM_FEATURES].fill(0.0);
        sh.med_zero[j] = true;
    }
    if long_done {
        sh.long_partial[f..f + NUM_FEATURES].fill(0.0);
        sh.long_zero[j] = true;
    }
    combine_and_alert32(net, k, obs, sh, j, addr, minute, input, events);
}

/// The parent's `catch_up` on fast arenas.
#[allow(clippy::too_many_arguments)]
fn catch_up32(
    net: Net32<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard32<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    z: &mut Vec<f32>,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    let Some(last) = sh.last_minute[j] else {
        return;
    };
    let gap = minute - last - 1;
    if gap == 0 {
        return;
    }
    if gap > k.max_imputed_gap {
        obs.gap_runs.observe(gap as f64);
        cold_restart32(k, obs, sh, j, addr, minute, events);
    } else {
        for m in last + 1..minute {
            scalar_step_minute32(net, k, obs, sh, j, addr, m, z, input, events);
        }
    }
}

impl FleetArenas {
    /// Empties the `f64` numeric arenas (dual LSTM states, pooling
    /// buckets, ZOH frames) — the fast backend owns the `f32` twins and
    /// the scalar half stays authoritative.
    fn clear_numeric(&mut self) {
        for d in [&mut self.short, &mut self.medium, &mut self.long] {
            d.aged_h.clear();
            d.aged_c.clear();
            d.fresh_h.clear();
            d.fresh_c.clear();
            d.aged_age.clear();
            d.fresh_age.clear();
        }
        self.med_partial.clear();
        self.long_partial.clear();
        self.last_frame.clear();
    }

    /// Rebuilds the `f64` numeric arenas by widening the fast arenas
    /// (every row already materialized), for checkpointing through the
    /// exact path. Widening `f32 → f64` is exact, so a checkpoint
    /// written here narrows back bit-identically.
    fn widen_from(&mut self, src: &FastArenas) {
        for (dst, s) in [
            (&mut self.short, &src.short),
            (&mut self.medium, &src.medium),
            (&mut self.long, &src.long),
        ] {
            dst.aged_h.clear();
            dst.aged_h.extend(s.aged_h.iter().map(|&v| v as f64));
            dst.aged_c.clear();
            dst.aged_c.extend(s.aged_c.iter().map(|&v| v as f64));
            dst.fresh_h.clear();
            dst.fresh_h.extend(s.fresh_h.iter().map(|&v| v as f64));
            dst.fresh_c.clear();
            dst.fresh_c.extend(s.fresh_c.iter().map(|&v| v as f64));
            dst.aged_age.clear();
            dst.aged_age.extend_from_slice(&s.aged_age);
            dst.fresh_age.clear();
            dst.fresh_age.extend_from_slice(&s.fresh_age);
        }
        self.med_partial.clear();
        self.med_partial
            .extend(src.med_partial.iter().map(|&v| v as f64));
        self.long_partial.clear();
        self.long_partial
            .extend(src.long_partial.iter().map(|&v| v as f64));
        self.last_frame.clear();
        self.last_frame
            .extend(src.last_frame.iter().map(|&v| v as f64));
    }
}

impl FleetDetector {
    /// Switches this detector to the reduced-precision backend: widens
    /// the model into `f32` once, precomputes the idle trajectories,
    /// narrows any existing customer state, and empties the `f64`
    /// numeric arenas. Idempotent. The survival ring, alert lifecycle
    /// and all scalar bookkeeping are untouched — only the LSTM state
    /// representation changes. See DESIGN.md §14 for the accuracy
    /// contract.
    pub fn enable_fast(&mut self) {
        if self.fast.is_some() {
            return;
        }
        let mut short = Lstm32::from_f64(self.model.lstm_short());
        let mut medium = Lstm32::from_f64(self.model.lstm_medium());
        let mut long = Lstm32::from_f64(self.model.lstm_long());
        if self.no_simd {
            // Config knob beats env/auto dispatch — pin the scalar
            // reference kernels (bit-identical either way).
            short.set_simd(xatu_nn::simd::SimdLevel::Scalar);
            medium.set_simd(xatu_nn::simd::SimdLevel::Scalar);
            long.set_simd(xatu_nn::simd::SimdLevel::Scalar);
        }
        let traj_s = IdleTrajectory::new(&short, self.ctx_lens.0 as u32);
        let traj_m = IdleTrajectory::new(&medium, self.ctx_lens.1 as u32);
        let traj_l = IdleTrajectory::new(&long, self.ctx_lens.2 as u32);
        let mut arenas = FastArenas::new(self.model.cfg.hidden, self.ctx_lens);
        for i in 0..self.addrs.len() {
            arenas.push_narrowed(&self.arenas, i);
        }
        self.arenas.clear_numeric();
        self.fast = Some(FastState {
            short,
            medium,
            long,
            traj_s,
            traj_m,
            traj_l,
            arenas,
            idle_skip: true,
        });
    }

    /// [`FleetDetector::new`] with the fast backend enabled from the
    /// start.
    pub fn new_fast(
        model: XatuModel,
        attack_type: AttackType,
        threshold: f64,
        cfg: &XatuConfig,
    ) -> Self {
        let mut det = Self::new(model, attack_type, threshold, cfg);
        det.enable_fast();
        det
    }

    /// [`FleetDetector::from_checkpoint`] followed by
    /// [`FleetDetector::enable_fast`] — loads any detector checkpoint
    /// (including one written by the exact backend) into the fast
    /// backend. A fast → checkpoint → fast round trip is bit-exact
    /// (the checkpoint stores widened `f32` values).
    pub fn from_checkpoint_fast(ck: &DetectorCheckpoint) -> Result<Self, XatuError> {
        let mut fleet = Self::from_checkpoint(ck)?;
        fleet.enable_fast();
        Ok(fleet)
    }

    /// Whether the reduced-precision backend is active.
    pub fn is_fast(&self) -> bool {
        self.fast.is_some()
    }

    /// Toggles the quiescence fast path (default on). With it off, every
    /// driven row runs the dense kernel every step — bit-identical
    /// results, used by the exactness gates and for A/B timing. No-op on
    /// the exact backend.
    pub fn set_idle_skip(&mut self, on: bool) {
        if let Some(fs) = &mut self.fast {
            fs.idle_skip = on;
        }
    }

    /// [`FleetDetector::to_checkpoint`] for the fast backend:
    /// materializes every stale row from the trajectory tables, widens
    /// the `f32` arenas into the (empty) `f64` arenas, writes the
    /// standard checkpoint through the exact path, then re-empties them.
    // Named to mirror `to_checkpoint`; `&mut self` because stale rows
    // are materialized in place first.
    #[allow(clippy::wrong_self_convention)]
    pub(super) fn to_checkpoint_fast(&mut self) -> DetectorCheckpoint {
        let mut fs = self.fast.take().expect("fast checkpoint without fast state");
        {
            let FastState {
                arenas: fa,
                traj_s,
                traj_m,
                traj_l,
                ..
            } = &mut fs;
            let n = self.addrs.len();
            for (arena, traj) in [
                (&mut fa.short, &*traj_s),
                (&mut fa.medium, &*traj_m),
                (&mut fa.long, &*traj_l),
            ] {
                let mut sh = dual_shard_all32(arena);
                for j in 0..n {
                    sh.materialize(traj, j);
                }
            }
            self.arenas.widen_from(fa);
        }
        let ck = self.to_checkpoint();
        self.arenas.clear_numeric();
        self.fast = Some(fs);
        ck
    }

    /// The fast-backend batch step — same three-phase structure, event
    /// ordering, sharding and telemetry as the parent
    /// [`FleetDetector::step_minute_batch`], with the dense advance
    /// replaced by the `f32` kernels and the quiescence fast path.
    pub(super) fn step_minute_batch_fast<F>(
        &mut self,
        minute: u32,
        threads: usize,
        fill: F,
    ) -> Result<&[DetectorEvent], XatuError>
    where
        F: Fn(usize, Ipv4, &mut [f64]) -> FleetInput + Sync,
    {
        let mut fs = self.fast.take().expect("fast dispatch without fast state");
        let n = self.addrs.len();
        self.events.clear();
        if n == 0 {
            self.fast = Some(fs);
            return Ok(&self.events);
        }
        let threads = threads.clamp(1, n).min(MAX_SHARDS);
        while self.workers.len() < threads {
            self.workers.push(WorkerScratch::new());
        }
        let k = self.knobs();
        let FastState {
            short,
            medium,
            long,
            traj_s,
            traj_m,
            traj_l,
            arenas: fast_arenas,
            idle_skip,
        } = &mut fs;
        let net = Net32 {
            short,
            medium,
            long,
            traj_s,
            traj_m,
            traj_l,
            head: self.model.head(),
            idle_skip: *idle_skip,
        };
        let addrs: &[Ipv4] = &self.addrs;
        let window = self.window;
        let worker = |(mut sh, w): (Shard32<'_>, &mut WorkerScratch)| {
            let WorkerScratch {
                frame,
                input,
                runs,
                impute_events,
                life_events,
                obs,
                err,
                z32,
                ws32,
                ..
            } = w;
            impute_events.clear();
            life_events.clear();
            *err = None;
            let len = sh.len();

            // Phase A — scalar: ordering, gap bridging, sanitization,
            // bucket accumulation, and the per-row stepping decision:
            // quiescent rows advance by trajectory bookkeeping alone;
            // everything else is materialized now and batched in B.
            for j in 0..len {
                sh.driven[j] = false;
                sh.med_done[j] = false;
                sh.long_done[j] = false;
                sh.short_step[j] = false;
                sh.med_step[j] = false;
                sh.long_step[j] = false;
                let g = sh.start + j;
                let addr = addrs[g];
                let action = fill(g, addr, frame);
                if matches!(action, FleetInput::Skip) {
                    continue;
                }
                if let Some(last) = sh.last_minute[j] {
                    if minute <= last {
                        obs.out_of_order.inc();
                        if err.is_none() {
                            *err = Some(XatuError::OutOfOrderMinute {
                                customer: addr,
                                minute,
                                last,
                            });
                        }
                        continue;
                    }
                }
                catch_up32(
                    net, &k, obs, &mut sh, j, addr, minute, z32, input, impute_events,
                );
                let f = j * NUM_FEATURES;
                if matches!(action, FleetInput::Gap) {
                    sh.stale_run[j] += 1;
                    obs.gaps_imputed.inc();
                    for e in f..f + NUM_FEATURES {
                        let v = sh.last_frame[e];
                        sh.med_partial[e] += v;
                        sh.long_partial[e] += v;
                    }
                } else {
                    let mut replaced = 0u64;
                    let mut zero = true;
                    for (e, &raw) in frame[..NUM_FEATURES].iter().enumerate() {
                        let v = if raw.is_finite() {
                            raw as f32
                        } else {
                            replaced += 1;
                            0.0
                        };
                        if v != 0.0 {
                            zero = false;
                        }
                        sh.last_frame[f + e] = v;
                        sh.med_partial[f + e] += v;
                        sh.long_partial[f + e] += v;
                    }
                    sh.last_zero[j] = zero;
                    if replaced > 0 {
                        obs.values_sanitized.add(replaced);
                    }
                    if sh.stale_run[j] > 0 {
                        obs.gap_runs.observe(sh.stale_run[j] as f64);
                        sh.stale_run[j] = 0;
                    }
                }
                let input_zero = sh.last_zero[j];
                sh.med_zero[j] &= input_zero;
                sh.long_zero[j] &= input_zero;
                sh.med_count[j] += 1;
                sh.med_done[j] = sh.med_count[j] == k.med_gran;
                if sh.med_done[j] {
                    let inv = 1.0 / k.med_gran as f32;
                    for e in f..f + NUM_FEATURES {
                        sh.med_partial[e] *= inv;
                    }
                    sh.med_count[j] = 0;
                }
                sh.long_count[j] += 1;
                sh.long_done[j] = sh.long_count[j] == k.long_gran;
                if sh.long_done[j] {
                    let inv = 1.0 / k.long_gran as f32;
                    for e in f..f + NUM_FEATURES {
                        sh.long_partial[e] *= inv;
                    }
                    sh.long_count[j] = 0;
                }
                sh.driven[j] = true;

                if k.use_s {
                    if net.idle_skip && input_zero && sh.short.can_skip(j, net.traj_s.limit()) {
                        sh.short.skip_advance(j);
                    } else {
                        sh.short.materialize(net.traj_s, j);
                        sh.short_step[j] = true;
                    }
                }
                if k.use_m && sh.med_done[j] {
                    if net.idle_skip && sh.med_zero[j] && sh.medium.can_skip(j, net.traj_m.limit())
                    {
                        sh.medium.skip_advance(j);
                    } else {
                        sh.medium.materialize(net.traj_m, j);
                        sh.med_step[j] = true;
                    }
                }
                if k.use_l && sh.long_done[j] {
                    if net.idle_skip && sh.long_zero[j] && sh.long.can_skip(j, net.traj_l.limit())
                    {
                        sh.long.skip_advance(j);
                    } else {
                        sh.long.materialize(net.traj_l, j);
                        sh.long_step[j] = true;
                    }
                }
            }

            // Phase B — batched f32 dual-block steps over contiguous
            // runs of rows that need the dense kernel, then the per-row
            // index/age bookkeeping (the zero flag is per row).
            if k.use_s {
                collect_runs(sh.short_step, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.last_frame[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.short.step_block32(net.short, a, b, xs, ws32);
                    for j in a..b {
                        sh.short.advance32(j, sh.last_zero[j], net.traj_s.limit());
                    }
                }
            }
            if k.use_m {
                collect_runs(sh.med_step, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.med_partial[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.medium.step_block32(net.medium, a, b, xs, ws32);
                    for j in a..b {
                        sh.medium.advance32(j, sh.med_zero[j], net.traj_m.limit());
                    }
                }
            }
            if k.use_l {
                collect_runs(sh.long_step, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.long_partial[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.long.step_block32(net.long, a, b, xs, ws32);
                    for j in a..b {
                        sh.long.advance32(j, sh.long_zero[j], net.traj_l.limit());
                    }
                }
            }
            // Retire consumed buckets and re-arm their zero trackers.
            collect_runs(sh.med_done, runs);
            for &(a, b) in runs.iter() {
                sh.med_partial[a as usize * NUM_FEATURES..b as usize * NUM_FEATURES].fill(0.0);
                sh.med_zero[a as usize..b as usize].fill(true);
            }
            collect_runs(sh.long_done, runs);
            for &(a, b) in runs.iter() {
                sh.long_partial[a as usize * NUM_FEATURES..b as usize * NUM_FEATURES].fill(0.0);
                sh.long_zero[a as usize..b as usize].fill(true);
            }

            // Phase C — combiner, survival, staleness blend, alert
            // lifecycle, clock advance.
            for j in 0..len {
                if !sh.driven[j] {
                    continue;
                }
                let addr = addrs[sh.start + j];
                combine_and_alert32(net, &k, obs, &mut sh, j, addr, minute, input, life_events);
                sh.last_minute[j] = Some(minute);
            }
        };

        // Mirrors the parent's dispatch: reusable range scratch, a
        // borrow-splitting cursor, stack task slots, and the persistent
        // worker pool — zero per-minute allocations at any thread count.
        let active = if threads == 1 {
            worker((
                shard_all_fast(&mut self.arenas, fast_arenas, window),
                &mut self.workers[0],
            ));
            1
        } else {
            block_ranges_into(n, threads, &mut self.range_scratch);
            let parts = self.range_scratch.len();
            let pool = self.pool.get_or_insert_with(WorkerPool::default);
            pool.ensure_workers(parts - 1);
            let mut split = FastShardSplit::new(&mut self.arenas, fast_arenas, window);
            let mut slots: [Option<(Shard32<'_>, &mut WorkerScratch)>; MAX_SHARDS] =
                std::array::from_fn(|_| None);
            for ((&(s, e), w), slot) in self
                .range_scratch
                .iter()
                .zip(self.workers.iter_mut())
                .zip(slots.iter_mut())
            {
                *slot = Some((split.take(e - s), w));
            }
            pool.run_tasks(&mut slots[..parts], &|slot| {
                if let Some(task) = slot.take() {
                    worker(task);
                }
            });
            parts
        };
        self.fast = Some(fs);

        let mut first_err = None;
        for w in &self.workers[..active] {
            self.events.extend_from_slice(&w.impute_events);
        }
        for w in &self.workers[..active] {
            self.events.extend_from_slice(&w.life_events);
        }
        for w in &mut self.workers[..active] {
            self.obs.merge_from(&w.obs);
            w.obs.reset();
            if first_err.is_none() {
                first_err = w.err.take();
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(&self.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xatu_simnet::faults::{FaultKind, FaultSchedule, BUILTIN_SCHEDULES};
    use xatu_simnet::fleet::{FleetMinute, FleetTraffic};

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            ..XatuConfig::smoke_test()
        }
    }

    const N_CUST: usize = 7;

    /// Frames mirroring the parent tests' generator, plus an *idle*
    /// customer (6): exactly all-zero frames outside a short activity
    /// burst, with one planted `-0.0` to exercise the signed-zero
    /// routing of the quiescence test.
    fn fast_frame(c: usize, m: u32, out: &mut [f64]) {
        out.fill(0.0);
        if c == 6 {
            if (100..112).contains(&m) {
                out[3] = 1.5 + m as f64 * 0.01;
                out[17] = -0.7;
            } else if m == 130 {
                out[9] = -0.0; // still an idle frame, bit-wise signed
            }
            return;
        }
        for k in 0..8usize {
            let idx = (c * 37 + m as usize * 13 + k * 29) % NUM_FEATURES;
            out[idx] = ((c + 1) as f64 * 0.17 + m as f64 * 0.031 + k as f64 * 0.71).sin();
        }
        if m % 23 == 3 && c % 3 == 0 {
            out[5] = f64::NAN;
        }
        if c == 0 && (60..90).contains(&m) {
            out[0] = 3.0;
        }
    }

    /// The parent tests' degraded-input schedule: short outage (imputed
    /// on return), periodic gaps, a long outage (cold restart) and a
    /// late joiner.
    fn fast_schedule(c: usize, m: u32) -> FleetInput {
        if c == 2 && (40..=45).contains(&m) {
            FleetInput::Skip
        } else if c == 3 && m % 17 == 0 && m > 0 {
            FleetInput::Gap
        } else if c == 4 && (50..100).contains(&m) {
            FleetInput::Skip
        } else if c == 5 && m < 20 {
            FleetInput::Skip
        } else {
            FleetInput::Frame
        }
    }

    fn addr(c: usize) -> Ipv4 {
        Ipv4(0x0a00_0000 + c as u32)
    }

    fn new_exact(threshold: f64) -> FleetDetector {
        let c = cfg();
        let model = XatuModel::new(&c);
        FleetDetector::new(model, AttackType::UdpFlood, threshold, &c)
    }

    fn new_fast_like(exact: &FleetDetector, threshold: f64) -> FleetDetector {
        let c = cfg();
        let mut det =
            FleetDetector::new(exact.model.clone(), AttackType::UdpFlood, threshold, &c);
        det.enable_fast();
        det
    }

    /// Drives `det` over `minutes` with the given per-cell schedule and
    /// frame generator; returns all events plus every per-minute
    /// survival of every customer.
    fn drive(
        det: &mut FleetDetector,
        n: usize,
        minutes: u32,
        threads: usize,
        schedule: impl Fn(usize, u32) -> FleetInput + Sync,
        frame: impl Fn(usize, u32, &mut [f64]) + Sync,
    ) -> (Vec<DetectorEvent>, Vec<f64>) {
        for c in 0..n {
            det.add_customer(addr(c));
        }
        let mut events = Vec::new();
        let mut survivals = Vec::new();
        for m in 0..minutes {
            let evs = det
                .step_minute_batch(m, threads, |i, _a, out| {
                    let action = schedule(i, m);
                    if matches!(action, FleetInput::Frame) {
                        frame(i, m, out);
                    }
                    action
                })
                .expect("minutes are in order");
            events.extend_from_slice(evs);
            for c in 0..n {
                survivals.push(det.survival_of(addr(c)));
            }
        }
        (events, survivals)
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Tentpole gate: on the degraded-input schedule (gaps, imputation,
    /// cold restart, late joiner, an idle customer with re-entry), the
    /// fast backend raises and ends exactly the same alerts as the
    /// exact backend, and every per-minute survival stays within the
    /// calibrated tolerance.
    #[test]
    fn fast_matches_exact_decisions_and_survival() {
        let mut exact = new_exact(0.9);
        let mut fast = new_fast_like(&exact, 0.9);
        let (ev_e, su_e) = drive(&mut exact, N_CUST, 220, 1, fast_schedule, fast_frame);
        let (ev_f, su_f) = drive(&mut fast, N_CUST, 220, 1, fast_schedule, fast_frame);
        assert!(!ev_e.is_empty(), "schedule should raise alerts");
        assert_eq!(ev_e, ev_f, "fast backend changed alert decisions");
        let dev = max_abs_diff(&su_e, &su_f);
        assert!(
            dev <= FAST_SURVIVAL_EPS,
            "survival deviation {dev:e} exceeds eps {FAST_SURVIVAL_EPS:e}"
        );
    }

    /// Decision parity across every built-in fault schedule: gap minutes
    /// are derived from the public fault windows (collector outages hit
    /// everyone; customer gaps hit their customer) and fast-vs-exact
    /// must agree on every alert and stay within tolerance on survival.
    #[test]
    fn builtin_fault_schedules_decision_parity() {
        let total = 160;
        let n = 6;
        for name in BUILTIN_SCHEDULES {
            let plan = FaultSchedule::builtin(name, total, n).expect("builtin name");
            let is_gap = |c: usize, m: u32| {
                plan.windows.iter().any(|w| {
                    m >= w.start
                        && m < w.end
                        && match w.kind {
                            FaultKind::CollectorOutage => true,
                            FaultKind::CustomerGap => w.customer == Some(c),
                            _ => false,
                        }
                })
            };
            let schedule = |c: usize, m: u32| {
                if is_gap(c, m) {
                    FleetInput::Gap
                } else {
                    FleetInput::Frame
                }
            };
            let mut exact = new_exact(0.9);
            let mut fast = new_fast_like(&exact, 0.9);
            let (ev_e, su_e) = drive(&mut exact, n, total, 1, schedule, fast_frame);
            let (ev_f, su_f) = drive(&mut fast, n, total, 1, schedule, fast_frame);
            assert_eq!(ev_e, ev_f, "decision divergence on schedule {name}");
            let dev = max_abs_diff(&su_e, &su_f);
            assert!(
                dev <= FAST_SURVIVAL_EPS,
                "schedule {name}: survival deviation {dev:e} exceeds eps"
            );
        }
    }

    /// The quiescence fast path is *exact*: with the skip knob off every
    /// row runs the dense kernel every minute, and the two fast
    /// detectors produce bit-identical survivals, identical events, and
    /// equal checkpoints — across gaps, cold restarts, signed-zero
    /// frames, and the idle customer's burst re-entry.
    #[test]
    fn idle_skip_matches_always_stepping() {
        let exact = new_exact(0.9);
        let mut skipping = new_fast_like(&exact, 0.9);
        let mut stepping = new_fast_like(&exact, 0.9);
        stepping.set_idle_skip(false);
        let (ev_a, su_a) = drive(&mut skipping, N_CUST, 220, 1, fast_schedule, fast_frame);
        let (ev_b, su_b) = drive(&mut stepping, N_CUST, 220, 1, fast_schedule, fast_frame);
        assert_eq!(ev_a, ev_b);
        for (x, y) in su_a.iter().zip(&su_b) {
            assert_eq!(x.to_bits(), y.to_bits(), "skip changed a survival bit");
        }
        assert_eq!(
            skipping.to_checkpoint(),
            stepping.to_checkpoint(),
            "skip changed checkpoint state"
        );
    }

    /// Fast → checkpoint → fast resumes bit-identically (the checkpoint
    /// stores widened f32 values, and full zero-input steps land exactly
    /// on the trajectory, so losing the indices costs skips, not bits).
    /// The checkpoint also loads into the exact backend.
    #[test]
    fn fast_checkpoint_roundtrip_resumes_bitwise() {
        let exact = new_exact(0.9);
        let mut orig = new_fast_like(&exact, 0.9);
        let _ = drive(&mut orig, N_CUST, 97, 1, fast_schedule, fast_frame);
        let ck = orig.to_checkpoint();
        assert!(FleetDetector::from_checkpoint(&ck).is_ok());
        let mut resumed = FleetDetector::from_checkpoint_fast(&ck).expect("fast resume");
        assert!(resumed.is_fast());
        let mut events_o = Vec::new();
        let mut events_r = Vec::new();
        for m in 97..180u32 {
            let fill = |i: usize, _a: Ipv4, out: &mut [f64]| {
                let action = fast_schedule(i, m);
                if matches!(action, FleetInput::Frame) {
                    fast_frame(i, m, out);
                }
                action
            };
            events_o.extend_from_slice(orig.step_minute_batch(m, 1, fill).expect("in order"));
            events_r.extend_from_slice(resumed.step_minute_batch(m, 1, fill).expect("in order"));
            for c in 0..N_CUST {
                assert_eq!(
                    orig.survival_of(addr(c)).to_bits(),
                    resumed.survival_of(addr(c)).to_bits(),
                    "resume diverged at minute {m} customer {c}"
                );
            }
        }
        assert_eq!(events_o, events_r);
        assert_eq!(orig.to_checkpoint(), resumed.to_checkpoint());
    }

    /// Thread-count invariance holds on the fast backend: shard
    /// boundaries cut through skip runs without moving a bit.
    #[test]
    fn fast_thread_invariance() {
        let exact = new_exact(0.9);
        let mut one = new_fast_like(&exact, 0.9);
        let mut four = new_fast_like(&exact, 0.9);
        let (ev_1, su_1) = drive(&mut one, N_CUST, 150, 1, fast_schedule, fast_frame);
        let (ev_4, su_4) = drive(&mut four, N_CUST, 150, 4, fast_schedule, fast_frame);
        assert_eq!(ev_1, ev_4);
        for (x, y) in su_1.iter().zip(&su_4) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Enabling fast mid-stream narrows the live f64 state and keeps
    /// decisions/tolerance parity with the exact detector from there on.
    #[test]
    fn enable_fast_mid_stream_keeps_parity() {
        let mut exact = new_exact(0.9);
        let mut late = new_exact(0.9);
        late.model = exact.model.clone();
        for c in 0..N_CUST {
            exact.add_customer(addr(c));
            late.add_customer(addr(c));
        }
        let mut ev_e = Vec::new();
        let mut ev_l = Vec::new();
        let mut dev = 0.0f64;
        for m in 0..200u32 {
            if m == 70 {
                late.enable_fast();
                assert!(late.is_fast());
                late.enable_fast(); // idempotent
            }
            let fill = |i: usize, _a: Ipv4, out: &mut [f64]| {
                let action = fast_schedule(i, m);
                if matches!(action, FleetInput::Frame) {
                    fast_frame(i, m, out);
                }
                action
            };
            ev_e.extend_from_slice(exact.step_minute_batch(m, 1, fill).expect("in order"));
            ev_l.extend_from_slice(late.step_minute_batch(m, 1, fill).expect("in order"));
            for c in 0..N_CUST {
                dev = dev.max((exact.survival_of(addr(c)) - late.survival_of(addr(c))).abs());
            }
        }
        assert_eq!(ev_e, ev_l);
        assert!(dev <= FAST_SURVIVAL_EPS, "deviation {dev:e}");
    }

    /// On closed-form fleet traffic with an idle cohort, the skip path
    /// engages massively (sanity-check the counter-free way: it must be
    /// bit-identical to always-stepping *and* the idle customers' rows
    /// must be stale most minutes — observable through equal outputs at
    /// a fraction of the dense work; here we pin the bit-identity on the
    /// generator the benches use).
    #[test]
    fn idle_fleet_traffic_skip_is_exact() {
        let traffic = FleetTraffic::with_idle(99, 64, 0.75);
        let exact = new_exact(0.97);
        let mut skipping = new_fast_like(&exact, 0.97);
        let mut stepping = new_fast_like(&exact, 0.97);
        stepping.set_idle_skip(false);
        for det in [&mut skipping, &mut stepping] {
            for c in 0..64 {
                det.add_customer(addr(c));
            }
        }
        for m in 0..180u32 {
            let fill = |i: usize, _a: Ipv4, out: &mut [f64]| match traffic.fill_frame(i, m, out) {
                FleetMinute::Frame(_) => FleetInput::Frame,
                FleetMinute::Missing => FleetInput::Gap,
            };
            let ev_a: Vec<DetectorEvent> = skipping
                .step_minute_batch(m, 2, fill)
                .expect("in order")
                .to_vec();
            let ev_b: Vec<DetectorEvent> = stepping
                .step_minute_batch(m, 2, fill)
                .expect("in order")
                .to_vec();
            assert_eq!(ev_a, ev_b, "minute {m}");
            for c in 0..64 {
                assert_eq!(
                    skipping.survival_of(addr(c)).to_bits(),
                    stepping.survival_of(addr(c)).to_bits(),
                    "minute {m} customer {c}"
                );
            }
        }
        assert_eq!(skipping.to_checkpoint(), stepping.to_checkpoint());
    }

    /// The arena footprint accounting includes the fast state, and the
    /// f64 numeric arenas really are empty while fast is active.
    #[test]
    fn fast_arena_accounting() {
        let exact = new_exact(0.9);
        let mut fast = new_fast_like(&exact, 0.9);
        for c in 0..100 {
            fast.add_customer(addr(c));
        }
        assert!(fast.arenas.short.aged_h.is_empty());
        assert!(fast.arenas.med_partial.is_empty());
        let fs = fast.fast.as_ref().expect("fast enabled");
        assert_eq!(fs.arenas.short.aged_h.len(), 100 * cfg().hidden);
        assert_eq!(fs.arenas.last_frame.len(), 100 * NUM_FEATURES);
        assert!(fast.bytes_per_customer() > 0);
        // f32 numerics should undercut the f64 backend's per-customer
        // numeric footprint: spot-check the dominant dual-state arenas.
        let f64_dual = 4 * cfg().hidden * std::mem::size_of::<f64>();
        let f32_dual = 4 * cfg().hidden * std::mem::size_of::<f32>();
        assert_eq!(f64_dual, 2 * f32_dual);
    }

    /// Index saturation: a row driven past the trajectory table bound
    /// falls back to the dense kernel instead of indexing out of range.
    #[test]
    fn trajectory_bound_saturates() {
        assert_eq!(bump(NO_TRAJ, 10), NO_TRAJ);
        assert_eq!(bump(8, 10), 9);
        assert_eq!(bump(9, 10), NO_TRAJ);
        let mut a = DualArena32::new(3, 2);
        a.push_default();
        let sh = dual_shard_all32(&mut a);
        // Force the aged index to the last valid entry.
        sh.aged_idx[0] = 9;
        assert!(!sh.can_skip(0, 10));
        sh.aged_idx[0] = 8;
        assert!(sh.can_skip(0, 10));
    }
}
