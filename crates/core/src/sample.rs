//! Training samples: the multi-timescale sequences plus the survival label.

use serde::{Deserialize, Serialize};
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_nn::FrameArena;

/// One (attack or non-attack) time series, ready for the model.
///
/// Feature frames are stored as `f32` to halve memory; the model widens to
/// `f64` at its input boundary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sample {
    /// Short-granularity context, oldest first (length ≤ `short_len`).
    pub short: Vec<Vec<f32>>,
    /// Medium-granularity context.
    pub medium: Vec<Vec<f32>>,
    /// Long-granularity context.
    pub long: Vec<Vec<f32>>,
    /// The detection window at 1-minute granularity (length ≤ `window`).
    pub window: Vec<Vec<f32>>,
    /// `c`: true if a CDet alert labels this series as an attack.
    pub label: bool,
    /// `t_i`, 1-based step within `window`: CDet detection step for attack
    /// series, the window length for censored series.
    pub event_step: usize,
    /// Step within `window` (1-based) where the ground-truth anomaly
    /// starts, when known (used by the cross-entropy ablation and metrics).
    pub anomaly_step: Option<usize>,
    /// Bookkeeping.
    pub meta: SampleMeta,
}

/// Provenance of a sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Customer the series belongs to.
    pub customer: Ipv4,
    /// Attack type this series is labelled for.
    pub attack_type: AttackType,
    /// Absolute minute of the first window frame.
    pub window_start: u32,
}

impl Sample {
    /// Widened views of the sequences for the f64 model.
    pub fn widen(v: &[Vec<f32>]) -> Vec<Vec<f64>> {
        v.iter()
            .map(|f| f.iter().map(|&x| x as f64).collect())
            .collect()
    }

    /// Rough memory footprint in bytes (capacity planning). Each sequence
    /// contributes its own length × frame width — the sequences can have
    /// different widths, so the short width must not be applied to all.
    pub fn approx_bytes(&self) -> usize {
        let seq = |v: &[Vec<f32>]| -> usize {
            v.len() * v.first().map_or(273, Vec::len) * std::mem::size_of::<f32>()
        };
        seq(&self.short) + seq(&self.medium) + seq(&self.long) + seq(&self.window)
    }

    /// Validates internal consistency, describing the first inconsistency
    /// found. Samples come from external labels (CDet alerts over
    /// collector data), so a bad one is an *input* fault — callers turn
    /// this into a typed [`crate::error::XatuError::InvalidSample`] rather
    /// than panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.window.is_empty() {
            return Err("empty detection window".into());
        }
        if self.event_step < 1 || self.event_step > self.window.len() {
            return Err(format!(
                "event_step {} outside window of {}",
                self.event_step,
                self.window.len()
            ));
        }
        if let Some(a) = self.anomaly_step {
            if a < 1 || a > self.window.len() {
                return Err(format!(
                    "anomaly_step {a} outside window of {}",
                    self.window.len()
                ));
            }
        }
        let width = self.window[0].len();
        if let Some(t) = self.window.iter().position(|f| f.len() != width) {
            return Err(format!(
                "window frame {t} has width {}, frame 0 has {width}",
                self.window[t].len()
            ));
        }
        Ok(())
    }
}

/// A sample widened to `f64` once, as flat frame arenas — the model's
/// native input. Built per sample at the start of a training run (or per
/// call by the compat wrappers) so the f32→f64 conversion never repeats
/// inside the epoch loop.
#[derive(Clone, Debug, Default)]
pub struct WideSample {
    /// Short-granularity context frames.
    pub short: FrameArena,
    /// Medium-granularity context frames.
    pub medium: FrameArena,
    /// Long-granularity context frames.
    pub long: FrameArena,
    /// Detection-window frames.
    pub window: FrameArena,
}

impl WideSample {
    /// Widens `sample` into a fresh set of arenas.
    pub fn from_sample(sample: &Sample) -> Self {
        let mut w = WideSample::default();
        w.fill_from(sample);
        w
    }

    /// Re-fills from `sample`, reusing arena capacity.
    pub fn fill_from(&mut self, sample: &Sample) {
        let dim = |v: &[Vec<f32>]| v.first().map_or(0, Vec::len);
        self.short.fill_widened(dim(&sample.short), &sample.short);
        self.medium.fill_widened(dim(&sample.medium), &sample.medium);
        self.long.fill_widened(dim(&sample.long), &sample.long);
        self.window.fill_widened(dim(&sample.window), &sample.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample {
            short: vec![vec![0.0f32; 4]; 3],
            medium: vec![vec![0.0f32; 4]; 2],
            long: vec![vec![0.0f32; 4]; 2],
            window: vec![vec![0.0f32; 4]; 5],
            label: true,
            event_step: 3,
            anomaly_step: Some(2),
            meta: SampleMeta {
                customer: Ipv4(1),
                attack_type: AttackType::UdpFlood,
                window_start: 100,
            },
        }
    }

    #[test]
    fn widen_preserves_values() {
        let w = Sample::widen(&[vec![1.5f32, -2.0]]);
        assert_eq!(w, vec![vec![1.5f64, -2.0]]);
    }

    #[test]
    fn validate_accepts_good_sample() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_event_step() {
        let mut s = sample();
        s.event_step = 9;
        let err = s.validate().unwrap_err();
        assert!(err.contains("event_step"), "{err}");
    }

    #[test]
    fn validate_rejects_ragged_window() {
        let mut s = sample();
        s.window[2] = vec![0.0f32; 3];
        let err = s.validate().unwrap_err();
        assert!(err.contains("width"), "{err}");
    }

    #[test]
    fn approx_bytes_counts_frames() {
        let s = sample();
        assert_eq!(s.approx_bytes(), (3 + 2 + 2 + 5) * 4 * 4);
    }

    #[test]
    fn approx_bytes_uses_per_sequence_widths() {
        // Pooled sequences can have a different width than the short one;
        // each must be counted at its own width.
        let mut s = sample();
        s.medium = vec![vec![0.0f32; 6]; 2];
        s.long = vec![vec![0.0f32; 8]; 1];
        assert_eq!(
            s.approx_bytes(),
            (3 * 4 + 2 * 6 + 8 + 5 * 4) * std::mem::size_of::<f32>()
        );
    }

    #[test]
    fn wide_sample_matches_widen() {
        let mut s = sample();
        s.window[0][2] = 1.25;
        s.short[1][3] = -0.5;
        let w = WideSample::from_sample(&s);
        let rows = Sample::widen(&s.window);
        assert_eq!(w.window.len(), rows.len());
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(w.window.frame(t), &row[..]);
        }
        assert_eq!(w.short.frame(1)[3], -0.5f64);
        // Refill reuses buffers and stays correct.
        let mut w2 = w.clone();
        w2.fill_from(&s);
        assert_eq!(w2.short, w.short);
        assert_eq!(w2.window, w.window);
    }
}
