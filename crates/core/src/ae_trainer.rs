//! Benign-window trainer for the unsupervised reconstruction companion.
//!
//! The [`xatu_nn::LstmAutoencoder`] learns to reconstruct *benign*
//! volumetric feature windows — no labels, no CDet feed, nothing that
//! disappears when the upstream alert stream goes quiet. The training
//! loop mirrors [`crate::trainer`] exactly: pooled per-window gradient
//! buffers, worker replicas synced from the optimizer's copy each batch,
//! fixed-order gradient reduction, seeded Fisher–Yates shuffling, and
//! XCK1 checkpoint/resume that replays the completed epochs' shuffle
//! permutations — so a trained companion is bit-identical at any thread
//! count, killed or not.
//!
//! Training windows carry only the volumetric feature block
//! ([`volumetric_windows_from_samples`]): the companion's input
//! distribution is then invariant to CDet-feed state, which is what lets
//! it keep its full signal while the survival model degrades to
//! volumetric-only frames.

use crate::checkpoint::{load_autoencoder, save_autoencoder, AutoencoderCheckpoint};
use crate::error::XatuError;
use crate::sample::Sample;
use crate::trainer::TrainCheckpointSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use xatu_features::frame::offsets;
use xatu_nn::{Adam, AeWorkspace, FrameArena, GradBufferPool, LstmAutoencoder, Params};
use xatu_par::{par_zip_with_workers, resolve_threads};

/// Knobs of the companion trainer (deliberately few: the autoencoder has
/// no labels to balance and no thresholds to calibrate here).
#[derive(Clone, Copy, Debug)]
pub struct AeTrainConfig {
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
    /// Latent width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// Worker threads (0 = auto, same semantics as [`crate::XatuConfig`]).
    pub threads: usize,
}

impl Default for AeTrainConfig {
    fn default() -> Self {
        AeTrainConfig {
            seed: 17,
            hidden: 10,
            lr: 5e-3,
            batch_size: 8,
            epochs: 30,
            grad_clip: 5.0,
            threads: 0,
        }
    }
}

/// Per-epoch companion-training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct AeEpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean reconstruction loss over the epoch.
    pub mean_loss: f64,
    /// Mean global gradient norm before clipping.
    pub mean_grad_norm: f64,
}

/// Extracts benign training windows from labeled samples: the volumetric
/// block of every *negative* sample's detection window, widened to `f64`.
/// Positive samples are skipped — the companion must never see an attack.
pub fn volumetric_windows_from_samples(samples: &[Sample]) -> Vec<FrameArena> {
    samples
        .iter()
        .filter(|s| !s.label)
        .map(|s| {
            let mut arena = FrameArena::new(offsets::A1);
            for frame in &s.window {
                let row = arena.push_zeroed();
                for (dst, src) in row.iter_mut().zip(&frame[..offsets::A1]) {
                    *dst = *src as f64;
                }
            }
            arena
        })
        .filter(|a| !a.is_empty())
        .collect()
}

/// A freshly initialized companion sized for `cfg` and `input_dim`-wide
/// frames (the volumetric block by default).
pub fn new_autoencoder(input_dim: usize, cfg: &AeTrainConfig) -> LstmAutoencoder {
    let mut init = xatu_nn::init::Initializer::new(cfg.seed);
    LstmAutoencoder::new(input_dim, cfg.hidden, &mut init)
}

/// Trains `ae` on benign `windows` in place; returns per-epoch stats.
pub fn train_autoencoder(
    ae: &mut LstmAutoencoder,
    windows: &[FrameArena],
    cfg: &AeTrainConfig,
) -> Result<Vec<AeEpochStats>, XatuError> {
    train_ae_inner(ae, windows, cfg, None)
}

/// [`train_autoencoder`] with crash-safe checkpoint/resume, sharing the
/// [`TrainCheckpointSpec`] policy of the survival trainer. Resume is
/// bit-identical to an uninterrupted run at every thread count; a
/// checkpoint from a different run is rejected with
/// [`XatuError::CheckpointMismatch`].
pub fn train_autoencoder_resumable(
    ae: &mut LstmAutoencoder,
    windows: &[FrameArena],
    cfg: &AeTrainConfig,
    spec: &TrainCheckpointSpec<'_>,
) -> Result<Vec<AeEpochStats>, XatuError> {
    train_ae_inner(ae, windows, cfg, Some(spec))
}

/// Reconstruction error of every window, in input order (the calibration
/// input for [`crate::fusion::ErrorNormalizer::from_benign_errors`]).
pub fn reconstruction_errors(ae: &LstmAutoencoder, windows: &[FrameArena]) -> Vec<f64> {
    let mut ws = AeWorkspace::new();
    windows
        .iter()
        .map(|w| ae.reconstruction_error(w, &mut ws))
        .collect()
}

/// One worker replica: a model copy plus its reusable workspace.
struct AeWorker {
    ae: LstmAutoencoder,
    ws: AeWorkspace,
}

fn train_ae_inner(
    ae: &mut LstmAutoencoder,
    windows: &[FrameArena],
    cfg: &AeTrainConfig,
    ckpt: Option<&TrainCheckpointSpec<'_>>,
) -> Result<Vec<AeEpochStats>, XatuError> {
    if windows.is_empty() {
        return Ok(Vec::new());
    }
    for (index, w) in windows.iter().enumerate() {
        if w.dim() != ae.input_dim() {
            return Err(XatuError::DimensionMismatch {
                expected: ae.input_dim(),
                found: w.dim(),
            });
        }
        if w.is_empty() {
            return Err(XatuError::InvalidSample {
                index,
                reason: "empty autoencoder window".into(),
            });
        }
    }
    let threads = resolve_threads(cfg.threads);
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xAE01));
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);

    // Resume: exactly the survival trainer's protocol — restore params and
    // Adam moments, then replay the completed epochs' permutations so the
    // RNG and `order` reach the checkpointed run's precise state.
    let mut start_epoch = 0usize;
    if let Some(spec) = ckpt {
        if spec.resume && spec.path.exists() {
            let ck = load_autoencoder(spec.path)?;
            check_ae_resume_identity(&ck, ae, windows, cfg, spec.path)?;
            ae.import_params_from(&ck.params);
            adam.restore_moments(ck.adam_t, ck.adam_m.clone(), ck.adam_v.clone())
                .map_err(|e| XatuError::corrupt(spec.path, e))?;
            for _ in 0..ck.epochs_done {
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
            }
            start_epoch = ck.epochs_done as usize;
        }
    }

    let param_count = ae.param_count();
    let mut pool = GradBufferPool::new(param_count);
    let mut workers: Vec<AeWorker> = Vec::new();
    let mut param_snapshot = vec![0.0; param_count];
    let mut chunk_items: Vec<&FrameArena> = Vec::new();
    let mut seq_ws = AeWorkspace::new();

    for epoch in start_epoch..cfg.epochs {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut epoch_loss = 0.0;
        let mut epoch_norm = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let slots = pool.take(chunk.len());
            let n_workers = threads.min(chunk.len());
            if n_workers <= 1 {
                for (slot, &i) in slots.iter_mut().zip(chunk) {
                    ae.zero_grads();
                    slot.1 = ae.loss_and_grad(&windows[i], &mut seq_ws);
                    ae.export_grads_into(&mut slot.0);
                }
            } else {
                while workers.len() < n_workers {
                    workers.push(AeWorker {
                        ae: ae.clone(),
                        ws: AeWorkspace::new(),
                    });
                }
                ae.export_params_into(&mut param_snapshot);
                for w in &mut workers[..n_workers] {
                    w.ae.import_params_from(&param_snapshot);
                }
                chunk_items.clear();
                chunk_items.extend(chunk.iter().map(|&i| &windows[i]));
                par_zip_with_workers(
                    &mut workers[..n_workers],
                    &chunk_items,
                    &mut slots[..],
                    |w, _idx, window, slot| {
                        w.ae.zero_grads();
                        slot.1 = w.ae.loss_and_grad(window, &mut w.ws);
                        w.ae.export_grads_into(&mut slot.0);
                    },
                );
            }
            // Fixed-order reduction, independent of worker assignment.
            ae.zero_grads();
            let mut batch_loss = 0.0;
            for (buf, window_loss) in slots.iter() {
                ae.accumulate_grads_from(buf);
                batch_loss += *window_loss;
            }
            ae.scale_grads(1.0 / chunk.len() as f64);
            epoch_norm += ae.grad_norm();
            ae.clip_grad_norm(cfg.grad_clip);
            adam.step(ae);
            epoch_loss += batch_loss / chunk.len() as f64;
            batches += 1;
        }
        stats.push(AeEpochStats {
            epoch,
            mean_loss: epoch_loss / batches as f64,
            mean_grad_norm: epoch_norm / batches as f64,
        });

        if let Some(spec) = ckpt {
            let done = epoch + 1;
            if done % spec.every_epochs.max(1) == 0 || done == cfg.epochs {
                save_autoencoder(spec.path, &ae_snapshot(ae, &adam, windows, cfg, done))?;
            }
            if spec.kill_after_epochs == Some(done - start_epoch) && done < cfg.epochs {
                return Ok(stats);
            }
        }
    }
    Ok(stats)
}

/// Builds the checkpoint record for the current companion-training state.
fn ae_snapshot(
    ae: &mut LstmAutoencoder,
    adam: &Adam,
    windows: &[FrameArena],
    cfg: &AeTrainConfig,
    epochs_done: usize,
) -> AutoencoderCheckpoint {
    let mut params = vec![0.0; ae.param_count()];
    ae.export_params_into(&mut params);
    let (adam_t, m, v) = adam.moments();
    AutoencoderCheckpoint {
        seed: cfg.seed,
        lr_bits: cfg.lr.to_bits(),
        batch_size: cfg.batch_size as u64,
        window_count: windows.len() as u64,
        input_dim: ae.input_dim() as u64,
        hidden: ae.hidden_dim() as u64,
        epochs_total: cfg.epochs as u64,
        epochs_done: epochs_done as u64,
        params,
        adam_t,
        adam_m: m.to_vec(),
        adam_v: v.to_vec(),
    }
}

/// Rejects a checkpoint that does not describe *this* run.
fn check_ae_resume_identity(
    ck: &AutoencoderCheckpoint,
    ae: &mut LstmAutoencoder,
    windows: &[FrameArena],
    cfg: &AeTrainConfig,
    path: &Path,
) -> Result<(), XatuError> {
    let mismatch = |reason: String| XatuError::CheckpointMismatch {
        path: path.display().to_string(),
        reason,
    };
    if ck.seed != cfg.seed {
        return Err(mismatch(format!("seed {} != {}", ck.seed, cfg.seed)));
    }
    if ck.lr_bits != cfg.lr.to_bits() {
        return Err(mismatch(format!(
            "learning rate {} != {}",
            f64::from_bits(ck.lr_bits),
            cfg.lr
        )));
    }
    if ck.batch_size != cfg.batch_size as u64 {
        return Err(mismatch(format!(
            "batch size {} != {}",
            ck.batch_size, cfg.batch_size
        )));
    }
    if ck.window_count != windows.len() as u64 {
        return Err(mismatch(format!(
            "window count {} != {}",
            ck.window_count,
            windows.len()
        )));
    }
    if ck.input_dim != ae.input_dim() as u64 {
        return Err(mismatch(format!(
            "input dim {} != {}",
            ck.input_dim,
            ae.input_dim()
        )));
    }
    if ck.hidden != ae.hidden_dim() as u64 {
        return Err(mismatch(format!(
            "hidden {} != {}",
            ck.hidden,
            ae.hidden_dim()
        )));
    }
    if ck.epochs_total != cfg.epochs as u64 {
        return Err(mismatch(format!(
            "epoch budget {} != {}",
            ck.epochs_total, cfg.epochs
        )));
    }
    if ck.params.len() != ae.param_count() {
        return Err(mismatch(format!(
            "parameter count {} != {}",
            ck.params.len(),
            ae.param_count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AeTrainConfig {
        AeTrainConfig {
            seed: 23,
            hidden: 6,
            lr: 5e-3,
            batch_size: 4,
            epochs: 20,
            ..AeTrainConfig::default()
        }
    }

    /// Synthetic benign windows: smooth low-amplitude volumetric-like
    /// frames of width `dim` with per-window phase.
    fn windows(n: usize, len: usize, dim: usize) -> Vec<FrameArena> {
        (0..n)
            .map(|i| {
                let mut arena = FrameArena::new(dim);
                for t in 0..len {
                    let row = arena.push_zeroed();
                    for (k, v) in row.iter_mut().enumerate() {
                        if k % 5 == 0 {
                            *v = 0.1 + 0.05 * (((i + t + k) % 7) as f64);
                        }
                    }
                }
                arena
            })
            .collect()
    }

    #[test]
    fn loss_decreases_over_training() {
        let c = cfg();
        let w = windows(12, 8, 10);
        let mut ae = new_autoencoder(10, &c);
        let stats = train_autoencoder(&mut ae, &w, &c).unwrap();
        assert_eq!(stats.len(), c.epochs);
        let first = stats[0].mean_loss;
        let last = stats.last().unwrap().mean_loss;
        assert!(last < first * 0.5, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_is_thread_count_invariant() {
        let mut c1 = cfg();
        c1.threads = 1;
        let mut c4 = cfg();
        c4.threads = 4;
        let w = windows(10, 8, 10);
        let mut a1 = new_autoencoder(10, &c1);
        let mut a4 = new_autoencoder(10, &c4);
        let s1 = train_autoencoder(&mut a1, &w, &c1).unwrap();
        let s4 = train_autoencoder(&mut a4, &w, &c4).unwrap();
        for (a, b) in s1.iter().zip(&s4) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.mean_grad_norm.to_bits(), b.mean_grad_norm.to_bits());
        }
        let e1 = reconstruction_errors(&a1, &w);
        let e4 = reconstruction_errors(&a4, &w);
        for (a, b) in e1.iter().zip(&e4) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_window_set_is_a_noop() {
        let c = cfg();
        let mut ae = new_autoencoder(10, &c);
        assert!(train_autoencoder(&mut ae, &[], &c).unwrap().is_empty());
    }

    #[test]
    fn wrong_width_window_is_a_typed_error() {
        let c = cfg();
        let mut ae = new_autoencoder(10, &c);
        let w = windows(2, 4, 7);
        match train_autoencoder(&mut ae, &w, &c) {
            Err(XatuError::DimensionMismatch { expected: 10, found: 7 }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    fn ck_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xatu_ae_ck_{}_{name}", std::process::id()));
        p
    }

    fn params_of(ae: &mut LstmAutoencoder) -> Vec<u64> {
        let mut p = vec![0.0; ae.param_count()];
        ae.export_params_into(&mut p);
        p.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn killed_training_resumes_bit_identically_across_thread_counts() {
        let mut c1 = cfg();
        c1.threads = 1;
        let mut c4 = cfg();
        c4.threads = 4;
        let w = windows(12, 8, 10);
        let path = ck_path("kill_resume");
        let _ = std::fs::remove_file(&path);

        // Reference: uninterrupted single-thread run.
        let mut reference = new_autoencoder(10, &c1);
        let ref_stats = train_autoencoder(&mut reference, &w, &c1).unwrap();

        // Victim: checkpoints every 6 epochs at 4 threads, crashes at 9 —
        // the surviving checkpoint is from epoch 6.
        let mut victim = new_autoencoder(10, &c4);
        let killed = train_autoencoder_resumable(
            &mut victim,
            &w,
            &c4,
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 6,
                resume: false,
                kill_after_epochs: Some(9),
            },
        )
        .unwrap();
        assert_eq!(killed.len(), 9, "kill point ignored");

        // Survivor resumes at 1 thread; tail and final params must match
        // the reference to the last bit.
        let mut survivor = new_autoencoder(10, &c1);
        let resumed = train_autoencoder_resumable(
            &mut survivor,
            &w,
            &c1,
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 6,
                resume: true,
                kill_after_epochs: None,
            },
        )
        .unwrap();
        assert_eq!(resumed.len(), c1.epochs - 6);
        assert_eq!(resumed[0].epoch, 6);
        for (a, b) in resumed.iter().zip(&ref_stats[6..]) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.mean_grad_norm.to_bits(), b.mean_grad_norm.to_bits());
        }
        assert_eq!(params_of(&mut survivor), params_of(&mut reference));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_checkpoint_is_rejected_on_identity() {
        let c = cfg();
        let w = windows(8, 8, 10);
        let path = ck_path("foreign");
        let _ = std::fs::remove_file(&path);
        let mut ae = new_autoencoder(10, &c);
        train_autoencoder_resumable(
            &mut ae,
            &w,
            &c,
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 8,
                resume: false,
                kill_after_epochs: Some(8),
            },
        )
        .unwrap();
        let mut other = cfg();
        other.seed = c.seed.wrapping_add(1);
        let mut ae2 = new_autoencoder(10, &other);
        match train_autoencoder_resumable(
            &mut ae2,
            &w,
            &other,
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 8,
                resume: true,
                kill_after_epochs: None,
            },
        ) {
            Err(XatuError::CheckpointMismatch { reason, .. }) => {
                assert!(reason.contains("seed"), "{reason}");
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // A different geometry is also rejected, not silently imported.
        let fat = AeTrainConfig { hidden: 7, ..c };
        let mut wide = new_autoencoder(10, &fat);
        match train_autoencoder_resumable(
            &mut wide,
            &w,
            &fat,
            &TrainCheckpointSpec {
                path: &path,
                every_epochs: 8,
                resume: true,
                kill_after_epochs: None,
            },
        ) {
            Err(XatuError::CheckpointMismatch { .. }) => {}
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
