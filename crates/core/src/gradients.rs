//! Input-gradient attribution (Fig 11 of the paper).
//!
//! "The gradient of the input features represents the contribution of the
//! features towards the final early detection — a higher gradient implies
//! more contribution." This module computes, for one sample, the absolute
//! input gradient of the *cumulative hazard at the detection step*,
//! aggregated per feature block (V, A1…A5) and per time step of the
//! medium and short sequences — exactly the series Fig 11 plots.

use crate::model::XatuModel;
use crate::sample::Sample;
use xatu_nn::FrameArena;

/// Attribution of one sample: per-timestep, per-block mean |gradient|.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Short sequence (context ++ window): one row per step, one column
    /// per block (V, A1, A2, A3, A4, A5).
    pub short: Vec<[f64; 6]>,
    /// Medium sequence rows.
    pub medium: Vec<[f64; 6]>,
    /// Long sequence rows.
    pub long: Vec<[f64; 6]>,
}

/// Block boundaries in the 273-feature layout.
const BLOCKS: [(usize, usize); 6] = [
    (0, 63),
    (63, 126),
    (126, 189),
    (189, 252),
    (252, 270),
    (270, 273),
];

/// Computes the attribution of `sample` at its event step (or the last
/// window step when censored).
pub fn attribute(model: &mut XatuModel, sample: &Sample) -> Attribution {
    let trace = model.forward(sample);
    // d(cumulative hazard at event step)/dλ_t = 1 for t ≤ event step.
    let mut d_hazards = vec![0.0; trace.hazards.len()];
    for d in d_hazards.iter_mut().take(sample.event_step) {
        *d = 1.0;
    }
    model.zero_grads_for_attribution();
    // Invariant, not input-dependent: `backward(.., true)` always returns
    // Some — the flag we just passed is what requests input gradients.
    let gx = model
        .backward(&trace, Some(&d_hazards), None, true)
        .expect("input gradients requested");

    let fold = |rows: &FrameArena| -> Vec<[f64; 6]> {
        rows.iter()
            .map(|row| {
                let mut out = [0.0; 6];
                for (b, (s, e)) in BLOCKS.iter().enumerate() {
                    let width = (e - s) as f64;
                    out[b] = row[*s..*e].iter().map(|v| v.abs()).sum::<f64>() / width;
                }
                out
            })
            .collect()
    };
    Attribution {
        short: fold(&gx.short),
        medium: fold(&gx.medium),
        long: fold(&gx.long),
    }
}

impl XatuModel {
    /// Zeroes parameter gradients before an attribution-only backward, so
    /// attribution never contaminates a training step.
    pub fn zero_grads_for_attribution(&mut self) {
        use xatu_nn::Params;
        self.zero_grads();
    }
}

impl Attribution {
    /// The block with the largest total attribution over the medium
    /// sequence — "which auxiliary signal drove this detection".
    pub fn dominant_block_medium(&self) -> usize {
        let mut totals = [0.0; 6];
        for row in &self.medium {
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
        }
        totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            // Invariant: `totals` is a fixed-size six-entry array, so the
            // iterator is never empty.
            .expect("six blocks")
    }

    /// Human-readable block name.
    pub fn block_name(i: usize) -> &'static str {
        ["V", "A1", "A2", "A3", "A4", "A5"][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XatuConfig;
    use crate::sample::SampleMeta;
    use crate::trainer::train;
    use xatu_features::frame::{offsets, NUM_FEATURES};
    use xatu_netflow::addr::Ipv4;
    use xatu_netflow::attack::AttackType;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            epochs: 40,
            batch_size: 4,
            lr: 2e-2,
            ..XatuConfig::smoke_test()
        }
    }

    /// Dataset where the *A2 block* is what predicts attacks.
    fn a2_driven_dataset(c: &XatuConfig, n: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for i in 0..n {
            let label = i % 2 == 0;
            let frame = |a2: f32| -> Vec<f32> {
                let mut f = vec![0.0f32; NUM_FEATURES];
                f[offsets::A2] = a2;
                f[0] = 0.1; // constant volumetric noise floor
                f
            };
            out.push(Sample {
                short: vec![frame(if label { 1.5 } else { 0.0 }); c.short_len],
                medium: vec![frame(if label { 1.5 } else { 0.0 }); c.medium_len],
                long: vec![frame(0.0); c.long_len],
                window: vec![frame(if label { 1.5 } else { 0.0 }); c.window],
                label,
                event_step: c.window,
                anomaly_step: label.then_some(3),
                meta: SampleMeta {
                    customer: Ipv4(i as u32),
                    attack_type: AttackType::UdpFlood,
                    window_start: 0,
                },
            });
        }
        out
    }

    #[test]
    fn attribution_shapes_match_sequences() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = a2_driven_dataset(&c, 4);
        let a = attribute(&mut model, &samples[0]);
        assert_eq!(a.short.len(), c.short_len + c.window);
        assert_eq!(a.medium.len(), c.medium_len + c.window / 3);
        assert_eq!(a.long.len(), c.long_len + c.window / 6);
    }

    #[test]
    fn a2_dominates_on_a2_driven_attacks() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = a2_driven_dataset(&c, 16);
        train(&mut model, &samples, &c).unwrap();
        // Fig 11's finding, reproduced in miniature. At this model scale
        // the per-block *mean* |gradient| carries substantial
        // initialisation noise (the planted signal lives in one of A2's 63
        // features, so the block mean dilutes it 63-fold, while narrow
        // blocks like A5 keep high per-feature means from random input
        // weights alone). The sharp version of the paper's claim is
        // per-feature: the single input that actually drives detection
        // must receive the largest attribution of all 273 features.
        let sample = &samples[0];
        let trace = model.forward(sample);
        let mut d_hazards = vec![0.0; trace.hazards.len()];
        for d in d_hazards.iter_mut().take(sample.event_step) {
            *d = 1.0;
        }
        model.zero_grads_for_attribution();
        let gx = model
            .backward(&trace, Some(&d_hazards), None, true)
            .expect("input gradients requested");
        let mut per_feature = vec![0.0f64; NUM_FEATURES];
        for row in gx.medium.iter().chain(&gx.short) {
            for (acc, g) in per_feature.iter_mut().zip(row) {
                *acc += g.abs();
            }
        }
        let top = per_feature
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("273 features");
        assert_eq!(
            top,
            offsets::A2,
            "top attribution feature {top} (|g|={}) is not the planted A2 \
             driver (|g|={})",
            per_feature[top],
            per_feature[offsets::A2]
        );
    }

    #[test]
    fn attribution_is_nonnegative() {
        let c = cfg();
        let mut model = XatuModel::new(&c);
        let samples = a2_driven_dataset(&c, 2);
        let a = attribute(&mut model, &samples[0]);
        for row in a.short.iter().chain(&a.medium).chain(&a.long) {
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }
}
