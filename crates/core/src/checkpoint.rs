//! Crash-safe checkpoint files (the `XCK1` container).
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! magic   b"XCK1"              4 bytes
//! version u16                  CHECKPOINT_VERSION
//! kind    u8                   KIND_TRAINER | KIND_DETECTOR
//! pad     u8                   0
//! len     u64                  payload length in bytes
//! payload [u8; len]            kind-specific body
//! check   u64                  FNV-1a over version..payload
//! ```
//!
//! Writes are crash-safe by construction: the whole file is assembled in
//! memory, written to `<path>.tmp`, and renamed over `path` — a reader
//! never sees a half-written checkpoint, only the previous complete one or
//! the new complete one. Every load re-verifies magic, version, kind,
//! length and checksum before any field is decoded, and the decoder
//! bounds-checks every read, so a truncated or bit-flipped file surfaces
//! as [`XatuError::CorruptCheckpoint`] instead of a panic or garbage
//! state.
//!
//! Floats are stored as `f64::to_bits`, which is what makes resume
//! bit-identical: a checkpoint round-trip is exact, never a decimal
//! approximation.

use crate::config::{LossKind, TimescaleMode};
use crate::error::{XatuError, CHECKPOINT_VERSION};
use std::path::Path;
use xatu_netflow::attack::AttackType;

/// Container magic.
pub const MAGIC: &[u8; 4] = b"XCK1";
/// `kind` byte for trainer checkpoints.
pub const KIND_TRAINER: u8 = 1;
/// `kind` byte for online-detector checkpoints.
pub const KIND_DETECTOR: u8 = 2;
/// `kind` byte for autoencoder-trainer checkpoints.
pub const KIND_AUTOENCODER: u8 = 3;

/// FNV-1a over a byte slice (same constants as `xatu-obs`' digest).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Flat little-endian encoder / bounds-checked decoder.
// ---------------------------------------------------------------------------

/// Append-only payload encoder.
#[derive(Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Enc(Vec::new())
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends an `Option<u32>` as a presence byte plus the value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
            None => self.u8(0),
        }
    }
}

/// Cursor-based decoder; every read is bounds-checked.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// True when every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed `f64` vector. The length is validated
    /// against the remaining bytes before allocating, so a corrupted
    /// length cannot trigger an absurd allocation.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.u64()? as usize;
        if n.checked_mul(8).is_none_or(|b| b > self.bytes.len() - self.pos) {
            return Err(format!("f64 vector length {n} exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads an `Option<u32>`.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            other => Err(format!("bad option tag {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Enum tags (stable wire values, independent of Rust enum layout).
// ---------------------------------------------------------------------------

/// Wire tag of an attack type (its index in [`AttackType::ALL`]).
pub fn attack_type_tag(t: AttackType) -> u8 {
    // The ALL order is the workspace-wide fixed order; an attack type is
    // always a member of its own ALL list.
    AttackType::ALL.iter().position(|&x| x == t).expect("in ALL") as u8
}

/// Decodes an attack-type tag.
pub fn attack_type_from_tag(tag: u8) -> Result<AttackType, String> {
    AttackType::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("bad attack-type tag {tag}"))
}

/// Wire tag of a timescale mode.
pub fn mode_tag(m: TimescaleMode) -> u8 {
    match m {
        TimescaleMode::All => 0,
        TimescaleMode::ShortOnly => 1,
        TimescaleMode::NoShort => 2,
        TimescaleMode::NoMedium => 3,
        TimescaleMode::NoLong => 4,
    }
}

/// Decodes a timescale-mode tag.
pub fn mode_from_tag(tag: u8) -> Result<TimescaleMode, String> {
    Ok(match tag {
        0 => TimescaleMode::All,
        1 => TimescaleMode::ShortOnly,
        2 => TimescaleMode::NoShort,
        3 => TimescaleMode::NoMedium,
        4 => TimescaleMode::NoLong,
        other => return Err(format!("bad timescale-mode tag {other}")),
    })
}

/// Wire tag of a loss kind.
pub fn loss_tag(l: LossKind) -> u8 {
    match l {
        LossKind::Survival => 0,
        LossKind::CrossEntropy => 1,
    }
}

/// Decodes a loss-kind tag.
pub fn loss_from_tag(tag: u8) -> Result<LossKind, String> {
    Ok(match tag {
        0 => LossKind::Survival,
        1 => LossKind::CrossEntropy,
        other => return Err(format!("bad loss-kind tag {other}")),
    })
}

// ---------------------------------------------------------------------------
// Container I/O.
// ---------------------------------------------------------------------------

/// Writes a complete container atomically: assemble in memory, write to
/// `<path>.tmp`, rename over `path`.
pub fn write_container(path: &Path, kind: u8, payload: &[u8]) -> Result<(), XatuError> {
    let mut body = Vec::with_capacity(payload.len() + 12);
    body.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    body.push(kind);
    body.push(0);
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(payload);
    let check = fnv1a64(&body);

    let mut file = Vec::with_capacity(body.len() + 12);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&body);
    file.extend_from_slice(&check.to_le_bytes());

    let tmp = tmp_path(path);
    std::fs::write(&tmp, &file).map_err(|e| XatuError::io(&tmp, "write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| XatuError::io(path, "rename", e))?;
    Ok(())
}

/// The sibling temp path used by [`write_container`].
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".tmp");
    std::path::PathBuf::from(s)
}

/// Reads and fully validates a container, returning its payload.
pub fn read_container(path: &Path, expect_kind: u8) -> Result<Vec<u8>, XatuError> {
    let bytes = std::fs::read(path).map_err(|e| XatuError::io(path, "read", e))?;
    // magic(4) + version(2) + kind(1) + pad(1) + len(8) + check(8)
    if bytes.len() < 24 {
        return Err(XatuError::corrupt(path, "file shorter than the fixed header"));
    }
    if &bytes[0..4] != MAGIC {
        return Err(XatuError::corrupt(path, "bad magic"));
    }
    let body = &bytes[4..bytes.len() - 8];
    let stored_check = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored_check {
        return Err(XatuError::corrupt(path, "checksum mismatch"));
    }
    let version = u16::from_le_bytes([body[0], body[1]]);
    if version != CHECKPOINT_VERSION {
        return Err(XatuError::CheckpointVersion {
            path: path.display().to_string(),
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let kind = body[2];
    if kind != expect_kind {
        return Err(XatuError::corrupt(
            path,
            format!("kind byte {kind}, expected {expect_kind}"),
        ));
    }
    let len = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")) as usize;
    let payload = &body[12..];
    if payload.len() != len {
        return Err(XatuError::corrupt(
            path,
            format!("payload is {} bytes, header says {len}", payload.len()),
        ));
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------------
// Trainer checkpoint.
// ---------------------------------------------------------------------------

/// Everything needed to resume training bit-identically: the run's
/// identity fields (to reject a checkpoint from a different run), the
/// current parameters, and the full Adam state. The shuffle RNG is *not*
/// stored — it is fast-forwarded on resume by replaying the completed
/// epochs' Fisher–Yates permutations, which depend only on the seed.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainerCheckpoint {
    /// Training seed (identity check).
    pub seed: u64,
    /// Learning-rate bits (identity check — exact, not approximate).
    pub lr_bits: u64,
    /// Batch size (identity check).
    pub batch_size: u64,
    /// Loss-kind tag (identity check).
    pub loss: LossKind,
    /// Number of training samples (identity check).
    pub sample_count: u64,
    /// Total epochs the run is configured for.
    pub epochs_total: u64,
    /// Epochs fully completed before this checkpoint.
    pub epochs_done: u64,
    /// Flat model parameters in `Params::visit` order.
    pub params: Vec<f64>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Adam first moments, per parameter chunk.
    pub adam_m: Vec<Vec<f64>>,
    /// Adam second moments, per parameter chunk.
    pub adam_v: Vec<Vec<f64>>,
}

impl TrainerCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.seed);
        e.u64(self.lr_bits);
        e.u64(self.batch_size);
        e.u8(loss_tag(self.loss));
        e.u64(self.sample_count);
        e.u64(self.epochs_total);
        e.u64(self.epochs_done);
        e.f64s(&self.params);
        e.u64(self.adam_t);
        for moments in [&self.adam_m, &self.adam_v] {
            e.u64(moments.len() as u64);
            for chunk in moments {
                e.f64s(chunk);
            }
        }
        e.into_bytes()
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, String> {
        let seed = d.u64()?;
        let lr_bits = d.u64()?;
        let batch_size = d.u64()?;
        let loss = loss_from_tag(d.u8()?)?;
        let sample_count = d.u64()?;
        let epochs_total = d.u64()?;
        let epochs_done = d.u64()?;
        if epochs_done > epochs_total {
            return Err(format!(
                "epochs_done {epochs_done} exceeds epochs_total {epochs_total}"
            ));
        }
        let params = d.f64s()?;
        let adam_t = d.u64()?;
        let mut moments = [Vec::new(), Vec::new()];
        for m in &mut moments {
            let n = d.u64()? as usize;
            for _ in 0..n {
                m.push(d.f64s()?);
            }
        }
        let [adam_m, adam_v] = moments;
        Ok(TrainerCheckpoint {
            seed,
            lr_bits,
            batch_size,
            loss,
            sample_count,
            epochs_total,
            epochs_done,
            params,
            adam_t,
            adam_m,
            adam_v,
        })
    }
}

/// Atomically writes a trainer checkpoint.
pub fn save_trainer(path: &Path, ck: &TrainerCheckpoint) -> Result<(), XatuError> {
    write_container(path, KIND_TRAINER, &ck.encode())
}

/// Loads and validates a trainer checkpoint.
pub fn load_trainer(path: &Path) -> Result<TrainerCheckpoint, XatuError> {
    let payload = read_container(path, KIND_TRAINER)?;
    let mut d = Dec::new(&payload);
    let ck = TrainerCheckpoint::decode(&mut d).map_err(|e| XatuError::corrupt(path, e))?;
    if !d.finished() {
        return Err(XatuError::corrupt(path, "trailing bytes after payload"));
    }
    Ok(ck)
}

// ---------------------------------------------------------------------------
// Online-detector checkpoint.
// ---------------------------------------------------------------------------

/// One [`crate::model::DualState`], flattened.
#[derive(Clone, Debug, PartialEq)]
pub struct DualStateCheckpoint {
    /// Aged hidden state.
    pub aged_h: Vec<f64>,
    /// Aged cell state.
    pub aged_c: Vec<f64>,
    /// Fresh hidden state.
    pub fresh_h: Vec<f64>,
    /// Fresh cell state.
    pub fresh_c: Vec<f64>,
    /// Aged context length.
    pub aged_age: u32,
    /// Fresh context length.
    pub fresh_age: u32,
    /// Reset period.
    pub period: u32,
}

impl DualStateCheckpoint {
    fn encode(&self, e: &mut Enc) {
        e.f64s(&self.aged_h);
        e.f64s(&self.aged_c);
        e.f64s(&self.fresh_h);
        e.f64s(&self.fresh_c);
        e.u32(self.aged_age);
        e.u32(self.fresh_age);
        e.u32(self.period);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, String> {
        Ok(DualStateCheckpoint {
            aged_h: d.f64s()?,
            aged_c: d.f64s()?,
            fresh_h: d.f64s()?,
            fresh_c: d.f64s()?,
            aged_age: d.u32()?,
            fresh_age: d.u32()?,
            period: d.u32()?,
        })
    }
}

/// One customer's full streaming state.
#[derive(Clone, Debug, PartialEq)]
pub struct CustomerCheckpoint {
    /// Customer address.
    pub addr: u32,
    /// Short / medium / long dual LSTM states.
    pub dual: [DualStateCheckpoint; 3],
    /// Rolling-survival state `(window, buf, head, filled, sum)`.
    pub survival: (u64, Vec<f64>, u64, u64, f64),
    /// Partial medium pooling bucket `(sum, count)`.
    pub med_partial: (Vec<f64>, u32),
    /// Partial long pooling bucket `(sum, count)`.
    pub long_partial: (Vec<f64>, u32),
    /// Minute the active alert was raised, if one is open.
    pub active_since: Option<u32>,
    /// Consecutive quiet observations while an alert is open.
    pub quiet_run: u32,
    /// Last reported survival.
    pub last_survival: f64,
    /// Observations seen (warm-up accounting).
    pub observed: u32,
    /// Last sanitized frame (the zero-order-hold imputation source).
    pub last_frame: Vec<f64>,
    /// Consecutive imputed/stale steps.
    pub stale_run: u32,
    /// Newest minute observed, if any.
    pub last_minute: Option<u32>,
}

impl CustomerCheckpoint {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.addr);
        for ds in &self.dual {
            ds.encode(e);
        }
        e.u64(self.survival.0);
        e.f64s(&self.survival.1);
        e.u64(self.survival.2);
        e.u64(self.survival.3);
        e.f64(self.survival.4);
        e.f64s(&self.med_partial.0);
        e.u32(self.med_partial.1);
        e.f64s(&self.long_partial.0);
        e.u32(self.long_partial.1);
        e.opt_u32(self.active_since);
        e.u32(self.quiet_run);
        e.f64(self.last_survival);
        e.u32(self.observed);
        e.f64s(&self.last_frame);
        e.u32(self.stale_run);
        e.opt_u32(self.last_minute);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, String> {
        Ok(CustomerCheckpoint {
            addr: d.u32()?,
            dual: [
                DualStateCheckpoint::decode(d)?,
                DualStateCheckpoint::decode(d)?,
                DualStateCheckpoint::decode(d)?,
            ],
            survival: (d.u64()?, d.f64s()?, d.u64()?, d.u64()?, d.f64()?),
            med_partial: (d.f64s()?, d.u32()?),
            long_partial: (d.f64s()?, d.u32()?),
            active_since: d.opt_u32()?,
            quiet_run: d.u32()?,
            last_survival: d.f64()?,
            observed: d.u32()?,
            last_frame: d.f64s()?,
            stale_run: d.u32()?,
            last_minute: d.opt_u32()?,
        })
    }
}

/// A complete [`crate::online::OnlineDetector`] snapshot: configuration,
/// model parameters, and every customer's streaming state (sorted by
/// address so the encoding is canonical regardless of hash-map order).
/// Telemetry is deliberately *not* checkpointed — counters restart at
/// zero on resume and cover the resumed segment only.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorCheckpoint {
    /// Attack type this detector serves.
    pub attack_type: AttackType,
    /// Calibrated alert threshold.
    pub threshold: f64,
    /// Rolling-survival window.
    pub window: u64,
    /// Quiet run required to end an alert.
    pub quiet: u32,
    /// Warm-up observations per customer.
    pub warmup: u32,
    /// Training context lengths (short, medium, long).
    pub ctx_lens: (u64, u64, u64),
    /// Force-end cap in minutes.
    pub max_alert_minutes: u32,
    /// Pooling granularities.
    pub timescales: (u32, u32, u32),
    /// Hidden units per LSTM.
    pub hidden: u64,
    /// Timescale mode.
    pub mode: TimescaleMode,
    /// Flat model parameters in `Params::visit` order.
    pub params: Vec<f64>,
    /// Per-customer states, sorted by address.
    pub customers: Vec<CustomerCheckpoint>,
}

impl DetectorCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(attack_type_tag(self.attack_type));
        e.f64(self.threshold);
        e.u64(self.window);
        e.u32(self.quiet);
        e.u32(self.warmup);
        e.u64(self.ctx_lens.0);
        e.u64(self.ctx_lens.1);
        e.u64(self.ctx_lens.2);
        e.u32(self.max_alert_minutes);
        e.u32(self.timescales.0);
        e.u32(self.timescales.1);
        e.u32(self.timescales.2);
        e.u64(self.hidden);
        e.u8(mode_tag(self.mode));
        e.f64s(&self.params);
        e.u64(self.customers.len() as u64);
        for c in &self.customers {
            c.encode(&mut e);
        }
        e.into_bytes()
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, String> {
        let attack_type = attack_type_from_tag(d.u8()?)?;
        let threshold = d.f64()?;
        let window = d.u64()?;
        let quiet = d.u32()?;
        let warmup = d.u32()?;
        let ctx_lens = (d.u64()?, d.u64()?, d.u64()?);
        let max_alert_minutes = d.u32()?;
        let timescales = (d.u32()?, d.u32()?, d.u32()?);
        let hidden = d.u64()?;
        let mode = mode_from_tag(d.u8()?)?;
        let params = d.f64s()?;
        let n = d.u64()? as usize;
        let mut customers = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            customers.push(CustomerCheckpoint::decode(d)?);
        }
        Ok(DetectorCheckpoint {
            attack_type,
            threshold,
            window,
            quiet,
            warmup,
            ctx_lens,
            max_alert_minutes,
            timescales,
            hidden,
            mode,
            params,
            customers,
        })
    }
}

/// Atomically writes a detector checkpoint.
pub fn save_detector(path: &Path, ck: &DetectorCheckpoint) -> Result<(), XatuError> {
    write_container(path, KIND_DETECTOR, &ck.encode())
}

/// Loads and validates a detector checkpoint.
pub fn load_detector(path: &Path) -> Result<DetectorCheckpoint, XatuError> {
    let payload = read_container(path, KIND_DETECTOR)?;
    let mut d = Dec::new(&payload);
    let ck = DetectorCheckpoint::decode(&mut d).map_err(|e| XatuError::corrupt(path, e))?;
    if !d.finished() {
        return Err(XatuError::corrupt(path, "trailing bytes after payload"));
    }
    Ok(ck)
}

// ---------------------------------------------------------------------------
// Autoencoder-trainer checkpoint.
// ---------------------------------------------------------------------------

/// Resume state for the benign-window autoencoder trainer
/// ([`crate::ae_trainer`]): identity fields to reject a checkpoint from a
/// different run, the flat parameters, and the full Adam state. Like the
/// survival trainer, the shuffle RNG is replayed on resume rather than
/// stored.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoencoderCheckpoint {
    /// Training seed (identity check).
    pub seed: u64,
    /// Learning-rate bits (identity check — exact, not approximate).
    pub lr_bits: u64,
    /// Batch size (identity check).
    pub batch_size: u64,
    /// Number of benign training windows (identity check).
    pub window_count: u64,
    /// Frame width the model reconstructs (identity check).
    pub input_dim: u64,
    /// Latent width (identity check).
    pub hidden: u64,
    /// Total epochs the run is configured for.
    pub epochs_total: u64,
    /// Epochs fully completed before this checkpoint.
    pub epochs_done: u64,
    /// Flat model parameters in `Params::visit` order.
    pub params: Vec<f64>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Adam first moments, per parameter chunk.
    pub adam_m: Vec<Vec<f64>>,
    /// Adam second moments, per parameter chunk.
    pub adam_v: Vec<Vec<f64>>,
}

impl AutoencoderCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.seed);
        e.u64(self.lr_bits);
        e.u64(self.batch_size);
        e.u64(self.window_count);
        e.u64(self.input_dim);
        e.u64(self.hidden);
        e.u64(self.epochs_total);
        e.u64(self.epochs_done);
        e.f64s(&self.params);
        e.u64(self.adam_t);
        for moments in [&self.adam_m, &self.adam_v] {
            e.u64(moments.len() as u64);
            for chunk in moments {
                e.f64s(chunk);
            }
        }
        e.into_bytes()
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, String> {
        let seed = d.u64()?;
        let lr_bits = d.u64()?;
        let batch_size = d.u64()?;
        let window_count = d.u64()?;
        let input_dim = d.u64()?;
        let hidden = d.u64()?;
        let epochs_total = d.u64()?;
        let epochs_done = d.u64()?;
        if epochs_done > epochs_total {
            return Err(format!(
                "epochs_done {epochs_done} exceeds epochs_total {epochs_total}"
            ));
        }
        let params = d.f64s()?;
        let adam_t = d.u64()?;
        let mut moments = [Vec::new(), Vec::new()];
        for m in &mut moments {
            let n = d.u64()? as usize;
            for _ in 0..n {
                m.push(d.f64s()?);
            }
        }
        let [adam_m, adam_v] = moments;
        Ok(AutoencoderCheckpoint {
            seed,
            lr_bits,
            batch_size,
            window_count,
            input_dim,
            hidden,
            epochs_total,
            epochs_done,
            params,
            adam_t,
            adam_m,
            adam_v,
        })
    }
}

/// Atomically writes an autoencoder-trainer checkpoint.
pub fn save_autoencoder(path: &Path, ck: &AutoencoderCheckpoint) -> Result<(), XatuError> {
    write_container(path, KIND_AUTOENCODER, &ck.encode())
}

/// Loads and validates an autoencoder-trainer checkpoint.
pub fn load_autoencoder(path: &Path) -> Result<AutoencoderCheckpoint, XatuError> {
    let payload = read_container(path, KIND_AUTOENCODER)?;
    let mut d = Dec::new(&payload);
    let ck = AutoencoderCheckpoint::decode(&mut d).map_err(|e| XatuError::corrupt(path, e))?;
    if !d.finished() {
        return Err(XatuError::corrupt(path, "trailing bytes after payload"));
    }
    Ok(ck)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xatu_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    fn sample_trainer_ck() -> TrainerCheckpoint {
        TrainerCheckpoint {
            seed: 42,
            lr_bits: 0.01f64.to_bits(),
            batch_size: 8,
            loss: LossKind::Survival,
            sample_count: 100,
            epochs_total: 30,
            epochs_done: 12,
            params: vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE],
            adam_t: 150,
            adam_m: vec![vec![0.1, 0.2], vec![0.3]],
            adam_v: vec![vec![0.01, 0.02], vec![0.03]],
        }
    }

    #[test]
    fn trainer_checkpoint_roundtrips_exactly() {
        let path = tmp_file("trainer_rt");
        let ck = sample_trainer_ck();
        save_trainer(&path, &ck).unwrap();
        let back = load_trainer(&path).unwrap();
        assert_eq!(ck, back);
        // Bit-exactness, not just PartialEq.
        for (a, b) in ck.params.iter().zip(&back.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // No temp file left behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let path = tmp_file("corrupt");
        save_trainer(&path, &sample_trainer_ck()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load_trainer(&path) {
            Err(XatuError::CorruptCheckpoint { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp_file("trunc");
        save_trainer(&path, &sample_trainer_ck()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::CorruptCheckpoint { .. })
        ));
        // Even a header-only stub fails cleanly.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::CorruptCheckpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_reported_as_such() {
        let path = tmp_file("version");
        save_trainer(&path, &sample_trainer_ck()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the version field (bytes 4..6) and re-checksum the body so
        // only the version check can fail.
        bytes[4] = 99;
        let body_end = bytes.len() - 8;
        let check = fnv1a64(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&check.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::CheckpointVersion { found: 99, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let path = tmp_file("kind");
        save_trainer(&path, &sample_trainer_ck()).unwrap();
        assert!(matches!(
            read_container(&path, KIND_DETECTOR),
            Err(XatuError::CorruptCheckpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = tmp_file("missing_never_written");
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::Io { op: "read", .. })
        ));
    }

    #[test]
    fn absurd_vector_length_fails_before_allocating() {
        let path = tmp_file("bomb");
        // A payload claiming a u64::MAX-length f64 vector.
        let mut e = Enc::new();
        e.u64(1);
        e.u64(2);
        e.u64(3);
        e.u8(0);
        e.u64(4);
        e.u64(5);
        e.u64(5);
        e.u64(u64::MAX); // params length prefix
        write_container(&path, KIND_TRAINER, &e.into_bytes()).unwrap();
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::CorruptCheckpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn autoencoder_checkpoint_roundtrips_exactly() {
        let path = tmp_file("ae_rt");
        let ck = AutoencoderCheckpoint {
            seed: 3,
            lr_bits: 5e-3f64.to_bits(),
            batch_size: 4,
            window_count: 40,
            input_dim: 53,
            hidden: 8,
            epochs_total: 12,
            epochs_done: 5,
            params: vec![0.25, -1.0, f64::MIN_POSITIVE, 0.0],
            adam_t: 50,
            adam_m: vec![vec![0.5], vec![-0.25, 0.125]],
            adam_v: vec![vec![0.01], vec![0.02, 0.03]],
        };
        save_autoencoder(&path, &ck).unwrap();
        let back = load_autoencoder(&path).unwrap();
        assert_eq!(ck, back);
        // A trainer reader must reject the autoencoder kind byte.
        assert!(matches!(
            load_trainer(&path),
            Err(XatuError::CorruptCheckpoint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    proptest::proptest! {
        /// XCK1 encode/decode of the autoencoder checkpoint is lossless
        /// for arbitrary field values, including non-round floats.
        #[test]
        fn autoencoder_checkpoint_proptest_roundtrip(
            seed in proptest::prelude::any::<u64>(),
            lr in -1e6f64..1e6,
            batch_size in 1u64..1024,
            window_count in 0u64..10_000,
            input_dim in 1u64..512,
            hidden in 1u64..256,
            epochs_done in 0u64..64,
            extra_epochs in 0u64..64,
            params in proptest::collection::vec(-1e9f64..1e9, 0..64),
            adam_t in proptest::prelude::any::<u64>(),
            m in proptest::collection::vec(
                proptest::collection::vec(-1e9f64..1e9, 0..8), 0..4),
        ) {
            let ck = AutoencoderCheckpoint {
                seed,
                lr_bits: lr.to_bits(),
                batch_size,
                window_count,
                input_dim,
                hidden,
                epochs_total: epochs_done + extra_epochs,
                epochs_done,
                params,
                adam_t,
                adam_m: m.clone(),
                adam_v: m,
            };
            let path = tmp_file(&format!("ae_prop_{seed}_{adam_t}"));
            save_autoencoder(&path, &ck).unwrap();
            let back = load_autoencoder(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            proptest::prop_assert_eq!(&ck, &back);
            for (a, b) in ck.params.iter().zip(&back.params) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn enum_tags_roundtrip() {
        for t in AttackType::ALL {
            assert_eq!(attack_type_from_tag(attack_type_tag(t)).unwrap(), t);
        }
        for m in [
            TimescaleMode::All,
            TimescaleMode::ShortOnly,
            TimescaleMode::NoShort,
            TimescaleMode::NoMedium,
            TimescaleMode::NoLong,
        ] {
            assert_eq!(mode_from_tag(mode_tag(m)).unwrap(), m);
        }
        for l in [LossKind::Survival, LossKind::CrossEntropy] {
            assert_eq!(loss_from_tag(loss_tag(l)).unwrap(), l);
        }
        assert!(attack_type_from_tag(200).is_err());
        assert!(mode_from_tag(200).is_err());
        assert!(loss_from_tag(200).is_err());
    }
}
