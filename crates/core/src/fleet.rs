//! Fleet-scale online detection: one detector instance serving 100k+
//! customers from flat structure-of-arrays state.
//!
//! [`crate::online::OnlineDetector`] keeps each customer's streaming state
//! in its own heap objects behind a `HashMap` — fine for evaluation runs
//! over a handful of simulated customers, hostile to an ISP-scale fleet:
//! every minute walks thousands of scattered allocations and re-derives the
//! same LSTM weights per customer. [`FleetDetector`] is the same detector —
//! the same degradation ladder, the same alert lifecycle, the same
//! checkpoint format, bit-identical outputs — with the per-customer state
//! transposed into dense arenas indexed by a compact customer id:
//!
//! * **Layout.** Every per-customer quantity lives in one flat vector with
//!   a fixed per-customer stride (`hidden` floats per dual-state half,
//!   `window` floats per survival ring, [`NUM_FEATURES`] floats per pooled
//!   bucket), so a shard of customers is a contiguous slice of every
//!   arena. An address → dense-id interner ([`FleetDetector::add_customer`])
//!   assigns ids in registration order; [`FleetDetector::bytes_per_customer`]
//!   reports the measured footprint.
//! * **Kernels.** The per-minute hot path advances whole blocks of
//!   customers through one LSTM step at a time via
//!   [`Lstm::step_online_block`], which is pinned 0-ULP identical to the
//!   per-customer [`Lstm::step_online_into`] reference. Rare scalar work
//!   (gap imputation, cold restarts) runs the reference step
//!   ([`Lstm::step_online_slices`]) directly on the same arena rows.
//! * **Sharding.** [`FleetDetector::step_minute_batch`] partitions the id
//!   space into contiguous blocks ([`xatu_par::block_ranges`]), gives each
//!   worker disjoint mutable shard views of every arena, and stitches
//!   events and telemetry back in block order — so alerts, survivals and
//!   histogram bucket counts are bit-identical for every thread count.
//!   (The one float a histogram accumulates — its diagnostic `sum` — is
//!   reduced per worker and is the only quantity outside that guarantee.)
//!
//! Per minute the batch step runs three phases per shard: **A** (scalar)
//! validates ordering, bridges gaps by zero-order-hold imputation or cold
//! restart, sanitizes frames and accumulates pooling buckets; **B**
//! (batched) advances the short dual states of every driven customer and
//! the medium/long dual states of every customer whose bucket completed,
//! over contiguous runs of the arena; **C** (scalar) combines hidden
//! states, pushes the survival ring, applies the staleness blend and walks
//! the alert lifecycle. Customers are fully independent, so the phase
//! regrouping cannot change any value — only the (documented) event
//! ordering within a minute.

use crate::checkpoint::{CustomerCheckpoint, DetectorCheckpoint, DualStateCheckpoint};
use crate::config::XatuConfig;
use crate::error::XatuError;
use crate::model::{DualState, ModelConfig, XatuModel};
use crate::online::DetectorObs;
use std::collections::HashMap;
use xatu_detectors::alert::Alert;
use xatu_detectors::traits::DetectorEvent;
use xatu_features::frame::NUM_FEATURES;
use xatu_netflow::addr::Ipv4;
use xatu_netflow::attack::AttackType;
use xatu_nn::activations::softplus;
use xatu_nn::lstm::Lstm;
use xatu_nn::{Dense, LstmState, OnlineBlockWorkspace, Params};
use xatu_par::{block_ranges_into, WorkerPool};
use xatu_survival::hazard::RollingSurvival;

/// Upper bound on concurrent shards per minute. Task slots live in a
/// fixed stack array of this size so the sharded dispatch allocates
/// nothing; `threads` is clamped to it (64 shards is far past the point
/// where per-shard stitch overhead dominates on any realistic host).
const MAX_SHARDS: usize = 64;

/// The reduced-precision fleet backend (`f32` arenas, rational fast
/// activations, quiescence-aware stepping), compiled only under the
/// `fast-math` feature. A child module so it can reuse this module's
/// private sharding/lifecycle machinery; see DESIGN.md §14 for the
/// precision contract.
#[cfg(feature = "fast-math")]
#[path = "fleet_fast.rs"]
mod fast;
#[cfg(feature = "fast-math")]
pub use fast::FAST_SURVIVAL_EPS;

/// What the fill callback reports for one customer at one minute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetInput {
    /// The callback wrote a real feature frame into the buffer.
    Frame,
    /// The minute is known to be missing: impute it now (zero-order hold),
    /// exactly like [`crate::online::OnlineDetector::observe_gap`].
    Gap,
    /// The customer is not driven this minute at all; its clock does not
    /// advance, and the gap is bridged (imputed or cold-restarted) when it
    /// is next driven.
    Skip,
}

/// The dual-state arena for one timescale: both halves of every customer's
/// bounded-context LSTM state as `n × hidden` row-major matrices, plus the
/// two context ages. Semantically one [`DualState`] per row, with identical
/// stepping and promotion arithmetic.
struct DualArena {
    aged_h: Vec<f64>,
    aged_c: Vec<f64>,
    fresh_h: Vec<f64>,
    fresh_c: Vec<f64>,
    aged_age: Vec<u32>,
    fresh_age: Vec<u32>,
    period: u32,
    hidden: usize,
}

impl DualArena {
    fn new(hidden: usize, period: u32) -> Self {
        DualArena {
            aged_h: Vec::new(),
            aged_c: Vec::new(),
            fresh_h: Vec::new(),
            fresh_c: Vec::new(),
            aged_age: Vec::new(),
            fresh_age: Vec::new(),
            period: period.max(1),
            hidden,
        }
    }

    /// Appends one customer in the [`DualState::new`] cold state.
    fn push_default(&mut self) {
        let h = self.hidden;
        self.aged_h.resize(self.aged_h.len() + h, 0.0);
        self.aged_c.resize(self.aged_c.len() + h, 0.0);
        self.fresh_h.resize(self.fresh_h.len() + h, 0.0);
        self.fresh_c.resize(self.fresh_c.len() + h, 0.0);
        self.aged_age.push(self.period);
        self.fresh_age.push(0);
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.aged_h.capacity()
            + self.aged_c.capacity()
            + self.fresh_h.capacity()
            + self.fresh_c.capacity())
            * size_of::<f64>()
            + (self.aged_age.capacity() + self.fresh_age.capacity()) * size_of::<u32>()
    }
}

/// A contiguous block of one [`DualArena`], owned mutably by one worker.
struct DualShard<'a> {
    aged_h: &'a mut [f64],
    aged_c: &'a mut [f64],
    fresh_h: &'a mut [f64],
    fresh_c: &'a mut [f64],
    aged_age: &'a mut [u32],
    fresh_age: &'a mut [u32],
    period: u32,
    hidden: usize,
}

impl DualShard<'_> {
    /// [`DualState::step`] for shard-local customer `j`: step both halves
    /// with the reference kernel, then advance/promote.
    fn step_one(&mut self, lstm: &Lstm, j: usize, x: &[f64], z: &mut Vec<f64>) {
        let h = self.hidden;
        let r = j * h..(j + 1) * h;
        lstm.step_online_slices(x, &mut self.aged_h[r.clone()], &mut self.aged_c[r.clone()], z);
        lstm.step_online_slices(x, &mut self.fresh_h[r.clone()], &mut self.fresh_c[r], z);
        self.advance_age(j);
    }

    /// Batched [`DualState::step`] over the contiguous run `a..b`: block
    /// steps for the aged and fresh halves, then the scalar promotions.
    /// Rows are independent and block composition cannot move a bit, so
    /// this is bit-identical to calling [`DualShard::step_one`] per
    /// customer — and the run is processed in fixed tiles purely for
    /// locality: a tile's pre-activations, states and inputs stay
    /// cache-resident instead of streaming a run-sized workspace through
    /// memory three times per half. The tile is sized to amortise the
    /// per-block `Wxᵀ` materialisation in the sparse input kernel while
    /// keeping the two `batch × 4·hidden` pre-activation buffers well
    /// under typical L2 capacity.
    fn step_block(
        &mut self,
        lstm: &Lstm,
        a: usize,
        b: usize,
        xs: &[f64],
        ws: &mut OnlineBlockWorkspace,
    ) {
        const TILE: usize = 512;
        let h = self.hidden;
        let width = xs.len() / (b - a);
        let mut t = a;
        while t < b {
            let e = (t + TILE).min(b);
            lstm.step_online_dual_block(
                &xs[(t - a) * width..(e - a) * width],
                e - t,
                &mut self.aged_h[t * h..e * h],
                &mut self.aged_c[t * h..e * h],
                &mut self.fresh_h[t * h..e * h],
                &mut self.fresh_c[t * h..e * h],
                ws,
            );
            t = e;
        }
        for j in a..b {
            self.advance_age(j);
        }
    }

    /// The post-step age bookkeeping of [`DualState::step`]: both ages
    /// advance; at `2·period` the fresh half is promoted (swap-then-zero in
    /// the original — copy-then-zero here, same values, the swapped-out
    /// aged half is discarded either way).
    fn advance_age(&mut self, j: usize) {
        self.aged_age[j] += 1;
        self.fresh_age[j] += 1;
        if self.aged_age[j] >= 2 * self.period {
            let h = self.hidden;
            let r = j * h..(j + 1) * h;
            self.aged_h[r.clone()].copy_from_slice(&self.fresh_h[r.clone()]);
            self.aged_c[r.clone()].copy_from_slice(&self.fresh_c[r.clone()]);
            self.fresh_h[r.clone()].fill(0.0);
            self.fresh_c[r].fill(0.0);
            self.aged_age[j] = self.fresh_age[j];
            self.fresh_age[j] = 0;
        }
    }

    /// Back to the [`DualState::new`] cold state (cold restart).
    fn reset_row(&mut self, j: usize) {
        let h = self.hidden;
        let r = j * h..(j + 1) * h;
        self.aged_h[r.clone()].fill(0.0);
        self.aged_c[r.clone()].fill(0.0);
        self.fresh_h[r.clone()].fill(0.0);
        self.fresh_c[r].fill(0.0);
        self.aged_age[j] = self.period;
        self.fresh_age[j] = 0;
    }
}

/// A contiguous block of the rolling-survival arena: one
/// [`RollingSurvival`] per row with identical push arithmetic.
struct RingShard<'a> {
    buf: &'a mut [f64],
    head: &'a mut [u32],
    filled: &'a mut [u32],
    sum: &'a mut [f64],
    window: usize,
}

impl RingShard<'_> {
    /// [`RollingSurvival::push`], verbatim, on row `j`.
    fn push(&mut self, j: usize, hazard: f64) -> f64 {
        let w = self.window;
        let h = if hazard.is_finite() { hazard.max(0.0) } else { 0.0 };
        let hd = self.head[j] as usize;
        let slot = &mut self.buf[j * w + hd];
        self.sum[j] += h - *slot;
        *slot = h;
        self.head[j] = ((hd + 1) % w) as u32;
        self.filled[j] = (self.filled[j] + 1).min(w as u32);
        if self.sum[j] < 0.0 {
            self.sum[j] = 0.0;
        }
        (-self.sum[j]).exp()
    }

    /// [`RollingSurvival::new`] on row `j` (cold restart).
    fn reset_row(&mut self, j: usize) {
        let w = self.window;
        self.buf[j * w..(j + 1) * w].fill(0.0);
        self.head[j] = 0;
        self.filled[j] = 0;
        self.sum[j] = 0.0;
    }
}

/// Every per-customer quantity of the fleet, as flat arenas indexed by the
/// dense customer id. Field-for-field this is `online::CustomerState`
/// transposed into structure-of-arrays form.
struct FleetArenas {
    short: DualArena,
    medium: DualArena,
    long: DualArena,
    ring_buf: Vec<f64>,
    ring_head: Vec<u32>,
    ring_filled: Vec<u32>,
    ring_sum: Vec<f64>,
    /// Partial pooling buckets, `n × NUM_FEATURES`. Between phases A and B
    /// of a batch step, a row whose bucket just completed temporarily holds
    /// the *averaged* bucket (scaled in place); it is re-zeroed in phase B.
    med_partial: Vec<f64>,
    med_count: Vec<u32>,
    long_partial: Vec<f64>,
    long_count: Vec<u32>,
    /// Last sanitized frame (zero-order-hold source), `n × NUM_FEATURES`.
    last_frame: Vec<f64>,
    active_since: Vec<Option<u32>>,
    quiet_run: Vec<u32>,
    last_survival: Vec<f64>,
    observed: Vec<u32>,
    stale_run: Vec<u32>,
    last_minute: Vec<Option<u32>>,
    /// Per-minute phase flags (scratch, valid only inside a batch step).
    driven: Vec<bool>,
    med_done: Vec<bool>,
    long_done: Vec<bool>,
}

impl FleetArenas {
    /// Empty arenas. The survival window is not stored here — the detector
    /// owns the authoritative copy and passes it into every push/shard.
    fn new(hidden: usize, ctx: (usize, usize, usize)) -> Self {
        FleetArenas {
            short: DualArena::new(hidden, ctx.0 as u32),
            medium: DualArena::new(hidden, ctx.1 as u32),
            long: DualArena::new(hidden, ctx.2 as u32),
            ring_buf: Vec::new(),
            ring_head: Vec::new(),
            ring_filled: Vec::new(),
            ring_sum: Vec::new(),
            med_partial: Vec::new(),
            med_count: Vec::new(),
            long_partial: Vec::new(),
            long_count: Vec::new(),
            last_frame: Vec::new(),
            active_since: Vec::new(),
            quiet_run: Vec::new(),
            last_survival: Vec::new(),
            observed: Vec::new(),
            stale_run: Vec::new(),
            last_minute: Vec::new(),
            driven: Vec::new(),
            med_done: Vec::new(),
            long_done: Vec::new(),
        }
    }

    /// Appends one customer in the cold (`online::entry`) state.
    fn push_default(&mut self, window: usize) {
        self.push_scalar(window);
        self.push_numeric();
    }

    /// The scalar-bookkeeping half of [`FleetArenas::push_default`]:
    /// everything that stays `f64`/integer under both backends (survival
    /// ring, counts, lifecycle scalars, phase flags). The fast backend
    /// pushes only this half and keeps the numeric vectors empty — its
    /// `f32` twins live in the fast-state arenas.
    fn push_scalar(&mut self, window: usize) {
        self.ring_buf.resize(self.ring_buf.len() + window, 0.0);
        self.ring_head.push(0);
        self.ring_filled.push(0);
        self.ring_sum.push(0.0);
        self.med_count.push(0);
        self.long_count.push(0);
        self.active_since.push(None);
        self.quiet_run.push(0);
        self.last_survival.push(1.0);
        self.observed.push(0);
        self.stale_run.push(0);
        self.last_minute.push(None);
        self.driven.push(false);
        self.med_done.push(false);
        self.long_done.push(false);
    }

    /// The `f64` numeric half of [`FleetArenas::push_default`]: dual LSTM
    /// states, pooling buckets, ZOH frame.
    fn push_numeric(&mut self) {
        self.short.push_default();
        self.medium.push_default();
        self.long.push_default();
        self.med_partial
            .resize(self.med_partial.len() + NUM_FEATURES, 0.0);
        self.long_partial
            .resize(self.long_partial.len() + NUM_FEATURES, 0.0);
        self.last_frame
            .resize(self.last_frame.len() + NUM_FEATURES, 0.0);
    }

    /// Measured arena footprint in bytes (capacities, not lengths).
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.short.bytes()
            + self.medium.bytes()
            + self.long.bytes()
            + (self.ring_buf.capacity()
                + self.ring_sum.capacity()
                + self.med_partial.capacity()
                + self.long_partial.capacity()
                + self.last_frame.capacity()
                + self.last_survival.capacity())
                * size_of::<f64>()
            + (self.ring_head.capacity()
                + self.ring_filled.capacity()
                + self.med_count.capacity()
                + self.long_count.capacity()
                + self.quiet_run.capacity()
                + self.observed.capacity()
                + self.stale_run.capacity())
                * size_of::<u32>()
            + (self.active_since.capacity() + self.last_minute.capacity())
                * size_of::<Option<u32>>()
            + (self.driven.capacity() + self.med_done.capacity() + self.long_done.capacity())
                * size_of::<bool>()
    }
}

/// Disjoint mutable views of every arena for one contiguous customer
/// block. `start` is the global id of the first row.
struct Shard<'a> {
    start: usize,
    short: DualShard<'a>,
    medium: DualShard<'a>,
    long: DualShard<'a>,
    ring: RingShard<'a>,
    med_partial: &'a mut [f64],
    med_count: &'a mut [u32],
    long_partial: &'a mut [f64],
    long_count: &'a mut [u32],
    last_frame: &'a mut [f64],
    active_since: &'a mut [Option<u32>],
    quiet_run: &'a mut [u32],
    last_survival: &'a mut [f64],
    observed: &'a mut [u32],
    stale_run: &'a mut [u32],
    last_minute: &'a mut [Option<u32>],
    driven: &'a mut [bool],
    med_done: &'a mut [bool],
    long_done: &'a mut [bool],
}

impl Shard<'_> {
    fn len(&self) -> usize {
        self.driven.len()
    }
}

/// Carves the next `n * per` elements off the front of `*rest` without
/// allocating — the substrate of the shard splitters. Replaces the
/// per-minute `Vec`s the old shard builders allocated, so the sharded
/// path shares the single-thread path's zero-allocation steady state.
fn take_rows<'a, T>(rest: &mut &'a mut [T], n: usize, per: usize) -> &'a mut [T] {
    let r = std::mem::take(rest);
    let (head, tail) = r.split_at_mut(n * per);
    *rest = tail;
    head
}

/// Allocation-free cursor over a [`DualArena`]: consumes the arena's
/// vectors front-to-back, handing out one [`DualShard`] per contiguous
/// customer block.
struct DualSplit<'a> {
    aged_h: &'a mut [f64],
    aged_c: &'a mut [f64],
    fresh_h: &'a mut [f64],
    fresh_c: &'a mut [f64],
    aged_age: &'a mut [u32],
    fresh_age: &'a mut [u32],
    period: u32,
    hidden: usize,
}

impl<'a> DualSplit<'a> {
    fn new(a: &'a mut DualArena) -> Self {
        DualSplit {
            aged_h: &mut a.aged_h,
            aged_c: &mut a.aged_c,
            fresh_h: &mut a.fresh_h,
            fresh_c: &mut a.fresh_c,
            aged_age: &mut a.aged_age,
            fresh_age: &mut a.fresh_age,
            period: a.period,
            hidden: a.hidden,
        }
    }

    /// The next `n` customers as a shard.
    fn take(&mut self, n: usize) -> DualShard<'a> {
        let h = self.hidden;
        DualShard {
            aged_h: take_rows(&mut self.aged_h, n, h),
            aged_c: take_rows(&mut self.aged_c, n, h),
            fresh_h: take_rows(&mut self.fresh_h, n, h),
            fresh_c: take_rows(&mut self.fresh_c, n, h),
            aged_age: take_rows(&mut self.aged_age, n, 1),
            fresh_age: take_rows(&mut self.fresh_age, n, 1),
            period: self.period,
            hidden: h,
        }
    }
}

/// Allocation-free cursor over the whole [`FleetArenas`]: each
/// [`ShardSplit::take`] yields the next contiguous customer block as a
/// [`Shard`]. Blocks must be taken in range order starting at 0.
struct ShardSplit<'a> {
    window: usize,
    next_start: usize,
    short: DualSplit<'a>,
    medium: DualSplit<'a>,
    long: DualSplit<'a>,
    ring_buf: &'a mut [f64],
    ring_head: &'a mut [u32],
    ring_filled: &'a mut [u32],
    ring_sum: &'a mut [f64],
    med_partial: &'a mut [f64],
    med_count: &'a mut [u32],
    long_partial: &'a mut [f64],
    long_count: &'a mut [u32],
    last_frame: &'a mut [f64],
    active_since: &'a mut [Option<u32>],
    quiet_run: &'a mut [u32],
    last_survival: &'a mut [f64],
    observed: &'a mut [u32],
    stale_run: &'a mut [u32],
    last_minute: &'a mut [Option<u32>],
    driven: &'a mut [bool],
    med_done: &'a mut [bool],
    long_done: &'a mut [bool],
}

impl<'a> ShardSplit<'a> {
    fn new(arenas: &'a mut FleetArenas, window: usize) -> Self {
        ShardSplit {
            window,
            next_start: 0,
            short: DualSplit::new(&mut arenas.short),
            medium: DualSplit::new(&mut arenas.medium),
            long: DualSplit::new(&mut arenas.long),
            ring_buf: &mut arenas.ring_buf,
            ring_head: &mut arenas.ring_head,
            ring_filled: &mut arenas.ring_filled,
            ring_sum: &mut arenas.ring_sum,
            med_partial: &mut arenas.med_partial,
            med_count: &mut arenas.med_count,
            long_partial: &mut arenas.long_partial,
            long_count: &mut arenas.long_count,
            last_frame: &mut arenas.last_frame,
            active_since: &mut arenas.active_since,
            quiet_run: &mut arenas.quiet_run,
            last_survival: &mut arenas.last_survival,
            observed: &mut arenas.observed,
            stale_run: &mut arenas.stale_run,
            last_minute: &mut arenas.last_minute,
            driven: &mut arenas.driven,
            med_done: &mut arenas.med_done,
            long_done: &mut arenas.long_done,
        }
    }

    /// The next `n` customers as a shard.
    fn take(&mut self, n: usize) -> Shard<'a> {
        let window = self.window;
        let start = self.next_start;
        self.next_start += n;
        Shard {
            start,
            short: self.short.take(n),
            medium: self.medium.take(n),
            long: self.long.take(n),
            ring: RingShard {
                buf: take_rows(&mut self.ring_buf, n, window),
                head: take_rows(&mut self.ring_head, n, 1),
                filled: take_rows(&mut self.ring_filled, n, 1),
                sum: take_rows(&mut self.ring_sum, n, 1),
                window,
            },
            med_partial: take_rows(&mut self.med_partial, n, NUM_FEATURES),
            med_count: take_rows(&mut self.med_count, n, 1),
            long_partial: take_rows(&mut self.long_partial, n, NUM_FEATURES),
            long_count: take_rows(&mut self.long_count, n, 1),
            last_frame: take_rows(&mut self.last_frame, n, NUM_FEATURES),
            active_since: take_rows(&mut self.active_since, n, 1),
            quiet_run: take_rows(&mut self.quiet_run, n, 1),
            last_survival: take_rows(&mut self.last_survival, n, 1),
            observed: take_rows(&mut self.observed, n, 1),
            stale_run: take_rows(&mut self.stale_run, n, 1),
            last_minute: take_rows(&mut self.last_minute, n, 1),
            driven: take_rows(&mut self.driven, n, 1),
            med_done: take_rows(&mut self.med_done, n, 1),
            long_done: take_rows(&mut self.long_done, n, 1),
        }
    }
}

fn dual_shard_all(a: &mut DualArena) -> DualShard<'_> {
    DualShard {
        aged_h: &mut a.aged_h,
        aged_c: &mut a.aged_c,
        fresh_h: &mut a.fresh_h,
        fresh_c: &mut a.fresh_c,
        aged_age: &mut a.aged_age,
        fresh_age: &mut a.fresh_age,
        period: a.period,
        hidden: a.hidden,
    }
}

/// The whole fleet as a single shard — the `threads == 1` path, which
/// skips even the cursor bookkeeping of [`ShardSplit`] so a steady-state
/// single-threaded minute performs no heap allocation at all (pinned by
/// `bench_alloc`'s inference section).
fn shard_all(arenas: &mut FleetArenas, window: usize) -> Shard<'_> {
    Shard {
        start: 0,
        short: dual_shard_all(&mut arenas.short),
        medium: dual_shard_all(&mut arenas.medium),
        long: dual_shard_all(&mut arenas.long),
        ring: RingShard {
            buf: &mut arenas.ring_buf,
            head: &mut arenas.ring_head,
            filled: &mut arenas.ring_filled,
            sum: &mut arenas.ring_sum,
            window,
        },
        med_partial: &mut arenas.med_partial,
        med_count: &mut arenas.med_count,
        long_partial: &mut arenas.long_partial,
        long_count: &mut arenas.long_count,
        last_frame: &mut arenas.last_frame,
        active_since: &mut arenas.active_since,
        quiet_run: &mut arenas.quiet_run,
        last_survival: &mut arenas.last_survival,
        observed: &mut arenas.observed,
        stale_run: &mut arenas.stale_run,
        last_minute: &mut arenas.last_minute,
        driven: &mut arenas.driven,
        med_done: &mut arenas.med_done,
        long_done: &mut arenas.long_done,
    }
}

/// Immutable model parts shared by every worker.
#[derive(Clone, Copy)]
struct Net<'a> {
    short: &'a Lstm,
    medium: &'a Lstm,
    long: &'a Lstm,
    head: &'a Dense,
}

/// Scalar knobs, mirroring `online::Tunables` plus the mode gates.
#[derive(Clone, Copy)]
struct Knobs {
    attack_type: AttackType,
    threshold: f64,
    quiet: u32,
    warmup: u32,
    max_alert_minutes: u32,
    med_gran: u32,
    long_gran: u32,
    stale_limit: u32,
    max_imputed_gap: u32,
    hidden: usize,
    use_s: bool,
    use_m: bool,
    use_l: bool,
}

/// Per-worker reusable scratch: pre-activation and combiner buffers, the
/// block workspace, event and telemetry accumulators. Steady-state batch
/// steps through warm workers allocate nothing.
struct WorkerScratch {
    frame: Vec<f64>,
    z: Vec<f64>,
    input: Vec<f64>,
    ws: OnlineBlockWorkspace,
    runs: Vec<(u32, u32)>,
    impute_events: Vec<DetectorEvent>,
    life_events: Vec<DetectorEvent>,
    obs: DetectorObs,
    err: Option<XatuError>,
    /// `f32` pre-activation scratch for the fast backend's scalar steps.
    #[cfg(feature = "fast-math")]
    z32: Vec<f32>,
    /// `f32` block workspace for the fast backend's batched steps.
    #[cfg(feature = "fast-math")]
    ws32: xatu_nn::OnlineBlockWorkspace32,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            frame: vec![0.0; NUM_FEATURES],
            z: Vec::new(),
            input: Vec::new(),
            ws: OnlineBlockWorkspace::new(),
            runs: Vec::new(),
            impute_events: Vec::new(),
            life_events: Vec::new(),
            obs: DetectorObs::default(),
            err: None,
            #[cfg(feature = "fast-math")]
            z32: Vec::new(),
            #[cfg(feature = "fast-math")]
            ws32: xatu_nn::OnlineBlockWorkspace32::new(),
        }
    }
}

/// Clears and re-zeroes `v` to length `n`, keeping its allocation.
fn fit(v: &mut Vec<f64>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}

/// Maximal contiguous `true` runs of `flags`, as `(start, end)` pairs.
fn collect_runs(flags: &[bool], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let mut a = 0;
    while a < flags.len() {
        if !flags[a] {
            a += 1;
            continue;
        }
        let mut b = a + 1;
        while b < flags.len() && flags[b] {
            b += 1;
        }
        out.push((a as u32, b as u32));
        a = b;
    }
}

/// `online::accumulate` on an arena row, with the completed bucket scaled
/// in place (the caller re-zeroes the row once the bucket is consumed).
fn accumulate_row(partial: &mut [f64], count: &mut u32, frame: &[f64], gran: u32) -> bool {
    for (a, v) in partial.iter_mut().zip(frame) {
        *a += v;
    }
    *count += 1;
    if *count == gran {
        let inv = 1.0 / gran as f64;
        for a in partial.iter_mut() {
            *a *= inv;
        }
        *count = 0;
        true
    } else {
        false
    }
}

/// `online::cold_restart` on arena rows: ends any open alert, resets every
/// accumulator, re-enters warm-up. Leaves `last_minute` alone.
fn cold_restart(
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    events: &mut Vec<DetectorEvent>,
) {
    if let Some(detected_at) = sh.active_since[j].take() {
        obs.ended.inc();
        events.push(DetectorEvent::Ended(Alert {
            customer: addr,
            attack_type: k.attack_type,
            detected_at,
            mitigation_end: Some(minute),
        }));
    }
    sh.short.reset_row(j);
    sh.medium.reset_row(j);
    sh.long.reset_row(j);
    sh.ring.reset_row(j);
    let f = j * NUM_FEATURES;
    sh.med_partial[f..f + NUM_FEATURES].fill(0.0);
    sh.med_count[j] = 0;
    sh.long_partial[f..f + NUM_FEATURES].fill(0.0);
    sh.long_count[j] = 0;
    sh.quiet_run[j] = 0;
    sh.last_survival[j] = 1.0;
    sh.observed[j] = 0;
    sh.last_frame[f..f + NUM_FEATURES].fill(0.0);
    sh.stale_run[j] = 0;
    obs.cold_restarts.inc();
}

/// The tail of `online::step_minute` after the LSTM states have advanced:
/// combiner input from the aged hidden states, head → softplus hazard,
/// survival ring push, staleness blend, warm-up gate, alert lifecycle.
#[allow(clippy::too_many_arguments)]
fn combine_and_alert(
    net: Net<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    let h = k.hidden;
    fit(input, 3 * h);
    let r = j * h..(j + 1) * h;
    if k.use_s {
        input[0..h].copy_from_slice(&sh.short.aged_h[r.clone()]);
    }
    if k.use_m {
        input[h..2 * h].copy_from_slice(&sh.medium.aged_h[r.clone()]);
    }
    if k.use_l {
        input[2 * h..3 * h].copy_from_slice(&sh.long.aged_h[r]);
    }
    let mut logit = [0.0f64; 1];
    net.head.forward_into(input, &mut logit);
    let hazard = softplus(logit[0]);
    let raw = sh.ring.push(j, hazard);

    let reported = if sh.stale_run[j] == 0 {
        raw
    } else {
        let w = sh.stale_run[j].min(k.stale_limit) as f64 / k.stale_limit as f64;
        raw + (1.0 - raw) * w
    };
    sh.last_survival[j] = reported;
    sh.observed[j] += 1;
    obs.survival.observe(reported);

    if sh.observed[j] <= k.warmup {
        obs.warmup_suppressed.inc();
        return;
    }
    match sh.active_since[j] {
        None => {
            if reported < k.threshold && sh.stale_run[j] == 0 {
                let alert = Alert {
                    customer: addr,
                    attack_type: k.attack_type,
                    detected_at: minute,
                    mitigation_end: None,
                };
                sh.active_since[j] = Some(minute);
                sh.quiet_run[j] = 0;
                obs.raised.inc();
                events.push(DetectorEvent::Raised(alert));
            }
        }
        Some(detected_at) => {
            let over_cap = minute.saturating_sub(detected_at) >= k.max_alert_minutes;
            if reported < k.threshold && !over_cap {
                sh.quiet_run[j] = 0;
            } else {
                sh.quiet_run[j] += 1;
                if sh.quiet_run[j] >= k.quiet || over_cap {
                    sh.active_since[j] = None;
                    sh.quiet_run[j] = 0;
                    obs.ended.inc();
                    if over_cap {
                        obs.force_ended.inc();
                    }
                    events.push(DetectorEvent::Ended(Alert {
                        customer: addr,
                        attack_type: k.attack_type,
                        detected_at,
                        mitigation_end: Some(minute),
                    }));
                }
            }
        }
    }
}

/// `online::step_minute` for one customer, entirely scalar, through the
/// reference LSTM kernel — used for imputed catch-up minutes, which are
/// rare and ragged (each customer is at a different point of its gap).
#[allow(clippy::too_many_arguments)]
fn scalar_step_minute(
    net: Net<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    z: &mut Vec<f64>,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    sh.stale_run[j] += 1;
    obs.gaps_imputed.inc();
    let f = j * NUM_FEATURES;
    let med_done = accumulate_row(
        &mut sh.med_partial[f..f + NUM_FEATURES],
        &mut sh.med_count[j],
        &sh.last_frame[f..f + NUM_FEATURES],
        k.med_gran,
    );
    let long_done = accumulate_row(
        &mut sh.long_partial[f..f + NUM_FEATURES],
        &mut sh.long_count[j],
        &sh.last_frame[f..f + NUM_FEATURES],
        k.long_gran,
    );
    if k.use_s {
        sh.short
            .step_one(net.short, j, &sh.last_frame[f..f + NUM_FEATURES], z);
    }
    if k.use_m && med_done {
        sh.medium
            .step_one(net.medium, j, &sh.med_partial[f..f + NUM_FEATURES], z);
    }
    if k.use_l && long_done {
        sh.long
            .step_one(net.long, j, &sh.long_partial[f..f + NUM_FEATURES], z);
    }
    if med_done {
        sh.med_partial[f..f + NUM_FEATURES].fill(0.0);
    }
    if long_done {
        sh.long_partial[f..f + NUM_FEATURES].fill(0.0);
    }
    combine_and_alert(net, k, obs, sh, j, addr, minute, input, events);
}

/// `online::catch_up` on arena rows: bridges the gap since the customer's
/// last driven minute — short gaps imputed minute by minute, long gaps
/// cold-restarted. Minute-ordering is validated by the caller.
#[allow(clippy::too_many_arguments)]
fn catch_up(
    net: Net<'_>,
    k: &Knobs,
    obs: &mut DetectorObs,
    sh: &mut Shard<'_>,
    j: usize,
    addr: Ipv4,
    minute: u32,
    z: &mut Vec<f64>,
    input: &mut Vec<f64>,
    events: &mut Vec<DetectorEvent>,
) {
    let Some(last) = sh.last_minute[j] else {
        return;
    };
    let gap = minute - last - 1;
    if gap == 0 {
        return;
    }
    if gap > k.max_imputed_gap {
        obs.gap_runs.observe(gap as f64);
        cold_restart(k, obs, sh, j, addr, minute, events);
    } else {
        for m in last + 1..minute {
            scalar_step_minute(net, k, obs, sh, j, addr, m, z, input, events);
        }
    }
}

/// The fleet-scale streaming detector for one attack type.
///
/// Behaviourally identical to [`crate::online::OnlineDetector`] — pinned by
/// tests that drive both through gap/imputation/cold-restart schedules and
/// compare every survival bit and every lifecycle event — but holding all
/// per-customer state in flat arenas and advancing the whole fleet through
/// [`FleetDetector::step_minute_batch`].
pub struct FleetDetector {
    model: XatuModel,
    attack_type: AttackType,
    threshold: f64,
    window: usize,
    quiet: u32,
    warmup: u32,
    ctx_lens: (usize, usize, usize),
    max_alert_minutes: u32,
    addrs: Vec<Ipv4>,
    index: HashMap<Ipv4, u32>,
    arenas: FleetArenas,
    obs: DetectorObs,
    workers: Vec<WorkerScratch>,
    events: Vec<DetectorEvent>,
    /// Persistent fork-join workers for the `threads > 1` path, spawned
    /// lazily on the first sharded minute. Keeping the pool (instead of
    /// scoped spawns) extends the zero-allocation steady state to the
    /// sharded path.
    pool: Option<WorkerPool>,
    /// Reusable buffer for the per-minute shard partition.
    range_scratch: Vec<(usize, usize)>,
    /// [`XatuConfig::no_simd`]: pin the fast backend's `f32` kernels to
    /// the scalar reference instead of auto-dispatching (bit-identical
    /// either way). Captured at construction; checkpoints restored via
    /// [`FleetDetector::from_checkpoint`] fall back to auto/env dispatch.
    #[cfg_attr(not(feature = "fast-math"), allow(dead_code))]
    no_simd: bool,
    /// When present, the detector runs the reduced-precision backend:
    /// LSTM state lives in the fast state's `f32` arenas (the `f64`
    /// numeric arenas above stay empty) and per-minute stepping goes
    /// through `step_minute_batch_fast`. `None` — the default, and the
    /// only state reachable without [`FleetDetector::enable_fast`] — is
    /// the bit-exact `f64` path.
    #[cfg(feature = "fast-math")]
    fast: Option<fast::FastState>,
}

impl FleetDetector {
    /// Wraps a trained model with a calibrated threshold (mirrors
    /// [`crate::online::OnlineDetector::new`]).
    pub fn new(model: XatuModel, attack_type: AttackType, threshold: f64, cfg: &XatuConfig) -> Self {
        let hidden = model.cfg.hidden;
        let ctx = (cfg.short_len, cfg.medium_len, cfg.long_len);
        FleetDetector {
            arenas: FleetArenas::new(hidden, ctx),
            model,
            attack_type,
            threshold,
            window: cfg.window,
            quiet: 5,
            warmup: 2 * cfg.window as u32,
            ctx_lens: ctx,
            max_alert_minutes: 45,
            addrs: Vec::new(),
            index: HashMap::new(),
            obs: DetectorObs::default(),
            workers: Vec::new(),
            events: Vec::new(),
            pool: None,
            range_scratch: Vec::new(),
            no_simd: cfg.no_simd,
            #[cfg(feature = "fast-math")]
            fast: None,
        }
    }

    /// Interns `addr`, returning its dense customer id. Idempotent: an
    /// already-registered address returns its existing id. New customers
    /// start in the cold state and go through warm-up, exactly like a
    /// first [`crate::online::OnlineDetector::observe`].
    pub fn add_customer(&mut self, addr: Ipv4) -> usize {
        if let Some(&i) = self.index.get(&addr) {
            return i as usize;
        }
        let i = self.addrs.len();
        self.index.insert(addr, i as u32);
        self.addrs.push(addr);
        #[cfg(feature = "fast-math")]
        if let Some(fs) = &mut self.fast {
            self.arenas.push_scalar(self.window);
            fs.push_default();
            return i;
        }
        self.arenas.push_default(self.window);
        i
    }

    /// Registered customer count.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no customer is registered.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Registered addresses in dense-id order.
    pub fn addrs(&self) -> &[Ipv4] {
        &self.addrs
    }

    /// The dense id of `addr`, if registered.
    pub fn customer_index(&self, addr: Ipv4) -> Option<usize> {
        self.index.get(&addr).map(|&i| i as usize)
    }

    /// The detector's embedded telemetry. Histogram bucket counts and all
    /// counters are bit-identical for every thread count; histogram `sum`
    /// fields are reduced per worker and may differ in rounding.
    pub fn obs(&self) -> &DetectorObs {
        &self.obs
    }

    /// Zeroes the embedded telemetry.
    pub fn reset_obs(&mut self) {
        self.obs = DetectorObs::default();
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the threshold (re-calibration between periods).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Overrides the warm-up length.
    pub fn set_warmup(&mut self, warmup: u32) {
        self.warmup = warmup;
    }

    /// The attack type this detector serves.
    pub fn attack_type(&self) -> AttackType {
        self.attack_type
    }

    /// The force-end cap, in minutes from `detected_at`.
    pub fn max_alert_minutes(&self) -> u32 {
        self.max_alert_minutes
    }

    /// The current rolling survival for a customer (1.0 if unseen).
    pub fn survival_of(&self, addr: Ipv4) -> f64 {
        self.customer_index(addr)
            .map_or(1.0, |i| self.arenas.last_survival[i])
    }

    /// Measured total arena footprint in bytes (excludes the interner,
    /// which adds roughly 16 bytes per customer, and per-worker scratch,
    /// which is fleet-size-independent).
    pub fn arena_bytes(&self) -> usize {
        #[cfg(feature = "fast-math")]
        let fast_bytes = self.fast.as_ref().map_or(0, |fs| fs.bytes());
        #[cfg(not(feature = "fast-math"))]
        let fast_bytes = 0;
        self.arenas.bytes()
            + self.addrs.capacity() * std::mem::size_of::<Ipv4>()
            + fast_bytes
    }

    /// Measured per-customer state budget in bytes.
    pub fn bytes_per_customer(&self) -> usize {
        self.arena_bytes() / self.addrs.len().max(1)
    }

    fn knobs(&self) -> Knobs {
        let (_, med_gran, long_gran) = self.model.cfg.timescales;
        let (use_s, use_m, use_l) = self.model.cfg.mode.enabled();
        Knobs {
            attack_type: self.attack_type,
            threshold: self.threshold,
            quiet: self.quiet,
            warmup: self.warmup,
            max_alert_minutes: self.max_alert_minutes,
            med_gran,
            long_gran,
            stale_limit: (self.window as u32).max(1),
            max_imputed_gap: 3 * self.window as u32,
            hidden: self.model.cfg.hidden,
            use_s,
            use_m,
            use_l,
        }
    }

    /// Advances every registered customer to `minute` across `threads`
    /// workers, and returns this minute's lifecycle events.
    ///
    /// `fill` is consulted once per customer, in id order within each
    /// shard: it may write a real frame into the provided
    /// [`NUM_FEATURES`]-wide buffer and return [`FleetInput::Frame`],
    /// declare the minute missing with [`FleetInput::Gap`], or leave the
    /// customer undriven with [`FleetInput::Skip`]. Per customer the
    /// semantics are exactly [`crate::online::OnlineDetector::observe`] /
    /// [`observe_gap`](crate::online::OnlineDetector::observe_gap),
    /// including gap bridging since the customer's last driven minute.
    ///
    /// Events are ordered: first all catch-up (imputation / cold-restart)
    /// events in customer-id order, then all current-minute lifecycle
    /// events in customer-id order — identical for every thread count,
    /// since shard boundaries never reorder ids.
    ///
    /// A customer whose clock would run backwards (`minute` at or before
    /// its newest driven minute) is left untouched and counted, the rest
    /// of the fleet advances, and the first such violation (in id order)
    /// is returned as `Err` after the batch completes.
    pub fn step_minute_batch<F>(
        &mut self,
        minute: u32,
        threads: usize,
        fill: F,
    ) -> Result<&[DetectorEvent], XatuError>
    where
        F: Fn(usize, Ipv4, &mut [f64]) -> FleetInput + Sync,
    {
        #[cfg(feature = "fast-math")]
        if self.fast.is_some() {
            return self.step_minute_batch_fast(minute, threads, fill);
        }
        let n = self.addrs.len();
        self.events.clear();
        if n == 0 {
            return Ok(&self.events);
        }
        let threads = threads.clamp(1, n).min(MAX_SHARDS);
        while self.workers.len() < threads {
            self.workers.push(WorkerScratch::new());
        }
        let k = self.knobs();
        let net = Net {
            short: self.model.lstm_short(),
            medium: self.model.lstm_medium(),
            long: self.model.lstm_long(),
            head: self.model.head(),
        };
        let addrs: &[Ipv4] = &self.addrs;
        let window = self.window;
        let worker = |(mut sh, w): (Shard<'_>, &mut WorkerScratch)| {
            let WorkerScratch {
                frame,
                z,
                input,
                ws,
                runs,
                impute_events,
                life_events,
                obs,
                err,
                ..
            } = w;
            impute_events.clear();
            life_events.clear();
            *err = None;
            let len = sh.len();

            // Phase A — scalar: ordering, gap bridging, sanitization,
            // bucket accumulation. Sets the per-minute flags phase B keys
            // off. Imputed catch-up minutes run the full scalar reference
            // step here.
            for j in 0..len {
                sh.driven[j] = false;
                sh.med_done[j] = false;
                sh.long_done[j] = false;
                let g = sh.start + j;
                let addr = addrs[g];
                let action = fill(g, addr, frame);
                if matches!(action, FleetInput::Skip) {
                    continue;
                }
                if let Some(last) = sh.last_minute[j] {
                    if minute <= last {
                        obs.out_of_order.inc();
                        if err.is_none() {
                            *err = Some(XatuError::OutOfOrderMinute {
                                customer: addr,
                                minute,
                                last,
                            });
                        }
                        continue;
                    }
                }
                catch_up(
                    net, &k, obs, &mut sh, j, addr, minute, z, input, impute_events,
                );
                // One fused pass per feature: sanitize (for real frames)
                // into the ZOH buffer and feed both pooling buckets.
                // Element-wise identical to sanitize-then-accumulate — the
                // per-element arithmetic is independent — but one pass over
                // the customer's rows instead of three.
                let f = j * NUM_FEATURES;
                if matches!(action, FleetInput::Gap) {
                    sh.stale_run[j] += 1;
                    obs.gaps_imputed.inc();
                    for e in f..f + NUM_FEATURES {
                        let v = sh.last_frame[e];
                        sh.med_partial[e] += v;
                        sh.long_partial[e] += v;
                    }
                } else {
                    let mut replaced = 0u64;
                    for (e, &raw) in frame[..NUM_FEATURES].iter().enumerate() {
                        let v = if raw.is_finite() {
                            raw
                        } else {
                            replaced += 1;
                            0.0
                        };
                        sh.last_frame[f + e] = v;
                        sh.med_partial[f + e] += v;
                        sh.long_partial[f + e] += v;
                    }
                    if replaced > 0 {
                        obs.values_sanitized.add(replaced);
                    }
                    if sh.stale_run[j] > 0 {
                        obs.gap_runs.observe(sh.stale_run[j] as f64);
                        sh.stale_run[j] = 0;
                    }
                }
                sh.med_count[j] += 1;
                sh.med_done[j] = sh.med_count[j] == k.med_gran;
                if sh.med_done[j] {
                    let inv = 1.0 / k.med_gran as f64;
                    for e in f..f + NUM_FEATURES {
                        sh.med_partial[e] *= inv;
                    }
                    sh.med_count[j] = 0;
                }
                sh.long_count[j] += 1;
                sh.long_done[j] = sh.long_count[j] == k.long_gran;
                if sh.long_done[j] {
                    let inv = 1.0 / k.long_gran as f64;
                    for e in f..f + NUM_FEATURES {
                        sh.long_partial[e] *= inv;
                    }
                    sh.long_count[j] = 0;
                }
                sh.driven[j] = true;
            }

            // Phase B — batched: advance dual states over contiguous runs
            // of the arenas. Rows are independent and the block kernel is
            // 0-ULP equal to the scalar one, so run boundaries (and hence
            // shard boundaries) cannot move a bit.
            if k.use_s {
                collect_runs(sh.driven, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.last_frame[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.short.step_block(net.short, a, b, xs, ws);
                }
            }
            if k.use_m {
                collect_runs(sh.med_done, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.med_partial[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.medium.step_block(net.medium, a, b, xs, ws);
                }
            }
            if k.use_l {
                collect_runs(sh.long_done, runs);
                for &(a, b) in runs.iter() {
                    let (a, b) = (a as usize, b as usize);
                    let xs = &sh.long_partial[a * NUM_FEATURES..b * NUM_FEATURES];
                    sh.long.step_block(net.long, a, b, xs, ws);
                }
            }
            // Retire consumed buckets (completed rows were scaled in place
            // in phase A; their counts are already zero).
            collect_runs(sh.med_done, runs);
            for &(a, b) in runs.iter() {
                sh.med_partial[a as usize * NUM_FEATURES..b as usize * NUM_FEATURES].fill(0.0);
            }
            collect_runs(sh.long_done, runs);
            for &(a, b) in runs.iter() {
                sh.long_partial[a as usize * NUM_FEATURES..b as usize * NUM_FEATURES].fill(0.0);
            }

            // Phase C — scalar: combiner, survival, staleness blend, alert
            // lifecycle, clock advance.
            for j in 0..len {
                if !sh.driven[j] {
                    continue;
                }
                let addr = addrs[sh.start + j];
                combine_and_alert(net, &k, obs, &mut sh, j, addr, minute, input, life_events);
                sh.last_minute[j] = Some(minute);
            }
        };

        // Single-threaded, the whole fleet runs as one allocation-free
        // shard; sharded, the ranges live in reusable `FleetDetector`
        // scratch, the shard views are carved by a borrow-splitting
        // cursor, the task slots sit on the stack, and the worker threads
        // are a persistent parked pool — zero allocations per minute at
        // any thread count once the pool has spun up.
        let active = if threads == 1 {
            worker((shard_all(&mut self.arenas, window), &mut self.workers[0]));
            1
        } else {
            block_ranges_into(n, threads, &mut self.range_scratch);
            let parts = self.range_scratch.len();
            let pool = self.pool.get_or_insert_with(WorkerPool::default);
            pool.ensure_workers(parts - 1);
            let mut split = ShardSplit::new(&mut self.arenas, window);
            let mut slots: [Option<(Shard<'_>, &mut WorkerScratch)>; MAX_SHARDS] =
                std::array::from_fn(|_| None);
            for ((&(s, e), w), slot) in self
                .range_scratch
                .iter()
                .zip(self.workers.iter_mut())
                .zip(slots.iter_mut())
            {
                *slot = Some((split.take(e - s), w));
            }
            pool.run_tasks(&mut slots[..parts], &|slot| {
                if let Some(task) = slot.take() {
                    worker(task);
                }
            });
            parts
        };

        // Stitch in block order: catch-up events, then lifecycle events,
        // then telemetry and the first ordering violation.
        let mut first_err = None;
        for w in &self.workers[..active] {
            self.events.extend_from_slice(&w.impute_events);
        }
        for w in &self.workers[..active] {
            self.events.extend_from_slice(&w.life_events);
        }
        for w in &mut self.workers[..active] {
            self.obs.merge_from(&w.obs);
            w.obs.reset();
            if first_err.is_none() {
                first_err = w.err.take();
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(&self.events),
        }
    }

    /// Forces any open alerts to end at `minute` (end of evaluation), in
    /// customer-id order.
    pub fn close_all(&mut self, minute: u32) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for j in 0..self.addrs.len() {
            if let Some(detected_at) = self.arenas.active_since[j].take() {
                self.obs.ended.inc();
                events.push(DetectorEvent::Ended(Alert {
                    customer: self.addrs[j],
                    attack_type: self.attack_type,
                    detected_at,
                    mitigation_end: Some(minute),
                }));
            }
        }
        events
    }

    /// Snapshots the fleet into the *same* checkpoint format as
    /// [`crate::online::OnlineDetector::to_checkpoint`] (customers sorted
    /// by address), so the XCK1 container, the resume driver, and either
    /// detector implementation can load it interchangeably.
    pub fn to_checkpoint(&mut self) -> DetectorCheckpoint {
        #[cfg(feature = "fast-math")]
        if self.fast.is_some() {
            return self.to_checkpoint_fast();
        }
        let mut params = vec![0.0; self.model.param_count()];
        self.model.export_params_into(&mut params);
        let h = self.model.cfg.hidden;
        let w = self.window;
        let mut order: Vec<usize> = (0..self.addrs.len()).collect();
        order.sort_unstable_by_key(|&i| self.addrs[i].0);
        let customers = order
            .into_iter()
            .map(|i| {
                let a = &self.arenas;
                let dual = [&a.short, &a.medium, &a.long].map(|d| DualStateCheckpoint {
                    aged_h: d.aged_h[i * h..(i + 1) * h].to_vec(),
                    aged_c: d.aged_c[i * h..(i + 1) * h].to_vec(),
                    fresh_h: d.fresh_h[i * h..(i + 1) * h].to_vec(),
                    fresh_c: d.fresh_c[i * h..(i + 1) * h].to_vec(),
                    aged_age: d.aged_age[i],
                    fresh_age: d.fresh_age[i],
                    period: d.period,
                });
                let f = i * NUM_FEATURES;
                CustomerCheckpoint {
                    addr: self.addrs[i].0,
                    dual,
                    survival: (
                        w as u64,
                        a.ring_buf[i * w..(i + 1) * w].to_vec(),
                        a.ring_head[i] as u64,
                        a.ring_filled[i] as u64,
                        a.ring_sum[i],
                    ),
                    med_partial: (a.med_partial[f..f + NUM_FEATURES].to_vec(), a.med_count[i]),
                    long_partial: (
                        a.long_partial[f..f + NUM_FEATURES].to_vec(),
                        a.long_count[i],
                    ),
                    active_since: a.active_since[i],
                    quiet_run: a.quiet_run[i],
                    last_survival: a.last_survival[i],
                    observed: a.observed[i],
                    last_frame: a.last_frame[f..f + NUM_FEATURES].to_vec(),
                    stale_run: a.stale_run[i],
                    last_minute: a.last_minute[i],
                }
            })
            .collect();
        DetectorCheckpoint {
            attack_type: self.attack_type,
            threshold: self.threshold,
            window: self.window as u64,
            quiet: self.quiet,
            warmup: self.warmup,
            ctx_lens: (
                self.ctx_lens.0 as u64,
                self.ctx_lens.1 as u64,
                self.ctx_lens.2 as u64,
            ),
            max_alert_minutes: self.max_alert_minutes,
            timescales: self.model.cfg.timescales,
            hidden: self.model.cfg.hidden as u64,
            mode: self.model.cfg.mode,
            params,
            customers,
        }
    }

    /// Rebuilds a fleet from a checkpoint — including one written by
    /// [`crate::online::OnlineDetector::to_checkpoint`] — with the same
    /// validation, plus the fleet's uniformity requirement: every
    /// customer's dual-state periods must match the context lengths the
    /// arena is built for (which every checkpoint either detector writes
    /// satisfies). Dense ids are assigned in checkpoint (address) order.
    pub fn from_checkpoint(ck: &DetectorCheckpoint) -> Result<Self, XatuError> {
        if ck.timescales.0 == 0 || ck.timescales.1 == 0 || ck.timescales.2 == 0 {
            return Err(XatuError::invalid_checkpoint(
                "timescale granularities must be >= 1",
            ));
        }
        let cfg = ModelConfig {
            timescales: ck.timescales,
            hidden: ck.hidden as usize,
            mode: ck.mode,
        };
        let mut model = XatuModel::with_config(cfg);
        if ck.params.len() != model.param_count() {
            return Err(XatuError::invalid_checkpoint(format!(
                "checkpoint has {} parameters, model shape needs {}",
                ck.params.len(),
                model.param_count()
            )));
        }
        if ck.params.iter().any(|v| !v.is_finite()) {
            return Err(XatuError::invalid_checkpoint("non-finite model parameter"));
        }
        model.import_params_from(&ck.params);

        let window = ck.window as usize;
        if window == 0 {
            return Err(XatuError::invalid_checkpoint("survival window must be >= 1"));
        }
        let ctx = (
            ck.ctx_lens.0 as usize,
            ck.ctx_lens.1 as usize,
            ck.ctx_lens.2 as usize,
        );
        let hidden = ck.hidden as usize;
        let mut fleet = FleetDetector {
            arenas: FleetArenas::new(hidden, ctx),
            model,
            attack_type: ck.attack_type,
            threshold: ck.threshold,
            window,
            quiet: ck.quiet,
            warmup: ck.warmup,
            ctx_lens: ctx,
            max_alert_minutes: ck.max_alert_minutes,
            addrs: Vec::new(),
            index: HashMap::with_capacity(ck.customers.len()),
            obs: DetectorObs::default(),
            workers: Vec::new(),
            events: Vec::new(),
            pool: None,
            range_scratch: Vec::new(),
            no_simd: false,
            #[cfg(feature = "fast-math")]
            fast: None,
        };
        for c in &ck.customers {
            let addr = Ipv4(c.addr);
            if fleet.index.contains_key(&addr) {
                return Err(XatuError::invalid_checkpoint(format!(
                    "customer {} appears twice",
                    c.addr
                )));
            }
            let i = fleet.add_customer(addr);
            fleet
                .restore_customer(i, c, ck)
                .map_err(|e| XatuError::invalid_checkpoint(format!("customer {}: {e}", c.addr)))?;
        }
        Ok(fleet)
    }

    /// Validates and loads one customer's checkpoint record into arena row
    /// `i`. Validation is delegated to [`DualState::restore`] and
    /// [`RollingSurvival::restore`] — the same code the per-customer
    /// detector uses — before the values are copied into the arenas.
    fn restore_customer(
        &mut self,
        i: usize,
        c: &CustomerCheckpoint,
        ck: &DetectorCheckpoint,
    ) -> Result<(), String> {
        let hidden = self.model.cfg.hidden;
        let arenas = &mut self.arenas;
        for (d, arena) in c
            .dual
            .iter()
            .zip([&mut arenas.short, &mut arenas.medium, &mut arenas.long])
        {
            let ds = DualState::restore(
                LstmState {
                    h: d.aged_h.clone(),
                    c: d.aged_c.clone(),
                },
                LstmState {
                    h: d.fresh_h.clone(),
                    c: d.fresh_c.clone(),
                },
                d.aged_age,
                d.fresh_age,
                d.period,
            )
            .map_err(String::from)?;
            if ds.states().0.h.len() != hidden {
                return Err(format!(
                    "dual-state hidden size {} does not match model hidden {hidden}",
                    ds.states().0.h.len()
                ));
            }
            if ds.period() != arena.period {
                return Err(format!(
                    "dual-state period {} does not match the fleet period {}",
                    ds.period(),
                    arena.period
                ));
            }
            let (aged, fresh) = ds.states();
            let (aged_age, fresh_age) = ds.ages();
            let r = i * hidden..(i + 1) * hidden;
            arena.aged_h[r.clone()].copy_from_slice(&aged.h);
            arena.aged_c[r.clone()].copy_from_slice(&aged.c);
            arena.fresh_h[r.clone()].copy_from_slice(&fresh.h);
            arena.fresh_c[r].copy_from_slice(&fresh.c);
            arena.aged_age[i] = aged_age;
            arena.fresh_age[i] = fresh_age;
        }

        let (w, buf, head, filled, sum) = &c.survival;
        if *w as usize != self.window {
            return Err(format!(
                "survival window {w} does not match detector window {}",
                self.window
            ));
        }
        let ring = RollingSurvival::restore(
            *w as usize,
            buf.clone(),
            *head as usize,
            *filled as usize,
            *sum,
        )
        .map_err(String::from)?;
        let (_, rbuf, rhead, rfilled, rsum) = ring.state();
        arenas.ring_buf[i * self.window..(i + 1) * self.window].copy_from_slice(rbuf);
        arenas.ring_head[i] = rhead as u32;
        arenas.ring_filled[i] = rfilled as u32;
        arenas.ring_sum[i] = rsum;

        for (name, partial) in [("medium", &c.med_partial), ("long", &c.long_partial)] {
            if partial.0.len() != NUM_FEATURES {
                return Err(format!("{name} partial bucket has width {}", partial.0.len()));
            }
            if partial.0.iter().any(|v| !v.is_finite()) {
                return Err(format!("non-finite value in {name} partial bucket"));
            }
        }
        let (_, med_gran, long_gran) = ck.timescales;
        if c.med_partial.1 >= med_gran || c.long_partial.1 >= long_gran {
            return Err("partial bucket count at or past its granularity".into());
        }
        if c.last_frame.len() != NUM_FEATURES {
            return Err(format!("last frame has width {}", c.last_frame.len()));
        }
        if c.last_frame.iter().any(|v| !v.is_finite()) || !c.last_survival.is_finite() {
            return Err("non-finite value in customer scalars".into());
        }
        let f = i * NUM_FEATURES;
        arenas.med_partial[f..f + NUM_FEATURES].copy_from_slice(&c.med_partial.0);
        arenas.med_count[i] = c.med_partial.1;
        arenas.long_partial[f..f + NUM_FEATURES].copy_from_slice(&c.long_partial.0);
        arenas.long_count[i] = c.long_partial.1;
        arenas.last_frame[f..f + NUM_FEATURES].copy_from_slice(&c.last_frame);
        arenas.active_since[i] = c.active_since;
        arenas.quiet_run[i] = c.quiet_run;
        arenas.last_survival[i] = c.last_survival;
        arenas.observed[i] = c.observed;
        arenas.stale_run[i] = c.stale_run;
        arenas.last_minute[i] = c.last_minute;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineDetector;

    fn cfg() -> XatuConfig {
        XatuConfig {
            timescales: (1, 3, 6),
            short_len: 8,
            medium_len: 6,
            long_len: 4,
            window: 6,
            hidden: 5,
            ..XatuConfig::smoke_test()
        }
    }

    const N_CUST: usize = 7;

    /// Deterministic sparse-ish frames: a handful of scattered features, an
    /// occasional NaN (exercising sanitization), and a surge for customer 0
    /// so alerts actually raise/end under a mid-range threshold.
    fn fleet_frame(c: usize, m: u32, out: &mut [f64]) {
        out.fill(0.0);
        for k in 0..8usize {
            let idx = (c * 37 + m as usize * 13 + k * 29) % NUM_FEATURES;
            out[idx] = ((c + 1) as f64 * 0.17 + m as f64 * 0.031 + k as f64 * 0.71).sin();
        }
        if m % 23 == 3 && c % 3 == 0 {
            out[5] = f64::NAN;
        }
        if c == 0 && (60..90).contains(&m) {
            out[0] = 3.0;
        }
    }

    /// The degraded-input schedule: a short per-customer outage (imputed on
    /// return), explicit gap minutes, a long outage (cold restart: 50 > 3·6)
    /// and a late joiner.
    fn schedule(c: usize, m: u32) -> FleetInput {
        if c == 2 && (40..=45).contains(&m) {
            FleetInput::Skip
        } else if c == 3 && m % 17 == 0 && m > 0 {
            FleetInput::Gap
        } else if c == 4 && (50..100).contains(&m) {
            FleetInput::Skip
        } else if c == 5 && m < 20 {
            FleetInput::Skip
        } else {
            FleetInput::Frame
        }
    }

    fn fleet_fill(m: u32) -> impl Fn(usize, Ipv4, &mut [f64]) -> FleetInput {
        move |i, _addr, out| {
            let action = schedule(i, m);
            if matches!(action, FleetInput::Frame) {
                fleet_frame(i, m, out);
            }
            action
        }
    }

    fn new_pair(threshold: f64) -> (OnlineDetector, FleetDetector) {
        let c = cfg();
        let model = XatuModel::new(&c);
        let det = OnlineDetector::new(model.clone(), AttackType::UdpFlood, threshold, &c);
        let mut fleet = FleetDetector::new(model, AttackType::UdpFlood, threshold, &c);
        for i in 0..N_CUST {
            fleet.add_customer(Ipv4(i as u32));
        }
        (det, fleet)
    }

    /// Events keyed per customer: both implementations preserve each
    /// customer's event order; only the cross-customer interleaving within
    /// a minute differs (documented on `step_minute_batch`).
    fn by_customer(events: &[DetectorEvent]) -> Vec<Vec<DetectorEvent>> {
        let mut out = vec![Vec::new(); N_CUST];
        for &e in events {
            let a = match e {
                DetectorEvent::Raised(a) | DetectorEvent::Ended(a) => a,
            };
            out[a.customer.0 as usize].push(e);
        }
        out
    }

    /// Drives an [`OnlineDetector`] through the same schedule one customer
    /// at a time, returning its event stream.
    fn drive_online(det: &mut OnlineDetector, minutes: std::ops::Range<u32>) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        let mut frame = vec![0.0; NUM_FEATURES];
        for m in minutes {
            for cst in 0..N_CUST {
                let addr = Ipv4(cst as u32);
                match schedule(cst, m) {
                    FleetInput::Skip => {}
                    FleetInput::Gap => {
                        let (_, _, ev) = det.observe_gap(addr, m).expect("in-order gap");
                        events.extend(ev);
                    }
                    FleetInput::Frame => {
                        fleet_frame(cst, m, &mut frame);
                        let (_, _, ev) = det.observe(addr, m, &frame).expect("in-order");
                        events.extend(ev);
                    }
                }
            }
        }
        events
    }

    fn drive_fleet(
        fleet: &mut FleetDetector,
        minutes: std::ops::Range<u32>,
        threads: usize,
    ) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for m in minutes {
            let ev = fleet
                .step_minute_batch(m, threads, fleet_fill(m))
                .expect("in-order batch");
            events.extend_from_slice(ev);
        }
        events
    }

    #[test]
    fn fleet_matches_online_detector_bitwise_through_degradation() {
        // Threshold near the untrained model's resting survival so the
        // alert lifecycle flaps: raises, quiet-ends, force-ends all fire.
        let (mut det, mut fleet) = new_pair(0.9);
        let mut online_events = Vec::new();
        let mut fleet_events = Vec::new();
        let mut frame = vec![0.0; NUM_FEATURES];
        for m in 0..160u32 {
            for cst in 0..N_CUST {
                let addr = Ipv4(cst as u32);
                match schedule(cst, m) {
                    FleetInput::Skip => {}
                    FleetInput::Gap => {
                        let (_, _, ev) = det.observe_gap(addr, m).expect("in-order gap");
                        online_events.extend(ev);
                    }
                    FleetInput::Frame => {
                        fleet_frame(cst, m, &mut frame);
                        let (_, _, ev) = det.observe(addr, m, &frame).expect("in-order");
                        online_events.extend(ev);
                    }
                }
            }
            let ev = fleet
                .step_minute_batch(m, 1, fleet_fill(m))
                .expect("in-order batch");
            fleet_events.extend_from_slice(ev);
            for cst in 0..N_CUST {
                let addr = Ipv4(cst as u32);
                assert_eq!(
                    det.survival_of(addr).to_bits(),
                    fleet.survival_of(addr).to_bits(),
                    "minute {m}, customer {cst}: survival diverged"
                );
            }
        }
        assert_eq!(by_customer(&online_events), by_customer(&fleet_events));
        assert!(!online_events.is_empty(), "schedule never exercised alerts");
        if xatu_obs::enabled() {
            let (a, b) = (det.obs(), fleet.obs());
            assert_eq!(a.raised.get(), b.raised.get());
            assert_eq!(a.ended.get(), b.ended.get());
            assert_eq!(a.force_ended.get(), b.force_ended.get());
            assert_eq!(a.warmup_suppressed.get(), b.warmup_suppressed.get());
            assert_eq!(a.gaps_imputed.get(), b.gaps_imputed.get());
            assert_eq!(a.values_sanitized.get(), b.values_sanitized.get());
            assert_eq!(a.cold_restarts.get(), b.cold_restarts.get());
            assert_eq!(a.survival.count(), b.survival.count());
            assert_eq!(a.survival.counts(), b.survival.counts());
            assert_eq!(a.gap_runs.counts(), b.gap_runs.counts());
        }
    }

    #[test]
    fn fleet_is_bit_identical_across_thread_counts() {
        let (_, mut f1) = new_pair(0.9);
        let (_, mut f4) = new_pair(0.9);
        let (_, mut f3) = new_pair(0.9);
        let e1 = drive_fleet(&mut f1, 0..140, 1);
        let e4 = drive_fleet(&mut f4, 0..140, 4);
        let e3 = drive_fleet(&mut f3, 0..140, 3);
        assert_eq!(e1, e4, "1-thread vs 4-thread event streams diverged");
        assert_eq!(e1, e3, "1-thread vs 3-thread event streams diverged");
        for cst in 0..N_CUST {
            let addr = Ipv4(cst as u32);
            assert_eq!(f1.survival_of(addr).to_bits(), f4.survival_of(addr).to_bits());
            assert_eq!(f1.survival_of(addr).to_bits(), f3.survival_of(addr).to_bits());
        }
        if xatu_obs::enabled() {
            assert_eq!(f1.obs().survival.counts(), f4.obs().survival.counts());
            assert_eq!(f1.obs().raised.get(), f4.obs().raised.get());
        }
    }

    #[test]
    fn fleet_checkpoint_interops_with_online_detector_both_ways() {
        let (mut det, mut fleet) = new_pair(0.9);
        drive_online(&mut det, 0..80);
        drive_fleet(&mut fleet, 0..80, 2);

        // Fleet checkpoint → both implementations resume bit-identically.
        let ck = fleet.to_checkpoint();
        let mut fleet_resumed = FleetDetector::from_checkpoint(&ck).expect("fleet restore");
        let mut online_resumed = OnlineDetector::from_checkpoint(&ck).expect("online restore");
        let ev_orig = drive_fleet(&mut fleet, 80..150, 2);
        let ev_fleet = drive_fleet(&mut fleet_resumed, 80..150, 4);
        let ev_online = drive_online(&mut online_resumed, 80..150);
        assert_eq!(ev_orig, ev_fleet, "fleet→fleet resume diverged");
        assert_eq!(
            by_customer(&ev_orig),
            by_customer(&ev_online),
            "fleet→online resume diverged"
        );
        for cst in 0..N_CUST {
            let addr = Ipv4(cst as u32);
            assert_eq!(
                fleet.survival_of(addr).to_bits(),
                fleet_resumed.survival_of(addr).to_bits()
            );
            assert_eq!(
                fleet.survival_of(addr).to_bits(),
                online_resumed.survival_of(addr).to_bits()
            );
        }

        // Online checkpoint → fleet resumes bit-identically.
        let ck2 = det.to_checkpoint();
        let mut fleet_from_online = FleetDetector::from_checkpoint(&ck2).expect("restore");
        let ev_det = drive_online(&mut det, 80..150);
        let ev_f = drive_fleet(&mut fleet_from_online, 80..150, 2);
        assert_eq!(by_customer(&ev_det), by_customer(&ev_f));
        for cst in 0..N_CUST {
            let addr = Ipv4(cst as u32);
            assert_eq!(
                det.survival_of(addr).to_bits(),
                fleet_from_online.survival_of(addr).to_bits()
            );
        }
    }

    #[test]
    fn fleet_rejects_corrupt_checkpoints() {
        let (_, mut fleet) = new_pair(0.9);
        drive_fleet(&mut fleet, 0..50, 2);
        let good = fleet.to_checkpoint();
        assert!(FleetDetector::from_checkpoint(&good).is_ok());

        let mut bad = good.clone();
        bad.customers[0].last_frame.truncate(10);
        assert!(FleetDetector::from_checkpoint(&bad).is_err());

        let mut bad = good.clone();
        bad.customers[0].dual[0].aged_h[0] = f64::NAN;
        assert!(FleetDetector::from_checkpoint(&bad).is_err());

        let mut bad = good.clone();
        bad.customers[0].dual[1].period += 1;
        assert!(
            FleetDetector::from_checkpoint(&bad).is_err(),
            "non-uniform period must be rejected"
        );

        let mut bad = good.clone();
        bad.params.pop();
        assert!(FleetDetector::from_checkpoint(&bad).is_err());

        let mut bad = good.clone();
        let dup = bad.customers[0].clone();
        bad.customers.push(dup);
        assert!(FleetDetector::from_checkpoint(&bad).is_err());

        let mut bad = good;
        bad.customers[0].survival.0 = 99;
        assert!(FleetDetector::from_checkpoint(&bad).is_err());
    }

    #[test]
    fn out_of_order_batch_is_reported_and_customer_untouched() {
        let (_, mut fleet) = new_pair(0.9);
        drive_fleet(&mut fleet, 0..10, 1);
        let before = fleet.survival_of(Ipv4(1));
        let err = fleet
            .step_minute_batch(5, 1, |i, _a, out| {
                if i == 1 {
                    fleet_frame(1, 5, out);
                    FleetInput::Frame
                } else {
                    FleetInput::Skip
                }
            })
            .expect_err("regressed minute must be rejected");
        assert!(matches!(
            err,
            XatuError::OutOfOrderMinute {
                customer: Ipv4(1),
                minute: 5,
                last: 9
            }
        ));
        assert_eq!(before.to_bits(), fleet.survival_of(Ipv4(1)).to_bits());
        // The stream continues normally afterwards.
        fleet
            .step_minute_batch(10, 1, fleet_fill(10))
            .expect("in-order batch");
    }

    #[test]
    fn close_all_ends_open_alerts() {
        let (_, mut fleet) = new_pair(0.9);
        drive_fleet(&mut fleet, 0..60, 2);
        let open: usize = (0..N_CUST)
            .filter(|&c| fleet.arenas.active_since[c].is_some())
            .count();
        assert!(open > 0, "no alert open at close time");
        let events = fleet.close_all(60);
        assert_eq!(events.len(), open);
        assert!(events.iter().all(|e| matches!(e, DetectorEvent::Ended(a) if a.mitigation_end == Some(60))));
        assert!(fleet.close_all(61).is_empty());
    }

    #[test]
    fn interner_and_budget_are_reported() {
        let (_, mut fleet) = new_pair(0.9);
        assert_eq!(fleet.len(), N_CUST);
        assert_eq!(fleet.add_customer(Ipv4(3)), 3, "re-adding is idempotent");
        assert_eq!(fleet.customer_index(Ipv4(6)), Some(6));
        assert_eq!(fleet.customer_index(Ipv4(99)), None);
        assert_eq!(fleet.survival_of(Ipv4(99)), 1.0);
        let per = fleet.bytes_per_customer();
        // hidden 5, window 6: duals 3·4·5·8 = 480B, frames 3·273·8 ≈ 6.5KB.
        assert!(per > 6_000 && per < 64_000, "bytes/customer = {per}");
    }
}
