//! Row-major dense matrices.
//!
//! Only the kernels the layers actually need are implemented, each written
//! so the inner loop is over contiguous memory.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable flat data access.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data access.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y += A·x` — matrix-vector multiply-accumulate.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr += dot4(self.row(r), x);
        }
    }

    /// `y = A·x` — matrix-vector multiply into a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_acc(x, &mut y);
        y
    }

    /// `y += A·x` touching only the columns listed in `nz` — the ascending
    /// indices of `x`'s exact-nonzero entries (see [`nonzero_indices_into`]).
    ///
    /// Bit-identical to [`Matrix::matvec_acc`]: the omitted products are all
    /// `±0.0` (finite weights), `dot4`'s lanes start at `+0.0` and
    /// round-to-nearest addition can never drive them to `-0.0`, and adding
    /// `±0.0` to a non-`-0.0` value is the identity — so dropping those
    /// terms cannot move a single bit. The kernel replays `dot4`'s exact
    /// summation contract: lane `l = i mod 4` accumulates its surviving
    /// products in ascending `i`, lanes combine as `(s0+s1)+(s2+s3)`, and
    /// the `len % 4` tail indices are added afterwards in order. A property
    /// test pins the 0-ULP equivalence with planted zeros.
    ///
    /// The point of taking `nz` as a parameter instead of branching on
    /// `x[i] == 0.0` inline is that the sparsity scan is hoisted out of the
    /// per-row loop: the caller builds the index list once per input frame
    /// and every row (and the backward pass's rank-1 update) reuses it.
    ///
    /// # Panics
    /// Panics if dimensions disagree or an index is out of range.
    pub fn matvec_acc_nz(&self, x: &[f64], nz: &[u32], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        let lanes_end = (x.len() - x.len() % 4) as u32;
        let split = nz.partition_point(|&i| i < lanes_end);
        let (lane_idx, tail_idx) = nz.split_at(split);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            // Named lane accumulators (not `s[i % 4]`): the dynamic index
            // would force the lanes through memory and serialize every add
            // behind a store-to-load forward; the 4-way branch below has an
            // identical pattern on every row, so it predicts perfectly and
            // the sums stay in registers.
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for &i in lane_idx {
                let i = i as usize;
                let p = row[i] * x[i];
                match i % 4 {
                    0 => s0 += p,
                    1 => s1 += p,
                    2 => s2 += p,
                    _ => s3 += p,
                }
            }
            let mut acc = (s0 + s1) + (s2 + s3);
            for &i in tail_idx {
                let i = i as usize;
                acc += row[i] * x[i];
            }
            *yr += acc;
        }
    }

    /// [`Matrix::matvec_acc_nz`] evaluated on the materialised transpose:
    /// `self` is `Aᵀ` and this computes `y += A·x` touching only the
    /// columns of `A` (rows of `self`) listed in `nz`.
    ///
    /// Bit-identical to `A.matvec_acc_nz(x, nz, y)`: the same lane
    /// contract is replayed with the loop nest flipped. Four lane arrays
    /// stand in for `dot4`'s four scalar accumulators — column `j` of `A`
    /// feeds lane `j mod 4`, columns arrive in ascending `j` (the `nz`
    /// list is ascending), lanes combine per output as `(s0+s1)+(s2+s3)`,
    /// and the `len % 4` tail columns are folded in afterwards in index
    /// order. Per output element that is exactly the add sequence the
    /// row-major kernel performs, so no bit can move. A property test
    /// pins the equivalence.
    ///
    /// The perf win is access shape: the row-major kernel reads ~`nnz`
    /// scattered elements from every one of `rows` weight rows (a cache
    /// line fetched per 8 bytes used), while this form streams one
    /// contiguous `rows`-long transpose row per nonzero input and uses
    /// every byte it pulls. `lanes` is caller-owned scratch (resized to
    /// `4·rows`) so steady-state calls allocate nothing.
    ///
    /// # Panics
    /// Panics if dimensions disagree or an index is out of range.
    pub fn matvec_acc_nz_t(&self, x: &[f64], nz: &[u32], ys: &mut [f64], lanes: &mut Vec<f64>) {
        assert_eq!(x.len(), self.rows, "matvec_nz_t: x length");
        assert_eq!(ys.len(), self.cols, "matvec_nz_t: y length");
        let m = self.cols;
        let lanes_end = (x.len() - x.len() % 4) as u32;
        let split = nz.partition_point(|&i| i < lanes_end);
        let (lane_idx, tail_idx) = nz.split_at(split);
        lanes.clear();
        lanes.resize(4 * m, 0.0);
        let (l0, rest) = lanes.split_at_mut(m);
        let (l1, rest) = rest.split_at_mut(m);
        let (l2, l3) = rest.split_at_mut(m);
        for &j in lane_idx {
            let j = j as usize;
            let xj = x[j];
            let col = self.row(j);
            let lane: &mut [f64] = match j % 4 {
                0 => &mut *l0,
                1 => &mut *l1,
                2 => &mut *l2,
                _ => &mut *l3,
            };
            for (s, &w) in lane.iter_mut().zip(col) {
                *s += w * xj;
            }
        }
        // Fold lanes into `l0` exactly as the scalar kernel's
        // `(s0+s1)+(s2+s3)`, then add the tail columns in index order on
        // top before the single accumulate into `ys`.
        for r in 0..m {
            l0[r] = (l0[r] + l1[r]) + (l2[r] + l3[r]);
        }
        for &j in tail_idx {
            let j = j as usize;
            let xj = x[j];
            let col = self.row(j);
            for (s, &w) in l0.iter_mut().zip(col) {
                *s += w * xj;
            }
        }
        for (yr, &s) in ys.iter_mut().zip(&*l0) {
            *yr += s;
        }
    }

    /// Batched multiply-accumulate over `batch` column vectors:
    /// `ys[c·rows .. (c+1)·rows] += A · xs[c·cols .. (c+1)·cols]` for every
    /// `c` — the cross-customer form of [`Matrix::matvec_acc`].
    ///
    /// Bit-identical to calling `matvec_acc` once per column: every output
    /// element is produced by `dot4`'s exact summation contract (lane
    /// `l = k mod 4` sums its products in ascending `k`, lanes combine as
    /// `(s0+s1)+(s2+s3)`, tail added in index order), so tile boundaries —
    /// and therefore batch composition and shard boundaries — can never
    /// move a bit. A property test pins the equivalence.
    ///
    /// The perf win over a per-column loop is reuse: columns are processed
    /// in tiles of 4, so each 4-wide chunk of a weight row is loaded once
    /// and multiplied into 4 inputs while 16 accumulator lanes pipeline,
    /// instead of re-streaming the whole weight matrix per customer.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with `batch` and the matrix shape.
    pub fn matvec_acc_batch(&self, xs: &[f64], batch: usize, ys: &mut [f64]) {
        let (rows, cols) = (self.rows, self.cols);
        assert_eq!(xs.len(), batch * cols, "matvec_batch: xs length");
        assert_eq!(ys.len(), batch * rows, "matvec_batch: ys length");
        let tiles = batch - batch % 4;
        let lanes = cols - cols % 4;
        for r in 0..rows {
            let row = self.row(r);
            let mut c = 0;
            while c < tiles {
                let x: [&[f64]; 4] = [
                    &xs[c * cols..(c + 1) * cols],
                    &xs[(c + 1) * cols..(c + 2) * cols],
                    &xs[(c + 2) * cols..(c + 3) * cols],
                    &xs[(c + 3) * cols..(c + 4) * cols],
                ];
                let mut s = [[0.0f64; 4]; 4];
                let mut k = 0;
                while k < lanes {
                    let w = [row[k], row[k + 1], row[k + 2], row[k + 3]];
                    for (sj, xj) in s.iter_mut().zip(x) {
                        sj[0] += w[0] * xj[k];
                        sj[1] += w[1] * xj[k + 1];
                        sj[2] += w[2] * xj[k + 2];
                        sj[3] += w[3] * xj[k + 3];
                    }
                    k += 4;
                }
                for (j, (sj, xj)) in s.iter().zip(x).enumerate() {
                    let mut acc = (sj[0] + sj[1]) + (sj[2] + sj[3]);
                    for t in lanes..cols {
                        acc += row[t] * xj[t];
                    }
                    ys[(c + j) * rows + r] += acc;
                }
                c += 4;
            }
            for cj in tiles..batch {
                ys[cj * rows + r] += dot4(row, &xs[cj * cols..(cj + 1) * cols]);
            }
        }
    }

    /// `y += Aᵀ·x` — transposed matrix-vector multiply-accumulate.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_t_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(y.len(), self.cols, "matvec_t: y length");
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += xr * a;
            }
        }
    }

    /// `y += A·x` with exact-zero `x` terms skipped, adding the surviving
    /// products to each output **sequentially in index order**.
    ///
    /// This is the contiguous-walk replacement for [`Matrix::matvec_t_acc`]:
    /// calling it on the materialised transpose ([`Matrix::transpose_into`])
    /// performs, per output element, the *same* add sequence `matvec_t_acc`
    /// performs on the original matrix — ascending source-row index, exact
    /// zeros skipped, one scalar accumulator — so the result is bit-identical
    /// while every inner loop reads a contiguous row instead of striding
    /// down a column. A property test pins the 0-ULP equivalence.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_acc_seq(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_seq: x length");
        assert_eq!(y.len(), self.rows, "matvec_seq: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = *yr;
            for (xv, a) in x.iter().zip(row) {
                if *xv == 0.0 {
                    continue;
                }
                acc += xv * a;
            }
            *yr = acc;
        }
    }

    /// Writes `selfᵀ` into `out`, reusing `out`'s allocation when its
    /// capacity suffices (steady-state transposes allocate nothing).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.rows = self.cols;
        out.cols = self.rows;
        out.data.clear();
        out.data.resize(self.rows * self.cols, 0.0);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// `self += α · a·bᵀ` — rank-1 update (outer product accumulate).
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn rank1_acc(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "rank1: a length");
        assert_eq!(b.len(), self.cols, "rank1: b length");
        for (r, &ar) in a.iter().enumerate() {
            let coef = alpha * ar;
            if coef == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (m, &bv) in row.iter_mut().zip(b) {
                *m += coef * bv;
            }
        }
    }

    /// `self += α · a·bᵀ` restricted to the columns listed in `nz` — the
    /// ascending indices of `b`'s exact-nonzero entries (see
    /// [`nonzero_indices_into`]).
    ///
    /// Bit-identical to [`Matrix::rank1_acc`]: each omitted product is
    /// `coef · 0.0 = ±0.0`, and adding `±0.0` never changes an
    /// accumulator's bits unless the accumulator is `-0.0` — which no
    /// gradient cell can be, since grads start at `+0.0` and
    /// round-to-nearest addition only produces `-0.0` from two `-0.0`
    /// terms. For sparse `b` (feature frames are mostly zeros) this turns a
    /// full-row read-modify-write into a handful of scattered updates. A
    /// property test pins the 0-ULP equivalence.
    ///
    /// # Panics
    /// Panics if dimensions disagree or an index is out of range.
    pub fn rank1_acc_nz(&mut self, alpha: f64, a: &[f64], b: &[f64], nz: &[u32]) {
        assert_eq!(a.len(), self.rows, "rank1: a length");
        assert_eq!(b.len(), self.cols, "rank1: b length");
        for (r, &ar) in a.iter().enumerate() {
            let coef = alpha * ar;
            if coef == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for &i in nz {
                let i = i as usize;
                row[i] += coef * b[i];
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Appends the ascending indices of `x`'s exact-nonzero entries to `out`
/// (which is **not** cleared — callers append per-step runs to one flat
/// arena) and returns how many were appended.
///
/// This is the sparsity scan shared by [`Matrix::matvec_acc_nz`] and
/// [`Matrix::rank1_acc_nz`]: one cheap pass over the input frame, hoisted
/// out of every per-row kernel loop, with the result reusable across the
/// forward matvec and the backward rank-1 update of the same step.
pub fn nonzero_indices_into(x: &[f64], out: &mut Vec<u32>) -> usize {
    let before = out.len();
    out.extend(
        x.iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, _)| i as u32),
    );
    out.len() - before
}

/// `y += α·x` on raw vectors.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    dot4(a, b)
}

/// The shared inner kernel of [`dot`] and [`Matrix::matvec_acc`]: four
/// independent accumulator lanes so the multiply-adds pipeline instead of
/// serialising on one dependency chain.
///
/// The summation order is part of the contract, not an implementation
/// detail: lane `l` sums products at indices `l, l+4, l+8, …`; the lanes
/// combine as `(s0 + s1) + (s2 + s3)`; the `len % 4` tail is then added in
/// index order. A property test pins the result to 0 ULP against a plain
/// scalar rendering of that same order, so the unrolled kernel can never
/// drift from the documented deterministic arithmetic.
///
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += pa[0] * pb[0];
        s1 += pa[1] * pb[1];
        s2 += pa[2] * pb[2];
        s3 += pa[3] * pb[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut i3 = Matrix::zeros(3, 3);
        for k in 0..3 {
            i3.set(k, k, 1.0);
        }
        assert_eq!(i3.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 3];
        a.matvec_t_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rank1_builds_outer_product() {
        let mut g = Matrix::zeros(2, 2);
        g.rank1_acc(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(g.data(), &[8.0, 10.0, 24.0, 30.0]);
    }

    #[test]
    fn transpose_adjoint_identity() {
        // <A x, y> == <x, A^T y> for random-ish fixed values.
        let a = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
        let x = [1.0, -2.0];
        let y = [0.3, 0.7, -0.2];
        let ax = a.matvec(&x);
        let mut aty = vec![0.0; 2];
        a.matvec_t_acc(&y, &mut aty);
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matvec: x length")]
    fn matvec_shape_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }

    /// Plain scalar rendering of `dot4`'s documented summation order: lane
    /// sums in index order, `(s0 + s1) + (s2 + s3)`, then the tail. The
    /// property tests pin the unrolled kernel to this at 0 ULP.
    fn fixed_order_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n - n % 4;
        let mut s = [0.0f64; 4];
        for k in (0..lanes).step_by(4) {
            for l in 0..4 {
                s[l] += a[k + l] * b[k + l];
            }
        }
        let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
        for k in lanes..n {
            acc += a[k] * b[k];
        }
        acc
    }

    #[test]
    fn transpose_into_reuses_buffer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut t = Matrix::zeros(3, 2);
        let cap = t.data.capacity();
        a.transpose_into(&mut t);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.data.capacity(), cap);
    }

    use proptest::prelude::*;

    proptest! {
        /// The transpose-then-sequential kernel must reproduce
        /// `matvec_t_acc` bit for bit, including its exact-zero skip.
        #[test]
        fn seq_kernel_on_transpose_matches_matvec_t_acc(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 4..140),
            zero_mask in 0u32..64,
            init in -1.0e3f64..1.0e3,
        ) {
            let rows = 1 + data.len() % 11;
            let cols = (data.len().saturating_sub(rows) / rows).max(1);
            if data.len() < rows * cols + rows {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let mut x: Vec<f64> = data[rows * cols..rows * cols + rows].to_vec();
            // Plant exact zeros so the skip path is exercised.
            for (i, v) in x.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                }
            }
            let mut want = vec![init; cols];
            m.matvec_t_acc(&x, &mut want);
            let mut mt = Matrix::zeros(0, 0);
            m.transpose_into(&mut mt);
            let mut got = vec![init; cols];
            mt.matvec_acc_seq(&x, &mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }

        #[test]
        fn dot_matches_fixed_order_partial_sums(
            ab in proptest::collection::vec(-1.0e6f64..1.0e6, 0..129),
        ) {
            let n = ab.len() / 2;
            let (a, b) = (&ab[..n], &ab[n..2 * n]);
            prop_assert_eq!(
                dot(a, b).to_bits(),
                fixed_order_reference(a, b).to_bits()
            );
        }

        #[test]
        fn matvec_acc_matches_fixed_order_partial_sums(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120),
            init in -1.0e3f64..1.0e3,
            zero_mask in 0u32..u32::MAX,
        ) {
            // Split `data` into a rows×cols matrix and an x vector such
            // that rows ≥ 1 and cols covers tail lengths 0..4.
            let cols = 1 + data.len() % 13;
            let rows = (data.len().saturating_sub(cols) / cols).max(1);
            if data.len() < rows * cols + cols {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let mut x = data[rows * cols..rows * cols + cols].to_vec();
            // Plant exact zeros (whole aligned chunks included) so the
            // zero-chunk skip is exercised against the dense reference.
            for (i, v) in x.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                }
            }
            let mut y = vec![init; rows];
            m.matvec_acc(&x, &mut y);
            for (r, &yr) in y.iter().enumerate() {
                let expect = init + fixed_order_reference(m.row(r), &x);
                prop_assert_eq!(yr.to_bits(), expect.to_bits());
            }
        }

        /// The sparse matvec on an explicit nonzero-index list must be
        /// bit-identical to the dense `matvec_acc` with planted zeros.
        #[test]
        fn matvec_acc_nz_matches_dense_bitwise(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120),
            init in -1.0e3f64..1.0e3,
            zero_mask in 0u32..u32::MAX,
        ) {
            let cols = 1 + data.len() % 13;
            let rows = (data.len().saturating_sub(cols) / cols).max(1);
            if data.len() < rows * cols + cols {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let mut x = data[rows * cols..rows * cols + cols].to_vec();
            for (i, v) in x.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                }
            }
            let mut nz = Vec::new();
            let n = nonzero_indices_into(&x, &mut nz);
            prop_assert_eq!(n, nz.len());
            prop_assert!(nz.iter().all(|&i| x[i as usize] != 0.0));
            let mut want = vec![init; rows];
            m.matvec_acc(&x, &mut want);
            let mut got = vec![init; rows];
            m.matvec_acc_nz(&x, &nz, &mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }

        /// The transposed sparse matvec must be bit-identical to the
        /// row-major sparse matvec on the original matrix, across lane and
        /// tail column positions and with stale garbage in the lane
        /// scratch.
        #[test]
        fn matvec_acc_nz_t_matches_row_major_bitwise(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120),
            init in -1.0e3f64..1.0e3,
            zero_mask in 0u32..u32::MAX,
        ) {
            let cols = 1 + data.len() % 13;
            let rows = (data.len().saturating_sub(cols) / cols).max(1);
            if data.len() < rows * cols + cols {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let mut x = data[rows * cols..rows * cols + cols].to_vec();
            for (i, v) in x.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                }
            }
            let mut nz = Vec::new();
            nonzero_indices_into(&x, &mut nz);
            let mut want = vec![init; rows];
            m.matvec_acc_nz(&x, &nz, &mut want);
            let mut t = Matrix::zeros(1, 1);
            m.transpose_into(&mut t);
            let mut got = vec![init; rows];
            // Poisoned scratch: the kernel must fully reinitialise it.
            let mut lanes = vec![f64::NAN; 2];
            t.matvec_acc_nz_t(&x, &nz, &mut got, &mut lanes);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }

        /// The batched tiled matvec must be bit-identical to one
        /// `matvec_acc` per column, across tile-boundary batch sizes and
        /// with planted exact zeros in the inputs.
        #[test]
        fn matvec_acc_batch_matches_per_column_bitwise(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120),
            batch in 1usize..10,
            init in -1.0e3f64..1.0e3,
            zero_mask in 0u32..u32::MAX,
        ) {
            let cols = 1 + data.len() % 13;
            let rows = (data.len().saturating_sub(cols) / cols).max(1);
            if data.len() < rows * cols {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let mut xs = vec![0.0f64; batch * cols];
            for (i, v) in xs.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                } else {
                    *v = data[(i * 7 + 3) % data.len()];
                }
            }
            let mut got = vec![init; batch * rows];
            m.matvec_acc_batch(&xs, batch, &mut got);
            for c in 0..batch {
                let mut want = vec![init; rows];
                m.matvec_acc(&xs[c * cols..(c + 1) * cols], &mut want);
                for (g, w) in got[c * rows..(c + 1) * rows].iter().zip(&want) {
                    prop_assert_eq!(g.to_bits(), w.to_bits());
                }
            }
        }

        /// The sparse rank-1 update on an explicit nonzero-index list must
        /// be bit-identical to the dense `rank1_acc` with planted zeros.
        #[test]
        fn rank1_acc_nz_matches_dense_bitwise(
            data in proptest::collection::vec(-1.0e3f64..1.0e3, 6..90),
            alpha in -4.0f64..4.0,
            zero_mask in 0u32..u32::MAX,
        ) {
            let rows = 1 + data.len() % 7;
            let cols = 1 + data.len() % 5;
            if data.len() < 2 * rows * cols + rows + cols {
                return;
            }
            let seed = &data[..rows * cols];
            let a = &data[rows * cols..rows * cols + rows];
            let mut b = data[rows * cols + rows..rows * cols + rows + cols].to_vec();
            for (i, v) in b.iter_mut().enumerate() {
                if (zero_mask >> (i % 32)) & 1 == 1 {
                    *v = 0.0;
                }
            }
            let mut nz = Vec::new();
            nonzero_indices_into(&b, &mut nz);
            let mut want = Matrix::from_vec(rows, cols, seed.to_vec());
            want.rank1_acc(alpha, a, &b);
            let mut got = Matrix::from_vec(rows, cols, seed.to_vec());
            got.rank1_acc_nz(alpha, a, &b, &nz);
            for (g, w) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
