//! Row-major dense matrices.
//!
//! Only the kernels the layers actually need are implemented, each written
//! so the inner loop is over contiguous memory.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable flat data access.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data access.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y += A·x` — matrix-vector multiply-accumulate.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr += dot4(self.row(r), x);
        }
    }

    /// `y = A·x` — matrix-vector multiply into a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_acc(x, &mut y);
        y
    }

    /// `y += Aᵀ·x` — transposed matrix-vector multiply-accumulate.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_t_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(y.len(), self.cols, "matvec_t: y length");
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += xr * a;
            }
        }
    }

    /// `self += α · a·bᵀ` — rank-1 update (outer product accumulate).
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn rank1_acc(&mut self, alpha: f64, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "rank1: a length");
        assert_eq!(b.len(), self.cols, "rank1: b length");
        for (r, &ar) in a.iter().enumerate() {
            let coef = alpha * ar;
            if coef == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (m, &bv) in row.iter_mut().zip(b) {
                *m += coef * bv;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// `y += α·x` on raw vectors.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    dot4(a, b)
}

/// The shared inner kernel of [`dot`] and [`Matrix::matvec_acc`]: four
/// independent accumulator lanes so the multiply-adds pipeline instead of
/// serialising on one dependency chain.
///
/// The summation order is part of the contract, not an implementation
/// detail: lane `l` sums products at indices `l, l+4, l+8, …`; the lanes
/// combine as `(s0 + s1) + (s2 + s3)`; the `len % 4` tail is then added in
/// index order. A property test pins the result to 0 ULP against a plain
/// scalar rendering of that same order, so the unrolled kernel can never
/// drift from the documented deterministic arithmetic.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += pa[0] * pb[0];
        s1 += pa[1] * pb[1];
        s2 += pa[2] * pb[2];
        s3 += pa[3] * pb[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut i3 = Matrix::zeros(3, 3);
        for k in 0..3 {
            i3.set(k, k, 1.0);
        }
        assert_eq!(i3.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 3];
        a.matvec_t_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rank1_builds_outer_product() {
        let mut g = Matrix::zeros(2, 2);
        g.rank1_acc(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(g.data(), &[8.0, 10.0, 24.0, 30.0]);
    }

    #[test]
    fn transpose_adjoint_identity() {
        // <A x, y> == <x, A^T y> for random-ish fixed values.
        let a = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
        let x = [1.0, -2.0];
        let y = [0.3, 0.7, -0.2];
        let ax = a.matvec(&x);
        let mut aty = vec![0.0; 2];
        a.matvec_t_acc(&y, &mut aty);
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matvec: x length")]
    fn matvec_shape_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }

    /// Plain scalar rendering of `dot4`'s documented summation order: lane
    /// sums in index order, `(s0 + s1) + (s2 + s3)`, then the tail. The
    /// property tests pin the unrolled kernel to this at 0 ULP.
    fn fixed_order_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let lanes = n - n % 4;
        let mut s = [0.0f64; 4];
        for k in (0..lanes).step_by(4) {
            for l in 0..4 {
                s[l] += a[k + l] * b[k + l];
            }
        }
        let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
        for k in lanes..n {
            acc += a[k] * b[k];
        }
        acc
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dot_matches_fixed_order_partial_sums(
            ab in proptest::collection::vec(-1.0e6f64..1.0e6, 0..129),
        ) {
            let n = ab.len() / 2;
            let (a, b) = (&ab[..n], &ab[n..2 * n]);
            prop_assert_eq!(
                dot(a, b).to_bits(),
                fixed_order_reference(a, b).to_bits()
            );
        }

        #[test]
        fn matvec_acc_matches_fixed_order_partial_sums(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120),
            init in -1.0e3f64..1.0e3,
        ) {
            // Split `data` into a rows×cols matrix and an x vector such
            // that rows ≥ 1 and cols covers tail lengths 0..4.
            let cols = 1 + data.len() % 13;
            let rows = (data.len().saturating_sub(cols) / cols).max(1);
            if data.len() < rows * cols + cols {
                return;
            }
            let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
            let x = &data[rows * cols..rows * cols + cols];
            let mut y = vec![init; rows];
            m.matvec_acc(x, &mut y);
            for (r, &yr) in y.iter().enumerate() {
                let expect = init + fixed_order_reference(m.row(r), x);
                prop_assert_eq!(yr.to_bits(), expect.to_bits());
            }
        }
    }
}
