//! Model weight persistence.
//!
//! Layers derive `serde`; this module adds small helpers for saving and
//! loading any serializable model as pretty JSON, plus a versioned envelope
//! so stale weight files fail loudly instead of silently misbehaving.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Format version written into every weight file.
pub const WEIGHTS_VERSION: u32 = 1;

/// Envelope wrapping a serialized model with format metadata.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    version: u32,
    kind: String,
    model: T,
}

/// Saves a model to `path` as JSON with a version/kind envelope.
pub fn save_model<T: Serialize>(model: &T, kind: &str, path: &Path) -> io::Result<()> {
    let env = Envelope {
        version: WEIGHTS_VERSION,
        kind: kind.to_string(),
        model,
    };
    let json = serde_json::to_string(&env)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads a model previously written by [`save_model`], validating both the
/// format version and the model kind.
pub fn load_model<T: DeserializeOwned>(kind: &str, path: &Path) -> io::Result<T> {
    let json = fs::read_to_string(path)?;
    let env: Envelope<T> = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if env.version != WEIGHTS_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "weight file version {} != supported {}",
                env.version, WEIGHTS_VERSION
            ),
        ));
    }
    if env.kind != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("weight file holds a '{}' model, expected '{kind}'", env.kind),
        ));
    }
    Ok(env.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::init::Initializer;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("xatu_nn_serialize_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dense.json");
        let mut init = Initializer::new(1);
        let model = Dense::new(3, 2, &mut init);
        save_model(&model, "dense", &path).unwrap();
        let mut back: Dense = load_model("dense", &path).unwrap();
        back.ensure_grads();
        assert_eq!(model.forward(&[1.0, 2.0, 3.0]), back.forward(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dir = std::env::temp_dir().join("xatu_nn_serialize_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dense.json");
        let mut init = Initializer::new(1);
        let model = Dense::new(2, 2, &mut init);
        save_model(&model, "dense", &path).unwrap();
        let res: io::Result<Dense> = load_model("lstm", &path);
        assert!(res.is_err());
    }

    #[test]
    fn missing_file_errors() {
        let res: io::Result<Dense> = load_model("dense", Path::new("/nonexistent/x.json"));
        assert!(res.is_err());
    }
}
