//! Fast rational approximations of the gate activations.
//!
//! The fleet scoring path spends its transcendental budget almost
//! entirely in `sigmoid`/`tanh` (ROADMAP: ~0.2 s per 100k-customer
//! simulated minute from `exp`/`tanh` alone). This module provides the
//! classic odd rational tanh approximation — numerator `x·p(x²)` of
//! degree 13, denominator `q(x²)` of degree 6, the same coefficient set
//! popularized by Eigen's `ptanh` — evaluated in Horner form, plus the
//! sigmoid derived from it through the exact identity
//! `σ(x) = ½ + ½·tanh(x/2)`.
//!
//! Contract (see DESIGN.md §14):
//!
//! - **Error budget.** For every finite input,
//!   `|fast_tanh(x) − tanh(x)| ≤ FAST_TANH_MAX_ABS_ERR` and
//!   `|fast_sigmoid(x) − sigmoid(x)| ≤ FAST_SIGMOID_MAX_ABS_ERR`
//!   (and the analogous `*_32` bounds for the `f32` kernels, evaluated
//!   against the exact `f64` reference). The bounds are pinned by
//!   proptests in this module; tightening a coefficient without
//!   re-pinning the constant is a bug.
//! - **Saturation.** `|x| ≥ 7.90531110763549805` returns exactly ±1.0
//!   (explicit branch; the rational form is only fitted inside that
//!   range), so the approximation never overshoots `[−1, 1]` and
//!   survival probabilities stay valid.
//! - **Sanitization.** Non-finite inputs are handled explicitly
//!   *before* the clamp: `NaN → 0.0`, `±∞ → ±1.0` for tanh (hence
//!   `NaN → 0.5`, `+∞ → 1.0`, `−∞ → 0.0` for sigmoid). A naive
//!   `clamp` would send NaN to the lower bound and poison the state
//!   with −1; the explicit branch keeps degraded-input tolerance
//!   (PR 4) intact on the fast path.
//! - **Scope.** Nothing in the default build calls these kernels: the
//!   exact `activations::{sigmoid, tanh}` remain the only activations
//!   on every digest-bearing path unless the `fast-math` feature of
//!   `xatu-core` routes fleet scoring through [`crate::lstm32`]. The
//!   module itself is compiled unconditionally so its error bounds are
//!   enforced by tier-1 `cargo test` and the micro-benches compile
//!   without feature flags.

/// Maximum absolute error of [`fast_tanh`] vs `f64::tanh` over all
/// finite inputs. The error is dominated by the saturated region: the
/// input clamp freezes the rational form at `1 − tanh(7.905…) ≈
/// 2.6e-7` while the true tanh keeps approaching 1; inside the fitted
/// range the agreement is ~2.4e-8. Measured max 2.61e-7 over a
/// 40M-point sweep of ±40; pinned with margin by proptest.
pub const FAST_TANH_MAX_ABS_ERR: f64 = 4e-7;

/// Maximum absolute error of [`fast_sigmoid`] vs the exact sigmoid.
/// Half the tanh bound by the identity `σ(x) = ½ + ½·tanh(x/2)`
/// (measured max 1.31e-7 over ±80).
pub const FAST_SIGMOID_MAX_ABS_ERR: f64 = 2e-7;

/// Maximum absolute error of [`fast_tanh32`] (widened to `f64`) vs
/// `f64::tanh`: f32 rounding of the Horner evaluation (~4 ULP at
/// |tanh| ≈ 1) on top of the f64 budget. Measured max 4.11e-7 over a
/// 40M-point sweep of ±40.
pub const FAST_TANH32_MAX_ABS_ERR: f64 = 1e-6;

/// Maximum absolute error of [`fast_sigmoid32`] (widened to `f64`) vs
/// the exact sigmoid (measured max 2.28e-7 over ±80).
pub const FAST_SIGMOID32_MAX_ABS_ERR: f64 = 5e-7;

/// Saturation threshold: `|x| ≥ CLAMP` returns ±1.0 exactly (the
/// rational form is only fitted inside this range). The saturation
/// step `1 − tanh(7.905…) ≈ 2.6e-7` at the boundary is the dominant
/// term in the pinned error budgets above; the proptest sample ranges
/// straddle the clamp point to keep it covered.
// The trailing digits keep the literal identical to the f32-fitted
// constant's decimal expansion; f64 rounds them away harmlessly.
#[allow(clippy::excessive_precision)]
pub(crate) const CLAMP: f64 = 7.905_311_107_635_498_05;

// Odd rational tanh coefficients (numerator x·p(x²), denominator
// q(x²)); the classic float-fitted set used by Eigen's ptanh.
pub(crate) const A1: f64 = 4.893_524_558_917_86e-3;
pub(crate) const A3: f64 = 6.372_619_288_754_36e-4;
pub(crate) const A5: f64 = 1.485_722_357_179_79e-5;
pub(crate) const A7: f64 = 5.122_297_090_371_14e-8;
pub(crate) const A9: f64 = -8.604_671_522_137_35e-11;
pub(crate) const A11: f64 = 2.000_187_904_824_77e-13;
pub(crate) const A13: f64 = -2.760_768_477_423_55e-16;
pub(crate) const B0: f64 = 4.893_525_185_543_85e-3;
pub(crate) const B2: f64 = 2.268_434_632_439_00e-3;
pub(crate) const B4: f64 = 1.185_347_056_866_54e-4;
pub(crate) const B6: f64 = 1.198_258_394_667_02e-6;

/// Rational tanh approximation, `f64` in and out.
///
/// `NaN → 0.0`, `±∞ → ±1.0`, otherwise within
/// [`FAST_TANH_MAX_ABS_ERR`] of `f64::tanh`.
#[inline]
pub fn fast_tanh(x: f64) -> f64 {
    if !x.is_finite() {
        // Must precede the saturation branch: a bare clamp would send
        // NaN to a bound and return ±1 instead of the sanitized 0.
        if x.is_nan() {
            return 0.0;
        }
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    if x >= CLAMP {
        return 1.0;
    }
    if x <= -CLAMP {
        return -1.0;
    }
    let x2 = x * x;
    let p = A13;
    let p = p * x2 + A11;
    let p = p * x2 + A9;
    let p = p * x2 + A7;
    let p = p * x2 + A5;
    let p = p * x2 + A3;
    let p = p * x2 + A1;
    let q = B6;
    let q = q * x2 + B4;
    let q = q * x2 + B2;
    let q = q * x2 + B0;
    (x * p / q).clamp(-1.0, 1.0)
}

/// Sigmoid via the exact identity `σ(x) = ½ + ½·tanh(x/2)`.
///
/// `NaN → 0.5`, `+∞ → 1.0`, `−∞ → 0.0`, otherwise within
/// [`FAST_SIGMOID_MAX_ABS_ERR`] of the exact sigmoid.
#[inline]
pub fn fast_sigmoid(x: f64) -> f64 {
    0.5 + 0.5 * fast_tanh(0.5 * x)
}

/// [`fast_tanh`] evaluated entirely in `f32`.
#[inline]
pub fn fast_tanh32(x: f32) -> f32 {
    if !x.is_finite() {
        if x.is_nan() {
            return 0.0;
        }
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    if x >= CLAMP as f32 {
        return 1.0;
    }
    if x <= -(CLAMP as f32) {
        return -1.0;
    }
    let x2 = x * x;
    let p = A13 as f32;
    let p = p * x2 + A11 as f32;
    let p = p * x2 + A9 as f32;
    let p = p * x2 + A7 as f32;
    let p = p * x2 + A5 as f32;
    let p = p * x2 + A3 as f32;
    let p = p * x2 + A1 as f32;
    let q = B6 as f32;
    let q = q * x2 + B4 as f32;
    let q = q * x2 + B2 as f32;
    let q = q * x2 + B0 as f32;
    (x * p / q).clamp(-1.0, 1.0)
}

/// [`fast_sigmoid`] evaluated entirely in `f32`.
#[inline]
pub fn fast_sigmoid32(x: f32) -> f32 {
    0.5 + 0.5 * fast_tanh32(0.5 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations;
    use proptest::prelude::*;

    #[test]
    fn sanitizes_non_finite() {
        assert_eq!(fast_tanh(f64::NAN), 0.0);
        assert_eq!(fast_tanh(f64::INFINITY), 1.0);
        assert_eq!(fast_tanh(f64::NEG_INFINITY), -1.0);
        assert_eq!(fast_sigmoid(f64::NAN), 0.5);
        assert_eq!(fast_sigmoid(f64::INFINITY), 1.0);
        assert_eq!(fast_sigmoid(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_tanh32(f32::NAN), 0.0);
        assert_eq!(fast_tanh32(f32::INFINITY), 1.0);
        assert_eq!(fast_tanh32(f32::NEG_INFINITY), -1.0);
        assert_eq!(fast_sigmoid32(f32::NAN), 0.5);
        assert_eq!(fast_sigmoid32(f32::INFINITY), 1.0);
        assert_eq!(fast_sigmoid32(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    fn saturates_exactly_and_stays_bounded() {
        for &x in &[CLAMP, 8.0, 20.0, 700.0, 1e300] {
            assert_eq!(fast_tanh(x), 1.0);
            assert_eq!(fast_tanh(-x), -1.0);
            assert_eq!(fast_tanh32(x as f32), 1.0);
            assert_eq!(fast_tanh32(-x as f32), -1.0);
        }
        assert_eq!(fast_sigmoid(2.0 * CLAMP), 1.0);
        assert_eq!(fast_sigmoid(-2.0 * CLAMP), 0.0);
    }

    #[test]
    fn zero_is_exact() {
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(-0.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
        assert_eq!(fast_tanh32(0.0), 0.0);
        assert_eq!(fast_sigmoid32(0.0), 0.5);
    }

    /// The default (exact) activations are untouched by this module:
    /// `activations::tanh` is `f64::tanh` bitwise and
    /// `activations::sigmoid` keeps its two-branch stable form, so
    /// every digest-bearing path is 0-ULP identical to the pre-PR
    /// build whether or not `fast-math` is enabled downstream.
    #[test]
    fn exact_activations_unchanged() {
        for i in -400..=400 {
            let x = i as f64 * 0.1;
            assert_eq!(activations::tanh(x).to_bits(), x.tanh().to_bits());
            let s = if x >= 0.0 {
                1.0 / (1.0 + (-x).exp())
            } else {
                let e = x.exp();
                e / (1.0 + e)
            };
            assert_eq!(activations::sigmoid(x).to_bits(), s.to_bits());
        }
    }

    proptest! {
        /// Error bound over the full finite range. Beyond ±40 both
        /// sides saturate to ±1 within 1e-30, so sampling wide and
        /// dense-near-zero covers the whole domain.
        #[test]
        fn tanh_error_bound(x in -40.0f64..40.0) {
            let err = (fast_tanh(x) - x.tanh()).abs();
            prop_assert!(err <= FAST_TANH_MAX_ABS_ERR,
                "x={x} err={err:e} > {FAST_TANH_MAX_ABS_ERR:e}");
        }

        #[test]
        fn tanh_error_bound_dense(x in -4.0f64..4.0) {
            let err = (fast_tanh(x) - x.tanh()).abs();
            prop_assert!(err <= FAST_TANH_MAX_ABS_ERR,
                "x={x} err={err:e} > {FAST_TANH_MAX_ABS_ERR:e}");
        }

        #[test]
        fn sigmoid_error_bound(x in -80.0f64..80.0) {
            let err = (fast_sigmoid(x) - activations::sigmoid(x)).abs();
            prop_assert!(err <= FAST_SIGMOID_MAX_ABS_ERR,
                "x={x} err={err:e} > {FAST_SIGMOID_MAX_ABS_ERR:e}");
        }

        #[test]
        fn tanh32_error_bound(x in -40.0f32..40.0) {
            let err = (fast_tanh32(x) as f64 - (x as f64).tanh()).abs();
            prop_assert!(err <= FAST_TANH32_MAX_ABS_ERR,
                "x={x} err={err:e} > {FAST_TANH32_MAX_ABS_ERR:e}");
        }

        #[test]
        fn sigmoid32_error_bound(x in -80.0f32..80.0) {
            let err =
                (fast_sigmoid32(x) as f64 - activations::sigmoid(x as f64)).abs();
            prop_assert!(err <= FAST_SIGMOID32_MAX_ABS_ERR,
                "x={x} err={err:e} > {FAST_SIGMOID32_MAX_ABS_ERR:e}");
        }

        /// Range guarantee: outputs never leave [−1, 1] / [0, 1] for
        /// any input bit pattern, finite or not.
        #[test]
        fn range_guarantee(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            let t = fast_tanh(x);
            prop_assert!((-1.0..=1.0).contains(&t));
            let s = fast_sigmoid(x);
            prop_assert!((0.0..=1.0).contains(&s));
            let x32 = f32::from_bits(bits as u32);
            let t32 = fast_tanh32(x32);
            prop_assert!((-1.0..=1.0).contains(&t32));
            let s32 = fast_sigmoid32(x32);
            prop_assert!((0.0..=1.0).contains(&s32));
        }
    }
}
