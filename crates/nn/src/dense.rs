//! Fully-connected layer.

use crate::init::Initializer;
use crate::matrix::Matrix;
use crate::Params;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W·x + b` with gradient buffers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    #[serde(skip, default = "Matrix::default_grad")]
    gw: Matrix,
    #[serde(skip)]
    gb: Vec<f64>,
}

impl Matrix {
    /// Serde default for skipped gradient fields; resized on first use.
    fn default_grad() -> Matrix {
        Matrix::zeros(0, 0)
    }
}

impl Dense {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(input: usize, output: usize, init: &mut Initializer) -> Self {
        Dense {
            w: init.xavier(output, input),
            b: vec![0.0; output],
            gw: Matrix::zeros(output, input),
            gb: vec![0.0; output],
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Re-creates gradient buffers after deserialization.
    pub fn ensure_grads(&mut self) {
        if self.gw.rows() != self.w.rows() || self.gw.cols() != self.w.cols() {
            self.gw = Matrix::zeros(self.w.rows(), self.w.cols());
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.b.clone();
        self.w.matvec_acc(x, &mut y);
        y
    }

    /// Allocation-free forward pass into a caller-held output buffer.
    ///
    /// # Panics
    /// Panics if `y.len() != self.output_dim()`.
    pub fn forward_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.b);
        self.w.matvec_acc(x, y);
    }

    /// Backward pass: accumulates weight/bias gradients from upstream `dy`
    /// and the cached input `x`; returns `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.w.cols()];
        self.backward_into(x, dy, &mut dx);
        dx
    }

    /// Allocation-free backward pass: like [`Dense::backward`] but writes
    /// `dx` into a caller-held buffer (overwritten, not accumulated).
    ///
    /// # Panics
    /// Panics if `dx.len() != self.input_dim()`.
    pub fn backward_into(&mut self, x: &[f64], dy: &[f64], dx: &mut [f64]) {
        self.gw.rank1_acc(1.0, dy, x);
        for (g, d) in self.gb.iter_mut().zip(dy) {
            *g += d;
        }
        dx.fill(0.0);
        self.w.matvec_t_acc(dy, dx);
    }

    /// Immutable weight access (for attribution / inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable bias access (e.g. rare-event output-bias initialisation).
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }
}

impl Params for Dense {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.ensure_grads();
        f(self.w.data_mut(), self.gw.data_mut());
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_params_gradient;

    #[test]
    fn forward_known_values() {
        let mut init = Initializer::new(0);
        let mut d = Dense::new(2, 2, &mut init);
        // Overwrite with known weights.
        d.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        d.b = vec![0.5, -0.5];
        assert_eq!(d.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut init = Initializer::new(42);
        let mut d = Dense::new(4, 3, &mut init);
        let x = vec![0.3, -0.7, 1.1, 0.05];
        // Loss = sum of outputs squared / 2 -> dy = y.
        let max_rel = check_params_gradient(
            &mut d,
            |d| {
                let y = d.forward(&x);
                0.5 * y.iter().map(|v| v * v).sum::<f64>()
            },
            |d| {
                let y = d.forward(&x);
                d.backward(&x, &y);
            },
            1e-5,
        );
        assert!(max_rel < 1e-6, "max relative error {max_rel}");
    }

    #[test]
    fn backward_dx_matches_finite_differences() {
        let mut init = Initializer::new(7);
        let mut d = Dense::new(3, 2, &mut init);
        let x = vec![0.2, -0.4, 0.9];
        let y = d.forward(&x);
        let dx = d.backward(&x, &y);
        let eps = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let lp = 0.5 * d.forward(&xp).iter().map(|v| v * v).sum::<f64>();
            let lm = 0.5 * d.forward(&xm).iter().map(|v| v * v).sum::<f64>();
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx[i] - num).abs() < 1e-6, "i={i} {} vs {num}", dx[i]);
        }
    }

    #[test]
    fn params_visit_counts() {
        let mut init = Initializer::new(0);
        let mut d = Dense::new(5, 3, &mut init);
        assert_eq!(d.param_count(), 5 * 3 + 3);
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        let mut init = Initializer::new(21);
        let d = Dense::new(5, 3, &mut init);
        let x = vec![0.7, -0.2, 0.0, 1.3, -0.9];
        let y = d.forward(&x);
        let mut y2 = vec![9.0; 3];
        d.forward_into(&x, &mut y2);
        for (a, b) in y.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        let mut init = Initializer::new(22);
        let da = Dense::new(4, 2, &mut init);
        let mut db = da.clone();
        let mut da = da;
        let x = vec![0.3, 0.0, -1.1, 0.6];
        let dy = vec![0.5, -0.25];
        let dx_a = da.backward(&x, &dy);
        let mut dx_b = vec![7.0; 4];
        db.backward_into(&x, &dy, &mut dx_b);
        for (a, b) in dx_a.iter().zip(&dx_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let n = da.param_count();
        let (mut ga, mut gb) = (vec![0.0; n], vec![0.0; n]);
        da.export_grads_into(&mut ga);
        db.export_grads_into(&mut gb);
        for (a, b) in ga.iter().zip(&gb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut init = Initializer::new(11);
        let d = Dense::new(3, 2, &mut init);
        let json = serde_json::to_string(&d).unwrap();
        let mut back: Dense = serde_json::from_str(&json).unwrap();
        back.ensure_grads();
        assert_eq!(back.forward(&[1.0, 2.0, 3.0]), d.forward(&[1.0, 2.0, 3.0]));
    }
}
