//! The Adam optimizer (Kingma & Ba), the optimizer the paper trains with
//! (§5.3: Adam, learning rate 1e-4, batch size 64).

use crate::Params;

/// Adam with bias-corrected first/second moments.
///
/// Moment buffers are allocated lazily on the first step, in the visit order
/// of the [`Params`] implementation, so one optimizer instance is bound to
/// one model.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the paper's defaults besides the learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets custom betas (for sensitivity experiments).
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The optimizer state `(t, m, v)` for checkpointing. The moment
    /// buffers are in [`Params::visit`] order; an optimizer restored from
    /// these values continues bit-identically to one that never stopped.
    pub fn moments(&self) -> (u64, &[Vec<f64>], &[Vec<f64>]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores the state captured by [`Adam::moments`].
    ///
    /// Returns `Err` if the first/second-moment shapes disagree with each
    /// other; a shape mismatch against the *model* is caught by the
    /// existing per-step assertion on the next [`Adam::step`].
    pub fn restore_moments(
        &mut self,
        t: u64,
        m: Vec<Vec<f64>>,
        v: Vec<Vec<f64>>,
    ) -> Result<(), &'static str> {
        if m.len() != v.len() {
            return Err("first/second moment chunk counts differ");
        }
        if m.iter().zip(&v).any(|(a, b)| a.len() != b.len()) {
            return Err("first/second moment chunk shapes differ");
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one update using the gradients currently stored in `params`.
    /// Gradients are *not* zeroed; call [`Params::zero_grads`] afterwards.
    pub fn step(&mut self, params: &mut dyn Params) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let mut idx = 0;
        let (m, v) = (&mut self.m, &mut self.v);
        params.visit(&mut |p, g| {
            if idx == m.len() {
                m.push(vec![0.0; p.len()]);
                v.push(vec![0.0; p.len()]);
            }
            let (mi, vi) = (&mut m[idx], &mut v[idx]);
            assert_eq!(mi.len(), p.len(), "param set changed shape between steps");
            for k in 0..p.len() {
                mi[k] = b1 * mi[k] + (1.0 - b1) * g[k];
                vi[k] = b2 * vi[k] + (1.0 - b2) * g[k] * g[k];
                let m_hat = mi[k] / bc1;
                let v_hat = vi[k] / bc2;
                p[k] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 2-parameter quadratic "model" for optimizer tests.
    struct Quad {
        p: Vec<f64>,
        g: Vec<f64>,
        target: Vec<f64>,
    }

    impl Quad {
        fn loss(&self) -> f64 {
            self.p
                .iter()
                .zip(&self.target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }

        fn compute_grads(&mut self) {
            for k in 0..self.p.len() {
                self.g[k] = 2.0 * (self.p[k] - self.target[k]);
            }
        }
    }

    impl Params for Quad {
        fn visit(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut q = Quad {
            p: vec![5.0, -3.0],
            g: vec![0.0; 2],
            target: vec![1.0, 2.0],
        };
        let mut adam = Adam::new(0.05);
        for _ in 0..2000 {
            q.compute_grads();
            adam.step(&mut q);
        }
        assert!(q.loss() < 1e-6, "loss={}", q.loss());
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut q = Quad {
            p: vec![10.0],
            g: vec![0.0],
            target: vec![0.0],
        };
        let mut adam = Adam::new(0.1);
        q.compute_grads();
        adam.step(&mut q);
        assert!((q.p[0] - 9.9).abs() < 1e-6, "p={}", q.p[0]);
    }

    #[test]
    fn zero_grad_means_no_motion() {
        let mut q = Quad {
            p: vec![1.0, 2.0],
            g: vec![0.0; 2],
            target: vec![1.0, 2.0],
        };
        let mut adam = Adam::new(0.1);
        q.compute_grads(); // zero at the optimum
        adam.step(&mut q);
        assert_eq!(q.p, vec![1.0, 2.0]);
    }

    #[test]
    fn moment_roundtrip_resumes_bit_identically() {
        let run = |split: Option<usize>| -> Vec<f64> {
            let mut q = Quad {
                p: vec![5.0, -3.0],
                g: vec![0.0; 2],
                target: vec![1.0, 2.0],
            };
            let mut adam = Adam::new(0.05);
            for step in 0..40 {
                if split == Some(step) {
                    // Checkpoint/restore into a brand-new optimizer.
                    let (t, m, v) = adam.moments();
                    let (m, v) = (m.to_vec(), v.to_vec());
                    adam = Adam::new(0.05);
                    adam.restore_moments(t, m, v).unwrap();
                }
                q.compute_grads();
                adam.step(&mut q);
            }
            q.p
        };
        let uninterrupted = run(None);
        let resumed = run(Some(17));
        for (a, b) in uninterrupted.iter().zip(&resumed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let mut adam = Adam::new(0.1);
        assert!(adam
            .restore_moments(1, vec![vec![0.0; 2]], vec![vec![0.0; 3]])
            .is_err());
        assert!(adam.restore_moments(1, vec![vec![0.0; 2]], vec![]).is_err());
    }

    #[test]
    fn step_counter_advances() {
        let mut q = Quad {
            p: vec![1.0],
            g: vec![1.0],
            target: vec![0.0],
        };
        let mut adam = Adam::new(0.1);
        adam.step(&mut q);
        adam.step(&mut q);
        assert_eq!(adam.steps(), 2);
    }
}
