//! Numerically-stable scalar activations and their derivatives.

/// Logistic sigmoid, stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid given its *output* `s = sigmoid(x)`.
#[inline]
pub fn dsigmoid_from_out(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Hyperbolic tangent (std impl is already stable).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh given its *output* `t = tanh(x)`.
#[inline]
pub fn dtanh_from_out(t: f64) -> f64 {
    1.0 - t * t
}

/// Softplus `ln(1 + e^x)`, stable for large |x|:
/// `softplus(x) = max(x, 0) + ln(1 + e^{-|x|})`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Derivative of softplus, which is the sigmoid of the *input*.
#[inline]
pub fn dsoftplus(x: f64) -> f64 {
    sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for x in [-50.0, -5.0, -0.1, 0.1, 5.0, 50.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
        // No overflow at extremes.
        assert_eq!(sigmoid(1e4), 1.0);
        assert_eq!(sigmoid(-1e4), 0.0);
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for x in [-10.0f64, -1.0, 0.0, 1.0, 10.0] {
            let naive = (1.0f64 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert!((softplus(1000.0) - 1000.0).abs() < 1e-9);
        assert!(softplus(-1000.0) >= 0.0);
        assert!(softplus(-1000.0) < 1e-300 + 1e-12);
        assert!(softplus(-5.0) > 0.0, "softplus is strictly positive");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for x in [-3.0, -0.5, 0.0, 0.7, 2.5] {
            let num_ds = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((dsigmoid_from_out(sigmoid(x)) - num_ds).abs() < 1e-8);

            let num_dt = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((dtanh_from_out(tanh(x)) - num_dt).abs() < 1e-8);

            let num_dp = (softplus(x + eps) - softplus(x - eps)) / (2.0 * eps);
            assert!((dsoftplus(x) - num_dp).abs() < 1e-8);
        }
    }
}
